//! Verify a program written entirely in the surface syntax: the QASM-like
//! circuit text with tracepoint pragmas and `// assert` specification
//! comments, exactly how a user of the paper's tool would write it.
//!
//! Run with: `cargo run --release --example surface_syntax`

use morphqpv_suite::core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PROGRAM: &str = "\
// 3-qubit GHZ preparation with a verification spec.
qreg q[3];
T 1 q[0];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
T 2 q[0,1,2];
// assert assume is_pure(T1) guarantee is_pure(T2)
// assert guarantee prob_at_least(T2, 0, 0.4)
";

// A stray phase error: invisible to purity and probability predicates
// (the output is still a pure state with the same distribution), but the
// multi-state relation between two tracepoints exposes it.
const BUGGY: &str = "\
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
T 1 q[0,1,2];
p(1.2) q[1];     // injected bug
T 2 q[0,1,2];
// assert assume is_pure(T1) guarantee is_pure(T2)
// assert assume is_pure(T1) guarantee equal(T1, T2)
";

fn verify(source: &str) -> bool {
    let circuit = parse_program(source).expect("valid program");
    let assertions = assertions_from_source(source).expect("valid specs");
    let mut verifier = Verifier::new(circuit).input_qubits(&[0]).samples(4);
    for a in assertions {
        verifier = verifier.assert_that(a);
    }
    let report = verifier.run(&mut StdRng::seed_from_u64(3));
    for (i, outcome) in report.outcomes.iter().enumerate() {
        match &outcome.verdict {
            Verdict::Passed { confidence, .. } => {
                println!("  assertion {i}: passed (confidence {confidence:.2})");
            }
            Verdict::Failed { max_objective, .. } => {
                println!("  assertion {i}: FAILED (objective {max_objective:.3})");
            }
        }
    }
    report.all_passed()
}

fn main() {
    println!("clean GHZ program:");
    let clean_ok = verify(PROGRAM);
    println!("verdict: {}", if clean_ok { "correct" } else { "buggy" });

    println!("\nGHZ with an injected phase gate:");
    println!("(single-state purity passes — the bug preserves purity — but");
    println!(" the multi-state relation equal(T1, T2) catches it)");
    let buggy_ok = verify(BUGGY);
    println!("verdict: {}", if buggy_ok { "correct" } else { "buggy" });

    assert!(
        clean_ok && !buggy_ok,
        "expected clean to pass and buggy to fail"
    );
}
