//! Case study 2 (Section 7.2): verify gate pruning of a quantum neural
//! network and validate a biologist's prior knowledge.
//!
//! Part 1 — pruning: after deleting "unimportant" rotations, assert that
//! every input still produces (nearly) the same intermediate and output
//! states as the original model. A safe prune passes; an aggressive prune
//! produces a counter-example input.
//!
//! Part 2 — prior knowledge: assert that whenever the encoded sepal-length
//! attribute is in the claimed range, the model predicts Setosa
//! (⟨Z⟩ > 0 on qubit 0).
//!
//! Run with: `cargo run --release --example qnn_pruning`

use morphqpv_suite::bench::{compare_programs, CompareConfig};
use morphqpv_suite::core::prelude::*;
use morphqpv_suite::qalgo::{iris_like_dataset, train_qnn};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let data = iris_like_dataset(40, &mut rng);
    let model = train_qnn(4, 2, &data, &mut rng);
    let accuracy = data
        .iter()
        .filter(|s| model.predict(&s.attributes) == s.is_setosa)
        .count() as f64
        / data.len() as f64;
    println!(
        "trained QNN accuracy on the workload: {:.0}%",
        100.0 * accuracy
    );

    // --- Part 1: verify pruning.
    // Find the smallest-angle rotation (the natural pruning victim) and a
    // large one (an aggressive, wrong prune).
    let mut smallest = (0usize, 0usize, 0usize, f64::INFINITY);
    let mut largest = (0usize, 0usize, 0usize, 0.0f64);
    for (l, layer) in model.params.iter().enumerate() {
        for (q, &(ry, rz)) in layer.iter().enumerate() {
            for (which, angle) in [(0usize, ry.abs()), (1, rz.abs())] {
                if angle < smallest.3 {
                    smallest = (l, q, which, angle);
                }
                if angle > largest.3 {
                    largest = (l, q, which, angle);
                }
            }
        }
    }
    let safe = model.pruned(&[(smallest.0, smallest.1, smallest.2)]);
    let aggressive = model.pruned(&[(largest.0, largest.1, largest.2)]);
    println!(
        "pruning candidates: safe |θ|={:.3}, aggressive |θ|={:.3}",
        smallest.3, largest.3
    );

    let mut config = CompareConfig::new(vec![0, 1, 2, 3], vec![0, 1, 2, 3]);
    config.tolerance = 2.0 * smallest.3.max(0.05); // allowed drift β
    for (label, pruned) in [("safe prune", &safe), ("aggressive prune", &aggressive)] {
        let (bug, objective, ledger) =
            compare_programs(&model.body(), &pruned.body(), &config, &mut rng);
        println!(
            "{label}: {} (max deviation {:.3}, {})",
            if bug {
                "REJECTED — prediction may change"
            } else {
                "accepted"
            },
            objective,
            ledger
        );
    }

    // --- Part 2: verify prior knowledge.
    // "Flowers with small sepal length are Setosa": assume the encoder's
    // qubit-3 excitation (which carries the 4th attribute) is below 0.3,
    // guarantee the output ⟨Z⟩ on qubit 0 is positive.
    let mut program = Circuit::new(4);
    program.tracepoint(5, &[3]); // T5: encoded attribute qubit
    program.extend_from(&model.body());
    program.tracepoint(4, &[0]); // T4: output qubit
    let z = morphqpv_suite::qsim::matrices::z();
    let assertion = AssumeGuarantee::new()
        .assume(
            TracepointId(5),
            StatePredicate::custom(|rho| rho.get(1, 1).map(|v| v.re).unwrap_or(1.0) - 0.3),
        )
        .guarantee_state(
            TracepointId(4),
            StatePredicate::ExpectationAbove {
                observable: z,
                threshold: 0.0,
            },
        );
    let report = Verifier::new(program)
        .input_qubits(&[0, 1, 2, 3])
        .samples(24)
        // ε matched to the exact-readout detection sensitivity; see the
        // Theorem 3 discussion in EXPERIMENTS.md.
        .validation(ValidationConfig {
            accuracy_threshold: 0.05,
            ..Default::default()
        })
        .assert_that(assertion)
        .run(&mut rng);
    match &report.outcomes[0].verdict {
        Verdict::Passed { confidence, .. } => {
            println!(
                "prior knowledge holds on the characterized space (confidence {confidence:.2})"
            );
        }
        Verdict::Failed { counterexample, .. } => {
            println!("prior knowledge REFUTED — counter-example flower state found:");
            println!("{counterexample}");
        }
    }
}
