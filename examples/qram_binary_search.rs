//! Case study 3 (Section 7.3): locate the corrupted entry in a QRAM.
//!
//! The overall input/output assertion flags the memory as faulty, then the
//! tracepoint binary search narrows aligned address blocks until the bad
//! entry is isolated — exponentially cheaper than reading out every
//! address.
//!
//! Run with: `cargo run --release --example qram_binary_search`

use morphqpv_suite::bench::{qram_bisection, qram_bisection_cost};
use morphqpv_suite::qalgo::Qram;

fn main() {
    // A 5-address-qubit QRAM: 32 stored angles.
    let n_addr = 5usize;
    let values: Vec<f64> = (0..(1 << n_addr)).map(|i| 0.15 + 0.19 * i as f64).collect();
    let qram = Qram::new(n_addr, values);

    // Corrupt one entry.
    let bad_addr = 0b10110usize;
    let buggy = qram.circuit_with_bug(bad_addr, qram.values[bad_addr] + 1.2);
    println!(
        "QRAM: {} addresses, entry {bad_addr:05b} corrupted ({:.2} stored instead of {:.2})",
        qram.values.len(),
        qram.values[bad_addr] + 1.2,
        qram.values[bad_addr],
    );

    // Sanity: the overall assertion on the clean memory passes.
    let clean = qram_bisection(&qram, &qram.circuit(), 1000);
    println!(
        "clean memory: root probe passes ({} executions, no bad address)",
        clean.executions
    );
    assert_eq!(clean.bad_address, None);

    // Binary search on the corrupted memory.
    let result = qram_bisection(&qram, &buggy, 1000);
    println!(
        "corrupted memory: located address {:05b} in {} executions",
        result.bad_address.expect("bug must be found"),
        result.executions
    );
    assert_eq!(result.bad_address, Some(bad_addr));

    // Exhaustive readout baseline: every address needs its own execution
    // batch; expected hits at half the table.
    let exhaustive = (qram.values.len() as f64 + 1.0) / 2.0;
    println!(
        "exhaustive readout would need ≈ {exhaustive} probes — {:.1}x more",
        exhaustive / result.executions as f64
    );

    // Cost model projection to larger memories (Fig 10's tail).
    for n in [8usize, 12] {
        println!(
            "projected: {} addresses -> {} bisection executions",
            1 << n,
            qram_bisection_cost(n, 1000)
        );
    }
}
