//! Case study 1 (Section 7.1): find the unexpected key hidden in a
//! quantum lock.
//!
//! The bug is a second key that also unlocks — one bad input among 2^N.
//! Exhaustive testers need ~2^(N-1) executions to stumble on it; the
//! Strategy-const bisection pins input qubits level by level and probes
//! subcube superpositions, finding the key in logarithmically many probes.
//!
//! Run with: `cargo run --release --example quantum_lock_debugging`

use morphqpv_suite::baselines::{expected_tests_to_find_single_bug, QuitoSearch};
use morphqpv_suite::qalgo::QuantumLock;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 12-qubit lock (11-bit keys): the legitimate key and a hidden one.
    let n = 12usize;
    let key = 0b01101001101u64;
    let hidden = 0b11010010110u64;
    let lock = QuantumLock::new(n, key);
    let buggy = lock.circuit_with_bug(hidden);

    println!(
        "quantum lock: {n} qubits, key {key:0w$b}, hidden bug key {hidden:0w$b}",
        w = n - 1
    );

    // MorphQPV: Strategy-const bisection over key subcubes (the Fig 7
    // pipeline, 1000 shots per execution).
    let result = morphqpv_suite::bench::quantum_lock_bisection(&buggy, key, 1000);
    println!(
        "\nMorphQPV bisection: found bad keys {:?} in {} executions",
        result
            .bad_keys
            .iter()
            .map(|k| format!("{k:0w$b}", w = n - 1))
            .collect::<Vec<_>>(),
        result.executions
    );
    assert_eq!(result.bad_keys, vec![hidden]);

    // Baseline: Quito's grid search over classical keys.
    let mut rng = StdRng::seed_from_u64(1);
    let quito = QuitoSearch::default().search_until_found(&lock.circuit(), &buggy, &mut rng);
    println!(
        "Quito grid search: bug found = {}, executions = {} (expected ≈ {})",
        quito.bug_found,
        quito.ledger.executions,
        expected_tests_to_find_single_bug(1 << (n - 1))
    );
    println!(
        "\nreduction: {:.1}x fewer executions",
        quito.ledger.executions as f64 / result.executions as f64
    );
}
