//! Quickstart: verify quantum teleportation with a multi-state assertion.
//!
//! This is the paper's running example (Section 4, Equation 7): label the
//! payload before and the destination after the protocol, then assert that
//! for every *pure* input the two states are equal. One characterization,
//! one optimization — no per-input testing.
//!
//! Run with: `cargo run --release --example quickstart`

use morphqpv_suite::core::prelude::*;
use morphqpv_suite::qalgo::Teleportation;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Program + tracepoints: a 1-qubit teleportation (3 qubits total).
    let layout = Teleportation::new(1);
    let mut program = Circuit::new(layout.n_qubits());
    program.tracepoint(1, &layout.input_qubits()); // T1: Alice's payload
    program.extend_from(&layout.circuit_coherent());
    program.tracepoint(2, &layout.output_qubits()); // T2: Bob's qubit

    // 2. Assertion (Equation 7): assume both states are pure, guarantee
    //    they are equal.
    let assertion = Assertion::new()
        .assume(TracepointId(1), StatePredicate::IsPure)
        .assume(TracepointId(2), StatePredicate::IsPure)
        .guarantee_relation(TracepointId(1), TracepointId(2), RelationPredicate::Equal);

    // 3. Characterize + validate.
    let mut rng = StdRng::seed_from_u64(7);
    let report = Verifier::new(program)
        .input_qubits(&layout.input_qubits())
        .samples(4)
        .assert_that(assertion)
        .run(&mut rng);

    match &report.outcomes[0].verdict {
        Verdict::Passed {
            max_objective,
            confidence,
        } => {
            println!("teleportation verified: max violation {max_objective:.2e}");
            println!("confidence (Theorem 3): {confidence:.3}");
        }
        Verdict::Failed {
            counterexample,
            max_objective,
            ..
        } => {
            println!("teleportation BROKEN: objective {max_objective:.3}");
            println!("counter-example input:\n{counterexample}");
        }
    }
    println!("cost: {}", report.ledger());

    // 4. Now break the protocol (drop the CZ correction) and watch the
    //    same assertion produce a counter-example.
    let mut buggy = Circuit::new(layout.n_qubits());
    buggy.tracepoint(1, &layout.input_qubits());
    buggy.extend_from(&layout.circuit_coherent_with_bug(0));
    buggy.tracepoint(2, &layout.output_qubits());

    let assertion = Assertion::new()
        .assume(TracepointId(1), StatePredicate::IsPure)
        .guarantee_relation(TracepointId(1), TracepointId(2), RelationPredicate::Equal);
    let report = Verifier::new(buggy)
        .input_qubits(&layout.input_qubits())
        .samples(4)
        .assert_that(assertion)
        .run(&mut rng);
    match &report.outcomes[0].verdict {
        Verdict::Failed {
            max_objective,
            counterexample,
            ..
        } => {
            println!("\nbuggy variant correctly rejected (objective {max_objective:.3})");
            println!("counter-example input:\n{counterexample}");
        }
        Verdict::Passed { .. } => println!("\nbug missed — should not happen at this budget"),
    }
}
