// 3-qubit GHZ preparation with a verification spec.
// Verify with:  cargo run --release -p morph-bench --bin verify -- examples/programs/ghz.qasm
qreg q[3];
T 1 q[0];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
T 2 q[0,1,2];
// assert assume is_pure(T1) guarantee is_pure(T2)
// assert guarantee prob_at_least(T2, 0, 0.4)
