//! Aaronson–Gottesman stabilizer tableau.
//!
//! Used to generate and validate the Clifford preparation circuits of the
//! input-sampling stage. The tableau tracks the stabilizer group of the
//! state produced by a Clifford circuit from `|0…0⟩` in O(n²) space.

/// Stabilizer tableau of an `n`-qubit stabilizer state.
///
/// Rows `0..n` are destabilizers, rows `n..2n` are stabilizers, following
/// Aaronson & Gottesman (2004). Phase bits track ±1 signs.
///
/// # Examples
///
/// ```
/// use morph_clifford::StabilizerTableau;
///
/// let mut tab = StabilizerTableau::new(2);
/// tab.h(0);
/// tab.cx(0, 1);
/// // Bell state is stabilized by XX and ZZ.
/// assert!(tab.stabilizer_strings().contains(&"+XX".to_string()));
/// assert!(tab.stabilizer_strings().contains(&"+ZZ".to_string()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilizerTableau {
    n: usize,
    /// x part: (2n rows) × n bits.
    x: Vec<Vec<bool>>,
    /// z part: (2n rows) × n bits.
    z: Vec<Vec<bool>>,
    /// Phase bit per row (true = −1).
    r: Vec<bool>,
}

impl StabilizerTableau {
    /// Tableau of `|0…0⟩`: destabilizers `Xᵢ`, stabilizers `Zᵢ`.
    pub fn new(n: usize) -> Self {
        let mut x = vec![vec![false; n]; 2 * n];
        let mut z = vec![vec![false; n]; 2 * n];
        for i in 0..n {
            x[i][i] = true; // destabilizer X_i
            z[n + i][i] = true; // stabilizer Z_i
        }
        StabilizerTableau {
            n,
            x,
            z,
            r: vec![false; 2 * n],
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Applies a Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        for i in 0..2 * self.n {
            let (xi, zi) = (self.x[i][q], self.z[i][q]);
            if xi && zi {
                self.r[i] ^= true;
            }
            self.x[i][q] = zi;
            self.z[i][q] = xi;
        }
    }

    /// Applies the phase gate S on `q`.
    pub fn s(&mut self, q: usize) {
        for i in 0..2 * self.n {
            let (xi, zi) = (self.x[i][q], self.z[i][q]);
            if xi && zi {
                self.r[i] ^= true;
            }
            self.z[i][q] ^= xi;
        }
    }

    /// Applies CNOT with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `c == t`.
    pub fn cx(&mut self, c: usize, t: usize) {
        assert_ne!(c, t, "control equals target");
        for i in 0..2 * self.n {
            let (xc, zc) = (self.x[i][c], self.z[i][c]);
            let (xt, zt) = (self.x[i][t], self.z[i][t]);
            if xc && zt && (xt == zc) {
                self.r[i] ^= true;
            }
            self.x[i][t] ^= xc;
            self.z[i][c] ^= zt;
        }
    }

    /// Applies Pauli X on `q` (phase bookkeeping only).
    pub fn x_gate(&mut self, q: usize) {
        for i in 0..2 * self.n {
            if self.z[i][q] {
                self.r[i] ^= true;
            }
        }
    }

    /// Applies Pauli Z on `q`.
    pub fn z_gate(&mut self, q: usize) {
        for i in 0..2 * self.n {
            if self.x[i][q] {
                self.r[i] ^= true;
            }
        }
    }

    /// The stabilizer generators as strings like `"+XZI"`.
    pub fn stabilizer_strings(&self) -> Vec<String> {
        (self.n..2 * self.n).map(|i| self.row_string(i)).collect()
    }

    fn row_string(&self, i: usize) -> String {
        let mut s = String::with_capacity(self.n + 1);
        s.push(if self.r[i] { '-' } else { '+' });
        for q in 0..self.n {
            s.push(match (self.x[i][q], self.z[i][q]) {
                (false, false) => 'I',
                (true, false) => 'X',
                (false, true) => 'Z',
                (true, true) => 'Y',
            });
        }
        s
    }

    /// `true` if the stabilizer rows are independent (they always should be
    /// after valid updates); used as an internal consistency check.
    pub fn stabilizers_independent(&self) -> bool {
        // Gaussian elimination over GF(2) on the (x|z) stabilizer rows.
        let n = self.n;
        let mut rows: Vec<Vec<bool>> = (n..2 * n)
            .map(|i| {
                let mut row = self.x[i].clone();
                row.extend(self.z[i].iter().copied());
                row
            })
            .collect();
        let mut rank = 0;
        for col in 0..2 * n {
            if let Some(pivot) = (rank..n).find(|&r| rows[r][col]) {
                rows.swap(rank, pivot);
                for r in 0..n {
                    if r != rank && rows[r][col] {
                        let (head, tail) = rows.split_at_mut(rank.max(r));
                        let (a, b) = if r < rank {
                            (&mut head[r], &tail[0])
                        } else {
                            (&mut tail[0], &head[rank])
                        };
                        for c in 0..2 * n {
                            a[c] ^= b[c];
                        }
                    }
                }
                rank += 1;
                if rank == n {
                    break;
                }
            }
        }
        rank == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_stabilized_by_z() {
        let tab = StabilizerTableau::new(3);
        assert_eq!(
            tab.stabilizer_strings(),
            vec!["+ZII".to_string(), "+IZI".to_string(), "+IIZ".to_string()]
        );
        assert!(tab.stabilizers_independent());
    }

    #[test]
    fn hadamard_turns_z_into_x() {
        let mut tab = StabilizerTableau::new(1);
        tab.h(0);
        assert_eq!(tab.stabilizer_strings(), vec!["+X".to_string()]);
        tab.h(0);
        assert_eq!(tab.stabilizer_strings(), vec!["+Z".to_string()]);
    }

    #[test]
    fn s_gate_turns_x_into_y() {
        let mut tab = StabilizerTableau::new(1);
        tab.h(0);
        tab.s(0);
        assert_eq!(tab.stabilizer_strings(), vec!["+Y".to_string()]);
    }

    #[test]
    fn x_gate_flips_z_phase() {
        let mut tab = StabilizerTableau::new(1);
        tab.x_gate(0);
        assert_eq!(tab.stabilizer_strings(), vec!["-Z".to_string()]);
    }

    #[test]
    fn ghz_stabilizers() {
        let mut tab = StabilizerTableau::new(3);
        tab.h(0);
        tab.cx(0, 1);
        tab.cx(1, 2);
        let stabs = tab.stabilizer_strings();
        assert!(stabs.contains(&"+XXX".to_string()), "{stabs:?}");
        assert!(tab.stabilizers_independent());
    }

    #[test]
    fn random_walk_preserves_independence() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let mut tab = StabilizerTableau::new(5);
        for _ in 0..200 {
            match rng.gen_range(0..3) {
                0 => tab.h(rng.gen_range(0..5)),
                1 => tab.s(rng.gen_range(0..5)),
                _ => {
                    let c = rng.gen_range(0..5);
                    let mut t = rng.gen_range(0..5);
                    while t == c {
                        t = rng.gen_range(0..5);
                    }
                    tab.cx(c, t);
                }
            }
        }
        assert!(tab.stabilizers_independent());
    }
}
