//! Aaronson–Gottesman stabilizer tableau.
//!
//! Used to generate and validate the Clifford preparation circuits of the
//! input-sampling stage. The tableau tracks the stabilizer group of the
//! state produced by a Clifford circuit from `|0…0⟩` in O(n²) space.
//!
//! [`StabilizerState`] layers exact readout on top: a global-phase witness
//! tracked through every gate, basis-amplitude queries, statevector
//! extraction, and exact reduced density matrices — the machinery the
//! stabilizer simulation backend uses to serve tracepoints without ever
//! allocating a dense register.

use morph_linalg::{CMatrix, C64};
use morph_qsim::{Gate, StateVector};

/// Stabilizer tableau of an `n`-qubit stabilizer state.
///
/// Rows `0..n` are destabilizers, rows `n..2n` are stabilizers, following
/// Aaronson & Gottesman (2004). Phase bits track ±1 signs.
///
/// # Examples
///
/// ```
/// use morph_clifford::StabilizerTableau;
///
/// let mut tab = StabilizerTableau::new(2);
/// tab.h(0);
/// tab.cx(0, 1);
/// // Bell state is stabilized by XX and ZZ.
/// assert!(tab.stabilizer_strings().contains(&"+XX".to_string()));
/// assert!(tab.stabilizer_strings().contains(&"+ZZ".to_string()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilizerTableau {
    n: usize,
    /// x part: (2n rows) × n bits.
    x: Vec<Vec<bool>>,
    /// z part: (2n rows) × n bits.
    z: Vec<Vec<bool>>,
    /// Phase bit per row (true = −1).
    r: Vec<bool>,
}

impl StabilizerTableau {
    /// Tableau of `|0…0⟩`: destabilizers `Xᵢ`, stabilizers `Zᵢ`.
    pub fn new(n: usize) -> Self {
        let mut x = vec![vec![false; n]; 2 * n];
        let mut z = vec![vec![false; n]; 2 * n];
        for i in 0..n {
            x[i][i] = true; // destabilizer X_i
            z[n + i][i] = true; // stabilizer Z_i
        }
        StabilizerTableau {
            n,
            x,
            z,
            r: vec![false; 2 * n],
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Applies a Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        for i in 0..2 * self.n {
            let (xi, zi) = (self.x[i][q], self.z[i][q]);
            if xi && zi {
                self.r[i] ^= true;
            }
            self.x[i][q] = zi;
            self.z[i][q] = xi;
        }
    }

    /// Applies the phase gate S on `q`.
    pub fn s(&mut self, q: usize) {
        for i in 0..2 * self.n {
            let (xi, zi) = (self.x[i][q], self.z[i][q]);
            if xi && zi {
                self.r[i] ^= true;
            }
            self.z[i][q] ^= xi;
        }
    }

    /// Applies CNOT with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `c == t`.
    pub fn cx(&mut self, c: usize, t: usize) {
        assert_ne!(c, t, "control equals target");
        for i in 0..2 * self.n {
            let (xc, zc) = (self.x[i][c], self.z[i][c]);
            let (xt, zt) = (self.x[i][t], self.z[i][t]);
            if xc && zt && (xt == zc) {
                self.r[i] ^= true;
            }
            self.x[i][t] ^= xc;
            self.z[i][c] ^= zt;
        }
    }

    /// Applies the inverse phase gate S† on `q` natively: `X → −Y`,
    /// `Y → X`, `Z → Z`.
    pub fn sdg(&mut self, q: usize) {
        for i in 0..2 * self.n {
            let (xi, zi) = (self.x[i][q], self.z[i][q]);
            if xi && !zi {
                self.r[i] ^= true;
            }
            self.z[i][q] ^= xi;
        }
    }

    /// Applies Pauli X on `q` (phase bookkeeping only).
    pub fn x_gate(&mut self, q: usize) {
        for i in 0..2 * self.n {
            if self.z[i][q] {
                self.r[i] ^= true;
            }
        }
    }

    /// Applies Pauli Y on `q`: anticommutes with both X and Z, so any row
    /// with exactly one of the two bits set flips sign.
    pub fn y_gate(&mut self, q: usize) {
        for i in 0..2 * self.n {
            if self.x[i][q] ^ self.z[i][q] {
                self.r[i] ^= true;
            }
        }
    }

    /// Applies Pauli Z on `q`.
    pub fn z_gate(&mut self, q: usize) {
        for i in 0..2 * self.n {
            if self.x[i][q] {
                self.r[i] ^= true;
            }
        }
    }

    /// Applies controlled-Z on the (symmetric) pair natively:
    /// `X_a → X_a Z_b`, `X_b → X_b Z_a`, Z untouched. The sign flips
    /// exactly when both X bits are set and the Z bits differ (e.g.
    /// `CZ (Y⊗X) CZ = −X⊗Y` while `CZ (X⊗X) CZ = +Y⊗Y`).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn cz(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "control equals target");
        for i in 0..2 * self.n {
            let (xa, za) = (self.x[i][a], self.z[i][a]);
            let (xb, zb) = (self.x[i][b], self.z[i][b]);
            if xa && xb && (za ^ zb) {
                self.r[i] ^= true;
            }
            self.z[i][a] ^= xb;
            self.z[i][b] ^= xa;
        }
    }

    /// Applies SWAP natively: exchanges the two qubits' X and Z columns in
    /// every row; no phase can change.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn swap(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "swap requires distinct qubits");
        for i in 0..2 * self.n {
            self.x[i].swap(a, b);
            self.z[i].swap(a, b);
        }
    }

    /// The stabilizer generators as strings like `"+XZI"`.
    pub fn stabilizer_strings(&self) -> Vec<String> {
        (self.n..2 * self.n).map(|i| self.row_string(i)).collect()
    }

    fn row_string(&self, i: usize) -> String {
        let mut s = String::with_capacity(self.n + 1);
        s.push(if self.r[i] { '-' } else { '+' });
        for q in 0..self.n {
            s.push(match (self.x[i][q], self.z[i][q]) {
                (false, false) => 'I',
                (true, false) => 'X',
                (false, true) => 'Z',
                (true, true) => 'Y',
            });
        }
        s
    }

    /// `true` if the stabilizer rows are independent (they always should be
    /// after valid updates); used as an internal consistency check.
    pub fn stabilizers_independent(&self) -> bool {
        // Gaussian elimination over GF(2) on the (x|z) stabilizer rows.
        let n = self.n;
        let mut rows: Vec<Vec<bool>> = (n..2 * n)
            .map(|i| {
                let mut row = self.x[i].clone();
                row.extend(self.z[i].iter().copied());
                row
            })
            .collect();
        let mut rank = 0;
        for col in 0..2 * n {
            if let Some(pivot) = (rank..n).find(|&r| rows[r][col]) {
                rows.swap(rank, pivot);
                for r in 0..n {
                    if r != rank && rows[r][col] {
                        let (head, tail) = rows.split_at_mut(rank.max(r));
                        let (a, b) = if r < rank {
                            (&mut head[r], &tail[0])
                        } else {
                            (&mut tail[0], &head[rank])
                        };
                        for c in 0..2 * n {
                            a[c] ^= b[c];
                        }
                    }
                }
                rank += 1;
                if rank == n {
                    break;
                }
            }
        }
        rank == n
    }
}

/// A Pauli operator `i^phase · ⊗_j W(x_j, z_j)` with `W(1,1) = Y`, used to
/// multiply tableau rows while tracking the exact power of `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PauliRow {
    x: Vec<bool>,
    z: Vec<bool>,
    /// Power of `i` (mod 4). Stabilizer-group elements always end up with
    /// an even power (±1).
    phase: u8,
}

/// Aaronson–Gottesman per-qubit phase contribution: the power of `i`
/// produced when the single-qubit Pauli `(x1, z1)` left-multiplies
/// `(x2, z2)` (e.g. `X·Z = −i Y` contributes −1).
fn g_contrib(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
    match (x1, z1) {
        (false, false) => 0,
        (true, true) => z2 as i32 - x2 as i32,
        (true, false) => (z2 as i32) * (2 * (x2 as i32) - 1),
        (false, true) => (x2 as i32) * (1 - 2 * (z2 as i32)),
    }
}

impl PauliRow {
    fn identity(n: usize) -> Self {
        PauliRow {
            x: vec![false; n],
            z: vec![false; n],
            phase: 0,
        }
    }

    fn from_stabilizer(tab: &StabilizerTableau, row: usize) -> Self {
        PauliRow {
            x: tab.x[row].clone(),
            z: tab.z[row].clone(),
            phase: if tab.r[row] { 2 } else { 0 },
        }
    }

    /// `self ← self · other` with exact phase tracking.
    fn mul_assign(&mut self, other: &PauliRow) {
        let mut g: i32 = 0;
        for j in 0..self.x.len() {
            g += g_contrib(self.x[j], self.z[j], other.x[j], other.z[j]);
            self.x[j] ^= other.x[j];
            self.z[j] ^= other.z[j];
        }
        self.phase = (self.phase as i32 + other.phase as i32 + g).rem_euclid(4) as u8;
    }

    /// Applies the operator to basis state `|bits⟩`, returning the image
    /// basis bits and the power of `i` picked up: `P|b⟩ = i^w |b ⊕ x⟩`.
    fn apply_to_basis(&self, bits: &[bool]) -> (Vec<bool>, u8) {
        let mut w = self.phase as i32;
        let mut out = bits.to_vec();
        for j in 0..self.x.len() {
            match (self.x[j], self.z[j]) {
                (false, true) => w += 2 * bits[j] as i32,
                (true, true) => w += if bits[j] { 3 } else { 1 },
                _ => {}
            }
            out[j] ^= self.x[j];
        }
        (out, w.rem_euclid(4) as u8)
    }
}

/// Stabilizer generators reorganized for amplitude queries: X-type rows in
/// reduced row-echelon form over their X bits (most significant qubit
/// first), and the pure-Z rows that pin the support's base point.
struct ReadoutBasis {
    /// Rows with nonzero X part; `leads[i]` is the pivot qubit of row `i`.
    xrows: Vec<PauliRow>,
    leads: Vec<usize>,
    /// Rows with zero X part (pure Z-type sign constraints).
    zrows: Vec<PauliRow>,
}

impl ReadoutBasis {
    fn new(tab: &StabilizerTableau) -> Self {
        let n = tab.n;
        let mut rows: Vec<PauliRow> = (n..2 * n)
            .map(|i| PauliRow::from_stabilizer(tab, i))
            .collect();
        let mut xrows: Vec<PauliRow> = Vec::new();
        let mut leads: Vec<usize> = Vec::new();
        // Forward elimination over X bits, qubit 0 (most significant index
        // bit) first. Row products go through `mul_assign` so phases stay
        // exact.
        let mut next = 0usize;
        for col in 0..n {
            let Some(p) = (next..rows.len()).find(|&r| rows[r].x[col]) else {
                continue;
            };
            rows.swap(next, p);
            let pivot = rows[next].clone();
            for row in rows.iter_mut().skip(next + 1) {
                if row.x[col] {
                    row.mul_assign(&pivot);
                }
            }
            xrows.push(pivot);
            leads.push(col);
            next += 1;
        }
        // Back-substitution to full RREF: clear each pivot column from the
        // earlier rows so coset minimization is a single greedy pass.
        for i in (0..xrows.len()).rev() {
            let pivot = xrows[i].clone();
            let col = leads[i];
            for row in xrows.iter_mut().take(i) {
                if row.x[col] {
                    row.mul_assign(&pivot);
                }
            }
        }
        let zrows = rows.split_off(next);
        ReadoutBasis {
            xrows,
            leads,
            zrows,
        }
    }

    /// A stabilizer-group element whose X part equals `diff`, or `None`
    /// if `diff` is outside the X-part span (the target amplitude is 0).
    fn element_with_x_part(&self, diff: &[bool]) -> Option<PauliRow> {
        let n = diff.len();
        let mut acc = PauliRow::identity(n);
        let mut cur = diff.to_vec();
        for (row, &lead) in self.xrows.iter().zip(&self.leads) {
            if cur[lead] {
                acc.mul_assign(row);
                for (c, &x) in cur.iter_mut().zip(&row.x) {
                    *c ^= x;
                }
            }
        }
        if cur.iter().any(|&b| b) {
            return None;
        }
        Some(acc)
    }

    /// The support's minimum basis index (qubit 0 = most significant bit):
    /// solve the pure-Z sign constraints for a particular point, then
    /// greedily clear every pivot qubit with the RREF X rows.
    fn base_point(&self, n: usize) -> Vec<bool> {
        // Solve z·b ≡ phase/2 (mod 2) by Gaussian elimination on the
        // pure-Z rows' Z bits. A selected pivot row is final the moment it
        // is chosen (only unused rows keep getting reduced), so capture it
        // then; its leading bit is its pivot column.
        let mut rows: Vec<(Vec<bool>, bool)> = self
            .zrows
            .iter()
            .map(|p| {
                debug_assert_eq!(p.phase % 2, 0, "stabilizer element with odd i-power");
                (p.z.clone(), (p.phase / 2) % 2 == 1)
            })
            .collect();
        let mut used = vec![false; rows.len()];
        let mut pivots: Vec<(usize, Vec<bool>, bool)> = Vec::new();
        for col in 0..n {
            let Some(p) = (0..rows.len()).find(|&r| !used[r] && rows[r].0[col]) else {
                continue;
            };
            used[p] = true;
            let (prow, prhs) = (rows[p].0.clone(), rows[p].1);
            for (r, row) in rows.iter_mut().enumerate() {
                if r != p && !used[r] && row.0[col] {
                    for (b, &pb) in row.0.iter_mut().zip(&prow) {
                        *b ^= pb;
                    }
                    row.1 ^= prhs;
                }
            }
            pivots.push((col, prow, prhs));
        }
        // Back-substitute in descending pivot order (free bits stay 0), so
        // every bit a row references past its pivot is already final.
        let mut b = vec![false; n];
        for (pivot, row, rhs) in pivots.iter().rev() {
            let mut acc = *rhs;
            for j in (pivot + 1)..n {
                if row[j] && b[j] {
                    acc ^= true;
                }
            }
            b[*pivot] = acc;
        }
        // Minimize over the coset b ⊕ span(X parts).
        for (row, &lead) in self.xrows.iter().zip(&self.leads) {
            if b[lead] {
                for (bit, &x) in b.iter_mut().zip(&row.x) {
                    *bit ^= x;
                }
            }
        }
        b
    }
}

/// The error returned when a gate outside the Clifford set {H, X, Y, Z, S,
/// S†, CX, CZ, SWAP, MCZ(≤2)} is fed to a [`StabilizerState`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonCliffordGate(pub String);

impl std::fmt::Display for NonCliffordGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gate is not in the tableau's Clifford set: {}", self.0)
    }
}

impl std::error::Error for NonCliffordGate {}

/// A stabilizer state with exact global phase: an Aaronson–Gottesman
/// tableau plus one *witness* basis amplitude tracked through every gate,
/// so the full state vector — not just the state up to phase — is
/// recoverable.
///
/// Every nonzero amplitude of a stabilizer state is `e^{iπt/4} · 2^{−k/2}`
/// for integers `t`, `k`; the witness stores that exact form for one
/// support point. Monomial gates (everything but H) update it in O(1); H
/// re-anchors it with one amplitude-ratio query against the tableau, O(n³)
/// worst case — irrelevant next to the 2^n cost it replaces.
///
/// # Examples
///
/// ```
/// use morph_clifford::StabilizerState;
/// use morph_qsim::{Gate, StateVector};
///
/// let mut st = StabilizerState::new(2);
/// st.apply_gate(&Gate::H(0)).unwrap();
/// st.apply_gate(&Gate::CX(0, 1)).unwrap();
/// let mut dense = StateVector::zero_state(2);
/// Gate::H(0).apply(&mut dense);
/// Gate::CX(0, 1).apply(&mut dense);
/// assert!(st.to_statevector().approx_eq_up_to_phase(&dense, 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilizerState {
    tab: StabilizerTableau,
    /// Support point whose amplitude is tracked exactly (bit per qubit).
    witness: Vec<bool>,
    /// Witness amplitude `e^{iπ·t/4} · 2^{−k/2}`.
    t: u8,
    k: u32,
}

impl StabilizerState {
    /// `|0…0⟩` with amplitude exactly 1.
    pub fn new(n: usize) -> Self {
        StabilizerState {
            tab: StabilizerTableau::new(n),
            witness: vec![false; n],
            t: 0,
            k: 0,
        }
    }

    /// `|bits⟩` (qubit `j` set to `bits[j]`) with amplitude exactly 1.
    pub fn from_basis(bits: &[bool]) -> Self {
        let mut st = StabilizerState::new(bits.len());
        for (q, &b) in bits.iter().enumerate() {
            if b {
                st.tab.x_gate(q);
                st.witness[q] = true;
            }
        }
        st
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.tab.n
    }

    /// Read access to the underlying tableau.
    pub fn tableau(&self) -> &StabilizerTableau {
        &self.tab
    }

    /// `true` if [`StabilizerState::apply_gate`] can simulate `gate`.
    pub fn supports(gate: &Gate) -> bool {
        matches!(
            gate,
            Gate::H(_)
                | Gate::X(_)
                | Gate::Y(_)
                | Gate::Z(_)
                | Gate::S(_)
                | Gate::Sdg(_)
                | Gate::CX(..)
                | Gate::CZ(..)
                | Gate::Swap(..)
        ) || matches!(gate, Gate::MCZ(qs) if qs.len() <= 2 && !qs.is_empty())
    }

    /// Applies a Clifford gate, keeping the witness amplitude exact.
    ///
    /// # Errors
    ///
    /// Returns [`NonCliffordGate`] (leaving the state untouched) for gates
    /// the tableau cannot represent.
    pub fn apply_gate(&mut self, gate: &Gate) -> Result<(), NonCliffordGate> {
        match gate {
            Gate::H(q) => self.apply_h(*q),
            Gate::X(q) => {
                self.tab.x_gate(*q);
                self.witness[*q] ^= true;
            }
            Gate::Y(q) => {
                // Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩.
                self.t = (self.t + if self.witness[*q] { 6 } else { 2 }) % 8;
                self.tab.y_gate(*q);
                self.witness[*q] ^= true;
            }
            Gate::Z(q) => {
                if self.witness[*q] {
                    self.t = (self.t + 4) % 8;
                }
                self.tab.z_gate(*q);
            }
            Gate::S(q) => {
                if self.witness[*q] {
                    self.t = (self.t + 2) % 8;
                }
                self.tab.s(*q);
            }
            Gate::Sdg(q) => {
                if self.witness[*q] {
                    self.t = (self.t + 6) % 8;
                }
                self.tab.sdg(*q);
            }
            Gate::CX(c, t) => {
                let flip = self.witness[*c];
                self.tab.cx(*c, *t);
                self.witness[*t] ^= flip;
            }
            Gate::CZ(a, b) => {
                if self.witness[*a] && self.witness[*b] {
                    self.t = (self.t + 4) % 8;
                }
                self.tab.cz(*a, *b);
            }
            Gate::Swap(a, b) => {
                self.tab.swap(*a, *b);
                self.witness.swap(*a, *b);
            }
            Gate::MCZ(qs) if qs.len() == 1 => return self.apply_gate(&Gate::Z(qs[0])),
            Gate::MCZ(qs) if qs.len() == 2 => return self.apply_gate(&Gate::CZ(qs[0], qs[1])),
            other => return Err(NonCliffordGate(format!("{other:?}"))),
        }
        Ok(())
    }

    /// Hadamard: the only gate that needs an amplitude-ratio query. The
    /// two old amplitudes feeding the witness's new pair are combined in
    /// exact `e^{iπt/4}·2^{−k/2}` arithmetic (their phase ratio is always
    /// a 4th root of unity, so sums stay in the same form).
    fn apply_h(&mut self, q: usize) {
        let basis = ReadoutBasis::new(&self.tab);
        let mut diff = vec![false; self.tab.n];
        diff[q] = true;
        // The support-internal ratio is i^w (±1 or ±i); as an eighth-root
        // exponent that is 2w — always even, which `combine` relies on.
        let partner = basis.element_with_x_part(&diff).map(|g| {
            let (to, w) = g.apply_to_basis(&self.witness);
            (to, (2 * w as u32) % 8)
        });
        let v = self.witness[q];
        // Amplitudes at the q=0 / q=1 partners of the witness, as
        // eighth-root exponents relative to magnitude 2^{−k/2}; None = 0.
        let (t0, t1): (Option<u32>, Option<u32>) = {
            let tw = self.t as u32;
            match partner {
                Some((_, dw)) => {
                    let tp = (tw + dw) % 8;
                    if v {
                        (Some(tp), Some(tw))
                    } else {
                        (Some(tw), Some(tp))
                    }
                }
                None => {
                    if v {
                        (None, Some(tw))
                    } else {
                        (Some(tw), None)
                    }
                }
            }
        };
        // new0 = (a0 + a1)/√2, new1 = (a0 − a1)/√2.
        let combine = |ta: Option<u32>, tb: Option<u32>, negate_b: bool| -> Option<(u32, u32)> {
            let shift = if negate_b { 4 } else { 0 };
            match (ta, tb) {
                (None, None) => None,
                (Some(a), None) => Some((a, self.k + 1)),
                (None, Some(b)) => Some(((b + shift) % 8, self.k + 1)),
                (Some(a), Some(b)) => {
                    let d = (b + shift + 8 - a) % 8;
                    match d {
                        0 => Some((a, self.k - 1)),
                        2 => Some(((a + 1) % 8, self.k)),
                        4 => None,
                        6 => Some(((a + 7) % 8, self.k)),
                        _ => unreachable!("odd phase ratio inside one stabilizer state"),
                    }
                }
            }
        };
        let new0 = combine(t0, t1, false);
        let new1 = combine(t0, t1, true);
        self.tab.h(q);
        let (bit, (t, k)) = match (new0, new1) {
            (Some(a), _) => (false, a),
            (None, Some(b)) => (true, b),
            (None, None) => unreachable!("H annihilated the witness support pair"),
        };
        self.witness[q] = bit;
        self.t = t as u8;
        self.k = k;
    }

    /// Exact amplitude `⟨bits|ψ⟩`.
    ///
    /// The magnitude `2^{−k/2}` and eighth-root phase are converted to
    /// `f64` at the very end, so every query is exact up to one final
    /// rounding per component.
    pub fn basis_amplitude(&self, bits: &[bool]) -> C64 {
        assert_eq!(bits.len(), self.tab.n, "basis width mismatch");
        let basis = ReadoutBasis::new(&self.tab);
        let diff: Vec<bool> = bits
            .iter()
            .zip(&self.witness)
            .map(|(&a, &b)| a ^ b)
            .collect();
        match basis.element_with_x_part(&diff) {
            None => C64::ZERO,
            Some(g) => {
                let (to, w) = g.apply_to_basis(&self.witness);
                debug_assert_eq!(to, bits);
                amp_c64((self.t as u32 + 2 * w as u32) % 8, self.k)
            }
        }
    }

    /// The exact amplitude of the support's minimum basis index — the
    /// state's global phase anchor. Two runs that built the same state
    /// through different gate sequences agree on this value exactly
    /// (including the 2^{−k/2} magnitude).
    pub fn global_phase(&self) -> C64 {
        let basis = ReadoutBasis::new(&self.tab);
        let anchor = basis.base_point(self.tab.n);
        self.basis_amplitude(&anchor)
    }

    /// Materializes the dense state vector, global phase included.
    ///
    /// # Panics
    ///
    /// Panics if the register is 28 qubits or wider.
    pub fn to_statevector(&self) -> StateVector {
        let n = self.tab.n;
        assert!(n < 28, "state vector would exceed memory budget");
        let basis = ReadoutBasis::new(&self.tab);
        let s = basis.xrows.len();
        debug_assert_eq!(self.k, s as u32, "witness magnitude out of sync");
        let mut amps = vec![C64::ZERO; 1 << n];
        let base = basis.base_point(n);
        // Anchor amplitude, then Gray-code over the X-row span: each step
        // multiplies by one generator, an O(n) phase update.
        let mut cur_bits = base.clone();
        let diff: Vec<bool> = base
            .iter()
            .zip(&self.witness)
            .map(|(&a, &b)| a ^ b)
            .collect();
        let g = basis
            .element_with_x_part(&diff)
            .expect("support base point must be reachable from the witness");
        let (to, w) = g.apply_to_basis(&self.witness);
        debug_assert_eq!(to, base);
        let mut cur_t = (self.t as u32 + 2 * w as u32) % 8;
        let index_of = |bits: &[bool]| -> usize {
            bits.iter()
                .enumerate()
                .fold(0usize, |acc, (q, &b)| acc | ((b as usize) << (n - 1 - q)))
        };
        amps[index_of(&cur_bits)] = amp_c64(cur_t, self.k);
        for code in 1usize..(1 << s) {
            let flip = code.trailing_zeros() as usize;
            let row = &basis.xrows[flip];
            let (next, w) = row.apply_to_basis(&cur_bits);
            cur_bits = next;
            cur_t = (cur_t + 2 * w as u32) % 8;
            amps[index_of(&cur_bits)] = amp_c64(cur_t, self.k);
        }
        StateVector::from_normalized_amplitudes(amps)
    }

    /// Exact reduced density matrix of the listed qubits (`qubits[0]` the
    /// most significant reduced bit, matching
    /// `StateVector::reduced_density_matrix`): `ρ_A = 2^{−|A|} Σ g|_A` over
    /// the stabilizer-group elements supported inside `A`. Entries are
    /// exact dyadic complex numbers — no 1/√2 rounding can enter.
    ///
    /// # Panics
    ///
    /// Panics on duplicate or out-of-range qubits.
    pub fn reduced_density_matrix(&self, qubits: &[usize]) -> CMatrix {
        let n = self.tab.n;
        let k = qubits.len();
        for &q in qubits {
            assert!(q < n, "tracepoint qubit {q} out of range");
        }
        {
            let mut sorted = qubits.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                k,
                "duplicate qubits in reduced_density_matrix"
            );
        }
        let dk = 1usize << k;
        let mut in_a = vec![usize::MAX; n];
        for (j, &q) in qubits.iter().enumerate() {
            in_a[q] = j;
        }
        // Kernel of the generator → outside-support map over GF(2): row i
        // of M holds generator i's x/z bits on qubits outside A. Kernel
        // vectors say which generator subsets multiply to an element
        // supported inside A.
        let outside: Vec<usize> = (0..n).filter(|&q| in_a[q] == usize::MAX).collect();
        let width = 2 * outside.len();
        let mut rows: Vec<(Vec<bool>, usize)> = (0..n)
            .map(|i| {
                let mut m = Vec::with_capacity(width);
                for &q in &outside {
                    m.push(self.tab.x[n + i][q]);
                    m.push(self.tab.z[n + i][q]);
                }
                (m, i)
            })
            .collect();
        // Eliminate: combine rows to zero their M part; rows that become
        // all-zero yield kernel basis vectors (tracked as generator masks).
        let mut masks: Vec<u64> = (0..n as u64).map(|i| 1u64 << i).collect();
        let mut kernel: Vec<u64> = Vec::new();
        let mut rank_rows: Vec<usize> = Vec::new();
        for col in 0..width {
            let Some(pos) = (0..rows.len())
                .filter(|r| !rank_rows.contains(r))
                .find(|&r| rows[r].0[col])
            else {
                continue;
            };
            let (prow, pmask) = (rows[pos].0.clone(), masks[pos]);
            for r in 0..rows.len() {
                if r != pos && !rank_rows.contains(&r) && rows[r].0[col] {
                    for (b, &pb) in rows[r].0.iter_mut().zip(&prow) {
                        *b ^= pb;
                    }
                    masks[r] ^= pmask;
                }
            }
            rank_rows.push(pos);
        }
        for r in 0..rows.len() {
            if !rank_rows.contains(&r) {
                debug_assert!(rows[r].0.iter().all(|&b| !b));
                kernel.push(masks[r]);
            }
        }
        let d = kernel.len();
        assert!(
            d <= 2 * k,
            "stabilizer subgroup dimension {d} exceeds 2·|A| = {}",
            2 * k
        );
        // Precompute each kernel basis vector as a Pauli row.
        let basis_rows: Vec<PauliRow> = kernel
            .iter()
            .map(|&mask| {
                let mut acc = PauliRow::identity(n);
                for i in 0..n {
                    if (mask >> i) & 1 == 1 {
                        acc.mul_assign(&PauliRow::from_stabilizer(&self.tab, n + i));
                    }
                }
                acc
            })
            .collect();
        let scale = 1.0 / dk as f64;
        let mut rho = CMatrix::zeros(dk, dk);
        // Gray-code over the subgroup; every element is ±(Pauli on A).
        let mut acc = PauliRow::identity(n);
        let add_element = |p: &PauliRow, rho: &mut CMatrix| {
            debug_assert!(p.phase % 2 == 0, "subgroup element with odd i-power");
            let mut x_a = 0usize;
            for (j, &q) in qubits.iter().enumerate() {
                if p.x[q] {
                    x_a |= 1 << (k - 1 - j);
                }
            }
            for row in 0..dk {
                let col = row ^ x_a;
                // ⟨row|W_j|col_j⟩ per qubit: X → 1, Z → (−1)^bit,
                // Y → i at bit 1, −i at bit 0.
                let mut w = p.phase as u32;
                for (j, &q) in qubits.iter().enumerate() {
                    let bit = (row >> (k - 1 - j)) & 1 == 1;
                    match (p.x[q], p.z[q]) {
                        (false, true) => w += 2 * bit as u32,
                        (true, true) => w += if bit { 1 } else { 3 },
                        _ => {}
                    }
                }
                let v = match w % 4 {
                    0 => C64::new(scale, 0.0),
                    1 => C64::new(0.0, scale),
                    2 => C64::new(-scale, 0.0),
                    _ => C64::new(0.0, -scale),
                };
                rho[(row, col)] += v;
            }
        };
        add_element(&acc, &mut rho);
        for code in 1usize..(1 << d) {
            let flip = code.trailing_zeros() as usize;
            acc.mul_assign(&basis_rows[flip]);
            add_element(&acc, &mut rho);
        }
        rho
    }

    /// `⟨Z_q⟩` read exactly off the one-qubit reduced density matrix.
    pub fn expectation_z(&self, q: usize) -> f64 {
        let rho = self.reduced_density_matrix(&[q]);
        rho[(0, 0)].re - rho[(1, 1)].re
    }
}

/// Converts the exact amplitude form `e^{iπt/4} · 2^{−k/2}` to `C64`.
/// Even `t` and even `k` are fully exact; odd values round once through
/// `FRAC_1_SQRT_2` — deterministically, which is what the backend parity
/// guarantees rest on.
fn amp_c64(t: u32, k: u32) -> C64 {
    let mag = pow2_neg_half(k);
    match t {
        0 => C64::new(mag, 0.0),
        2 => C64::new(0.0, mag),
        4 => C64::new(-mag, 0.0),
        6 => C64::new(0.0, -mag),
        odd => {
            let c = pow2_neg_half(k + 1);
            match odd {
                1 => C64::new(c, c),
                3 => C64::new(-c, c),
                5 => C64::new(-c, -c),
                7 => C64::new(c, -c),
                _ => unreachable!("eighth-root exponent out of range"),
            }
        }
    }
}

/// `2^{−k/2}` with at most one rounding (exact for even `k`).
fn pow2_neg_half(k: u32) -> f64 {
    if k % 2 == 0 {
        f64::from_bits(((1023 - (k as u64) / 2) << 52).max(1 << 52))
    } else {
        std::f64::consts::FRAC_1_SQRT_2 * pow2_neg_half(k - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_stabilized_by_z() {
        let tab = StabilizerTableau::new(3);
        assert_eq!(
            tab.stabilizer_strings(),
            vec!["+ZII".to_string(), "+IZI".to_string(), "+IIZ".to_string()]
        );
        assert!(tab.stabilizers_independent());
    }

    #[test]
    fn hadamard_turns_z_into_x() {
        let mut tab = StabilizerTableau::new(1);
        tab.h(0);
        assert_eq!(tab.stabilizer_strings(), vec!["+X".to_string()]);
        tab.h(0);
        assert_eq!(tab.stabilizer_strings(), vec!["+Z".to_string()]);
    }

    #[test]
    fn s_gate_turns_x_into_y() {
        let mut tab = StabilizerTableau::new(1);
        tab.h(0);
        tab.s(0);
        assert_eq!(tab.stabilizer_strings(), vec!["+Y".to_string()]);
    }

    #[test]
    fn x_gate_flips_z_phase() {
        let mut tab = StabilizerTableau::new(1);
        tab.x_gate(0);
        assert_eq!(tab.stabilizer_strings(), vec!["-Z".to_string()]);
    }

    #[test]
    fn ghz_stabilizers() {
        let mut tab = StabilizerTableau::new(3);
        tab.h(0);
        tab.cx(0, 1);
        tab.cx(1, 2);
        let stabs = tab.stabilizer_strings();
        assert!(stabs.contains(&"+XXX".to_string()), "{stabs:?}");
        assert!(tab.stabilizers_independent());
    }

    #[test]
    fn random_walk_preserves_independence() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let mut tab = StabilizerTableau::new(5);
        for _ in 0..200 {
            match rng.gen_range(0..3) {
                0 => tab.h(rng.gen_range(0..5)),
                1 => tab.s(rng.gen_range(0..5)),
                _ => {
                    let c = rng.gen_range(0..5);
                    let mut t = rng.gen_range(0..5);
                    while t == c {
                        t = rng.gen_range(0..5);
                    }
                    tab.cx(c, t);
                }
            }
        }
        assert!(tab.stabilizers_independent());
    }

    /// Dense oracle: run the same gates on a `StateVector` starting from
    /// `|0…0⟩`.
    fn dense_run(n: usize, gates: &[Gate]) -> StateVector {
        let mut psi = StateVector::zero_state(n);
        for g in gates {
            g.apply(&mut psi);
        }
        psi
    }

    fn stabilizer_run(n: usize, gates: &[Gate]) -> StabilizerState {
        let mut st = StabilizerState::new(n);
        for g in gates {
            st.apply_gate(g).expect("Clifford gate rejected");
        }
        st
    }

    fn assert_states_close(st: &StabilizerState, dense: &StateVector, ctx: &str) {
        let sv = st.to_statevector();
        assert_eq!(sv.n_qubits(), dense.n_qubits(), "{ctx}: width mismatch");
        for (i, (&a, &b)) in sv
            .amplitudes()
            .iter()
            .zip(dense.amplitudes().iter())
            .enumerate()
        {
            assert!(
                (a - b).abs() < 1e-12,
                "{ctx}: amp {i} differs: tableau {a:?} vs dense {b:?}"
            );
        }
    }

    #[test]
    fn pauli_row_single_qubit_products() {
        let x = PauliRow {
            x: vec![true],
            z: vec![false],
            phase: 0,
        };
        let z = PauliRow {
            x: vec![false],
            z: vec![true],
            phase: 0,
        };
        // X·Z = −iY and Z·X = +iY.
        let mut xz = x.clone();
        xz.mul_assign(&z);
        assert_eq!((xz.x[0], xz.z[0], xz.phase), (true, true, 3));
        let mut zx = z.clone();
        zx.mul_assign(&x);
        assert_eq!((zx.x[0], zx.z[0], zx.phase), (true, true, 1));
        // Z·Z = I.
        let mut zz = z.clone();
        zz.mul_assign(&z);
        assert_eq!((zz.x[0], zz.z[0], zz.phase), (false, false, 0));
    }

    #[test]
    fn native_gates_match_dense_oracle() {
        // Each new native update (S†, Y, CZ, SWAP) checked on states where
        // it acts nontrivially, against the dense simulator.
        let programs: Vec<(&str, usize, Vec<Gate>)> = vec![
            ("sdg on +", 1, vec![Gate::H(0), Gate::Sdg(0)]),
            (
                "sdg undoes s",
                1,
                vec![Gate::H(0), Gate::S(0), Gate::Sdg(0)],
            ),
            ("y on 0", 1, vec![Gate::Y(0)]),
            ("y on +", 1, vec![Gate::H(0), Gate::Y(0)]),
            ("y on 1", 1, vec![Gate::X(0), Gate::Y(0)]),
            ("cz on ++", 2, vec![Gate::H(0), Gate::H(1), Gate::CZ(0, 1)]),
            ("cz on 11", 2, vec![Gate::X(0), Gate::X(1), Gate::CZ(0, 1)]),
            (
                "swap entangled",
                3,
                vec![Gate::H(0), Gate::CX(0, 1), Gate::X(2), Gate::Swap(1, 2)],
            ),
            (
                "mcz pair",
                2,
                vec![Gate::H(0), Gate::X(1), Gate::MCZ(vec![0, 1])],
            ),
        ];
        for (name, n, gates) in programs {
            let st = stabilizer_run(n, &gates);
            let dense = dense_run(n, &gates);
            assert_states_close(&st, &dense, name);
        }
    }

    #[test]
    fn monomial_circuits_read_out_bitwise_identical() {
        // Without H every amplitude stays an exact eighth root; readout
        // must match the dense simulator bit for bit.
        let gates = vec![
            Gate::X(0),
            Gate::S(0),
            Gate::Y(1),
            Gate::CX(0, 2),
            Gate::CZ(0, 1),
            Gate::Sdg(2),
            Gate::Z(1),
            Gate::Swap(0, 2),
        ];
        let st = stabilizer_run(3, &gates);
        let dense = dense_run(3, &gates);
        let sv = st.to_statevector();
        assert_eq!(
            sv.amplitudes(),
            dense.amplitudes(),
            "monomial readout must be exact"
        );
    }

    #[test]
    fn non_clifford_gate_is_rejected_without_mutation() {
        let mut st = stabilizer_run(2, &[Gate::H(0), Gate::CX(0, 1)]);
        let before = st.clone();
        let err = st.apply_gate(&Gate::T(0)).unwrap_err();
        assert!(err.to_string().contains('T'), "{err}");
        assert_eq!(st, before, "failed gate must not mutate the state");
    }

    #[test]
    fn basis_amplitude_matches_statevector() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..30 {
            let n = rng.gen_range(1..=5);
            let gates = random_clifford_gates(n, 25, &mut rng);
            let st = stabilizer_run(n, &gates);
            let dense = dense_run(n, &gates);
            for idx in 0..(1usize << n) {
                let bits: Vec<bool> = (0..n).map(|q| (idx >> (n - 1 - q)) & 1 == 1).collect();
                let amp = st.basis_amplitude(&bits);
                assert!(
                    (amp - dense.amplitudes()[idx]).abs() < 1e-12,
                    "trial {trial} amp {idx}: {amp:?} vs {:?}",
                    dense.amplitudes()[idx]
                );
            }
        }
    }

    #[test]
    fn random_clifford_circuits_match_dense_with_global_phase() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..40 {
            let n = rng.gen_range(1..=6);
            let gates = random_clifford_gates(n, 40, &mut rng);
            let st = stabilizer_run(n, &gates);
            let dense = dense_run(n, &gates);
            assert_states_close(&st, &dense, &format!("trial {trial} (n={n})"));
        }
    }

    #[test]
    fn reduced_density_matrix_matches_dense() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..30 {
            let n = rng.gen_range(2..=6);
            let gates = random_clifford_gates(n, 30, &mut rng);
            let st = stabilizer_run(n, &gates);
            let dense = dense_run(n, &gates);
            let k = rng.gen_range(1..=n.min(3));
            let mut qubits: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                qubits.swap(i, j);
            }
            qubits.truncate(k);
            let rho_s = st.reduced_density_matrix(&qubits);
            let rho_d = dense.reduced_density_matrix(&qubits);
            for r in 0..(1 << k) {
                for c in 0..(1 << k) {
                    assert!(
                        (rho_s[(r, c)] - rho_d[(r, c)]).abs() < 1e-12,
                        "trial {trial} qubits {qubits:?} entry ({r},{c}): {:?} vs {:?}",
                        rho_s[(r, c)],
                        rho_d[(r, c)]
                    );
                }
            }
        }
    }

    #[test]
    fn expectation_z_matches_dense_probabilities() {
        let gates = vec![Gate::H(0), Gate::CX(0, 1), Gate::X(1)];
        let st = stabilizer_run(2, &gates);
        let dense = dense_run(2, &gates);
        for q in 0..2 {
            let expect = 1.0 - 2.0 * dense.prob_one(q);
            assert!((st.expectation_z(q) - expect).abs() < 1e-12, "qubit {q}");
        }
    }

    #[test]
    fn global_phase_is_gate_order_independent() {
        // Two different gate sequences preparing the same state must agree
        // on the anchor amplitude exactly.
        let a = stabilizer_run(2, &[Gate::H(0), Gate::CX(0, 1)]);
        let b = stabilizer_run(2, &[Gate::H(1), Gate::CX(1, 0)]);
        assert_eq!(a.global_phase(), b.global_phase());
        // S X S X = i·I, a pure global phase the witness must capture.
        let gates = [Gate::S(0), Gate::X(0), Gate::S(0), Gate::X(0)];
        let c = stabilizer_run(1, &gates);
        let dense = dense_run(1, &gates);
        assert_eq!(c.global_phase(), dense.amplitudes()[0]);
    }

    #[test]
    fn from_basis_prepares_exact_basis_state() {
        let st = StabilizerState::from_basis(&[true, false, true]);
        let sv = st.to_statevector();
        for (i, &a) in sv.amplitudes().iter().enumerate() {
            let expect = if i == 0b101 { C64::ONE } else { C64::ZERO };
            assert_eq!(a, expect, "index {i}");
        }
    }

    fn random_clifford_gates(n: usize, len: usize, rng: &mut impl rand::Rng) -> Vec<Gate> {
        (0..len)
            .map(|_| {
                let q = rng.gen_range(0..n);
                match rng.gen_range(0..9) {
                    0 => Gate::H(q),
                    1 => Gate::X(q),
                    2 => Gate::Y(q),
                    3 => Gate::Z(q),
                    4 => Gate::S(q),
                    5 => Gate::Sdg(q),
                    g if n >= 2 => {
                        let mut p = rng.gen_range(0..n);
                        while p == q {
                            p = rng.gen_range(0..n);
                        }
                        match g {
                            6 => Gate::CX(q, p),
                            7 => Gate::CZ(q, p),
                            _ => Gate::Swap(q, p),
                        }
                    }
                    _ => Gate::S(q),
                }
            })
            .collect()
    }
}
