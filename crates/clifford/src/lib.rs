//! Clifford-group input sampling for the MorphQPV reproduction.
//!
//! Section 5.1 of the paper prepares the characterization inputs with
//! circuits from the orthogonal Clifford group (Hadamard-free layered form,
//! after Bravyi–Maslov). This crate provides:
//!
//! - [`StabilizerTableau`]: an Aaronson–Gottesman tableau used to build and
//!   sanity-check Clifford circuits.
//! - [`InputEnsemble`]: the three input families compared in Fig 15(a)
//!   (basis states, Clifford states, Pauli product eigenstates) with
//!   preparation circuits and exact prepared states.
//! - [`span_fraction`]: how much of the operator space an ensemble spans —
//!   the quantity that drives approximation accuracy (Theorem 2).
//!
//! # Examples
//!
//! ```
//! use morph_clifford::{span_fraction, InputEnsemble};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let inputs = InputEnsemble::PauliProduct.generate(2, 16, &mut rng);
//! assert!((span_fraction(&inputs) - 1.0).abs() < 1e-9);
//! ```

mod sampling;
mod tableau;

pub use sampling::{
    basis_prep, clifford_prep, pauli_product_prep, span_fraction, InputEnsemble, InputState,
};
pub use tableau::{NonCliffordGate, StabilizerState, StabilizerTableau};
