//! Input-state ensembles for MorphQPV's input sampling (Section 5.1).
//!
//! The characterization step runs the program under a set of sampled inputs
//! whose density matrices should span as much of the input operator space as
//! possible. The paper prepares inputs with circuits from the (Hadamard-free
//! flavored) Clifford group; we also provide computational-basis and Pauli
//! product-eigenstate ensembles for the Fig 15(a) ablation.

use morph_linalg::CMatrix;
use morph_qprog::Circuit;
use morph_qsim::StateVector;
use rand::Rng;
use serde::json::{FromValueError, Value};
use serde::{Deserialize, Serialize};

/// A sampled input: the preparation circuit, the prepared pure state, and
/// its density matrix.
#[derive(Debug, Clone)]
pub struct InputState {
    /// Circuit preparing the state from `|0…0⟩`.
    pub prep: Circuit,
    /// The prepared state.
    pub state: StateVector,
    /// Density matrix `|ψ⟩⟨ψ|` of the prepared state.
    pub rho: CMatrix,
}

impl InputState {
    fn from_circuit(prep: Circuit) -> Self {
        let mut state = StateVector::zero_state(prep.n_qubits());
        for inst in prep.instructions() {
            if let morph_qprog::Instruction::Gate(g) = inst {
                g.apply(&mut state);
            }
        }
        let rho = state.density_matrix();
        InputState { prep, state, rho }
    }
}

/// Which family of input states the sampler draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputEnsemble {
    /// Computational basis states `|b⟩` — the paper's ablation baseline.
    Basis,
    /// Random stabilizer states prepared by layered Clifford circuits
    /// seeded with distinct basis states (the paper's choice).
    Clifford,
    /// Products of single-qubit Pauli eigenstates `{|0⟩,|1⟩,|+⟩,|+i⟩}` —
    /// an operator-spanning tomographic family.
    PauliProduct,
}

impl InputEnsemble {
    /// Generates `count` input states on `n` qubits.
    ///
    /// States are pairwise distinct by construction within each family's
    /// period (`2^n` for `Basis`, `4^n` for `PauliProduct`).
    ///
    /// Randomness is seed-split: one master seed is drawn from `rng`, and
    /// input `i` is prepared with its own child stream derived from
    /// `(master, i)`. The sampled set is therefore a pure function of the
    /// caller's RNG state and `count`, and [`Self::generate_with_workers`]
    /// produces bit-identical inputs at any worker count.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `count == 0`.
    pub fn generate(self, n: usize, count: usize, rng: &mut impl Rng) -> Vec<InputState> {
        self.generate_with_workers(n, count, rng, 1)
    }

    /// [`Self::generate`] with the state preparations fanned out across
    /// `workers` threads (`0` = all available cores, `1` = inline serial).
    /// Output is identical at every worker count.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `count == 0`.
    pub fn generate_with_workers(
        self,
        n: usize,
        count: usize,
        rng: &mut impl Rng,
        workers: usize,
    ) -> Vec<InputState> {
        assert!(n > 0, "need at least one qubit");
        assert!(count > 0, "need at least one input");
        // Only the Clifford family consumes randomness; the deterministic
        // families leave the caller's stream untouched, as before.
        match self {
            InputEnsemble::Basis => morph_parallel::parallel_map_indices(workers, count, |i| {
                InputState::from_circuit(basis_prep(n, i % (1 << n.min(30))))
            }),
            InputEnsemble::Clifford => {
                let master = morph_parallel::derive_master(rng);
                morph_parallel::parallel_map_indices(workers, count, |i| {
                    let mut child = morph_parallel::child_rng(master, i as u64);
                    InputState::from_circuit(clifford_prep(n, i % (1 << n.min(30)), &mut child))
                })
            }
            InputEnsemble::PauliProduct => {
                morph_parallel::parallel_map_indices(workers, count, |i| {
                    InputState::from_circuit(pauli_product_prep(n, i))
                })
            }
        }
    }
}

impl InputEnsemble {
    /// Stable tag used both in serialized artifacts and in morph-store
    /// fingerprints.
    pub fn tag(self) -> &'static str {
        match self {
            InputEnsemble::Basis => "basis",
            InputEnsemble::Clifford => "clifford",
            InputEnsemble::PauliProduct => "pauli-product",
        }
    }
}

impl Serialize for InputEnsemble {
    fn to_value(&self) -> Value {
        Value::Str(self.tag().to_string())
    }
}

impl<'de> Deserialize<'de> for InputEnsemble {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        match value.as_str() {
            Some("basis") => Ok(InputEnsemble::Basis),
            Some("clifford") => Ok(InputEnsemble::Clifford),
            Some("pauli-product") => Ok(InputEnsemble::PauliProduct),
            _ => Err(FromValueError::expected("input ensemble tag", value)),
        }
    }
}

impl Serialize for InputState {
    /// Persists all three representations (prep circuit, state, density
    /// matrix) so reloads are bit-identical without re-simulating the
    /// preparation.
    fn to_value(&self) -> Value {
        let mut m = std::collections::BTreeMap::new();
        m.insert("prep".to_string(), self.prep.to_value());
        m.insert("state".to_string(), self.state.to_value());
        m.insert("rho".to_string(), self.rho.to_value());
        Value::Object(m)
    }
}

impl<'de> Deserialize<'de> for InputState {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        Ok(InputState {
            prep: Circuit::from_value(value.require("prep")?)?,
            state: StateVector::from_value(value.require("state")?)?,
            rho: CMatrix::from_value(value.require("rho")?)?,
        })
    }
}

/// Preparation circuit for `|b⟩` where `b = basis_index` (qubit 0 = MSB).
pub fn basis_prep(n: usize, basis_index: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        if (basis_index >> (n - 1 - q)) & 1 == 1 {
            c.x(q);
        }
    }
    c
}

/// Preparation circuit for the `i`-th Pauli-product eigenstate: each qubit
/// independently cycles through `|0⟩, |1⟩, |+⟩, |+i⟩` as base-4 digits of
/// `i`.
pub fn pauli_product_prep(n: usize, index: usize) -> Circuit {
    let mut c = Circuit::new(n);
    let mut code = index;
    for q in (0..n).rev() {
        match code % 4 {
            0 => {}
            1 => {
                c.x(q);
            }
            2 => {
                c.h(q);
            }
            _ => {
                c.h(q);
                c.s(q);
            }
        }
        code /= 4;
    }
    c
}

/// A random Clifford preparation circuit seeded with the basis state
/// `|seed⟩`, following the Hadamard-free-layer structure of Bravyi–Maslov:
/// an `X` layer encoding the seed, then `O(n)` alternating layers of
/// {CX, S} with one sparse Hadamard layer, producing entangled,
/// superposed stabilizer states at linear depth.
pub fn clifford_prep(n: usize, seed: usize, rng: &mut impl Rng) -> Circuit {
    let mut c = Circuit::new(n);
    // Seed layer: orthogonal starting points.
    for q in 0..n {
        if (seed >> (n - 1 - q)) & 1 == 1 {
            c.x(q);
        }
    }
    // One sparse Hadamard layer creates superposition.
    for q in 0..n {
        if rng.gen_bool(0.5) {
            c.h(q);
        }
    }
    // Hadamard-free body: alternating CX and phase layers, depth linear in n.
    let layers = n.max(2);
    for _ in 0..layers {
        // Random matching of CX pairs.
        let mut qubits: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            qubits.swap(i, j);
        }
        for pair in qubits.chunks(2) {
            if pair.len() == 2 && rng.gen_bool(0.7) {
                c.cx(pair[0], pair[1]);
            }
        }
        for q in 0..n {
            if rng.gen_bool(0.3) {
                c.s(q);
            }
        }
    }
    c
}

/// Measures how much of the Hermitian operator space the ensemble's density
/// matrices span: the rank of their Gram matrix divided by `4^n` (the full
/// space dimension). Higher is better for approximation accuracy.
pub fn span_fraction(inputs: &[InputState]) -> f64 {
    if inputs.is_empty() {
        return 0.0;
    }
    let m = inputs.len();
    let mut gram = vec![vec![0.0f64; m]; m];
    for i in 0..m {
        for j in i..m {
            let v = inputs[i].rho.hs_inner_re(&inputs[j].rho);
            gram[i][j] = v;
            gram[j][i] = v;
        }
    }
    // Rank via Gaussian elimination with a tolerance.
    let mut rank = 0usize;
    let mut rows = gram;
    let tol = 1e-9;
    for col in 0..m {
        if let Some(p) = (rank..m).find(|&r| rows[r][col].abs() > tol) {
            rows.swap(rank, p);
            let pivot = rows[rank][col];
            for r in 0..m {
                if r != rank && rows[r][col].abs() > 0.0 {
                    let f = rows[r][col] / pivot;
                    // Indexing, not iterators: `rows[r]` and `rows[rank]`
                    // alias the same Vec, so a zip would need split_at_mut.
                    #[allow(clippy::needless_range_loop)]
                    for c in 0..m {
                        rows[r][c] -= f * rows[rank][c];
                    }
                }
            }
            rank += 1;
        }
    }
    let n = inputs[0].state.n_qubits();
    rank as f64 / 4f64.powi(n as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basis_prep_produces_basis_states() {
        for idx in 0..8 {
            let input = InputState::from_circuit(basis_prep(3, idx));
            assert!((input.state.probabilities()[idx] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pauli_product_first_four_states() {
        // index 0 = |..0>, 1 = |..1>, 2 = |..+>, 3 = |..+i> on the last qubit.
        let zero = InputState::from_circuit(pauli_product_prep(1, 0));
        assert!((zero.rho[(0, 0)].re - 1.0).abs() < 1e-12);
        let one = InputState::from_circuit(pauli_product_prep(1, 1));
        assert!((one.rho[(1, 1)].re - 1.0).abs() < 1e-12);
        let plus = InputState::from_circuit(pauli_product_prep(1, 2));
        assert!((plus.rho[(0, 1)].re - 0.5).abs() < 1e-12);
        let plus_i = InputState::from_circuit(pauli_product_prep(1, 3));
        assert!((plus_i.rho[(1, 0)].im - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pauli_product_ensemble_spans_full_space() {
        let mut rng = StdRng::seed_from_u64(0);
        let inputs = InputEnsemble::PauliProduct.generate(2, 16, &mut rng);
        assert!((span_fraction(&inputs) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn basis_ensemble_spans_only_diagonal() {
        let mut rng = StdRng::seed_from_u64(0);
        let inputs = InputEnsemble::Basis.generate(2, 16, &mut rng);
        // Diagonal subspace has dimension 2^n = 4 of 16.
        assert!((span_fraction(&inputs) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn clifford_ensemble_spans_more_than_basis() {
        let mut rng = StdRng::seed_from_u64(42);
        let basis = InputEnsemble::Basis.generate(3, 32, &mut rng);
        let cliff = InputEnsemble::Clifford.generate(3, 32, &mut rng);
        assert!(
            span_fraction(&cliff) > span_fraction(&basis),
            "clifford should be more expressive: {} vs {}",
            span_fraction(&cliff),
            span_fraction(&basis)
        );
    }

    #[test]
    fn clifford_states_are_normalized_and_distinct() {
        let mut rng = StdRng::seed_from_u64(7);
        let inputs = InputEnsemble::Clifford.generate(3, 8, &mut rng);
        for input in &inputs {
            assert!((input.state.norm() - 1.0).abs() < 1e-12);
        }
        // Seeded with distinct basis states, the ensemble should contain
        // many distinct states.
        let mut distinct = 0;
        for i in 0..inputs.len() {
            for j in (i + 1)..inputs.len() {
                if inputs[i].state.overlap(&inputs[j].state) < 0.99 {
                    distinct += 1;
                }
            }
        }
        assert!(distinct > 20, "only {distinct} distinct pairs");
    }

    #[test]
    fn input_state_round_trips_bit_exactly() {
        let mut rng = StdRng::seed_from_u64(5);
        for input in InputEnsemble::Clifford.generate(2, 3, &mut rng) {
            let json = serde::json::to_string(&input);
            let back: InputState = serde::json::from_str(&json).expect("deserialize");
            assert_eq!(back.prep, input.prep);
            assert_eq!(back.state, input.state);
            assert_eq!(back.rho, input.rho);
        }
    }

    #[test]
    fn ensemble_tags_round_trip() {
        for e in [
            InputEnsemble::Basis,
            InputEnsemble::Clifford,
            InputEnsemble::PauliProduct,
        ] {
            let json = serde::json::to_string(&e);
            assert_eq!(serde::json::from_str::<InputEnsemble>(&json).unwrap(), e);
        }
        assert!(serde::json::from_str::<InputEnsemble>("\"ghz\"").is_err());
    }

    #[test]
    fn prep_circuit_matches_recorded_state() {
        let mut rng = StdRng::seed_from_u64(11);
        for input in InputEnsemble::Clifford.generate(2, 4, &mut rng) {
            let rec = morph_qprog::Executor::default().run_trajectory(
                &input.prep,
                &StateVector::zero_state(2),
                &mut rng,
            );
            assert!(rec.final_state.approx_eq_up_to_phase(&input.state, 1e-10));
        }
    }
}
