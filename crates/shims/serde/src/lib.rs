//! Offline drop-in subset of the [`serde`](https://docs.rs/serde) API.
//!
//! The build environment has no crates.io access, so this shim supplies the
//! slice of serde the workspace touches. Unlike upstream serde's
//! visitor-based architecture, the shim is a *value-tree* model: a type
//! serializes into a [`json::Value`] and deserializes back out of one, and
//! the [`json`] module renders that tree to and from JSON text. This is all
//! the `morph-store` characterization cache needs, while keeping the trait
//! *names* (and the `#[derive(Serialize, Deserialize)]` attributes) source
//! compatible with a future switch back to real `serde`.
//!
//! The derive macros still expand to nothing — types that are actually
//! persisted implement [`Serialize`] / [`Deserialize`] by hand in their home
//! crates, which keeps the encoding explicit and bit-exact (see the `f64`
//! impl below).
//!
//! ## Exact floating-point round-trips
//!
//! The store's contract is that artifacts reload *bit-identically*,
//! including non-finite and signed-zero values. JSON numbers cannot express
//! NaN/±∞ and decimal printing invites rounding drift, so `f64` serializes
//! as the 16-hex-digit big-endian [`f64::to_bits`] pattern (e.g. `1.0` ↔
//! `"3ff0000000000000"`). Similarly `u64`/`i64` map to native JSON integers
//! written digit-exact (never through an `f64`), so ledger counters above
//! 2⁵³ survive unchanged.

use std::collections::BTreeMap;

pub use serde_shim_derive::{Deserialize, Serialize};

use json::{FromValueError, Value};

/// Serialization into the shim's value tree (stand-in for
/// `serde::Serialize`).
pub trait Serialize {
    /// Encodes `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization out of the shim's value tree (stand-in for
/// `serde::Deserialize`).
pub trait Deserialize<'de>: Sized {
    /// Decodes an instance from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns a [`FromValueError`] describing the first structural or
    /// domain mismatch encountered.
    fn from_value(value: &Value) -> Result<Self, FromValueError>;
}

/// JSON value tree, parser, and writer backing the [`Serialize`] /
/// [`Deserialize`] traits.
pub mod json {
    use std::collections::BTreeMap;
    use std::fmt;

    /// A parsed JSON document.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A non-negative integer (digit-exact, full `u64` range).
        UInt(u64),
        /// A negative integer (digit-exact).
        Int(i64),
        /// A decimal number. Typed impls in this workspace never produce
        /// this variant (`f64` travels as a bit-pattern string); it exists
        /// so hand-written or foreign JSON still parses.
        Float(f64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<Value>),
        /// An object with sorted keys (canonical output ordering).
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        /// The value under `key` when `self` is an object.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(map) => map.get(key),
                _ => None,
            }
        }

        /// Like [`Value::get`], but a missing key is an error naming it.
        ///
        /// # Errors
        ///
        /// Returns [`FromValueError`] when `self` is not an object or the
        /// key is absent.
        pub fn require(&self, key: &str) -> Result<&Value, FromValueError> {
            self.get(key)
                .ok_or_else(|| FromValueError::new(format!("missing field `{key}`")))
        }

        /// The integer value, when `self` is a `UInt` in range.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::UInt(n) => Some(*n),
                _ => None,
            }
        }

        /// The string slice, when `self` is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The element list, when `self` is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Error produced when a [`Value`] does not match the expected shape.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct FromValueError {
        message: String,
    }

    impl FromValueError {
        /// An error with the given description.
        pub fn new(message: impl Into<String>) -> Self {
            FromValueError {
                message: message.into(),
            }
        }

        /// Convenience constructor for "expected X, found Y" mismatches.
        pub fn expected(what: &str, found: &Value) -> Self {
            let kind = match found {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::UInt(_) | Value::Int(_) => "integer",
                Value::Float(_) => "float",
                Value::Str(_) => "string",
                Value::Array(_) => "array",
                Value::Object(_) => "object",
            };
            FromValueError::new(format!("expected {what}, found {kind}"))
        }
    }

    impl fmt::Display for FromValueError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    impl std::error::Error for FromValueError {}

    /// Error produced by [`from_str`]: either the text is not JSON or the
    /// tree does not decode into the requested type.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum JsonError {
        /// Malformed JSON text, with a byte offset.
        Parse {
            /// Byte offset of the first offending character.
            offset: usize,
            /// What went wrong.
            message: String,
        },
        /// Well-formed JSON of the wrong shape.
        Decode(FromValueError),
    }

    impl fmt::Display for JsonError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                JsonError::Parse { offset, message } => {
                    write!(f, "JSON parse error at byte {offset}: {message}")
                }
                JsonError::Decode(e) => write!(f, "JSON decode error: {e}"),
            }
        }
    }

    impl std::error::Error for JsonError {}

    impl From<FromValueError> for JsonError {
        fn from(e: FromValueError) -> Self {
            JsonError::Decode(e)
        }
    }

    /// Renders a serializable value as compact JSON text.
    pub fn to_string<T: crate::Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&value.to_value(), &mut out);
        out
    }

    /// Parses JSON text and decodes it into `T`.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Parse`] on malformed text and
    /// [`JsonError::Decode`] when the tree has the wrong shape.
    pub fn from_str<T: for<'de> crate::Deserialize<'de>>(text: &str) -> Result<T, JsonError> {
        let value = parse(text)?;
        Ok(T::from_value(&value)?)
    }

    /// Parses JSON text into a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Parse`] on malformed text (including trailing
    /// garbage after the document).
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after JSON document"));
        }
        Ok(value)
    }

    fn err(offset: usize, message: impl Into<String>) -> JsonError {
        JsonError::Parse {
            offset,
            message: message.into(),
        }
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, token: &[u8]) -> Result<(), JsonError> {
        if bytes.len() - *pos >= token.len() && &bytes[*pos..*pos + token.len()] == token {
            *pos += token.len();
            Ok(())
        } else {
            Err(err(
                *pos,
                format!("expected `{}`", String::from_utf8_lossy(token)),
            ))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(err(*pos, "unexpected end of input")),
            Some(b'n') => expect(bytes, pos, b"null").map(|()| Value::Null),
            Some(b't') => expect(bytes, pos, b"true").map(|()| Value::Bool(true)),
            Some(b'f') => expect(bytes, pos, b"false").map(|()| Value::Bool(false)),
            Some(b'"') => parse_string(bytes, pos).map(Value::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(err(*pos, "expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut map = BTreeMap::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    if bytes.get(*pos) != Some(&b':') {
                        return Err(err(*pos, "expected `:` after object key"));
                    }
                    *pos += 1;
                    let value = parse_value(bytes, pos)?;
                    map.insert(key, value);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(err(*pos, "expected `,` or `}` in object")),
                    }
                }
            }
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected string"));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(err(*pos, "unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = parse_hex4(bytes, *pos + 1)?;
                            *pos += 4;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if bytes.get(*pos + 1) == Some(&b'\\')
                                    && bytes.get(*pos + 2) == Some(&b'u')
                                {
                                    let low = parse_hex4(bytes, *pos + 3)?;
                                    *pos += 6;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(err(*pos, "invalid \\u escape")),
                            }
                        }
                        _ => return Err(err(*pos, "invalid escape sequence")),
                    }
                    *pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(err(*pos, "control character in string")),
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = *pos;
                    let len = utf8_len(bytes[start]);
                    let end = (start + len).min(bytes.len());
                    match std::str::from_utf8(&bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(err(start, "invalid UTF-8 in string")),
                    }
                    *pos = end;
                }
            }
        }
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }

    fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, JsonError> {
        if at + 4 > bytes.len() {
            return Err(err(at, "truncated \\u escape"));
        }
        let mut code = 0u32;
        for &b in &bytes[at..at + 4] {
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| err(at, "non-hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = bytes.get(*pos) {
            match b {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        if *pos == start {
            return Err(err(start, "expected value"));
        }
        let text = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| err(start, "invalid number bytes"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| err(start, "malformed number"))
        } else if let Some(digits) = text.strip_prefix('-') {
            // Digit-exact negative integers; `-0` normalizes to `0`.
            match digits.parse::<u64>() {
                Ok(0) => Ok(Value::UInt(0)),
                _ => text
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| err(start, "integer out of range")),
            }
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| err(start, "integer out of range"))
        }
    }

    fn write_value(value: &Value, out: &mut String) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest text that reparses to the
                    // same f64.
                    out.push_str(&format!("{x:?}"));
                } else {
                    // JSON has no NaN/Inf literal; typed code never writes
                    // non-finite floats (they travel as bit strings).
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(item, out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (key, item)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    write_value(item, out);
                }
                out.push('}');
            }
        }
    }

    fn write_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    impl Serialize for Value {
        fn to_value(&self) -> Value {
            self.clone()
        }
    }

    impl<'de> Deserialize<'de> for Value {
        fn from_value(value: &Value) -> Result<Self, FromValueError> {
            Ok(value.clone())
        }
    }

    use crate::{Deserialize, Serialize};
}

// ---------------------------------------------------------------------------
// Primitive impls shared by every crate's hand-written codecs.

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(FromValueError::expected("bool", other)),
        }
    }
}

macro_rules! impl_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, FromValueError> {
                match value {
                    Value::UInt(n) => <$ty>::try_from(*n).map_err(|_| {
                        FromValueError::new(format!(
                            "integer {n} out of range for {}",
                            stringify!($ty)
                        ))
                    }),
                    other => Err(FromValueError::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        match value {
            Value::UInt(n) => usize::try_from(*n)
                .map_err(|_| FromValueError::new(format!("integer {n} out of range for usize"))),
            other => Err(FromValueError::expected("unsigned integer", other)),
        }
    }
}

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        if *self >= 0 {
            Value::UInt(*self as u64)
        } else {
            Value::Int(*self)
        }
    }
}

impl<'de> Deserialize<'de> for i64 {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        match value {
            Value::Int(n) => Ok(*n),
            Value::UInt(n) => i64::try_from(*n)
                .map_err(|_| FromValueError::new(format!("integer {n} out of range for i64"))),
            other => Err(FromValueError::expected("integer", other)),
        }
    }
}

impl Serialize for f64 {
    /// Bit-exact encoding: the 16-hex-digit big-endian [`f64::to_bits`]
    /// pattern, so NaN payloads, ±∞, and signed zeros round-trip unchanged.
    fn to_value(&self) -> Value {
        Value::Str(format!("{:016x}", self.to_bits()))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        match value {
            Value::Str(s) if s.len() == 16 => u64::from_str_radix(s, 16)
                .map(f64::from_bits)
                .map_err(|_| FromValueError::new(format!("malformed f64 bit pattern {s:?}"))),
            Value::Str(s) => Err(FromValueError::new(format!(
                "malformed f64 bit pattern {s:?} (want 16 hex digits)"
            ))),
            other => Err(FromValueError::expected("f64 bit-pattern string", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(FromValueError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(FromValueError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(FromValueError::expected("2-element array", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        match value {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(FromValueError::expected("object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::{from_str, parse, to_string, JsonError, Value};
    use super::*;

    #[test]
    fn primitives_round_trip_through_text() {
        let v: Vec<u64> = vec![0, 1, u64::MAX];
        let text = to_string(&v);
        assert_eq!(text, format!("[0,1,{}]", u64::MAX));
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn f64_bits_round_trip_exactly() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload
        ] {
            let text = to_string(&x);
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} did not round-trip");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "quote\" back\\slash \n tab\t unicode é 💡".to_string();
        let back: String = from_str(&to_string(&s)).unwrap();
        assert_eq!(back, s);
        // Escaped supplementary-plane character (surrogate pair).
        let v = parse(r#""💡""#).unwrap();
        assert_eq!(v, Value::Str("💡".to_string()));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\"}", "nul", "1 2", "\"unterminated"] {
            assert!(
                matches!(parse(bad), Err(JsonError::Parse { .. })),
                "{bad:?} should fail"
            );
        }
    }

    #[test]
    fn objects_parse_with_nested_values() {
        let v = parse(r#"{ "a": [1, -2, 3.5], "b": {"c": null}, "d": true }"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert!(v.get("missing").is_none());
        assert!(v.require("missing").is_err());
    }

    #[test]
    fn negative_and_large_integers_are_digit_exact() {
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        let back: i64 = from_str("-9007199254740993").unwrap();
        assert_eq!(back, -9_007_199_254_740_993); // beyond f64 precision
    }

    #[test]
    fn option_and_map_round_trip() {
        let some: Option<u32> = Some(5);
        let none: Option<u32> = None;
        assert_eq!(from_str::<Option<u32>>(&to_string(&some)).unwrap(), some);
        assert_eq!(from_str::<Option<u32>>(&to_string(&none)).unwrap(), none);

        let mut map = BTreeMap::new();
        map.insert("x".to_string(), 1u64);
        map.insert("y".to_string(), 2u64);
        let back: BTreeMap<String, u64> = from_str(&to_string(&map)).unwrap();
        assert_eq!(back, map);
    }
}
