//! Offline drop-in subset of the [`serde`](https://docs.rs/serde) API.
//!
//! The build environment has no crates.io access, so this shim supplies just
//! what the workspace touches: the `Serialize` / `Deserialize` trait names and
//! same-named derive macros. The derives expand to nothing — serialization is
//! not exercised in the offline build — but keeping the attributes in the
//! source preserves a zero-diff path back to real `serde`.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_shim_derive::{Deserialize, Serialize};
