//! No-op derive macros backing the offline [`serde`] shim.
//!
//! The derives expand to nothing: types that are actually persisted by the
//! `morph-store` characterization cache implement the shim's `Serialize` /
//! `Deserialize` traits *by hand* in their home crates (explicit, bit-exact
//! encodings), while the remaining `#[derive(Serialize, Deserialize)]`
//! attributes stay in the source as markers preserving a zero-diff path
//! back to real `serde`.

use proc_macro::TokenStream;

/// Expands to nothing; accepted on any item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepted on any item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
