//! No-op derive macros backing the offline [`serde`] shim.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a marker —
//! nothing serializes at runtime in the offline build — so the derives expand
//! to nothing. The type still compiles and the attribute remains in place for
//! a future switch back to real `serde`.

use proc_macro::TokenStream;

/// Expands to nothing; accepted on any item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepted on any item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
