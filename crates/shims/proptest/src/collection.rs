//! Collection strategies (`proptest::collection`).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Generates `Vec`s whose length is uniform in `len` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_stay_in_range() {
        let strategy = vec(0..100u32, 1..5);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let v = strategy.new_value(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }
}
