//! Value-generation strategies (deterministic, non-shrinking).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// Maximum resampling attempts before a `prop_filter` gives up.
const FILTER_MAX_TRIES: usize = 10_000;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `predicate`, resampling until one passes.
    fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            predicate,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..FILTER_MAX_TRIES {
            let candidate = self.inner.new_value(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter {:?} rejected {FILTER_MAX_TRIES} candidates",
            self.whence
        );
    }
}

/// Uniform choice among boxed strategies (see [`crate::prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds the union; panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let index = rng.gen_range(0..self.0.len());
        self.0[index].new_value(rng)
    }
}

impl<T> Strategy for Range<T>
where
    T: rand::SampleUniform + PartialOrd + Clone,
{
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: rand::SampleUniform + PartialOrd + Copy,
{
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_maps_and_filters_compose() {
        let strategy = (0..10usize)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_map(|v| v * 10);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let v = strategy.new_value(&mut rng);
            assert!(v % 20 == 0 && v < 100);
        }
    }

    #[test]
    fn union_hits_every_alternative() {
        let strategy = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strategy.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let strategy = ((0..5usize), (-1.0..1.0f64));
        let mut rng = StdRng::seed_from_u64(2);
        let (a, b) = strategy.new_value(&mut rng);
        assert!(a < 5);
        assert!((-1.0..1.0).contains(&b));
    }
}
