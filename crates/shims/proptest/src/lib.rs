//! Offline drop-in subset of the [`proptest`](https://docs.rs/proptest) API.
//!
//! Supports the slice of proptest this workspace uses: the [`proptest!`]
//! macro (with an optional `#![proptest_config(..)]` header), `Strategy`
//! with `prop_map` / `prop_filter` / `boxed`, range and tuple strategies,
//! [`strategy::Just`], [`prop_oneof!`], `proptest::collection::vec`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: generation is fully deterministic (a fixed
//! per-case seed instead of an entropy-seeded runner), failing cases are
//! reported by panic without shrinking, and `.proptest-regressions` files are
//! ignored.

pub mod collection;
pub mod strategy;

/// Not public API; runtime support for the macros.
#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Per-case RNG: a fixed function of the case index so every run of a
    /// test explores the same inputs.
    pub fn case_rng(case: u32) -> StdRng {
        StdRng::seed_from_u64(
            0x6D6F_7270_6851_5056 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

/// Runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property, reporting the generated case on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(binding in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($body:tt)*) => {
        $crate::__proptest_impl! { ($config) $($body)* }
    };
    ($($body:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($body)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::__rt::case_rng(__case);
                    $( let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}
