//! Offline drop-in subset of the [`criterion`](https://docs.rs/criterion)
//! bench API.
//!
//! Implements enough surface for the workspace's `harness = false` bench
//! targets: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros. Instead of
//! criterion's statistical analysis it runs a fixed warm-up plus `sample_size`
//! timed samples and reports the median, min, and max wall-clock time per
//! iteration.
//!
//! When the `MORPH_BENCH_JSON` environment variable names a file path,
//! [`criterion_main!`] additionally writes every completed benchmark as a
//! machine-readable report (`{"schema":"morph-bench/1","benchmarks":[...]}`
//! with per-benchmark median/min/max nanoseconds) so perf runs can be
//! recorded and diffed across commits.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name: String = name.into();
        run_benchmark(&name, 10, f);
    }
}

/// Identifier combining a function name and a parameter, as in
/// `BenchmarkId::new("solver", 16)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a closure without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to bench closures; [`Bencher::iter`] times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, discarding one warm-up call, then recording
    /// `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// One completed benchmark, kept for the JSON report.
#[derive(Debug, Clone)]
struct BenchRecord {
    label: String,
    median_ns: u128,
    min_ns: u128,
    max_ns: u128,
    samples: usize,
}

fn records() -> &'static Mutex<Vec<BenchRecord>> {
    static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());
    &RECORDS
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label:<40} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = *bencher.samples.last().unwrap();
    println!(
        "  {label:<40} time: [{} {} {}]",
        format_duration(min),
        format_duration(median),
        format_duration(max)
    );
    records()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(BenchRecord {
            label: label.to_string(),
            median_ns: median.as_nanos(),
            min_ns: min.as_nanos(),
            max_ns: max.as_nanos(),
            samples: bencher.samples.len(),
        });
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders every recorded benchmark as the `morph-bench/1` JSON report.
pub fn json_report() -> String {
    let records = records().lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::from("{\"schema\":\"morph-bench/1\",\"benchmarks\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"label\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}",
            escape_json(&r.label),
            r.median_ns,
            r.min_ns,
            r.max_ns,
            r.samples
        ));
    }
    out.push_str("]}\n");
    out
}

/// Writes the JSON report to the path named by `MORPH_BENCH_JSON`, if set.
/// Called by [`criterion_main!`] after all groups finish; a no-op without
/// the variable.
pub fn write_json_report() {
    let Some(path) = std::env::var_os("MORPH_BENCH_JSON") else {
        return;
    };
    let report = json_report();
    match std::fs::write(&path, &report) {
        Ok(()) => println!("\nwrote bench report to {}", path.to_string_lossy()),
        Err(e) => eprintln!("failed to write {}: {e}", path.to_string_lossy()),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a bench group function, as upstream criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given bench groups, then writing the JSON
/// report when `MORPH_BENCH_JSON` is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .bench_with_input(BenchmarkId::new("id", 1), &2u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    #[test]
    fn json_report_contains_recorded_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("json\"group");
        group
            .sample_size(2)
            .bench_function("case", |b| b.iter(|| black_box(1u64) + 1));
        group.finish();
        let report = json_report();
        assert!(report.starts_with("{\"schema\":\"morph-bench/1\""));
        assert!(
            report.contains("\"label\":\"json\\\"group/case\""),
            "labels are JSON-escaped: {report}"
        );
        assert!(report.contains("\"median_ns\":"));
        assert!(report.contains("\"samples\":2"));
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(10)).ends_with("s"));
    }
}
