//! Offline drop-in subset of [`parking_lot`](https://docs.rs/parking_lot),
//! backed by `std::sync`. Lock methods return guards directly (no poisoning
//! `Result`), matching the parking_lot API shape the workspace relies on.
//! A poisoned std lock is recovered rather than propagated: the ledgers and
//! counters guarded here stay consistent under panic because their updates
//! are single atomic field writes.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
