//! Offline drop-in subset of [`crossbeam`](https://docs.rs/crossbeam).
//!
//! Since Rust 1.63 the standard library ships scoped threads, so this shim
//! simply re-exposes `std::thread::scope` under crossbeam's module layout.
//! The workspace's deterministic fan-out lives in `morph-parallel`, which
//! builds on these scoped threads.

pub mod thread {
    //! Scoped threads (`crossbeam::thread`), backed by `std::thread`.

    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_before_returning() {
        let mut values = vec![0u64; 4];
        super::thread::scope(|s| {
            for (i, slot) in values.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u64 + 1);
            }
        });
        assert_eq!(values, vec![1, 2, 3, 4]);
    }
}
