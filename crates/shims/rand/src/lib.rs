//! Offline drop-in subset of the [`rand` 0.8](https://docs.rs/rand/0.8) API.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of `rand` it actually uses: [`rngs::StdRng`], the
//! [`SeedableRng`] and [`Rng`] traits, `gen`, `gen_range`, and `gen_bool`.
//!
//! [`rngs::StdRng`] here is **xoshiro256++** seeded through SplitMix64 — a
//! different stream than upstream `rand`'s ChaCha12, but with the same
//! determinism contract: a fixed seed yields a fixed sequence on every
//! platform. All seeded expectations in this workspace are calibrated against
//! this generator.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A value sampled from the standard distribution of `T` (uniform over
    /// the type for integers, uniform in `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// A value uniform in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }

    /// A value drawn from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distribution: D) -> T
    where
        Self: Sized,
    {
        distribution.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A deterministic generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed;

    /// Builds the generator from full seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64` (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling from a distribution object.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution (uniform bits / unit interval).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over an interval (mirrors
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[start, end)` (`inclusive = false`) or
    /// `[start, end]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        start: Self,
        end: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_uniform(start, end, true, rng)
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        start: f64,
        end: f64,
        _inclusive: bool,
        rng: &mut R,
    ) -> f64 {
        let u: f64 = Standard.sample(rng);
        start + u * (end - start)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        start: f32,
        end: f32,
        _inclusive: bool,
        rng: &mut R,
    ) -> f32 {
        let u: f32 = Standard.sample(rng);
        start + u * (end - start)
    }
}

/// Uniform integer in `[0, width)` by widening multiply (no modulo bias at
/// the widths used in this workspace).
fn uniform_below(width: u64, rng: &mut (impl RngCore + ?Sized)) -> u64 {
    debug_assert!(width > 0);
    (((rng.next_u64() as u128) * (width as u128)) >> 64) as u64
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(start: $t, end: $t, inclusive: bool, rng: &mut R) -> $t {
                let width = (end as i128 - start as i128 + if inclusive { 1 } else { 0 }) as u64;
                (start as i128 + uniform_below(width, rng) as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman–Vigna) seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                state[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if state.iter().all(|&s| s == 0) {
                // xoshiro must not start from the all-zero state.
                state[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { state }
        }

        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
            let v = rng.gen_range(-2..=2i64);
            assert!((-2..=2).contains(&v));
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn works_through_mut_references() {
        fn draw(rng: &mut impl Rng) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
