//! Dependency-free validator for the JSON-Schema subset the repo's
//! checked-in schemas use.
//!
//! Shared by the `trace_lint` CI tool (validating
//! [`morph_trace::export_json`] against `docs/trace-schema.json`) and the
//! `serve_lint` tool (validating `morph-serve` response lines against
//! `docs/serve-protocol.schema.json`). The supported vocabulary is exactly
//! what those schemas need: `type` (a name or a list of alternatives),
//! `properties`, `required`, `additionalProperties` (as a schema for map
//! values), `items`, `enum` (of strings), `const` (a string or integer),
//! and `$ref` into `#/definitions/…`.
//!
//! Violations are collected (with their JSON path) rather than failing
//! fast, so one lint run reports every problem in a document.

use serde::json::{parse, Value};

/// Loads and parses a JSON document from disk.
///
/// # Errors
///
/// A human-readable I/O or parse error.
pub fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse(&text).map_err(|e| e.to_string())
}

/// Validates `doc` against `schema`, appending one message per violation.
/// `root` is the schema document `$ref`s resolve against (normally the
/// schema itself); `path` seeds the reported JSON paths (normally `"$"`).
pub fn validate(doc: &Value, schema: &Value, root: &Value, path: &str, errors: &mut Vec<String>) {
    if let Some(reference) = schema.get("$ref").and_then(Value::as_str) {
        if let Some(target) = resolve(reference, root, errors) {
            validate(doc, target, root, path, errors);
        }
        return;
    }

    if let Some(ty) = schema.get("type") {
        let alternatives: Vec<&str> = match ty {
            Value::Str(s) => vec![s.as_str()],
            Value::Array(items) => items.iter().filter_map(Value::as_str).collect(),
            _ => Vec::new(),
        };
        if !alternatives.iter().any(|t| matches_type(doc, t)) {
            errors.push(format!(
                "{path}: expected {}, found {}",
                alternatives.join(" or "),
                type_name(doc)
            ));
            return;
        }
    }

    if let Some(Value::Array(allowed)) = schema.get("enum") {
        if !allowed.iter().any(|v| v == doc) {
            errors.push(format!(
                "{path}: value not in enum {:?}",
                allowed.iter().filter_map(Value::as_str).collect::<Vec<_>>()
            ));
            return;
        }
    }

    if let Some(expected) = schema.get("const") {
        if expected != doc {
            errors.push(format!(
                "{path}: expected const {expected:?}, found {doc:?}"
            ));
            return;
        }
    }

    if let Value::Object(map) = doc {
        if let Some(required) = schema.get("required").and_then(Value::as_array) {
            for key in required.iter().filter_map(Value::as_str) {
                if !map.contains_key(key) {
                    errors.push(format!("{path}: missing required field `{key}`"));
                }
            }
        }
        let properties = schema.get("properties");
        for (key, value) in map {
            if let Some(sub) = properties.and_then(|p| p.get(key)) {
                validate(value, sub, root, &format!("{path}.{key}"), errors);
            } else if let Some(extra) = schema.get("additionalProperties") {
                validate(value, extra, root, &format!("{path}.{key}"), errors);
            }
        }
    }

    if let (Value::Array(items), Some(item_schema)) = (doc, schema.get("items")) {
        for (i, item) in items.iter().enumerate() {
            validate(item, item_schema, root, &format!("{path}[{i}]"), errors);
        }
    }
}

/// The JSON type-name of a value, matching JSON-Schema vocabulary.
pub fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::UInt(_) | Value::Int(_) => "integer",
        Value::Float(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// `true` when `v` satisfies the JSON-Schema type `name` ("integer" is
/// also a "number").
fn matches_type(v: &Value, name: &str) -> bool {
    let actual = type_name(v);
    actual == name || (name == "number" && actual == "integer")
}

/// Resolves `#/definitions/<name>` against the schema root.
fn resolve<'a>(reference: &str, root: &'a Value, errors: &mut Vec<String>) -> Option<&'a Value> {
    let name = reference.strip_prefix("#/definitions/")?;
    let def = root.get("definitions").and_then(|d| d.get(name));
    if def.is_none() {
        errors.push(format!("schema error: unresolved $ref {reference:?}"));
    }
    def
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(doc: &str, schema: &str) -> Vec<String> {
        let doc = parse(doc).unwrap();
        let schema = parse(schema).unwrap();
        let mut errors = Vec::new();
        validate(&doc, &schema, &schema, "$", &mut errors);
        errors
    }

    #[test]
    fn type_and_required_violations_are_reported_with_paths() {
        let schema = r#"{"type":"object","required":["id"],
            "properties":{"id":{"type":"string"},"n":{"type":"integer"}}}"#;
        assert!(check(r#"{"id":"a","n":3}"#, schema).is_empty());
        let errors = check(r#"{"n":"three"}"#, schema);
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors[0].contains("missing required field `id`"));
        assert!(errors[1].contains("$.n"));
    }

    #[test]
    fn enum_and_const_are_enforced() {
        let schema = r#"{"type":"object","properties":{
            "status":{"type":"string","enum":["passed","refuted"]},
            "protocol":{"const":1}}}"#;
        assert!(check(r#"{"status":"passed","protocol":1}"#, schema).is_empty());
        // Object keys validate in sorted order: `protocol` before `status`.
        let errors = check(r#"{"status":"maybe","protocol":2}"#, schema);
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors[0].contains("const"));
        assert!(errors[1].contains("enum"));
    }

    #[test]
    fn refs_resolve_into_definitions_and_items_recurse() {
        let schema = r##"{"type":"array","items":{"$ref":"#/definitions/entry"},
            "definitions":{"entry":{"type":"object","required":["k"]}}}"##;
        assert!(check(r#"[{"k":1},{"k":2}]"#, schema).is_empty());
        let errors = check(r#"[{"k":1},{}]"#, schema);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("$[1]"));
    }

    #[test]
    fn integers_satisfy_number() {
        let schema = r#"{"type":"number"}"#;
        assert!(check("3", schema).is_empty());
        assert!(check("3.5", schema).is_empty());
        assert!(!check("\"3\"", schema).is_empty());
    }
}
