//! MorphQPV's faulty-address search for QRAM (Fig 10).
//!
//! The Section 7.3 procedure: assert the overall input/output relation,
//! then binary-search the address space with tracepoints on aligned address
//! blocks. A probe prepares the uniform superposition over a 2^k-aligned
//! address block, runs the (possibly corrupted) QRAM, and compares the data
//! qubit's reduced state against the ideal value mixture for that block;
//! a distance above threshold means the faulty address is inside.

use morph_linalg::{CMatrix, C64};
use morph_qalgo::Qram;
use morph_qprog::{Circuit, Executor, TracepointId};
use morph_qsim::StateVector;

/// Result of the QRAM bisection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QramSearchResult {
    /// The corrupted address, if one was found.
    pub bad_address: Option<usize>,
    /// Sampled-input executions consumed (the Fig 10 metric).
    pub executions: u64,
}

/// Executions to resolve a single wrong angle inside a `block`-sized
/// mixture at `shots` shots per execution.
fn probe_cost(block: usize, shots: usize) -> u64 {
    (((3 * block) as f64 / shots as f64).ceil() as u64).max(1)
}

/// Ideal data-qubit mixture for a uniform superposition over addresses
/// `[start, start + len)` of the table.
fn ideal_block_mixture(qram: &Qram, start: usize, len: usize) -> CMatrix {
    let mut m = CMatrix::zeros(2, 2);
    for &theta in &qram.values[start..start + len] {
        let ket = [C64::real(theta.cos()), C64::real(theta.sin())];
        m += &CMatrix::outer(&ket, &ket).scale_re(1.0 / len as f64);
    }
    m
}

/// Measured data-qubit state when running `circuit` (a QRAM read circuit on
/// `qram`'s register) on the uniform superposition over the aligned block
/// `[start, start + len)`.
fn probe_block(qram: &Qram, circuit: &Circuit, start: usize, len: usize) -> CMatrix {
    let n = qram.n_qubits();
    let n_addr = qram.n_addr;
    assert!(
        len.is_power_of_two(),
        "blocks must be aligned powers of two"
    );
    assert_eq!(start % len, 0, "blocks must be aligned");
    let fixed_bits = n_addr - len.trailing_zeros() as usize;
    let mut prep = Circuit::new(n);
    for bit in 0..fixed_bits {
        if (start >> (n_addr - 1 - bit)) & 1 == 1 {
            prep.x(bit);
        }
    }
    for q in fixed_bits..n_addr {
        prep.h(q);
    }
    prep.extend_from(circuit);
    prep.tracepoint(1, &[qram.data_qubit()]);
    Executor::default()
        .run_expected(&prep, &StateVector::zero_state(n))
        .state(TracepointId(1))
        .clone()
}

/// Runs the bisection against a (possibly corrupted) QRAM read circuit.
/// Returns the faulty address (if any) and the execution count.
///
/// # Panics
///
/// Panics if `circuit` does not match `qram`'s register.
pub fn qram_bisection(qram: &Qram, circuit: &Circuit, shots: usize) -> QramSearchResult {
    assert_eq!(circuit.n_qubits(), qram.n_qubits(), "register mismatch");
    let table = qram.values.len();
    let mut executions = 0u64;
    // Root probe over the whole table.
    executions += probe_cost(table, shots);
    let observed = probe_block(qram, circuit, 0, table);
    let ideal = ideal_block_mixture(qram, 0, table);
    let threshold = 0.25 / table as f64;
    if (&observed - &ideal).frobenius_norm() <= threshold {
        return QramSearchResult {
            bad_address: None,
            executions,
        };
    }
    let (mut start, mut len) = (0usize, table);
    while len > 1 {
        let half = len / 2;
        executions += probe_cost(half, shots);
        let obs = probe_block(qram, circuit, start, half);
        let ideal_half = ideal_block_mixture(qram, start, half);
        let t = 0.25 / half as f64;
        if (&obs - &ideal_half).frobenius_norm() > t {
            len = half;
        } else {
            start += half;
            len = half;
        }
    }
    QramSearchResult {
        bad_address: Some(start),
        executions,
    }
}

/// Cost projection for an `n_addr`-qubit QRAM with one corrupted entry —
/// the same accounting without simulation, used to extend Fig 10.
pub fn qram_bisection_cost(n_addr: usize, shots: usize) -> u64 {
    let table = 1usize << n_addr;
    let mut executions = probe_cost(table, shots);
    let mut len = table;
    while len > 1 {
        len /= 2;
        executions += probe_cost(len, shots);
    }
    executions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_qram(n_addr: usize) -> Qram {
        let values: Vec<f64> = (0..(1 << n_addr)).map(|i| 0.3 + 0.11 * i as f64).collect();
        Qram::new(n_addr, values)
    }

    #[test]
    fn clean_qram_passes_root_probe() {
        let qram = sample_qram(3);
        let result = qram_bisection(&qram, &qram.circuit(), 1000);
        assert_eq!(result.bad_address, None);
    }

    #[test]
    fn corrupted_entry_is_located() {
        let qram = sample_qram(3);
        for bad in [0usize, 3, 5, 7] {
            let circuit = qram.circuit_with_bug(bad, qram.values[bad] + 1.3);
            let result = qram_bisection(&qram, &circuit, 1000);
            assert_eq!(
                result.bad_address,
                Some(bad),
                "failed to locate address {bad}"
            );
        }
    }

    #[test]
    fn executions_grow_mildly_with_table_size() {
        let small = qram_bisection_cost(4, 1000);
        let large = qram_bisection_cost(10, 1000);
        assert!(large > small);
        // Bisection stays far below exhaustive table × shots costs.
        assert!(
            large < 100,
            "bisection at 10 address bits costs {large} executions"
        );
    }

    #[test]
    fn measured_cost_matches_model() {
        let qram = sample_qram(4);
        let circuit = qram.circuit_with_bug(9, qram.values[9] + 1.0);
        let result = qram_bisection(&qram, &circuit, 1000);
        assert_eq!(result.bad_address, Some(9));
        assert_eq!(result.executions, qram_bisection_cost(4, 1000));
    }
}
