//! MorphQPV-based program comparison: the verification pattern behind
//! Table 4 and the QNN pruning case study — characterize a reference and a
//! candidate on the *same* sampled inputs, then assert that their output
//! tracepoint states agree for every input.

use std::collections::BTreeMap;

use morph_baselines::{BugDetector, DetectionResult};
use morph_clifford::{InputEnsemble, InputState};
use morph_qprog::{Circuit, TracepointId};
use morph_tomography::{CostLedger, ReadoutMode};
use morphqpv::{
    characterize_with_inputs, characterize_with_inputs_cached, validate_assertion, AssumeGuarantee,
    Characterization, CharacterizationCache, CharacterizationConfig, RelationPredicate,
    ValidationConfig, Verdict,
};
use rand::rngs::StdRng;

/// Configuration of a program comparison.
#[derive(Debug, Clone)]
pub struct CompareConfig {
    /// Qubits carrying the program input.
    pub input_qubits: Vec<usize>,
    /// Qubits whose output state is compared.
    pub output_qubits: Vec<usize>,
    /// Number of sampled inputs.
    pub n_samples: usize,
    /// Readout mode for tracepoint capture.
    pub readout: ReadoutMode,
    /// Distance above which the outputs are considered different.
    pub tolerance: f64,
    /// Worker threads for the characterization sweeps (`0` = all cores,
    /// `1` = serial); results are identical at every setting.
    pub parallelism: usize,
}

impl CompareConfig {
    /// A sensible default: input on the listed qubits, outputs on the same
    /// qubits, `2 × N_in + 2` samples, exact readout.
    pub fn new(input_qubits: Vec<usize>, output_qubits: Vec<usize>) -> Self {
        let n_in = input_qubits.len();
        CompareConfig {
            input_qubits,
            output_qubits,
            n_samples: 2 * n_in + 2,
            readout: ReadoutMode::Exact,
            tolerance: 0.05,
            parallelism: 0,
        }
    }
}

/// Compares `candidate` against `reference` with MorphQPV: both programs
/// are characterized on the same inputs and the assertion
/// `∀ input: ρ_out(candidate) ≈ ρ_out(reference)` is validated by
/// optimization. Returns whether a difference (bug) was found, the
/// counter-example objective value, and the total cost.
///
/// # Panics
///
/// Panics if the programs have different register sizes or the
/// configuration indexes out of range.
pub fn compare_programs(
    reference: &Circuit,
    candidate: &Circuit,
    config: &CompareConfig,
    rng: &mut StdRng,
) -> (bool, f64, CostLedger) {
    compare_programs_impl(reference, candidate, config, rng, None)
}

/// [`compare_programs`] with a characterization artifact cache.
///
/// Both characterizations are keyed on (instrumented circuit, explicit
/// input preparations, per-call seed) via
/// [`characterize_with_inputs_cached`], so repeating a comparison — or
/// comparing many mutants against the *same* reference on the same inputs
/// and seed, as the Figure 12 sweep does — reuses the stored reference
/// characterization and charges zero new simulator cost for it. Reseed
/// `rng` identically per call to make the reference key repeat.
pub fn compare_programs_cached(
    reference: &Circuit,
    candidate: &Circuit,
    config: &CompareConfig,
    rng: &mut StdRng,
    cache: &mut CharacterizationCache,
) -> (bool, f64, CostLedger) {
    compare_programs_impl(reference, candidate, config, rng, Some(cache))
}

fn compare_programs_impl(
    reference: &Circuit,
    candidate: &Circuit,
    config: &CompareConfig,
    rng: &mut StdRng,
    mut cache: Option<&mut CharacterizationCache>,
) -> (bool, f64, CostLedger) {
    assert_eq!(
        reference.n_qubits(),
        candidate.n_qubits(),
        "programs must share a register"
    );
    // Instrument both with an output tracepoint.
    let instrument = |c: &Circuit| -> Circuit {
        let mut out = Circuit::with_cbits(c.n_qubits(), c.n_cbits());
        out.extend_from(c);
        out.tracepoint(1, &config.output_qubits);
        out
    };
    let ref_traced = instrument(reference);
    let cand_traced = instrument(candidate);

    let char_config = CharacterizationConfig {
        n_samples: config.n_samples,
        ensemble: InputEnsemble::Clifford,
        readout: config.readout,
        input_qubits: config.input_qubits.clone(),
        noise: morph_qsim::NoiseModel::noiseless(),
        parallelism: config.parallelism,
        sweep: morphqpv::SweepMode::default(),
        backend: morphqpv::BackendMode::Auto,
    };
    let inputs = char_config
        .ensemble
        .generate(config.input_qubits.len(), config.n_samples, rng);
    let characterize_one = |circuit: &Circuit,
                            inputs: Vec<InputState>,
                            rng: &mut StdRng,
                            cache: Option<&mut &mut CharacterizationCache>|
     -> Characterization {
        match cache {
            Some(cache) => {
                characterize_with_inputs_cached(circuit, &char_config, inputs, rng, cache)
            }
            None => characterize_with_inputs(circuit, &char_config, inputs, rng),
        }
    };
    let ch_ref = characterize_one(&ref_traced, inputs.clone(), rng, cache.as_mut());
    let ch_cand = characterize_one(&cand_traced, inputs.clone(), rng, cache.as_mut());

    // Merge into one characterization: T1 = candidate output, T2 =
    // reference output, over the shared input basis.
    let mut traces = BTreeMap::new();
    traces.insert(TracepointId(1), ch_cand.traces[&TracepointId(1)].clone());
    traces.insert(TracepointId(2), ch_ref.traces[&TracepointId(1)].clone());
    let mut ledger = ch_cand.ledger;
    ledger.merge(&ch_ref.ledger);
    let mut fast_path = ch_cand.fast_path;
    fast_path.merge(&ch_ref.fast_path);
    let merged = Characterization {
        inputs,
        traces,
        ledger,
        // Both characterizations share a config, hence a backend plan.
        backend: ch_cand.backend,
        fast_path,
    };

    let assertion = AssumeGuarantee::new().guarantee_relation(
        TracepointId(1),
        TracepointId(2),
        RelationPredicate::Within {
            tolerance: config.tolerance,
        },
    );
    let validation = ValidationConfig::default();
    let outcome = validate_assertion(&assertion, &merged, &validation, rng);
    match outcome.verdict {
        Verdict::Failed { max_objective, .. } => (true, max_objective, merged.ledger),
        Verdict::Passed { max_objective, .. } => (false, max_objective, merged.ledger),
    }
}

/// [`compare_programs`] wrapped as a Table 4 detector. The `budget`
/// parameter is interpreted as the sample budget (the baselines' "tested
/// inputs"), keeping the comparison fair.
#[derive(Debug, Clone)]
pub struct MorphDetector {
    /// Comparison configuration template (sample count is overridden by the
    /// detect budget).
    pub config: CompareConfig,
}

impl MorphDetector {
    /// Detector comparing full-register outputs with inputs on all qubits.
    pub fn full_register(n_qubits: usize) -> Self {
        let all: Vec<usize> = (0..n_qubits).collect();
        MorphDetector {
            config: CompareConfig::new(all.clone(), all),
        }
    }
}

impl BugDetector for MorphDetector {
    fn name(&self) -> &'static str {
        "MorphQPV"
    }

    fn detect(
        &self,
        reference: &Circuit,
        candidate: &Circuit,
        budget: usize,
        rng: &mut StdRng,
    ) -> DetectionResult {
        let mut config = self.config.clone();
        config.n_samples = budget.max(2);
        let (bug_found, _, ledger) = compare_programs(reference, candidate, &config, rng);
        DetectionResult {
            bug_found,
            witness_input: None,
            ledger,
        }
    }

    fn supports_expectation_checks(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ghz() -> Circuit {
        morph_qalgo::ghz(3)
    }

    #[test]
    fn identical_programs_compare_equal() {
        let mut rng = StdRng::seed_from_u64(0);
        let config = CompareConfig::new(vec![0], vec![0, 1, 2]);
        let (bug, obj, ledger) = compare_programs(&ghz(), &ghz(), &config, &mut rng);
        assert!(!bug, "identical programs must agree (objective {obj})");
        assert!(ledger.executions > 0);
    }

    #[test]
    fn phase_mutation_is_detected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mutated = ghz();
        // Insert a phase error in the middle.
        mutated.insert(
            2,
            morph_qprog::Instruction::Gate(morph_qsim::Gate::Phase(1, 1.0)),
        );
        let config = CompareConfig::new(vec![0], vec![0, 1, 2]);
        let (bug, obj, _) = compare_programs(&ghz(), &mutated, &config, &mut rng);
        assert!(bug, "phase bug must be caught, objective {obj}");
    }

    #[test]
    fn cached_comparison_matches_and_reuses_reference() {
        let config = CompareConfig::new(vec![0], vec![0, 1, 2]);
        let mut mutated = ghz();
        mutated.insert(
            2,
            morph_qprog::Instruction::Gate(morph_qsim::Gate::Phase(1, 1.0)),
        );

        // Uncached baseline for the same seed.
        let mut rng = StdRng::seed_from_u64(7);
        let (bug_plain, obj_plain, ledger_plain) =
            compare_programs(&ghz(), &mutated, &config, &mut rng);

        let mut cache = CharacterizationCache::in_memory();
        // First cached run: two misses (reference + candidate).
        let mut rng = StdRng::seed_from_u64(7);
        let (bug_cold, obj_cold, ledger_cold) =
            compare_programs_cached(&ghz(), &mutated, &config, &mut rng, &mut cache);
        assert_eq!(bug_cold, bug_plain);
        assert_eq!(obj_cold.to_bits(), obj_plain.to_bits());
        assert_eq!(ledger_cold, ledger_plain);
        assert_eq!(cache.stats().misses, 2);

        // A *different* mutant against the same reference, same seed:
        // the reference characterization must hit the cache.
        let mut other = ghz();
        other.insert(
            2,
            morph_qprog::Instruction::Gate(morph_qsim::Gate::Phase(1, 0.5)),
        );
        let mut rng = StdRng::seed_from_u64(7);
        let (bug_other, _, _) =
            compare_programs_cached(&ghz(), &other, &config, &mut rng, &mut cache);
        assert!(bug_other);
        assert_eq!(cache.stats().misses, 3, "only the new mutant misses");
        assert!(cache.stats().memory_hits + cache.stats().disk_hits >= 1);

        // Repeating the original comparison is fully warm and bit-identical.
        let saved_before = cache.stats().cost_saved;
        let mut rng = StdRng::seed_from_u64(7);
        let (bug_warm, obj_warm, ledger_warm) =
            compare_programs_cached(&ghz(), &mutated, &config, &mut rng, &mut cache);
        assert_eq!(bug_warm, bug_plain);
        assert_eq!(obj_warm.to_bits(), obj_plain.to_bits());
        assert_eq!(ledger_warm, ledger_plain);
        assert_eq!(cache.stats().misses, 3, "no new misses on the warm run");
        assert!(cache.stats().cost_saved > saved_before);
    }

    #[test]
    fn detector_interface_reports_costs() {
        let mut rng = StdRng::seed_from_u64(2);
        let detector = MorphDetector::full_register(3);
        let result = detector.detect(&ghz(), &ghz(), 5, &mut rng);
        assert!(!result.bug_found);
        assert!(
            result.ledger.executions >= 10,
            "two characterizations of 5 samples"
        );
        assert!(detector.supports_expectation_checks());
    }
}
