//! MorphQPV's unexpected-key search for the quantum lock (Fig 7).
//!
//! This is the Strategy-const instantiation of the verification: every
//! probe pins a subset of the input qubits to constants and puts the rest
//! in `|+⟩`, i.e. a uniform superposition over a subcube of keys. The
//! output qubit's `P(1)` equals the fraction of unlocking keys inside the
//! subcube, so bisection over subcubes finds the unexpected key with
//! logarithmically many probes — each probe costing enough executions
//! (at `shots` shots apiece) to resolve a `1/|subcube|` excess.

use morph_qprog::{Circuit, Executor};
use morph_qsim::StateVector;

/// Result of the bisection search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSearchResult {
    /// Unlocking keys other than the expected one.
    pub bad_keys: Vec<u64>,
    /// Program executions consumed (the Fig 7 metric).
    pub executions: u64,
}

/// Executions needed for one probe of a subcube with `free` free qubits:
/// resolving an excess probability of `2^-free` at `shots` shots per
/// execution requires `⌈3 · 2^free / shots⌉` executions (≥ 1).
fn probe_cost(free: usize, shots: usize) -> u64 {
    let subcube = 1u128 << free.min(120);
    (((3 * subcube) as f64 / shots as f64).ceil() as u64).max(1)
}

/// Runs the bisection search against an actual (possibly buggy) quantum
/// lock circuit. Qubit 0 is the output; qubits `1..n` the key register.
///
/// # Panics
///
/// Panics if the register exceeds the state-vector budget (use
/// [`quantum_lock_bisection_cost`] for larger cost projections) or the
/// expected key does not fit.
pub fn quantum_lock_bisection(
    circuit: &Circuit,
    expected_key: u64,
    shots: usize,
) -> LockSearchResult {
    let n = circuit.n_qubits();
    let n_in = n - 1;
    assert!(
        n <= 22,
        "state-vector probe beyond budget; use the cost model"
    );
    assert!(
        n_in >= 64 || expected_key < (1u64 << n_in),
        "expected key out of range"
    );

    let executor = Executor::default();
    // Probability that the output reads 1 for a uniform superposition over
    // the subcube with the given pinned prefix bits.
    let probe = |pinned: &[u8]| -> f64 {
        let mut prep = Circuit::new(n);
        for (i, &bit) in pinned.iter().enumerate() {
            if bit == 1 {
                prep.x(1 + i);
            }
        }
        for q in (1 + pinned.len())..n {
            prep.h(q);
        }
        prep.extend_from(circuit);
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(0);
        let record = executor.run_trajectory(&prep, &StateVector::zero_state(n), &mut rng);
        record.final_state.prob_one(0)
    };

    let mut executions = 0u64;
    let mut bad_keys = Vec::new();
    // Depth-first bisection over key prefixes.
    let mut stack: Vec<Vec<u8>> = vec![Vec::new()];
    while let Some(prefix) = stack.pop() {
        let free = n_in - prefix.len();
        executions += probe_cost(free, shots);
        let p1 = probe(&prefix);
        // Expected contribution of the legitimate key if it lies in this
        // subcube.
        let expected_in = prefix
            .iter()
            .enumerate()
            .all(|(i, &b)| ((expected_key >> (n_in - 1 - i)) & 1) as u8 == b);
        let baseline = if expected_in {
            1.0 / (1u64 << free) as f64
        } else {
            0.0
        };
        let excess = p1 - baseline;
        let threshold = 0.5 / (1u64 << free) as f64;
        if excess <= threshold {
            continue;
        }
        if free == 0 {
            let key = prefix.iter().fold(0u64, |acc, &b| (acc << 1) | b as u64);
            bad_keys.push(key);
        } else {
            for bit in [0u8, 1u8] {
                let mut next = prefix.clone();
                next.push(bit);
                stack.push(next);
            }
        }
    }
    bad_keys.sort_unstable();
    LockSearchResult {
        bad_keys,
        executions,
    }
}

/// Pure cost projection of the bisection for an `n_in`-bit key register
/// containing exactly one unexpected key: the same probe accounting as
/// [`quantum_lock_bisection`] without simulation. Used to extend Fig 7 to
/// the paper's 27-qubit points.
pub fn quantum_lock_bisection_cost(n_in: usize, shots: usize) -> u64 {
    // Root probe plus, per level, both halves of the branch containing the
    // bug (the clean sibling also costs one probe before being pruned).
    let mut executions = probe_cost(n_in, shots);
    for level in 1..=n_in {
        let free = n_in - level;
        executions += 2 * probe_cost(free, shots);
    }
    executions
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_qalgo::QuantumLock;

    #[test]
    fn finds_the_unexpected_key() {
        let lock = QuantumLock::new(6, 0b00101);
        let buggy = lock.circuit_with_bug(0b11010);
        let result = quantum_lock_bisection(&buggy, 0b00101, 1000);
        assert_eq!(result.bad_keys, vec![0b11010]);
        assert!(result.executions > 0);
    }

    #[test]
    fn clean_lock_reports_no_bad_keys() {
        let lock = QuantumLock::new(6, 0b00101);
        let result = quantum_lock_bisection(&lock.circuit(), 0b00101, 1000);
        assert!(result.bad_keys.is_empty());
        // A clean lock costs exactly one root probe.
        assert_eq!(result.executions, probe_cost(5, 1000));
    }

    #[test]
    fn bug_adjacent_to_real_key_is_still_found() {
        let lock = QuantumLock::new(7, 0b000000);
        let buggy = lock.circuit_with_bug(0b000001);
        let result = quantum_lock_bisection(&buggy, 0b000000, 1000);
        assert_eq!(result.bad_keys, vec![0b000001]);
    }

    #[test]
    fn cost_model_matches_paper_scale() {
        // Paper: 8 974 executions for the 21-qubit lock (20 input qubits)
        // at 1000 shots — the model should land in the same ballpark.
        let cost = quantum_lock_bisection_cost(20, 1000);
        assert!(
            (5_000..20_000).contains(&cost),
            "21-qubit cost {cost} should be ≈ 9e3"
        );
        // And the exhaustive baseline is ~2^19 ≈ 5e5, giving the ~100×
        // reduction the paper headlines.
        let exhaustive = morph_baselines::expected_tests_to_find_single_bug(1 << 20);
        assert!(exhaustive / cost as f64 > 20.0);
    }

    #[test]
    fn cost_model_agrees_with_measured_search_up_to_pruning() {
        // The measured search explores at most what the model charges for a
        // single-bug instance.
        let lock = QuantumLock::new(8, 0b0110011);
        let buggy = lock.circuit_with_bug(0b1011001);
        let measured = quantum_lock_bisection(&buggy, 0b0110011, 1000);
        let modeled = quantum_lock_bisection_cost(7, 1000);
        assert!(
            measured.executions <= modeled + probe_cost(7, 1000),
            "measured {} vs modeled {modeled}",
            measured.executions
        );
    }
}
