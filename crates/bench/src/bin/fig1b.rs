//! Fig 1(b): confidence of exhaustive-testing verification vs number of
//! tested inputs, for the 15-qubit quantum lock.
//!
//! The motivational curve: an exhaustive tester that has covered `k` of the
//! `2^14` classical keys without finding the unexpected key can only claim
//! confidence `k / 2^14`. A small measured sweep at 9 qubits validates the
//! model: the empirical probability that a random-`k`-subset test battery
//! finds an injected bug key matches the covered fraction.

use morph_baselines::exhaustive_confidence;
use morph_bench::rows::{fmt_f, print_table, save_csv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Model curve for the paper's 15-qubit lock (14 input qubits).
    let space_15q = 1u64 << 14;
    let mut rows = Vec::new();
    for &tested in &[1u64, 10, 100, 1_000, 8_192, 15_000, 16_384] {
        rows.push(vec![
            "15q (model)".to_string(),
            tested.to_string(),
            fmt_f(exhaustive_confidence(tested, space_15q)),
        ]);
    }

    // Measured validation at 9 qubits: inject a random bug key, test k
    // random distinct keys, record how often the bug is hit.
    let mut rng = StdRng::seed_from_u64(2024);
    let n_in = 8usize;
    let space = 1u64 << n_in;
    for &tested in &[1u64, 32, 128, 256] {
        let trials = 400;
        let mut hits = 0;
        for _ in 0..trials {
            let bug = rng.gen_range(0..space);
            // Sample `tested` distinct keys without replacement.
            let mut keys: Vec<u64> = (0..space).collect();
            for i in 0..tested.min(space) {
                let j = rng.gen_range(i..space);
                keys.swap(i as usize, j as usize);
            }
            if keys[..tested as usize].contains(&bug) {
                hits += 1;
            }
        }
        let measured = hits as f64 / trials as f64;
        rows.push(vec![
            "9q (measured)".to_string(),
            tested.to_string(),
            fmt_f(measured),
        ]);
    }

    let csv = print_table(
        "Fig 1(b): confidence of exhaustive verification vs tested inputs",
        &["setting", "inputs_tested", "confidence"],
        &rows,
    );
    save_csv("fig1b", &csv);
    println!(
        "\nAnchors: 1 test => {:.4}% confidence; 50% needs {} tests (paper: 0.006%, ~1.5e4).",
        100.0 * exhaustive_confidence(1, space_15q),
        space_15q / 2
    );
}
