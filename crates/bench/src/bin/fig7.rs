//! Fig 7: number of program executions to identify the unexpected key in
//! the quantum lock, for Quito, NDD, and MorphQPV.
//!
//! Small registers are *measured*: the actual grid searches and the actual
//! MorphQPV Strategy-const bisection run against a buggy lock. Larger
//! registers (up to the paper's 27 qubits) use each method's execution
//! model, validated against the measured points: exhaustive searches need
//! `(2^{N_in} + 1)/2` expected probes, while the bisection pays
//! `⌈3·|subcube|/shots⌉` per level.

use morph_baselines::{expected_tests_to_find_single_bug, BugDetector, NddAssertion, QuitoSearch};
use morph_bench::rows::{fmt_f, print_table, save_csv};
use morph_bench::{quantum_lock_bisection, quantum_lock_bisection_cost};
use morph_qalgo::QuantumLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHOTS: usize = 1000;

fn main() {
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(42);

    // Measured sizes.
    for &n in &[4usize, 6, 8, 10] {
        let n_in = n - 1;
        let key = rng.gen_range(0..(1u64 << n_in));
        let mut bug = rng.gen_range(0..(1u64 << n_in));
        while bug == key {
            bug = rng.gen_range(0..(1u64 << n_in));
        }
        let lock = QuantumLock::new(n, key);
        let reference = lock.circuit();
        let buggy = lock.circuit_with_bug(bug);

        let quito = QuitoSearch {
            shots: SHOTS,
            ..Default::default()
        }
        .search_until_found(&reference, &buggy, &mut rng);
        let ndd = NddAssertion {
            shots: SHOTS,
            ..Default::default()
        }
        .detect(&reference, &buggy, 1 << n, &mut rng);
        let morph = quantum_lock_bisection(&buggy, key, SHOTS);
        assert_eq!(
            morph.bad_keys,
            vec![bug],
            "bisection must find the injected key"
        );

        rows.push(vec![
            format!("{n} (measured)"),
            quito.ledger.executions.to_string(),
            ndd.ledger.executions.to_string(),
            morph.executions.to_string(),
            fmt_f(quito.ledger.executions as f64 / morph.executions as f64),
        ]);
    }

    // Modeled sizes (paper sweeps 11–27 qubits).
    for &n in &[11usize, 15, 21, 27] {
        let n_in = n - 1;
        let exhaustive = expected_tests_to_find_single_bug(1u64 << n_in);
        let morph = quantum_lock_bisection_cost(n_in, SHOTS);
        rows.push(vec![
            format!("{n} (model)"),
            fmt_f(exhaustive),
            fmt_f(exhaustive),
            morph.to_string(),
            fmt_f(exhaustive / morph as f64),
        ]);
    }

    let csv = print_table(
        "Fig 7: executions to identify the quantum-lock bug",
        &["qubits", "Quito", "NDD", "MorphQPV", "speedup"],
        &rows,
    );
    save_csv("fig7", &csv);
    println!("\nPaper anchor: 21-qubit lock — 9.3e5 executions (baselines) vs 8 974");
    println!("(MorphQPV), a 107.9x reduction; the speedup grows with qubit count.");
}
