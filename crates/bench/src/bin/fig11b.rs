//! Fig 11(b): average approximation accuracy of the tracepoint state vs
//! the number of sampled inputs, for the five Table 3 benchmarks.
//!
//! Accuracy here is the paper's metric — the overlap between the predicted
//! tracepoint state and the ground truth obtained by (simulated) execution
//! — averaged over random unseen inputs.

use morph_bench::rows::{fmt_f, print_table, save_csv};
use morph_clifford::InputEnsemble;
use morph_linalg::hs_accuracy;
use morph_qalgo::Benchmark;
use morph_qprog::{Circuit, Executor, TracepointId};
use morph_qsim::StateVector;
use morphqpv::{characterize, CharacterizationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 4usize; // N_in = 4: full span at 4^4 = 256, sweep to 64.
    let mut rows = Vec::new();
    for bench in Benchmark::all() {
        let mut rng = StdRng::seed_from_u64(17);
        let body = bench.circuit(n, &mut rng);
        let n = body.n_qubits(); // QEC rounds up to the next odd size
        let mut circuit = Circuit::new(n);
        circuit.extend_from(&body);
        circuit.tracepoint(1, &(0..n).collect::<Vec<_>>());

        for &n_samples in &[4usize, 8, 16, 32, 64] {
            let config = CharacterizationConfig {
                n_samples,
                ..CharacterizationConfig::exact((0..n).collect(), n_samples)
            };
            let ch = characterize(&circuit, &config, &mut rng);
            let f = ch.approximation(TracepointId(1));

            let probes = InputEnsemble::Clifford.generate(n, 10, &mut rng);
            let mut acc = 0.0;
            for p in &probes {
                let mut full = Circuit::new(n);
                full.extend_from(&p.prep);
                full.extend_from(&circuit);
                let truth = Executor::default()
                    .run_expected(&full, &StateVector::zero_state(n))
                    .state(TracepointId(1))
                    .clone();
                let predicted = f.predict(&p.rho).unwrap();
                acc += hs_accuracy(&predicted, &truth);
            }
            rows.push(vec![
                bench.name().to_string(),
                n_samples.to_string(),
                fmt_f(acc / probes.len() as f64),
            ]);
        }
    }
    let csv = print_table(
        "Fig 11(b): average tracepoint approximation accuracy vs N_sample (4-qubit benchmarks)",
        &["benchmark", "N_sample", "accuracy"],
        &rows,
    );
    save_csv("fig11b", &csv);
    println!("\nExpected shape: accuracy grows ~linearly in N_sample for all five");
    println!("benchmarks and saturates once the sampled inputs span the input space.");
}
