//! Table 2: expressiveness comparison of MorphQPV against the four
//! assertion-based techniques (Stat, Proj, NDD, SR).
//!
//! The matrix is data, but every claim is backed by a concrete probe
//! elsewhere in the test suite (e.g. `morph_baselines::stat` shows Stat
//! missing a pure phase error that NDD and MorphQPV catch).

use morph_baselines::{assertion_expressiveness, render_table};
use morph_bench::rows::save_csv;

fn main() {
    let rows = assertion_expressiveness();
    println!("{}", render_table(&rows));
    let mut csv = String::from("technique,verified_object,comparison,interpretability,feedback\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            r.technique, r.verified_object, r.comparison, r.interpretability, r.feedback
        ));
    }
    save_csv("table2", &csv);
    println!("Backing probes: Stat/phase-blindness  -> morph_baselines::stat tests");
    println!("                NDD/phase-sensitivity -> morph_baselines::ndd tests");
    println!("                MorphQPV feedback     -> morph_qprog executor feedback tests");
    println!("                MorphQPV evolution    -> morphqpv validate relation tests");
}
