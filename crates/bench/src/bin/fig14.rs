//! Fig 14: approximation accuracy under hardware noise, improved by
//! injecting intermediate tracepoints and chaining per-segment
//! approximations (with between-stage purification — see EXPERIMENTS.md).

use morph_bench::rows::{fmt_f, print_table, save_csv};
use morph_clifford::InputEnsemble;
use morph_linalg::hs_accuracy;
use morph_qalgo::{Benchmark, Qnn};
use morph_qprog::{Circuit, Executor, TracepointId};
use morph_qsim::{NoiseModel, StateVector};
use morphqpv::{try_characterize_segmented, CharacterizationConfig, Mitigation};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 3;
// Full operator span (4^N) so chaining accuracy is limited by noise only.
const SAMPLES: usize = 64;

fn accuracy_with_segments(circuit: &Circuit, n_segments: usize, rng: &mut StdRng) -> f64 {
    let config = CharacterizationConfig {
        n_samples: SAMPLES,
        noise: NoiseModel::ibm_cairo(),
        ensemble: InputEnsemble::PauliProduct,
        ..CharacterizationConfig::exact((0..N).collect(), SAMPLES)
    };
    // Oversized segment counts are a structured error now; clamp to the
    // gate count so the k sweep works on short benchmark circuits too.
    let n_segments = n_segments.min(circuit.gate_count());
    let seg = try_characterize_segmented(circuit, &config, n_segments, rng)
        .expect("benchmark circuit segments cleanly");

    // Ideal (noiseless) ground truth on unseen inputs.
    let probes = InputEnsemble::Clifford.generate(N, 8, rng);
    let mut acc = 0.0;
    for p in &probes {
        let mut full = Circuit::new(N);
        full.extend_from(&p.prep);
        full.extend_from(circuit);
        full.tracepoint(1, &(0..N).collect::<Vec<_>>());
        let truth = Executor::default()
            .run_expected(&full, &StateVector::zero_state(N))
            .state(TracepointId(1))
            .clone();
        let predicted = seg
            .chain
            .predict_with_mitigation(&p.rho, Mitigation::Purify)
            .expect("dimension match");
        acc += hs_accuracy(&predicted, &truth);
    }
    acc / probes.len() as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(14);
    let mut rows = Vec::new();
    let qnn = {
        let model = Qnn::random(N, 4, &mut rng);
        model.body()
    };
    let shor = Benchmark::Shor.circuit(N, &mut rng);
    for (name, circuit) in [("QNN 3q", qnn), ("Shor 3q", shor)] {
        for &k in &[1usize, 2, 4, 8] {
            let acc = accuracy_with_segments(&circuit, k, &mut rng);
            rows.push(vec![name.to_string(), (k - 1).to_string(), fmt_f(acc)]);
        }
    }
    let csv = print_table(
        "Fig 14: noisy-characterization accuracy vs intermediate tracepoints (IBM Cairo noise)",
        &["program", "intermediate_tracepoints", "accuracy"],
        &rows,
    );
    save_csv("fig14", &csv);
    println!("\nExpected shape: accuracy rises as intermediate tracepoints shorten the");
    println!("noisy segments (paper: 1.6% -> 13.6% -> 65% for the 15-qubit QNN).");
}
