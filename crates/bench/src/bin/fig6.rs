//! Fig 6: distribution of approximation accuracies across random inputs,
//! with the fitted Beta distribution that powers the Theorem 3 confidence
//! model.

use morph_bench::rows::{fmt_f, print_table, save_csv};
use morph_clifford::InputEnsemble;
use morph_qprog::Circuit;
use morphqpv::{characterize, CharacterizationConfig, ConfidenceModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 5-qubit Shor-style program, half-span characterization so case-2
    // accuracies are spread out.
    let n = 5usize;
    let mut circuit = Circuit::new(n);
    circuit.extend_from(&morph_qalgo::shor_circuit(n));
    circuit.tracepoint(1, &[0, 1, 2, 3, 4]);

    let mut rng = StdRng::seed_from_u64(11);
    let config = CharacterizationConfig {
        n_samples: 24,
        ..CharacterizationConfig::exact((0..n).collect(), 24)
    };
    let ch = characterize(&circuit, &config, &mut rng);
    let f = ch.approximation(morph_qprog::TracepointId(1));

    let probes = InputEnsemble::Clifford.generate(n, 300, &mut rng);
    let accuracies: Vec<f64> = probes
        .iter()
        .map(|p| f.representation_accuracy(&p.rho).unwrap_or(0.0))
        .collect();

    // Histogram over 10 bins.
    let mut bins = [0usize; 10];
    for &a in &accuracies {
        let idx = ((a * 10.0) as usize).min(9);
        bins[idx] += 1;
    }
    let model = ConfidenceModel::fit(&accuracies);
    let mut rows = Vec::new();
    for (i, &count) in bins.iter().enumerate() {
        let lo = i as f64 / 10.0;
        let hi = lo + 0.1;
        // Beta mass in the bin for comparison.
        let beta_mass = morphqpv::regularized_incomplete_beta(hi, model.beta1, model.beta2)
            - morphqpv::regularized_incomplete_beta(lo, model.beta1, model.beta2);
        rows.push(vec![
            format!("[{lo:.1},{hi:.1})"),
            count.to_string(),
            fmt_f(count as f64 / accuracies.len() as f64),
            fmt_f(beta_mass),
        ]);
    }
    let csv = print_table(
        "Fig 6: distribution of approximation accuracies vs fitted Beta",
        &["accuracy_bin", "count", "empirical_frac", "beta_fit_frac"],
        &rows,
    );
    save_csv("fig6", &csv);
    println!(
        "\nFitted Beta(β1={:.2}, β2={:.2}); mean accuracy {:.3} (paper observes a Beta shape).",
        model.beta1,
        model.beta2,
        model.mean()
    );
}
