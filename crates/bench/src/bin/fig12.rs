//! Fig 12: Theorem 3's estimated confidence vs the real success rate of
//! verification, as the sample budget grows.
//!
//! Mutation testing on the QEC and Shor benchmarks: for each sample budget
//! we (a) fit the accuracy Beta model and compute the theoretical
//! confidence, and (b) measure how often the MorphQPV comparison actually
//! detects an injected phase bug. Theorem 3 is a lower bound, so the
//! measured curve should sit above the estimate — more visibly for Shor,
//! which has more counter-examples per bug.

use morph_bench::rows::{fmt_f, print_table, save_csv};
use morph_bench::{compare_programs_cached, CompareConfig};
use morph_qalgo::{mutation_battery, Benchmark};
use morph_qprog::Circuit;
use morphqpv::{characterize, fit_confidence_model, CharacterizationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CASES: usize = 15;

fn main() {
    let n = 5usize;
    let mut rows = Vec::new();
    // One artifact cache for the whole sweep: every mutant comparison at a
    // given budget reuses the reference characterization (same instrumented
    // circuit, inputs, and seed), so only the mutant side is re-simulated.
    // Set MORPH_CACHE_DIR to persist artifacts across reruns of the figure.
    let mut cache = morph_bench::cache_from_env();
    for bench in [Benchmark::Qec, Benchmark::Shor] {
        let mut rng = StdRng::seed_from_u64(23);
        let reference = bench.circuit(n, &mut rng);
        let mutants = mutation_battery(&reference, CASES, &mut rng);

        for &n_samples in &[4usize, 8, 16, 32, 64] {
            // Estimated confidence from the fitted accuracy distribution.
            let mut traced = Circuit::new(n);
            traced.extend_from(&reference);
            traced.tracepoint(1, &(0..n).collect::<Vec<_>>());
            let config = CharacterizationConfig {
                n_samples,
                ..CharacterizationConfig::exact((0..n).collect(), n_samples)
            };
            let ch = characterize(&traced, &config, &mut rng);
            let model = fit_confidence_model(&ch, 40, &mut rng);
            // ε: the accuracy a counter-example needs before the optimizer can
            // see it. Exact readout makes even small overlaps actionable.
            let estimated = model.confidence(0.05);

            // Measured success rate on the mutants. Each comparison reseeds
            // its RNG from the budget so every mutant sees the same sampled
            // inputs and the reference characterization is a cache hit after
            // the first mutant.
            let mut detected = 0;
            for (mutant, _) in &mutants {
                let mut cmp_config = CompareConfig::new((0..n).collect(), (0..n).collect());
                cmp_config.n_samples = n_samples;
                let mut cmp_rng = StdRng::seed_from_u64(0x466_9673 ^ n_samples as u64);
                let (bug, _, _) = compare_programs_cached(
                    &reference,
                    mutant,
                    &cmp_config,
                    &mut cmp_rng,
                    &mut cache,
                );
                if bug {
                    detected += 1;
                }
            }
            let success = detected as f64 / CASES as f64;
            rows.push(vec![
                bench.name().to_string(),
                n_samples.to_string(),
                fmt_f(estimated),
                fmt_f(success),
            ]);
        }
    }
    let csv = print_table(
        "Fig 12: estimated confidence (Theorem 3) vs measured success rate (5-qubit programs)",
        &[
            "benchmark",
            "N_sample",
            "estimated_confidence",
            "measured_success",
        ],
        &rows,
    );
    save_csv("fig12", &csv);
    println!("\ncharacterization cache: {}", cache.stats());
    println!("\nExpected shape: both curves rise with N_sample; the measured success");
    println!("rate stays at or above the estimate (Theorem 3 is a lower bound), with");
    println!("Shor further above it than QEC (more counter-examples per bug).");
}
