//! Table 5: expressiveness comparison of MorphQPV against deductive
//! verification methods (KNA, Twist, QHL).

use morph_baselines::{deductive_expressiveness, render_table};
use morph_bench::rows::save_csv;

fn main() {
    let rows = deductive_expressiveness();
    println!("{}", render_table(&rows));
    let mut csv = String::from("technique,verified_object,comparison,interpretability,feedback\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            r.technique, r.verified_object, r.comparison, r.interpretability, r.feedback
        ));
    }
    save_csv("table5", &csv);
    println!("Backing probes: Twist purity lens   -> morph_baselines::twist tests");
    println!("                support-set fragment -> morph_baselines::automata tests");
}
