//! `loadgen` — network load generator for the `morph-serve` TCP listener.
//!
//! Drives a live listener with heavy mixed traffic and reports latency
//! through `morph-trace` histograms:
//!
//! - **hot bursts**: pipelined identical requests (one fingerprint per
//!   round) that must coalesce into a single characterization;
//! - **cold sweep**: distinct fingerprints, the no-sharing baseline;
//! - **mixed deadlines**: alternating impossible (`deadline_ms: 0`) and
//!   generous deadlines on one connection;
//! - **quota probes**: a pipelined overrun of the per-connection
//!   in-flight limit and a connection-count overrun, both of which must
//!   come back as structured rejection lines;
//! - **golden replay** (`--replay`/`--golden`): streams a fixture file
//!   through the socket and diffs the transcript byte-for-byte.
//!
//! By default the generator spawns its own `morph-serve --listen` child
//! (low quota knobs, trace export on) and, after closing the child's
//! stdin to stop it, audits the server-side trace: the run fails unless
//! the server observed coalesced hits and both quota rejections. Use
//! `--addr HOST:PORT` to aim at an external listener instead (the
//! server-side audit is then skipped).
//!
//! Latency percentiles land in `BENCH_9.json` (`morph-bench/1` schema).
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--serve-bin PATH] [--out BENCH_9.json]
//!         [--replay FILE --golden FILE] [--quick] [--trace-json PATH]
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::time::Instant;

use morph_serve::JobRequest;
use serde::json::Value;

const USAGE: &str = "usage: loadgen [--addr HOST:PORT] [--serve-bin PATH] [--out PATH] \
[--replay FILE --golden FILE] [--quick] [--trace-json PATH]";

const PROGRAM: &str = "\
qreg q[3];
T 1 q[0];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
T 2 q[0,1,2];
// assert assume is_pure(T1) guarantee is_pure(T2)
";

/// The hot-burst program: a wider GHZ chain whose characterization takes
/// hundreds of milliseconds. The point is the *coalescing window* — on a
/// single-core host a worker only overlaps a duplicate job with the
/// leader's characterization if that characterization outlasts a few
/// scheduler timeslices; the 3-qubit program above finishes too fast.
const HOT_PROGRAM: &str = "\
qreg q[8];
T 1 q[0];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[4];
cx q[4],q[5];
cx q[5],q[6];
cx q[6],q[7];
T 2 q[0,1,2,3,4,5,6,7];
// assert assume is_pure(T1) guarantee is_pure(T2)
";

/// Characterization samples for the hot program: sized so the leader's
/// characterization spans many scheduler timeslices, guaranteeing the
/// pipelined duplicates join the flight live instead of hitting the
/// cache after the fact.
const HOT_SAMPLES: usize = 64;

/// Spawned-server quota knobs: small enough that the quota phases overrun
/// them deterministically, large enough for the hot bursts to fit.
const INFLIGHT_LIMIT: usize = 4;
const CONN_LIMIT: usize = 8;

struct Args {
    addr: Option<String>,
    serve_bin: Option<PathBuf>,
    out: PathBuf,
    replay: Option<PathBuf>,
    golden: Option<PathBuf>,
    quick: bool,
    trace_json: Option<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        serve_bin: None,
        out: PathBuf::from("BENCH_9.json"),
        replay: None,
        golden: None,
        quick: std::env::var_os("MORPH_BENCH_QUICK").is_some(),
        trace_json: None,
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i - 1)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < argv.len() {
        let arg = argv[i].clone();
        i += 1;
        match arg.as_str() {
            "--addr" => args.addr = Some(value(&mut i, "--addr")?),
            "--serve-bin" => args.serve_bin = Some(PathBuf::from(value(&mut i, "--serve-bin")?)),
            "--out" => args.out = PathBuf::from(value(&mut i, "--out")?),
            "--replay" => args.replay = Some(PathBuf::from(value(&mut i, "--replay")?)),
            "--golden" => args.golden = Some(PathBuf::from(value(&mut i, "--golden")?)),
            "--quick" => args.quick = true,
            "--trace-json" => args.trace_json = Some(PathBuf::from(value(&mut i, "--trace-json")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

// ---------------------------------------------------------------------------
// Server management
// ---------------------------------------------------------------------------

struct SpawnedServer {
    child: Child,
    stdin: Option<ChildStdin>,
    trace_path: PathBuf,
}

impl SpawnedServer {
    /// Spawns `morph-serve --listen` with deterministic quota knobs and
    /// returns the server plus the address it announced on stdout.
    fn spawn(serve_bin: Option<&PathBuf>) -> Result<(SpawnedServer, String), String> {
        let bin = match serve_bin {
            Some(path) => path.clone(),
            None => {
                // Default: the sibling binary in the same target dir.
                let mut exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
                exe.set_file_name("morph-serve");
                exe
            }
        };
        let trace_path =
            std::env::temp_dir().join(format!("loadgen-server-trace-{}.json", std::process::id()));
        let mut child = Command::new(&bin)
            .args(["--listen", "127.0.0.1:0", "--workers", "2"])
            .arg("--trace-json")
            .arg(&trace_path)
            .env("MORPH_SERVE_INFLIGHT_LIMIT", INFLIGHT_LIMIT.to_string())
            .env("MORPH_SERVE_CONN_LIMIT", CONN_LIMIT.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("read server banner: {e}"))?;
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .ok_or_else(|| format!("unexpected server banner: {line:?}"))?
            .to_string();
        Ok((
            SpawnedServer {
                child,
                stdin,
                trace_path,
            },
            addr,
        ))
    }

    /// Stops the server (stdin EOF), waits for exit, and returns its
    /// parsed trace export.
    fn stop(mut self) -> Result<Value, String> {
        drop(self.stdin.take());
        let status = self.child.wait().map_err(|e| format!("wait server: {e}"))?;
        if !status.success() {
            return Err(format!("server exited with {status}"));
        }
        let text = std::fs::read_to_string(&self.trace_path)
            .map_err(|e| format!("read server trace: {e}"))?;
        let _ = std::fs::remove_file(&self.trace_path);
        serde::json::parse(&text).map_err(|e| format!("parse server trace: {e}"))
    }
}

/// Sums a counter across the export's root table and every span.
fn counter_total(trace: &Value, name: &str) -> u64 {
    fn span_sum(span: &Value, name: &str) -> u64 {
        let own = span
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        let children = span
            .get("children")
            .and_then(Value::as_array)
            .map(|kids| kids.iter().map(|k| span_sum(k, name)).sum::<u64>())
            .unwrap_or(0);
        own + children
    }
    let root = trace
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let spans = trace
        .get("spans")
        .and_then(Value::as_array)
        .map(|spans| spans.iter().map(|s| span_sum(s, name)).sum::<u64>())
        .unwrap_or(0);
    root + spans
}

// ---------------------------------------------------------------------------
// Client connections
// ---------------------------------------------------------------------------

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Result<Conn, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone socket: {e}"))?,
        );
        Ok(Conn { stream, reader })
    }

    fn send_line(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.stream, "{line}").map_err(|e| format!("send: {e}"))?;
        self.stream.flush().map_err(|e| format!("flush: {e}"))
    }

    fn recv_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        Ok(line.trim_end_matches('\n').to_string())
    }
}

fn request_with(
    program: &str,
    samples: usize,
    id: &str,
    seed: u64,
    deadline_ms: Option<u64>,
) -> String {
    let mut req = JobRequest::new(id, program, vec![0]);
    req.seed = seed;
    req.samples = Some(samples);
    req.deadline_ms = deadline_ms;
    req.to_json_line()
}

fn request(id: &str, seed: u64, deadline_ms: Option<u64>) -> String {
    request_with(PROGRAM, 4, id, seed, deadline_ms)
}

fn status_of(line: &str) -> &'static str {
    for status in ["passed", "refuted", "failed", "error", "rejected"] {
        if line.contains(&format!("\"status\":\"{status}\"")) {
            return status;
        }
    }
    "unknown"
}

// ---------------------------------------------------------------------------
// Traffic phases
// ---------------------------------------------------------------------------

struct PhaseStats {
    latencies_ns: Vec<u64>,
}

impl PhaseStats {
    fn record(&mut self, hist: &str, started: Instant) {
        let ns = started.elapsed().as_nanos() as u64;
        self.latencies_ns.push(ns);
        morph_trace::histogram(hist, ns);
    }
}

/// Pipelined identical requests: every round uses a fresh fingerprint so
/// the burst must coalesce live (not via the artifact cache of an earlier
/// round). Burst size equals the in-flight quota so nothing is rejected.
fn hot_bursts(addr: &str, rounds: usize) -> Result<PhaseStats, String> {
    let mut stats = PhaseStats {
        latencies_ns: Vec::new(),
    };
    let mut conn = Conn::open(addr)?;
    for round in 0..rounds {
        let seed = 1_000 + round as u64;
        let started = Instant::now();
        for i in 0..INFLIGHT_LIMIT {
            conn.send_line(&request_with(
                HOT_PROGRAM,
                HOT_SAMPLES,
                &format!("hot-{round}-{i}"),
                seed,
                None,
            ))?;
        }
        let mut lines = Vec::new();
        for _ in 0..INFLIGHT_LIMIT {
            let line = conn.recv_line()?;
            stats.record("loadgen/hot_ns", started);
            lines.push(line);
        }
        for line in &lines {
            if status_of(line) != "passed" {
                return Err(format!("hot burst {round} failed: {line}"));
            }
        }
    }
    Ok(stats)
}

/// Distinct fingerprints, one at a time: the no-sharing baseline.
fn cold_sweep(addr: &str, n: usize) -> Result<PhaseStats, String> {
    let mut stats = PhaseStats {
        latencies_ns: Vec::new(),
    };
    let mut conn = Conn::open(addr)?;
    for i in 0..n {
        let seed = 100_000 + i as u64;
        let started = Instant::now();
        conn.send_line(&request(&format!("cold-{i}"), seed, None))?;
        let line = conn.recv_line()?;
        stats.record("loadgen/cold_ns", started);
        if status_of(&line) != "passed" {
            return Err(format!("cold job {i} failed: {line}"));
        }
    }
    Ok(stats)
}

/// Alternating impossible and generous deadlines on one connection. The
/// impossible ones must come back as structured errors, not hang.
fn mixed_deadlines(addr: &str, n: usize) -> Result<(PhaseStats, u64), String> {
    let mut stats = PhaseStats {
        latencies_ns: Vec::new(),
    };
    let mut conn = Conn::open(addr)?;
    let mut expired = 0;
    for i in 0..n {
        let seed = 200_000 + i as u64;
        let deadline = if i % 2 == 0 { Some(0) } else { Some(10_000) };
        let started = Instant::now();
        conn.send_line(&request(&format!("dl-{i}"), seed, deadline))?;
        let line = conn.recv_line()?;
        stats.record("loadgen/deadline_ns", started);
        match (deadline, status_of(&line)) {
            (Some(0), "error") if line.contains("deadline_exceeded") => expired += 1,
            (Some(0), _) => return Err(format!("zero deadline not enforced: {line}")),
            (_, "passed") => {}
            (_, _) => return Err(format!("deadline job {i} failed: {line}")),
        }
    }
    Ok((stats, expired))
}

/// Overruns the per-connection in-flight quota with one pipelined burst;
/// the overflow must answer as `job_quota` rejection lines in-slot.
fn job_quota_probe(addr: &str) -> Result<u64, String> {
    let mut conn = Conn::open(addr)?;
    let total = INFLIGHT_LIMIT * 3;
    for i in 0..total {
        // One shared seed: the accepted portion coalesces while the
        // overflow is refused at admission.
        conn.send_line(&request(&format!("jq-{i}"), 300_000, None))?;
    }
    let mut rejected = 0;
    for _ in 0..total {
        let line = conn.recv_line()?;
        if line.contains("\"kind\":\"job_quota\"") {
            rejected += 1;
        }
    }
    if rejected == 0 {
        return Err(format!(
            "a pipelined burst of {total} never tripped the in-flight quota of {INFLIGHT_LIMIT}"
        ));
    }
    Ok(rejected)
}

/// Overruns the connection quota; surplus clients must each receive one
/// `connection_quota` line and a clean close.
fn conn_quota_probe(addr: &str) -> Result<u64, String> {
    let mut held = Vec::new();
    for i in 0..CONN_LIMIT {
        let mut conn = Conn::open(addr)?;
        // Round-trip one job so the connection is registered server-side
        // before the next one arrives.
        conn.send_line(&request(&format!("cq-{i}"), 400_000 + i as u64, None))?;
        let line = conn.recv_line()?;
        if status_of(&line) != "passed" {
            return Err(format!("quota-holding job failed: {line}"));
        }
        held.push(conn);
    }
    let mut refused = 0;
    for _ in 0..2 {
        let mut conn = Conn::open(addr)?;
        let line = conn.recv_line()?;
        if !line.contains("\"kind\":\"connection_quota\"") {
            return Err(format!("expected a connection_quota line, got: {line}"));
        }
        let mut rest = String::new();
        conn.reader
            .read_to_string(&mut rest)
            .map_err(|e| format!("read to close: {e}"))?;
        if !rest.is_empty() {
            return Err("refused connection was not closed after the quota line".to_string());
        }
        refused += 1;
    }
    drop(held);
    Ok(refused)
}

/// Streams a request fixture through the socket and returns the raw
/// transcript for the golden diff.
///
/// Paced one request at a time: the golden fixture predates any quota
/// configuration, so the replay must never overrun the server's
/// in-flight limit — a `job_quota` line in the transcript would be a
/// spurious diff, not a protocol regression.
fn replay(addr: &str, requests_path: &PathBuf) -> Result<String, String> {
    let requests = std::fs::read_to_string(requests_path)
        .map_err(|e| format!("read {}: {e}", requests_path.display()))?;
    let mut conn = Conn::open(addr)?;
    let mut transcript = String::new();
    for line in requests.lines() {
        if line.trim().is_empty() {
            continue;
        }
        conn.send_line(line)?;
        transcript.push_str(&conn.recv_line()?);
        transcript.push('\n');
    }
    conn.stream
        .shutdown(Shutdown::Write)
        .map_err(|e| format!("half-close: {e}"))?;
    let mut rest = String::new();
    conn.reader
        .read_to_string(&mut rest)
        .map_err(|e| format!("drain close: {e}"))?;
    transcript.push_str(&rest);
    Ok(transcript)
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

struct BenchRow {
    label: String,
    median_ns: u64,
    min_ns: u64,
    max_ns: u64,
    samples: usize,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn rows_for(label: &str, stats: &PhaseStats) -> Vec<BenchRow> {
    let mut sorted = stats.latencies_ns.clone();
    sorted.sort_unstable();
    let samples = sorted.len();
    let mut rows = vec![BenchRow {
        label: format!("serve_net/{label}"),
        median_ns: percentile(&sorted, 0.5),
        min_ns: sorted.first().copied().unwrap_or(0),
        max_ns: sorted.last().copied().unwrap_or(0),
        samples,
    }];
    for (suffix, q) in [("p90", 0.90), ("p99", 0.99)] {
        let p = percentile(&sorted, q);
        rows.push(BenchRow {
            label: format!("serve_net/{label}/{suffix}"),
            median_ns: p,
            min_ns: p,
            max_ns: p,
            samples,
        });
    }
    rows
}

/// Percentile rows for the server-side `serve/latency_ns` histogram from
/// the child's trace export (log2-bucket upper bounds, clamped to max).
fn server_histogram_rows(trace: &Value) -> Vec<BenchRow> {
    let Some(hist) = trace
        .get("histograms")
        .and_then(|h| h.get("serve/latency_ns"))
    else {
        return Vec::new();
    };
    let count = hist.get("count").and_then(Value::as_u64).unwrap_or(0);
    let max = hist.get("max").and_then(Value::as_u64).unwrap_or(0);
    let Some(buckets) = hist.get("buckets").and_then(Value::as_array) else {
        return Vec::new();
    };
    if count == 0 {
        return Vec::new();
    }
    let quantile = |q: f64| -> u64 {
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0;
        for bucket in buckets {
            let pair = bucket.as_array().unwrap_or(&[]);
            let hi = pair.first().and_then(Value::as_u64).unwrap_or(0);
            let c = pair.get(1).and_then(Value::as_u64).unwrap_or(0);
            seen += c;
            if seen >= rank {
                return hi.min(max);
            }
        }
        max
    };
    [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)]
        .iter()
        .map(|(suffix, q)| {
            let p = quantile(*q);
            BenchRow {
                label: format!("serve_net/server_latency/{suffix}"),
                median_ns: p,
                min_ns: p,
                max_ns: p,
                samples: count as usize,
            }
        })
        .collect()
}

fn write_bench_json(path: &PathBuf, rows: &[BenchRow]) -> Result<(), String> {
    let mut out = String::from("{\"schema\":\"morph-bench/1\",\"benchmarks\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"label\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}",
            row.label, row.median_ns, row.min_ns, row.max_ns, row.samples
        ));
    }
    out.push_str("]}");
    std::fs::write(path, out).map_err(|e| format!("write {}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

fn run(args: &Args) -> Result<(), String> {
    morph_trace::set_enabled(true);

    let (server, addr) = match &args.addr {
        Some(addr) => (None, addr.clone()),
        None => {
            let (server, addr) = SpawnedServer::spawn(args.serve_bin.as_ref())?;
            (Some(server), addr)
        }
    };
    eprintln!("loadgen: target {addr} (quick={})", args.quick);

    let (hot_rounds, cold_n, deadline_n) = if args.quick { (3, 6, 4) } else { (10, 32, 16) };

    let hot = hot_bursts(&addr, hot_rounds)?;
    let cold = cold_sweep(&addr, cold_n)?;
    let (deadline, expired) = mixed_deadlines(&addr, deadline_n)?;
    let job_quota_rejections = job_quota_probe(&addr)?;
    let conn_quota_rejections = conn_quota_probe(&addr)?;

    let mut replay_checked = false;
    if let Some(requests_path) = &args.replay {
        let transcript = replay(&addr, requests_path)?;
        if let Some(golden_path) = &args.golden {
            let golden = std::fs::read_to_string(golden_path)
                .map_err(|e| format!("read {}: {e}", golden_path.display()))?;
            if transcript != golden {
                return Err(format!(
                    "streamed transcript differs from {} ({} vs {} bytes)",
                    golden_path.display(),
                    transcript.len(),
                    golden.len()
                ));
            }
            replay_checked = true;
        }
    }

    // Stop the server and audit its counters: the network path must have
    // actually coalesced and actually enforced both quotas.
    let mut rows = Vec::new();
    rows.extend(rows_for("hot", &hot));
    rows.extend(rows_for("cold", &cold));
    rows.extend(rows_for("deadline_mixed", &deadline));
    if let Some(server) = server {
        let trace = server.stop()?;
        for (name, observed_floor) in [
            ("serve/coalesced_hit", 1),
            ("serve/job_quota_rejected", job_quota_rejections),
            ("serve/conn_quota_rejected", conn_quota_rejections),
            ("serve/characterize_leader", 1),
        ] {
            let total = counter_total(&trace, name);
            if total < observed_floor {
                return Err(format!(
                    "server counter {name} = {total}, expected >= {observed_floor}"
                ));
            }
            eprintln!("loadgen: server {name} = {total}");
        }
        rows.extend(server_histogram_rows(&trace));
    }

    write_bench_json(&args.out, &rows)?;
    if let Some(path) = &args.trace_json {
        std::fs::write(path, morph_trace::export_json())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }

    eprintln!(
        "loadgen: ok — {} hot, {} cold, {} deadline samples; {} expired deadlines, \
         {job_quota_rejections} job-quota and {conn_quota_rejections} connection-quota \
         rejections{}; wrote {}",
        hot.latencies_ns.len(),
        cold.latencies_ns.len(),
        deadline.latencies_ns.len(),
        expired,
        if replay_checked {
            "; golden replay matched byte-for-byte"
        } else {
            ""
        },
        args.out.display()
    );
    Ok(())
}

fn main() -> std::process::ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            if message != USAGE {
                eprintln!("{USAGE}");
            }
            return std::process::ExitCode::from(1);
        }
    };
    match run(&args) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("loadgen: {message}");
            std::process::ExitCode::from(1)
        }
    }
}
