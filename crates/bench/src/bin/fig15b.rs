//! Fig 15(b): validation time by optimization solver (SGD/Adam, genetic
//! algorithm, simulated annealing, quadratic programming) as the number of
//! sampled inputs — hence the dimensionality of the α search — grows.

use std::time::Instant;

use morph_bench::rows::{fmt_f, print_table, save_csv};
use morph_clifford::InputEnsemble;
use morph_qprog::{Circuit, TracepointId};
use morphqpv::{
    characterize_cached, validate_assertion, AssumeGuarantee, CharacterizationConfig,
    RelationPredicate, SolverKind, ValidationConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 4usize;
    // The solver comparison re-times validation only; the characterization
    // at each sweep point is cacheable (set MORPH_CACHE_DIR to skip it
    // entirely on reruns of this figure).
    let mut cache = morph_bench::cache_from_env();
    let mut circuit = Circuit::new(n);
    circuit.tracepoint(1, &(0..n).collect::<Vec<_>>());
    circuit.extend_from(&morph_qalgo::shor_circuit(n));
    circuit.tracepoint(2, &(0..n).collect::<Vec<_>>());

    // Assertion that requires real optimization work: find the maximum
    // displacement the program induces (always failing, so the solver must
    // locate the witness).
    let assertion = AssumeGuarantee::new().guarantee_relation(
        TracepointId(1),
        TracepointId(2),
        RelationPredicate::Equal,
    );

    let mut rows = Vec::new();
    for &n_samples in &[8usize, 16, 32, 64] {
        let mut rng = StdRng::seed_from_u64(5);
        let config = CharacterizationConfig {
            ensemble: InputEnsemble::Clifford,
            n_samples,
            ..CharacterizationConfig::exact((0..n).collect(), n_samples)
        };
        let ch = characterize_cached(&circuit, &config, &mut rng, &mut cache);
        for solver in [
            SolverKind::GradientAscent,
            SolverKind::Genetic,
            SolverKind::Annealing,
            SolverKind::Quadratic,
            SolverKind::NelderMead,
        ] {
            let vconfig = ValidationConfig {
                solver,
                ..Default::default()
            };
            let t0 = Instant::now();
            let outcome = validate_assertion(&assertion, &ch, &vconfig, &mut rng);
            let dt = t0.elapsed().as_secs_f64();
            rows.push(vec![
                solver.name().to_string(),
                n_samples.to_string(),
                fmt_f(dt),
                fmt_f(outcome.optimum.value),
                (!outcome.verdict.passed()).to_string(),
            ]);
        }
    }
    let csv = print_table(
        "Fig 15(b): validation time by solver vs N_sample (4-qubit Shor equality assertion)",
        &[
            "solver",
            "N_sample",
            "seconds",
            "objective",
            "found_violation",
        ],
        &rows,
    );
    save_csv("fig15b", &csv);
    println!("\ncharacterization cache: {}", cache.stats());
    println!("\nExpected shape: cost grows polynomially with N_sample; QP is fastest");
    println!("at small dimension (the paper's Gurobi observation), population methods");
    println!("pay a larger constant.");
}
