//! Validates `morph-serve` response lines against the protocol schema.
//!
//! ```text
//! usage: serve_lint <responses.jsonl> <schema.json>
//! ```
//!
//! Each non-empty line of the responses file is validated independently
//! against `docs/serve-protocol.schema.json` (violations are reported as
//! `line N $.path: …`). Exit code `0` when every line conforms, `1` on any
//! violation or I/O/parse error.
//!
//! The validation logic is [`morph_bench::schema_lint`], shared with
//! `trace_lint`.

use morph_bench::schema_lint::{load, validate};
use serde::json::parse;

const USAGE: &str = "usage: serve_lint <responses.jsonl> <schema.json>";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [responses_path, schema_path] = args.as_slice() else {
        eprintln!("{USAGE}");
        return 1;
    };
    let text = match std::fs::read_to_string(responses_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{responses_path}: {e}");
            return 1;
        }
    };
    let schema = match load(schema_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{schema_path}: {e}");
            return 1;
        }
    };

    let mut errors = Vec::new();
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        match parse(line) {
            Ok(doc) => {
                let mut line_errors = Vec::new();
                validate(&doc, &schema, &schema, "$", &mut line_errors);
                errors.extend(
                    line_errors
                        .into_iter()
                        .map(|e| format!("line {}: {e}", i + 1)),
                );
            }
            Err(e) => errors.push(format!("line {}: bad JSON: {e}", i + 1)),
        }
    }
    if lines == 0 {
        eprintln!("{responses_path}: no response lines");
        return 1;
    }
    if errors.is_empty() {
        println!("{responses_path}: OK ({lines} response line(s))");
        0
    } else {
        for e in &errors {
            eprintln!("{responses_path}: {e}");
        }
        eprintln!("{responses_path}: {} schema violation(s)", errors.len());
        1
    }
}
