//! Fig 11(a): wall-clock time to obtain a tracepoint state under one input
//! — MorphQPV's approximation vs classical simulation vs state tomography
//! vs process tomography.
//!
//! Approximation and simulation are measured at every size. The tomography
//! columns are measured while tractable and extrapolated with their exact
//! setting-count models beyond (state: `(4^n − 1) × shots`, process:
//! `d² probes × state tomography`), matching how their cost explodes in
//! the paper (11.4 days for 10-qubit process tomography).

use std::time::Instant;

use morph_bench::rows::{fmt_f, print_table, save_csv};
use morph_clifford::InputEnsemble;
use morph_qprog::{Circuit, Executor, TracepointId};
use morph_qsim::StateVector;
use morph_tomography::{process_tomography, read_state, CostLedger, ReadoutMode};
use morphqpv::{characterize, CharacterizationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHOTS: usize = 1000;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut rows = Vec::new();

    for &n in &[2usize, 4, 6, 8, 10] {
        let mut circuit = Circuit::new(n);
        circuit.extend_from(&morph_qalgo::shor_circuit(n));
        circuit.tracepoint(1, &(0..n).collect::<Vec<_>>());

        // One-shot characterization (amortized over verification).
        let config = CharacterizationConfig {
            n_samples: 2 * n + 2,
            ..CharacterizationConfig::exact((0..n).collect(), 2 * n + 2)
        };
        let ch = characterize(&circuit, &config, &mut rng);
        let f = ch.approximation(TracepointId(1));
        let probe = InputEnsemble::Clifford.generate(n, 1, &mut rng).remove(0);

        // (1) MorphQPV approximation: one predict call.
        let t0 = Instant::now();
        let _ = f.predict(&probe.rho).unwrap();
        let t_approx = t0.elapsed().as_secs_f64();

        // (2) Classical simulation of the program under this input.
        let t0 = Instant::now();
        let record = Executor::default().run_expected(
            &{
                let mut full = Circuit::new(n);
                full.extend_from(&probe.prep);
                full.extend_from(&circuit);
                full
            },
            &StateVector::zero_state(n),
        );
        let truth = record.state(TracepointId(1)).clone();
        let t_sim = t0.elapsed().as_secs_f64();

        // (3) State tomography (measured ≤ 6 qubits, modeled beyond).
        let (t_state, state_label) = if n <= 6 {
            let mut ledger = CostLedger::new();
            let t0 = Instant::now();
            let _ = read_state(&truth, ReadoutMode::Shots(SHOTS), 1, &mut ledger, &mut rng);
            (t0.elapsed().as_secs_f64(), "measured")
        } else {
            // Time per setting measured at 6 qubits scales with 4^n
            // settings and the 2^n-dim reconstruction.
            let settings = 4f64.powi(n as i32) - 1.0;
            let per_setting = 2.5e-6 * SHOTS as f64 / 1000.0 + 1e-9 * 4f64.powi(n as i32);
            (settings * per_setting, "model")
        };

        // (4) Process tomography (measured ≤ 4 qubits, modeled beyond).
        let (t_process, process_label) = if n <= 4 {
            let body = circuit.clone();
            let channel = |rho_in: &morph_linalg::CMatrix| -> morph_linalg::CMatrix {
                // Exact channel application via the program unitary.
                let mut u = morph_linalg::CMatrix::identity(1 << n);
                for inst in body.instructions() {
                    if let morph_qprog::Instruction::Gate(g) = inst {
                        u = g.full_matrix(n).matmul(&u);
                    }
                }
                u.matmul(rho_in).matmul(&u.dagger())
            };
            let mut ledger = CostLedger::new();
            let t0 = Instant::now();
            let _ = process_tomography(
                n,
                channel,
                ReadoutMode::Shots(200),
                1,
                &mut ledger,
                &mut rng,
            );
            (t0.elapsed().as_secs_f64(), "measured")
        } else {
            let d = 2f64.powi(n as i32);
            let probes = d * d;
            let settings = 4f64.powi(n as i32) - 1.0;
            let per_setting = 5e-7 * 200.0 / 1000.0 + 1e-9 * 4f64.powi(n as i32);
            (probes * settings * per_setting, "model")
        };

        rows.push(vec![
            n.to_string(),
            fmt_f(t_approx),
            fmt_f(t_sim),
            format!("{} ({state_label})", fmt_f(t_state)),
            format!("{} ({process_label})", fmt_f(t_process)),
        ]);
    }

    let csv = print_table(
        "Fig 11(a): seconds to obtain a tracepoint state under one input",
        &[
            "qubits",
            "approximation",
            "simulation",
            "state_tomography",
            "process_tomography",
        ],
        &rows,
    );
    save_csv("fig11a", &csv);
    println!("\nExpected shape: approximation stays near-constant; simulation grows");
    println!("exponentially but stays fast; state tomography pays 4^n settings;");
    println!("process tomography pays d^2 more on top (paper: 11.4 days at 10 qubits).");
}
