//! Fig 13: ablation of the three sample-space pruning strategies of
//! Section 5.4.
//!
//! (a) Strategy-adapt and Strategy-const reduce the *number of sampled
//!     inputs* needed to reach a target accuracy on the inputs that
//!     actually matter (a workload dataset / a pinned sub-register).
//! (b) Strategy-prop reduces the *shots* of the characterization by
//!     reading only the asserted property (probabilities) instead of full
//!     state tomography.

use morph_bench::rows::{fmt_f, print_table, save_csv};
use morph_clifford::{InputEnsemble, InputState};
use morph_qalgo::{iris_like_dataset, Qnn};
use morph_qprog::{Circuit, TracepointId};
use morph_tomography::ReadoutMode;
use morphqpv::{
    adaptive_operator_inputs, characterize, characterize_with_inputs, constant_pinned_inputs,
    CharacterizationConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mean representation accuracy of a characterization over the given test
/// inputs.
fn accuracy_on(ch: &morphqpv::Characterization, tests: &[morph_linalg::CMatrix]) -> f64 {
    let f = ch.approximation(TracepointId(1));
    tests
        .iter()
        .map(|rho| f.representation_accuracy(rho).unwrap_or(0.0))
        .sum::<f64>()
        / tests.len() as f64
}

/// Smallest budget from `budgets` reaching `target` accuracy; the largest
/// budget if none does.
fn samples_needed(
    budgets: &[usize],
    target: f64,
    mut run: impl FnMut(usize) -> f64,
) -> (usize, f64) {
    for &b in budgets {
        let acc = run(b);
        if acc >= target {
            return (b, acc);
        }
    }
    let last = *budgets.last().expect("nonempty budgets");
    (last, run(last))
}

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    let mut rows_a = Vec::new();

    // ---- (a) Strategy-adapt on a 4-qubit QNN over the Iris-like workload.
    let model = Qnn::random(4, 2, &mut rng);
    let mut qnn = Circuit::new(4);
    qnn.extend_from(&model.body());
    qnn.tracepoint(1, &[0, 1, 2, 3]);
    // Workload: encoded dataset states.
    let dataset: Vec<InputState> = iris_like_dataset(40, &mut rng)
        .iter()
        .map(|s| {
            let prep = model.encoder(&s.attributes);
            let mut psi = morph_qsim::StateVector::zero_state(4);
            for inst in prep.instructions() {
                if let morph_qprog::Instruction::Gate(g) = inst {
                    g.apply(&mut psi);
                }
            }
            let rho = psi.density_matrix();
            InputState {
                prep,
                state: psi,
                rho,
            }
        })
        .collect();
    let workload_rhos: Vec<morph_linalg::CMatrix> = dataset.iter().map(|d| d.rho.clone()).collect();
    let budgets = [2usize, 4, 6, 9, 12, 16, 24, 32, 48, 64];
    let target = 0.95;

    let (baseline_n, baseline_acc) = samples_needed(&budgets, target, |b| {
        let config = CharacterizationConfig {
            n_samples: b,
            ..CharacterizationConfig::exact(vec![0, 1, 2, 3], b)
        };
        let ch = characterize(&qnn, &config, &mut rng);
        accuracy_on(&ch, &workload_rhos)
    });
    let (adapt_n, adapt_acc) = samples_needed(&budgets, target, |b| {
        // b probes correspond to a ⌊√b⌋-dimensional dominant subspace.
        let k = ((b as f64).sqrt() as usize).clamp(1, 16);
        let (inputs, _) = adaptive_operator_inputs(&workload_rhos, k);
        let config = CharacterizationConfig {
            n_samples: inputs.len(),
            ..CharacterizationConfig::exact(vec![0, 1, 2, 3], inputs.len())
        };
        let ch = characterize_with_inputs(&qnn, &config, inputs, &mut rng);
        accuracy_on(&ch, &workload_rhos)
    });
    rows_a.push(vec![
        "QNN 4q, no pruning".into(),
        baseline_n.to_string(),
        fmt_f(baseline_acc),
    ]);
    rows_a.push(vec![
        "QNN 4q, Strategy-adapt".into(),
        adapt_n.to_string(),
        fmt_f(adapt_acc),
    ]);

    // ---- (a) Strategy-const on a 6-qubit Shor circuit: half the input
    // register pinned to |0…0⟩.
    let mut shor = Circuit::new(6);
    shor.extend_from(&morph_qalgo::shor_circuit(6));
    shor.tracepoint(1, &(0..6).collect::<Vec<_>>());
    // Test inputs live in the pinned subspace.
    let pinned_tests: Vec<morph_linalg::CMatrix> = {
        let free = InputEnsemble::Clifford.generate(3, 12, &mut rng);
        constant_pinned_inputs(&free, &[3, 4, 5], &[0, 1, 2], 0)
            .into_iter()
            .map(|i| i.rho)
            .collect()
    };
    let (full_n, full_acc) = samples_needed(&budgets, target, |b| {
        let config = CharacterizationConfig {
            n_samples: b,
            ..CharacterizationConfig::exact((0..6).collect(), b)
        };
        let ch = characterize(&shor, &config, &mut rng);
        accuracy_on(&ch, &pinned_tests)
    });
    let (const_n, const_acc) = samples_needed(&budgets, target, |b| {
        let free = InputEnsemble::PauliProduct.generate(3, b, &mut rng);
        let inputs = constant_pinned_inputs(&free, &[3, 4, 5], &[0, 1, 2], 0);
        let config = CharacterizationConfig {
            n_samples: inputs.len(),
            ..CharacterizationConfig::exact((0..6).collect(), inputs.len())
        };
        let ch = characterize_with_inputs(&shor, &config, inputs, &mut rng);
        accuracy_on(&ch, &pinned_tests)
    });
    rows_a.push(vec![
        "Shor 6q, no pruning".into(),
        full_n.to_string(),
        fmt_f(full_acc),
    ]);
    rows_a.push(vec![
        "Shor 6q, Strategy-const".into(),
        const_n.to_string(),
        fmt_f(const_acc),
    ]);

    let csv_a = print_table(
        "Fig 13(a): sampled inputs needed for 95% accuracy on the relevant inputs",
        &["setting", "N_sample", "accuracy"],
        &rows_a,
    );
    save_csv("fig13a", &csv_a);

    // ---- (b) Strategy-prop: shots of full tomography vs probability-only.
    let mut rows_b = Vec::new();
    for &n in &[3usize, 4, 5, 6] {
        let mut circ = Circuit::new(n);
        circ.extend_from(&morph_qalgo::shor_circuit(n));
        circ.tracepoint(1, &(0..n).collect::<Vec<_>>());
        let shots = 1000usize;
        let base_cfg = CharacterizationConfig {
            n_samples: 6,
            readout: ReadoutMode::Shots(shots),
            ..CharacterizationConfig::exact((0..n).collect(), 6)
        };
        let full = characterize(&circ, &base_cfg, &mut rng);
        let prop_cfg = CharacterizationConfig {
            readout: ReadoutMode::ProbabilitiesOnly(shots),
            ..base_cfg.clone()
        };
        let prop = characterize(&circ, &prop_cfg, &mut rng);
        // Extension: classical-shadow readout — flat single-shot snapshot
        // budget instead of 4^k − 1 settings.
        let shadow_cfg = CharacterizationConfig {
            readout: ReadoutMode::Shadow(shots),
            ..base_cfg
        };
        let shadow = characterize(&circ, &shadow_cfg, &mut rng);
        rows_b.push(vec![
            format!("Shor {n}q"),
            full.ledger.shots.to_string(),
            prop.ledger.shots.to_string(),
            shadow.ledger.shots.to_string(),
            fmt_f(full.ledger.shots as f64 / prop.ledger.shots as f64),
        ]);
    }
    let csv_b = print_table(
        "Fig 13(b): characterization shots — full tomography vs Strategy-prop vs shadows",
        &[
            "setting",
            "shots_full",
            "shots_prop",
            "shots_shadow",
            "prop_reduction",
        ],
        &rows_b,
    );
    save_csv("fig13b", &csv_b);
    println!("\nExpected shape: adapt/const cut the sample count by integer factors;");
    println!("prop cuts shots by the tomography setting count 4^N_T − 1 (paper: up to");
    println!("82.1x at 10 qubits).");
}
