//! Command-line verifier: check a surface-syntax program file containing
//! `T <id> q[..]` tracepoints and `// assert <spec>` comments.
//!
//! ```text
//! usage: verify <program.qasm> [--inputs 0,1,...] [--samples N] [--seed S]
//! ```
//!
//! Exit code 0 when every assertion passes, 1 when any fails, 2 on usage
//! or parse errors.

use morphqpv::{verify_source, Verdict};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut inputs: Vec<usize> = Vec::new();
    let mut samples: Option<usize> = None;
    let mut seed = 0u64;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--inputs" => {
                let Some(v) = it.next() else {
                    eprintln!("--inputs requires a comma-separated list");
                    return 2;
                };
                inputs = match v.split(',').map(|s| s.trim().parse()).collect() {
                    Ok(list) => list,
                    Err(_) => {
                        eprintln!("invalid qubit list {v:?}");
                        return 2;
                    }
                };
            }
            "--samples" => {
                samples = it.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0);
                if samples.is_none() {
                    eprintln!("--samples requires a positive integer");
                    return 2;
                }
            }
            "--seed" => {
                seed = match it.next().and_then(|v| v.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed requires an integer");
                        return 2;
                    }
                };
            }
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: verify <program.qasm> [--inputs 0,1,...] [--samples N] [--seed S]"
                );
                return 2;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: verify <program.qasm> [--inputs 0,1,...] [--samples N] [--seed S]");
        return 2;
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    // Default input register: qubit 0 (documented in --help text above);
    // the tracepoint pragma determines what gets asserted.
    if inputs.is_empty() {
        inputs = vec![0];
    }

    let mut rng = StdRng::seed_from_u64(seed);
    // verify_source applies the default sample budget; re-run through the
    // builder when --samples was given.
    let report = if let Some(n) = samples {
        let circuit = match morph_qprog::parse_program(&source) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        };
        let assertions = match morphqpv::assertions_from_source(&source) {
            Ok(a) if !a.is_empty() => a,
            Ok(_) => {
                eprintln!("no `// assert` specifications in {path}");
                return 2;
            }
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        };
        let mut verifier = morphqpv::Verifier::new(circuit)
            .input_qubits(&inputs)
            .samples(n);
        for a in assertions {
            verifier = verifier.assert_that(a);
        }
        verifier.run(&mut rng)
    } else {
        match verify_source(&source, &inputs, &mut rng) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    };

    let mut failed = false;
    for (i, outcome) in report.outcomes.iter().enumerate() {
        match &outcome.verdict {
            Verdict::Passed {
                max_objective,
                confidence,
            } => {
                println!(
                    "assertion {i}: PASSED (max objective {max_objective:.3e}, confidence {confidence:.3})"
                );
            }
            Verdict::Failed {
                max_objective,
                counterexample,
                ..
            } => {
                failed = true;
                println!("assertion {i}: FAILED (objective {max_objective:.3})");
                let refined = morphqpv::CounterExample::refine(counterexample);
                println!(
                    "  counter-example: dominant basis state |{:b}>, dominance {:.2}",
                    refined.dominant_basis_state(),
                    refined.dominance
                );
            }
        }
    }
    println!("cost: {}", report.ledger());
    if failed {
        1
    } else {
        0
    }
}
