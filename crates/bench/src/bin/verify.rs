//! Command-line verifier: check a surface-syntax program file containing
//! `T <id> q[..]` tracepoints and `// assert <spec>` comments.
//!
//! ```text
//! usage: verify <program.qasm> [--inputs 0,1,...] [--samples N] [--seed S]
//!               [--restarts N] [--cache-dir DIR] [--no-cache]
//!               [--incremental] [--segment-gates N] [--ensemble NAME]
//!               [--trace-json PATH]
//! ```
//!
//! Exit codes follow the grep convention for checkers:
//!
//! - `0` — every assertion confirmed,
//! - `2` — at least one assertion refuted (a counter-example was found),
//! - `1` — usage, parse, or runtime error (including a structurally failed
//!   solve, e.g. `--restarts 0`).
//!
//! Characterization caching: `--cache-dir DIR` (or the `MORPH_CACHE_DIR`
//! environment variable) persists characterization artifacts in a
//! morph-store directory, so re-verifying the same program/configuration/
//! seed charges zero new simulator cost. `--no-cache` disables the cache
//! even when the environment variable is set.
//!
//! Incremental verification: `--incremental` (or `MORPH_INCREMENTAL=1`)
//! characterizes the program segment by segment against the cache, so
//! re-verifying an edited program recomputes only the segments the edit
//! touched; the report gains a `segments: H hits, M misses` line.
//! `--segment-gates N` (or `MORPH_SEGMENT_GATES`) overrides the target
//! segment length. With `--cache-dir`, segment artifacts persist across
//! invocations; without it, the cache (and thus reuse) is in-memory and
//! limited to duplicate segments within the run.
//!
//! `--ensemble NAME` selects the input ensemble (`clifford`, the default;
//! `pauli_product`; `basis`). Incremental runs fit each segment over the
//! full register width, so chained predictions are exact only when the
//! ensemble spans the operator space — `pauli_product` with
//! `--samples 4^width` guarantees that; the default `clifford` ensemble
//! may report approximate verdicts under `--incremental`.
//!
//! Telemetry: `--trace-json PATH` (or `MORPH_TRACE=1` for a stderr summary
//! without the file) enables the `morph-trace` recorder and writes the span
//! tree as JSON. Tracing never changes the verification results or the
//! stdout report — only stderr and the trace file carry the extra output.

use morphqpv::{
    CharacterizationCache, InputEnsemble, MorphError, SegmentedCache, SegmentedConfig,
    ValidationConfig, Verdict,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const USAGE: &str = "usage: verify <program.qasm> [--inputs 0,1,...] [--samples N] [--seed S] [--restarts N] [--cache-dir DIR] [--no-cache] [--incremental] [--segment-gates N] [--ensemble NAME] [--trace-json PATH]";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut inputs: Vec<usize> = Vec::new();
    let mut samples: Option<usize> = None;
    let mut seed = 0u64;
    let mut cache_dir: Option<String> = std::env::var("MORPH_CACHE_DIR").ok();
    let mut no_cache = false;
    let mut restarts: Option<usize> = None;
    let mut trace_json: Option<String> = None;
    // MORPH_INCREMENTAL=1 turns the flag on from the environment (any
    // nonzero value counts); the flag itself always wins.
    let mut incremental = matches!(
        morph_trace::env_knob::<usize>("MORPH_INCREMENTAL"),
        Some(n) if n != 0
    );
    let mut segment_gates: Option<usize> = None;
    let mut ensemble: Option<InputEnsemble> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--inputs" => {
                let Some(v) = it.next() else {
                    eprintln!("--inputs requires a comma-separated list");
                    return 1;
                };
                inputs = match v.split(',').map(|s| s.trim().parse()).collect() {
                    Ok(list) => list,
                    Err(_) => {
                        eprintln!("invalid qubit list {v:?}");
                        return 1;
                    }
                };
            }
            "--samples" => {
                samples = it.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0);
                if samples.is_none() {
                    eprintln!("--samples requires a positive integer");
                    return 1;
                }
            }
            "--seed" => {
                seed = match it.next().and_then(|v| v.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed requires an integer");
                        return 1;
                    }
                };
            }
            "--cache-dir" => {
                cache_dir = match it.next() {
                    Some(dir) => Some(dir),
                    None => {
                        eprintln!("--cache-dir requires a directory path");
                        return 1;
                    }
                };
            }
            "--no-cache" => {
                no_cache = true;
            }
            "--restarts" => {
                restarts = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => Some(n),
                    None => {
                        eprintln!("--restarts requires a non-negative integer");
                        return 1;
                    }
                };
            }
            "--incremental" => {
                incremental = true;
            }
            "--segment-gates" => {
                segment_gates = it.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0);
                if segment_gates.is_none() {
                    eprintln!("--segment-gates requires a positive integer");
                    return 1;
                }
            }
            "--ensemble" => {
                // Same spelling as the serve protocol's `ensemble` knob.
                ensemble = match it.next().as_deref() {
                    Some("clifford") => Some(InputEnsemble::Clifford),
                    Some("pauli_product") => Some(InputEnsemble::PauliProduct),
                    Some("basis") => Some(InputEnsemble::Basis),
                    other => {
                        let got = other.unwrap_or("nothing");
                        eprintln!(
                            "--ensemble expects `clifford`, `pauli_product`, or `basis`, got {got}"
                        );
                        return 1;
                    }
                };
            }
            "--trace-json" => {
                trace_json = match it.next() {
                    Some(p) => Some(p),
                    None => {
                        eprintln!("--trace-json requires a file path");
                        return 1;
                    }
                };
            }
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("{USAGE}");
                return 1;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return 1;
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 1;
        }
    };
    // Default input register: qubit 0 (documented in --help text above);
    // the tracepoint pragma determines what gets asserted.
    if inputs.is_empty() {
        inputs = vec![0];
    }

    // All pipeline failures funnel through MorphError so the binary's exit
    // code is the workspace-wide convention (0 passed / 2 refuted / 1
    // failure) rather than ad-hoc per-site values.
    let circuit = match morph_qprog::parse_program(&source) {
        Ok(c) => c,
        Err(e) => {
            let e = MorphError::from(e);
            eprintln!("{e}");
            return e.exit_code();
        }
    };
    let assertions = match morphqpv::assertions_from_source(&source) {
        Ok(a) if !a.is_empty() => a,
        Ok(_) => {
            eprintln!("no `// assert` specifications in {path}");
            return 1;
        }
        Err(e) => {
            let e = MorphError::from(e);
            eprintln!("{e}");
            return e.exit_code();
        }
    };
    // MORPH_TRACE=1 enables the recorder even without a --trace-json file
    // (summary on stderr); the flag enables it unconditionally.
    morph_trace::enable_from_env();
    if trace_json.is_some() {
        morph_trace::set_enabled(true);
    }

    let mut verifier = morphqpv::Verifier::new(circuit).input_qubits(&inputs);
    if let Some(n) = samples {
        verifier = verifier.samples(n);
    }
    if let Some(e) = ensemble {
        verifier = verifier.ensemble(e);
    }
    if restarts.is_some() {
        verifier = verifier.validation(ValidationConfig {
            solver_restarts: restarts,
            ..ValidationConfig::default()
        });
    }
    for a in assertions {
        verifier = verifier.assert_that(a);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let persist = !no_cache && cache_dir.is_some();
    // Incremental runs key the cache by segment; whole-run caching keys
    // it by the full characterization. Only one of the two is open.
    let mut cache: Option<CharacterizationCache> = None;
    let mut seg_cache: Option<SegmentedCache> = None;
    if incremental {
        seg_cache = Some(match (&cache_dir, no_cache) {
            (Some(dir), false) => match SegmentedCache::open(dir) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot open cache directory {dir}: {e}");
                    return 1;
                }
            },
            _ => SegmentedCache::in_memory(),
        });
    } else if persist {
        let dir = cache_dir.as_deref().expect("persist implies a directory");
        cache = match CharacterizationCache::open(dir) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("cannot open cache directory {dir}: {e}");
                return 1;
            }
        };
    }
    let result = if let Some(seg_cache) = &mut seg_cache {
        let seg = match segment_gates {
            Some(g) => SegmentedConfig::new().segment_gates(g),
            None => SegmentedConfig::from_env(),
        };
        verifier
            .incremental(seg)
            .try_run_incremental(&mut rng, seg_cache)
    } else {
        match &mut cache {
            Some(cache) => verifier.try_run_with_cache(&mut rng, cache),
            None => verifier.try_run(&mut rng),
        }
        .map_err(MorphError::from)
    };
    let report = match result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("{e}");
            write_trace(trace_json.as_deref());
            return e.exit_code();
        }
    };

    for (i, outcome) in report.outcomes.iter().enumerate() {
        match &outcome.verdict {
            Verdict::Passed {
                max_objective,
                confidence,
            } => {
                println!(
                    "assertion {i}: PASSED (max objective {max_objective:.3e}, confidence {confidence:.3})"
                );
            }
            Verdict::Failed {
                max_objective,
                counterexample,
                ..
            } => {
                println!("assertion {i}: FAILED (objective {max_objective:.3})");
                let refined = morphqpv::CounterExample::refine(counterexample);
                println!(
                    "  counter-example: dominant basis state |{:b}>, dominance {:.2}",
                    refined.dominant_basis_state(),
                    refined.dominance
                );
            }
        }
    }
    println!("cost: {}", report.ledger());
    println!("backend: {}", report.run.backend.tag());
    // Printed only when a sparse register ran. The stats round-trip
    // through the artifact store, so warm (cached) runs print the same
    // line the cold run did and stdout stays byte-identical.
    let fp = &report.run.fast_path;
    if !fp.is_empty() {
        println!(
            "fast-path: {} spills, {} switches, {} splices, peak {} nonzeros",
            fp.spills, fp.switches, fp.splices, fp.peak_nonzeros
        );
    }
    if let Some(cache) = &cache {
        println!("cache: {}", cache.stats());
    }
    if let Some(seg_cache) = &seg_cache {
        if persist {
            println!("cache: {}", seg_cache.stats());
        }
        let c = report.run.cache.unwrap_or_default();
        println!(
            "segments: {} hits, {} misses",
            c.segment_hits, c.segment_misses
        );
    }
    if morph_trace::enabled() {
        let run = &report.run;
        eprintln!(
            "trace: {} executions, {} shots, {} quantum ops, solver {} evaluations / {} iterations",
            run.executions,
            run.shots,
            run.quantum_ops,
            run.solver_evaluations,
            run.solver_iterations
        );
        if let Some(c) = &run.cache {
            eprintln!(
                "trace: cache {} hits, {} misses, {} writes, saved {} quantum ops",
                c.hits, c.misses, c.writes, c.cost_saved
            );
        }
    }
    write_trace(trace_json.as_deref());
    report.exit_code()
}

/// Writes the recorded span tree to `path` as JSON, if a path was given.
fn write_trace(path: Option<&str>) {
    let Some(path) = path else { return };
    if let Err(e) = std::fs::write(path, morph_trace::export_json()) {
        eprintln!("cannot write trace to {path}: {e}");
    }
}
