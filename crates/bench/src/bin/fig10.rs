//! Fig 10: number of sampled inputs to identify the corrupted QRAM entry,
//! for Quito, NDD, and MorphQPV's tracepoint binary search.
//!
//! Small tables are measured end-to-end (the bisection actually locates the
//! bad address); larger tables use the validated execution models. The
//! QRAM input space is all superpositions, which is where the paper sees
//! an even larger reduction than for the quantum lock.

use morph_baselines::expected_tests_to_find_single_bug;
use morph_bench::rows::{fmt_f, print_table, save_csv};
use morph_bench::{qram_bisection, qram_bisection_cost};
use morph_qalgo::Qram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHOTS: usize = 1000;

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    let mut rows = Vec::new();

    for &n_addr in &[2usize, 3, 4, 5, 6] {
        let table = 1usize << n_addr;
        let values: Vec<f64> = (0..table).map(|i| 0.2 + 0.07 * i as f64).collect();
        let qram = Qram::new(n_addr, values);
        let bad = rng.gen_range(0..table);
        let buggy = qram.circuit_with_bug(bad, qram.values[bad] + 1.4);
        let morph = qram_bisection(&qram, &buggy, SHOTS);
        assert_eq!(
            morph.bad_address,
            Some(bad),
            "bisection must locate the entry"
        );

        // Exhaustive baselines test basis addresses one at a time; expected
        // probes to hit the single bad address.
        let exhaustive = expected_tests_to_find_single_bug(table as u64);
        rows.push(vec![
            format!("{} addr qubits (measured)", n_addr),
            fmt_f(exhaustive),
            fmt_f(exhaustive),
            morph.executions.to_string(),
            fmt_f(exhaustive / morph.executions as f64),
        ]);
    }

    for &n_addr in &[8usize, 10, 12, 14] {
        let table = 1u64 << n_addr;
        let exhaustive = expected_tests_to_find_single_bug(table);
        let morph = qram_bisection_cost(n_addr, SHOTS);
        rows.push(vec![
            format!("{} addr qubits (model)", n_addr),
            fmt_f(exhaustive),
            fmt_f(exhaustive),
            morph.to_string(),
            fmt_f(exhaustive / morph as f64),
        ]);
    }

    let csv = print_table(
        "Fig 10: sampled inputs to identify the QRAM error address",
        &["table", "Quito", "NDD", "MorphQPV", "reduction"],
        &rows,
    );
    save_csv("fig10", &csv);
    println!("\nPaper anchor: up to 31 563x reduction vs Quito — the QRAM input space");
    println!("is a superposition space, so grid search scales far worse than the");
    println!("tracepoint bisection.");
}
