//! Fig 15(a): ablation of the Clifford-group input ensemble against
//! computational-basis sampling (and the Pauli-product tomographic family)
//! on the five benchmarks.
//!
//! Basis states only span the diagonal operator subspace, so their
//! tracepoint predictions plateau early; Clifford states carry
//! superposition and entanglement and keep improving — the paper reports a
//! 64x sample reduction and an 82.2% accuracy gap at fixed budget.

use morph_bench::rows::{fmt_f, print_table, save_csv};
use morph_clifford::InputEnsemble;
use morph_linalg::hs_accuracy;
use morph_qalgo::Benchmark;
use morph_qprog::{Circuit, Executor, TracepointId};
use morph_qsim::StateVector;
use morphqpv::{characterize, CharacterizationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 4usize;
    let mut rows = Vec::new();
    for bench in Benchmark::all() {
        let mut rng = StdRng::seed_from_u64(15);
        let body = bench.circuit(n, &mut rng);
        let n = body.n_qubits();
        let mut circuit = Circuit::new(n);
        circuit.extend_from(&body);
        circuit.tracepoint(1, &(0..n).collect::<Vec<_>>());

        for ensemble in [
            InputEnsemble::Basis,
            InputEnsemble::Clifford,
            InputEnsemble::PauliProduct,
        ] {
            for &n_samples in &[8usize, 32, 64] {
                let config = CharacterizationConfig {
                    n_samples,
                    ensemble,
                    ..CharacterizationConfig::exact((0..n).collect(), n_samples)
                };
                let ch = characterize(&circuit, &config, &mut rng);
                let f = ch.approximation(TracepointId(1));
                let probes = InputEnsemble::Clifford.generate(n, 8, &mut rng);
                let mut acc = 0.0;
                for p in &probes {
                    let mut full = Circuit::new(n);
                    full.extend_from(&p.prep);
                    full.extend_from(&circuit);
                    let truth = Executor::default()
                        .run_expected(&full, &StateVector::zero_state(n))
                        .state(TracepointId(1))
                        .clone();
                    acc += hs_accuracy(&f.predict(&p.rho).unwrap(), &truth);
                }
                rows.push(vec![
                    bench.name().to_string(),
                    format!("{ensemble:?}"),
                    n_samples.to_string(),
                    fmt_f(acc / probes.len() as f64),
                ]);
            }
        }
    }
    let csv = print_table(
        "Fig 15(a): input-ensemble ablation — accuracy by sampling family",
        &["benchmark", "ensemble", "N_sample", "accuracy"],
        &rows,
    );
    save_csv("fig15a", &csv);
    println!("\nExpected shape: Basis plateaus at the diagonal-subspace ceiling;");
    println!("Clifford and PauliProduct keep improving with N_sample, as in the paper.");
}
