//! Table 4: verification success rate and overhead of NDD, Quito, and
//! MorphQPV on the five benchmarks at 3/5/7/9 qubits.
//!
//! Mutation testing: each case injects one random phase gate (filtered to
//! semantically visible bugs); each method gets a five-input budget, as in
//! the paper. Success rate is the fraction of cases flagged; overhead is
//! the mean quantum-operation count (×10³).
//!
//! Per the paper's expressiveness limits, NDD is reported "/" on QNN
//! (its Equal/In comparisons cannot express the expectation-threshold
//! check that benchmark's verification needs).
//!
//! Set `MORPH_TABLE4_CASES` to change the number of mutants per cell
//! (default 10; the paper uses 100).

use morph_baselines::{BugDetector, NddAssertion, QuitoSearch};
use morph_bench::rows::{fmt_f, print_table, save_csv};
use morph_bench::MorphDetector;
use morph_clifford::InputEnsemble;
use morph_qalgo::{inject_phase_bug, Benchmark};
use morph_qprog::{Circuit, Executor};
use morph_qsim::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BUDGET: usize = 5;

/// A mutant is a real bug only if some probe input distinguishes it from
/// the reference exactly.
fn is_visible_bug(reference: &Circuit, mutant: &Circuit, rng: &mut StdRng) -> bool {
    let n = reference.n_qubits();
    let ex = Executor::default();
    for probe in InputEnsemble::Clifford.generate(n, 6, rng) {
        let mut prep_ref = Circuit::new(n);
        prep_ref.extend_from(&probe.prep.remap_qubits(&(0..n).collect::<Vec<_>>(), n));
        let mut a = prep_ref.clone();
        a.extend_from(reference);
        let mut b = prep_ref;
        b.extend_from(mutant);
        let zero = StateVector::zero_state(n);
        let sa = ex.run_expected(
            &{
                let mut c = a;
                c.tracepoint(1, &(0..n).collect::<Vec<_>>());
                c
            },
            &zero,
        );
        let sb = ex.run_expected(
            &{
                let mut c = b;
                c.tracepoint(1, &(0..n).collect::<Vec<_>>());
                c
            },
            &zero,
        );
        let da = sa.state(morph_qprog::TracepointId(1));
        let db = sb.state(morph_qprog::TracepointId(1));
        if (da - db).frobenius_norm() > 1e-6 {
            return true;
        }
    }
    false
}

fn main() {
    let cases: usize = std::env::var("MORPH_TABLE4_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let mut rows = Vec::new();

    for bench in Benchmark::all() {
        for &size in &[3usize, 5, 7, 9] {
            let mut rng = StdRng::seed_from_u64(4000 + size as u64);
            let reference = bench.circuit(size, &mut rng);
            let n = reference.n_qubits();

            // Build `cases` visible mutants.
            let mut mutants = Vec::new();
            let mut guard = 0;
            while mutants.len() < cases && guard < cases * 20 {
                guard += 1;
                let (m, _) = inject_phase_bug(&reference, &mut rng);
                if is_visible_bug(&reference, &m, &mut rng) {
                    mutants.push(m);
                }
            }
            if mutants.is_empty() {
                continue;
            }

            let ndd = NddAssertion::default();
            let quito = QuitoSearch::default();
            let morph = MorphDetector::full_register(n);

            let mut stats = [(0usize, 0f64); 3]; // (found, ops)
            for mutant in &mutants {
                for (i, result) in [
                    ndd.detect(&reference, mutant, BUDGET, &mut rng),
                    quito.detect(&reference, mutant, BUDGET, &mut rng),
                    morph.detect(&reference, mutant, BUDGET, &mut rng),
                ]
                .into_iter()
                .enumerate()
                {
                    if result.bug_found {
                        stats[i].0 += 1;
                    }
                    stats[i].1 += result.ledger.quantum_ops as f64;
                }
            }
            let pct = |found: usize| 100.0 * found as f64 / mutants.len() as f64;
            let kops = |ops: f64| ops / mutants.len() as f64 / 1e3;
            let ndd_unsupported = bench == Benchmark::Qnn;
            rows.push(vec![
                format!("{} {}q", bench.name(), n),
                if ndd_unsupported {
                    "/".into()
                } else {
                    fmt_f(pct(stats[0].0))
                },
                fmt_f(pct(stats[1].0)),
                fmt_f(pct(stats[2].0)),
                if ndd_unsupported {
                    "/".into()
                } else {
                    fmt_f(kops(stats[0].1))
                },
                fmt_f(kops(stats[1].1)),
                fmt_f(kops(stats[2].1)),
            ]);
        }
    }

    let csv = print_table(
        "Table 4: success rate (%) and overhead (x10^3 quantum ops) at a 5-input budget",
        &[
            "benchmark",
            "NDD_succ",
            "Quito_succ",
            "Morph_succ",
            "NDD_kops",
            "Quito_kops",
            "Morph_kops",
        ],
        &rows,
    );
    save_csv("table4", &csv);
    println!("\nExpected shape (paper): MorphQPV 100% everywhere; Quito decays with");
    println!("qubit count and misses phase bugs (QL/XEB); NDD catches phase bugs but");
    println!("misses the lone-counter-example QL and pays exponential synthesis ops;");
    println!("MorphQPV overhead stays flat.");
}
