//! Fig 5: experimental vs theoretical approximation accuracy in quantum
//! teleportation, for case-1 inputs (inside the sampled span) and case-2
//! inputs (random states), as the number of sampled inputs grows.
//!
//! Paper setting: 7-qubit and 15-qubit teleportation with N_in = 3 and 5.
//! Here the payloads are 3 and 5 qubits (9- and 15-qubit coherent
//! teleportation circuits); the theory curve is Theorem 2's
//! `N_sample / 2^(N_in + 1)`.

use morph_bench::rows::{fmt_f, print_table, save_csv};
use morph_clifford::InputEnsemble;
use morph_linalg::CMatrix;
use morph_qalgo::Teleportation;
use morph_qprog::Circuit;
use morphqpv::{characterize, CharacterizationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn accuracy_sweep(payload: usize, rows: &mut Vec<Vec<String>>) {
    let layout = Teleportation::new(payload);
    let n_in = payload;
    let mut circuit = Circuit::new(layout.n_qubits());
    circuit.extend_from(&layout.circuit_coherent());
    circuit.tracepoint(1, &layout.output_qubits());

    let mut rng = StdRng::seed_from_u64(7);
    let paper_full = 1usize << (n_in + 1);
    // Sweep past the paper's 2^(N_in+1) bound up to the strict operator-
    // space dimension 4^N_in (capped for the 5-qubit payload); see
    // EXPERIMENTS.md for the Theorem 2 looseness this exposes.
    let hard_cap = (1usize << (2 * n_in)).min(256);
    let budgets: Vec<usize> = (1..)
        .map(|k| 1usize << k)
        .take_while(|&b| b <= hard_cap)
        .collect();
    for &n_samples in &budgets {
        let config = CharacterizationConfig {
            n_samples,
            ..CharacterizationConfig::exact(layout.input_qubits(), n_samples)
        };
        let ch = characterize(&circuit, &config, &mut rng);
        let f = ch.approximation(morph_qprog::TracepointId(1));

        // Case 1: convex mixtures of sampled inputs are inside the span.
        let case1: f64 = {
            let mut acc = 0.0;
            let trials = 8;
            for t in 0..trials {
                let mut mix = CMatrix::zeros(1 << n_in, 1 << n_in);
                let w = 1.0 / ((t % ch.inputs.len()) + 1) as f64;
                for input in ch.inputs.iter().take((t % ch.inputs.len()) + 1) {
                    mix += &input.rho.scale_re(w);
                }
                acc += f.representation_accuracy(&mix).unwrap_or(0.0);
            }
            acc / trials as f64
        };

        // Case 2: random Clifford states.
        let case2: f64 = {
            let probes = InputEnsemble::Clifford.generate(n_in, 16, &mut rng);
            probes
                .iter()
                .map(|p| f.representation_accuracy(&p.rho).unwrap_or(0.0))
                .sum::<f64>()
                / 16.0
        };
        let theory = (n_samples as f64 / paper_full as f64).min(1.0);
        rows.push(vec![
            format!("{}q teleport (N_in={})", layout.n_qubits(), n_in),
            n_samples.to_string(),
            fmt_f(case1),
            fmt_f(case2),
            fmt_f(theory),
        ]);
    }
}

fn main() {
    let mut rows = Vec::new();
    accuracy_sweep(3, &mut rows);
    accuracy_sweep(5, &mut rows);
    let csv = print_table(
        "Fig 5: approximation accuracy vs number of sampled inputs",
        &[
            "program",
            "N_sample",
            "case1_acc",
            "case2_acc",
            "theory_case2",
        ],
        &rows,
    );
    save_csv("fig5", &csv);
    println!("\nExpected shape: case-1 ≈ 1 throughout; case-2 grows roughly linearly");
    println!("with N_sample. Deviation from the paper: our least-squares projection");
    println!("saturates at N_sample = 4^N_in (the strict Hermitian-operator-space");
    println!("dimension), not the paper's 2^(N_in+1); both lines are reported.");
}
