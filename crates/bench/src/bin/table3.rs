//! Table 3: the benchmark programs used throughout the evaluation, with
//! this implementation's structural statistics (qubits, gate count,
//! two-qubit-equivalent operation cost, depth) at the Table 4 sizes.

use morph_bench::rows::{print_table, save_csv};
use morph_qalgo::Benchmark;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rows = Vec::new();
    for bench in Benchmark::all() {
        for &n in &[3usize, 5, 7, 9] {
            let mut rng = StdRng::seed_from_u64(3);
            let c = bench.circuit(n, &mut rng);
            rows.push(vec![
                bench.name().to_string(),
                c.n_qubits().to_string(),
                c.gate_count().to_string(),
                c.op_cost().to_string(),
                c.depth().to_string(),
            ]);
        }
    }
    let csv = print_table(
        "Table 3: benchmark programs and their structural statistics",
        &["benchmark", "qubits", "gates", "op_cost", "depth"],
        &rows,
    );
    save_csv("table3", &csv);
}
