//! Table 6: success rate and verification time of MorphQPV against the
//! deductive baselines (Twist-style purity analysis, Automata-style
//! classical analysis) on QEC/Shor/QNN/XEB at 5–20 qubits.
//!
//! Modeling notes (see EXPERIMENTS.md): both deductive stand-ins analyze
//! the program classically; their *decision* is exact simulation, and
//! their *cost* is the measured simulation time scaled by a calibrated
//! interpreter overhead (Twist's purity analysis: paper anchor 5.9e3 s at
//! 20 qubits vs ~1 s of raw simulation here, giving ~2000x; the automata
//! framework is ~100x per its Table 6 ratios). Expressiveness gaps are
//! honored: Twist and Automa cannot express the QNN expectation spec;
//! Twist cannot express XEB correctness through purity alone.
//!
//! MorphQPV runs the real comparison pipeline with Strategy-const (inputs
//! restricted to 3 qubits) so its cost scales with the input register, not
//! the program size.

use std::time::Instant;

use morph_bench::rows::{fmt_f, print_table, save_csv};
use morph_bench::{compare_programs, CompareConfig};
use morph_qalgo::{inject_phase_bug, Benchmark};
use morph_qprog::{Circuit, Executor};
use morph_qsim::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CASES: usize = 5;

/// Exact classical equivalence probe: compare final states from basis and
/// superposition inputs (the deductive stand-ins analyze the whole program
/// classically, so any reachable semantic difference is visible).
fn exact_sim_differs(reference: &Circuit, mutant: &Circuit) -> bool {
    let n = reference.n_qubits();
    let ex = Executor::default();
    let mut rng = StdRng::seed_from_u64(0);
    let mut probes: Vec<StateVector> = vec![
        StateVector::basis_state(n, 0),
        StateVector::basis_state(n, 1),
        StateVector::basis_state(n, (1 << n) - 1),
    ];
    // Uniform superposition probe exposes phase-only deviations.
    let mut plus = StateVector::zero_state(n);
    for q in 0..n {
        plus.apply_h(q);
    }
    probes.push(plus);
    for input in probes {
        let sa = ex.run_trajectory(reference, &input, &mut rng).final_state;
        let sb = ex.run_trajectory(mutant, &input, &mut rng).final_state;
        if !sa.approx_eq_up_to_phase(&sb, 1e-9) {
            return true;
        }
    }
    false
}

/// `true` if the mutant is visible within MorphQPV's pruned verification
/// scope (inputs on `input_qubits`, outputs traced on `output_qubits`):
/// mutants outside the scope are not counter-examples to the pruned spec
/// and are excluded from its success-rate denominator.
fn visible_in_scope(
    reference: &Circuit,
    mutant: &Circuit,
    input_qubits: &[usize],
    output_qubits: &[usize],
) -> bool {
    let n = reference.n_qubits();
    let ex = Executor::default();
    let mut rng = StdRng::seed_from_u64(1);
    for probe in morph_clifford::InputEnsemble::Clifford.generate(input_qubits.len(), 6, &mut rng) {
        let prep = probe.prep.remap_qubits(input_qubits, n);
        let run = |circ: &Circuit| {
            let mut full = Circuit::new(n);
            full.extend_from(&prep);
            full.extend_from(circ);
            full.tracepoint(1, output_qubits);
            ex.run_expected(&full, &StateVector::zero_state(n))
                .state(morph_qprog::TracepointId(1))
                .clone()
        };
        // Require a difference the toleranced spec can flag (the Within
        // predicate uses 0.05; sub-tolerance drifts are not bugs under it).
        if (&run(reference) - &run(mutant)).frobenius_norm() > 0.1 {
            return true;
        }
    }
    false
}

fn main() {
    let mut rows = Vec::new();
    for bench in [
        Benchmark::Qec,
        Benchmark::Shor,
        Benchmark::Qnn,
        Benchmark::Xeb,
    ] {
        for &size in &[5usize, 10, 15, 20] {
            let mut rng = StdRng::seed_from_u64(6000 + size as u64);
            let reference = bench.circuit(size, &mut rng);
            let n = reference.n_qubits();

            // Mutants must be visible within MorphQPV's pruned scope so the
            // success-rate denominators are comparable across methods.
            let scope_in = vec![0usize, 1, 2];
            let scope_out = vec![0usize, 1, 2];
            let mut mutants: Vec<Circuit> = Vec::new();
            let mut guard = 0;
            while mutants.len() < CASES && guard < CASES * 20 {
                guard += 1;
                let (m, _) = inject_phase_bug(&reference, &mut rng);
                if visible_in_scope(&reference, &m, &scope_in, &scope_out) {
                    mutants.push(m);
                }
            }
            if mutants.is_empty() {
                continue;
            }
            let n_cases = mutants.len();

            // Twist-style: full-state simulation per check.
            let twist_supported = bench != Benchmark::Qnn && bench != Benchmark::Xeb;
            let (twist_succ, twist_time) = if twist_supported {
                let t0 = Instant::now();
                let found = mutants
                    .iter()
                    .filter(|m| exact_sim_differs(&reference, m))
                    .count();
                (
                    Some(100.0 * found as f64 / n_cases as f64),
                    // Calibrated interpreter overhead of the purity analysis.
                    2000.0 * t0.elapsed().as_secs_f64() / n_cases as f64,
                )
            } else {
                (None, 0.0)
            };

            // Automata-style: same exact analysis, cheaper representation —
            // ~100x interpreter overhead per the paper's Table 6 ratios.
            let automa_supported = bench != Benchmark::Qnn;
            let (automa_succ, automa_time) = if automa_supported {
                let t0 = Instant::now();
                let found = mutants
                    .iter()
                    .filter(|m| exact_sim_differs(&reference, m))
                    .count();
                (
                    Some(100.0 * found as f64 / n_cases as f64),
                    100.0 * t0.elapsed().as_secs_f64() / n_cases as f64,
                )
            } else {
                (None, 0.0)
            };

            // MorphQPV: real pipeline, Strategy-const input on 3 qubits,
            // output tracepoint on 3 qubits.
            let t0 = Instant::now();
            let mut found = 0;
            for mutant in &mutants {
                let mut config = CompareConfig::new(scope_in.clone(), scope_out.clone());
                config.n_samples = 12;
                let (bug, _, _) = compare_programs(&reference, mutant, &config, &mut rng);
                if bug {
                    found += 1;
                }
            }
            let morph_time = t0.elapsed().as_secs_f64() / n_cases as f64;
            let morph_succ = 100.0 * found as f64 / n_cases as f64;

            let opt = |v: Option<f64>| v.map(fmt_f).unwrap_or_else(|| "/".into());
            let opt_t = |v: Option<f64>, t: f64| {
                if v.is_some() {
                    fmt_f(t)
                } else {
                    "/".into()
                }
            };
            rows.push(vec![
                format!("{} {}q", bench.name(), n),
                opt(twist_succ),
                opt(automa_succ),
                fmt_f(morph_succ),
                opt_t(twist_succ, twist_time),
                opt_t(automa_succ, automa_time),
                fmt_f(morph_time),
            ]);
        }
    }
    let csv = print_table(
        "Table 6: success rate (%) and per-case time (s) vs deductive methods",
        &[
            "benchmark",
            "Twist_succ",
            "Automa_succ",
            "Morph_succ",
            "Twist_s(model)",
            "Automa_s(model)",
            "Morph_s",
        ],
        &rows,
    );
    save_csv("table6", &csv);
    println!("\nExpected shape (paper): all methods near-100% where supported; Twist's");
    println!("time explodes exponentially with qubits; Automa grows more slowly;");
    println!("MorphQPV's cost tracks the (pruned) input register, not program size.");
    println!("'/' = the method's verified object cannot express that benchmark's spec.");
}
