//! Validates a `morph-trace` JSON export against the checked-in schema.
//!
//! ```text
//! usage: trace_lint <trace.json> <schema.json>
//! ```
//!
//! Exit code `0` when the document conforms, `1` on any violation (each is
//! printed with its JSON path) or I/O/parse error.
//!
//! The validation logic lives in [`morph_bench::schema_lint`], shared with
//! `serve_lint`; it implements exactly the JSON-Schema subset that
//! `docs/trace-schema.json` uses, keeping the CI check dependency-free
//! while still catching shape regressions in [`morph_trace::export_json`].

use morph_bench::schema_lint::{load, validate};

const USAGE: &str = "usage: trace_lint <trace.json> <schema.json>";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [trace_path, schema_path] = args.as_slice() else {
        eprintln!("{USAGE}");
        return 1;
    };
    let doc = match load(trace_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{trace_path}: {e}");
            return 1;
        }
    };
    let schema = match load(schema_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{schema_path}: {e}");
            return 1;
        }
    };

    let mut errors = Vec::new();
    validate(&doc, &schema, &schema, "$", &mut errors);
    if errors.is_empty() {
        println!("{trace_path}: OK");
        0
    } else {
        for e in &errors {
            eprintln!("{trace_path}: {e}");
        }
        eprintln!("{trace_path}: {} schema violation(s)", errors.len());
        1
    }
}
