//! Validates a `morph-trace` JSON export against the checked-in schema.
//!
//! ```text
//! usage: trace_lint <trace.json> <schema.json>
//! ```
//!
//! Exit code `0` when the document conforms, `1` on any violation (each is
//! printed with its JSON path) or I/O/parse error.
//!
//! The validator implements exactly the JSON-Schema subset that
//! `docs/trace-schema.json` uses: `type` (a name or a list of alternatives),
//! `properties`, `required`, `additionalProperties` (as a schema for map
//! values), `items`, and `$ref` into `#/definitions/…`. That keeps the CI
//! check dependency-free while still catching shape regressions in
//! [`morph_trace::export_json`].

use serde::json::{parse, Value};

const USAGE: &str = "usage: trace_lint <trace.json> <schema.json>";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [trace_path, schema_path] = args.as_slice() else {
        eprintln!("{USAGE}");
        return 1;
    };
    let doc = match load(trace_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{trace_path}: {e}");
            return 1;
        }
    };
    let schema = match load(schema_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{schema_path}: {e}");
            return 1;
        }
    };

    let mut errors = Vec::new();
    validate(&doc, &schema, &schema, "$", &mut errors);
    if errors.is_empty() {
        println!("{trace_path}: OK");
        0
    } else {
        for e in &errors {
            eprintln!("{trace_path}: {e}");
        }
        eprintln!("{trace_path}: {} schema violation(s)", errors.len());
        1
    }
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse(&text).map_err(|e| e.to_string())
}

/// The JSON type-name of a value, matching JSON-Schema vocabulary.
fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::UInt(_) | Value::Int(_) => "integer",
        Value::Float(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// `true` when `v` satisfies the JSON-Schema type `name` ("integer" is also
/// a "number").
fn matches_type(v: &Value, name: &str) -> bool {
    let actual = type_name(v);
    actual == name || (name == "number" && actual == "integer")
}

/// Resolves `#/definitions/<name>` against the schema root.
fn resolve<'a>(reference: &str, root: &'a Value, errors: &mut Vec<String>) -> Option<&'a Value> {
    let name = reference.strip_prefix("#/definitions/")?;
    let def = root.get("definitions").and_then(|d| d.get(name));
    if def.is_none() {
        errors.push(format!("schema error: unresolved $ref {reference:?}"));
    }
    def
}

fn validate(doc: &Value, schema: &Value, root: &Value, path: &str, errors: &mut Vec<String>) {
    if let Some(reference) = schema.get("$ref").and_then(Value::as_str) {
        if let Some(target) = resolve(reference, root, errors) {
            validate(doc, target, root, path, errors);
        }
        return;
    }

    if let Some(ty) = schema.get("type") {
        let alternatives: Vec<&str> = match ty {
            Value::Str(s) => vec![s.as_str()],
            Value::Array(items) => items.iter().filter_map(Value::as_str).collect(),
            _ => Vec::new(),
        };
        if !alternatives.iter().any(|t| matches_type(doc, t)) {
            errors.push(format!(
                "{path}: expected {}, found {}",
                alternatives.join(" or "),
                type_name(doc)
            ));
            return;
        }
    }

    if let Value::Object(map) = doc {
        if let Some(required) = schema.get("required").and_then(Value::as_array) {
            for key in required.iter().filter_map(Value::as_str) {
                if !map.contains_key(key) {
                    errors.push(format!("{path}: missing required field `{key}`"));
                }
            }
        }
        let properties = schema.get("properties");
        for (key, value) in map {
            if let Some(sub) = properties.and_then(|p| p.get(key)) {
                validate(value, sub, root, &format!("{path}.{key}"), errors);
            } else if let Some(extra) = schema.get("additionalProperties") {
                validate(value, extra, root, &format!("{path}.{key}"), errors);
            }
        }
    }

    if let (Value::Array(items), Some(item_schema)) = (doc, schema.get("items")) {
        for (i, item) in items.iter().enumerate() {
            validate(item, item_schema, root, &format!("{path}[{i}]"), errors);
        }
    }
}
