//! Minimal aligned table/CSV printing for the experiment binaries.

/// Prints a header and rows as an aligned text table, and returns the same
/// content as CSV (callers may write it to a file).
///
/// # Panics
///
/// Panics if any row length differs from the header length.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width mismatch");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    println!("\n=== {title} ===");
    let fmt_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("{}", line.join("  "));
    };
    fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for row in rows {
        fmt_row(row);
    }

    let mut csv = String::new();
    csv.push_str(&header.join(","));
    csv.push('\n');
    for row in rows {
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    csv
}

/// Formats a float compactly for table cells.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.2e}")
    } else {
        format!("{v:.3}")
    }
}

/// Writes CSV content next to the binary outputs (under `target/experiments`).
///
/// # Panics
///
/// Panics if the directory cannot be created or the file cannot be written.
pub fn save_csv(name: &str, csv: &str) {
    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir).expect("create experiments dir");
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, csv).expect("write experiment csv");
    println!("[saved {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_returns_csv() {
        let csv = print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["30".into(), "4".into()]],
        );
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("30,4"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(0.5), "0.500");
        assert!(fmt_f(1.0e7).contains('e'));
        assert!(fmt_f(1.0e-5).contains('e'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        let _ = print_table("bad", &["a"], &[vec!["1".into(), "2".into()]]);
    }
}
