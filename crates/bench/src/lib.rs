//! Experiment harness shared by the `fig*`/`table*` binaries that
//! regenerate every table and figure of the paper's evaluation.
//!
//! The heavy lifting lives in the member crates; this library adds the
//! cross-cutting pieces:
//!
//! - [`compare_programs`]: the MorphQPV-based reference-vs-candidate check
//!   used by Table 4's success-rate sweeps (characterize both programs on
//!   shared inputs, assert tracepoint equality).
//! - [`MorphDetector`]: the above wrapped in the baseline
//!   [`morph_baselines::BugDetector`] interface.
//! - [`quantum_lock_bisection`]: MorphQPV's Strategy-const bisection for
//!   the quantum-lock unexpected-key search (Fig 7), with faithful
//!   execution accounting.
//! - [`qram_bisection`]: the QRAM faulty-address binary search (Fig 10).
//! - [`rows`]: tiny aligned-table printing used by all binaries.
//! - [`schema_lint`]: the dependency-free JSON-Schema-subset validator
//!   behind the `trace_lint` and `serve_lint` CI tools.

mod compare;
mod lock_search;
mod qram_search;
pub mod rows;
pub mod schema_lint;

pub use compare::{compare_programs, compare_programs_cached, CompareConfig, MorphDetector};
pub use lock_search::{quantum_lock_bisection, quantum_lock_bisection_cost, LockSearchResult};
pub use qram_search::{qram_bisection, qram_bisection_cost, QramSearchResult};

/// The characterization artifact cache the fig/table binaries share: rooted
/// at `$MORPH_CACHE_DIR` when set (persisting artifacts across reruns and
/// across binaries), memory-only otherwise. An unopenable directory warns
/// and degrades to memory-only rather than failing the experiment.
pub fn cache_from_env() -> morphqpv::CharacterizationCache {
    match std::env::var("MORPH_CACHE_DIR") {
        Ok(dir) => morphqpv::CharacterizationCache::open(&dir).unwrap_or_else(|e| {
            eprintln!("warning: cannot open cache dir {dir}: {e}; using memory");
            morphqpv::CharacterizationCache::in_memory()
        }),
        Err(_) => morphqpv::CharacterizationCache::in_memory(),
    }
}
