//! End-to-end tests of the `verify` CLI: exit codes (0 = validated,
//! 2 = counter-example, 1 = error), telemetry output (`--trace-json`,
//! `MORPH_TRACE=1`), and the guarantee that tracing never perturbs the
//! stdout report.
//!
//! The binaries are invoked through `env!("CARGO_BIN_EXE_…")`, so `cargo
//! test` builds them first and no PATH assumptions are needed.

use std::path::PathBuf;
use std::process::{Command, Output};

use serde::json::{parse, Value};

const VERIFY: &str = env!("CARGO_BIN_EXE_verify");
const TRACE_LINT: &str = env!("CARGO_BIN_EXE_trace_lint");

/// A program whose assertions all hold: H·H is the identity.
const PASSING: &str = "qreg q[1];\n\
     T 1 q[0];\n\
     h q[0];\n\
     h q[0];\n\
     T 2 q[0];\n\
     // assert assume is_pure(T1) guarantee equal(T1, T2)\n";

/// A refutable program: X is not the identity.
const FAILING: &str = "qreg q[1];\n\
     T 1 q[0];\n\
     x q[0];\n\
     T 2 q[0];\n\
     // assert guarantee equal(T1, T2)\n";

/// A scratch directory unique to this test, cleaned up by the caller.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("verify-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_program(dir: &std::path::Path, source: &str) -> PathBuf {
    let path = dir.join("program.qasm");
    std::fs::write(&path, source).unwrap();
    path
}

/// Runs `verify` with the given extra args and a scrubbed environment
/// (`MORPH_TRACE` / `MORPH_CACHE_DIR` removed unless supplied via `envs`).
fn run_verify(program: &std::path::Path, args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(VERIFY);
    cmd.arg(program)
        .args(args)
        .env_remove("MORPH_TRACE")
        .env_remove("MORPH_CACHE_DIR");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("verify binary runs")
}

#[test]
fn passing_program_exits_zero() {
    let dir = scratch("pass");
    let program = write_program(&dir, PASSING);
    let out = run_verify(&program, &[], &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("PASSED"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn refuted_program_exits_two_with_counterexample() {
    let dir = scratch("fail");
    let program = write_program(&dir, FAILING);
    let out = run_verify(&program, &[], &[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("FAILED"), "{stdout}");
    assert!(stdout.contains("counter-example"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_restarts_is_a_structured_error_exit_one() {
    let dir = scratch("restarts");
    let program = write_program(&dir, PASSING);
    let out = run_verify(&program, &["--restarts", "0"], &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("no restarts configured"),
        "error should explain the no-restart failure: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_one() {
    let dir = scratch("usage");
    let program = write_program(&dir, PASSING);
    for args in [
        &["--bogus-flag"] as &[&str],
        &["--samples", "zero"],
        &["--restarts"],
        &["--trace-json"],
    ] {
        let out = run_verify(&program, args, &[]);
        assert_eq!(out.status.code(), Some(1), "args {args:?}: {out:?}");
    }
    let missing = Command::new(VERIFY)
        .arg(dir.join("no-such-file.qasm"))
        .output()
        .unwrap();
    assert_eq!(missing.status.code(), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_json_contains_pipeline_spans_and_counters() {
    let dir = scratch("trace");
    let program = write_program(&dir, PASSING);
    let trace_path = dir.join("trace.json");
    let out = run_verify(
        &program,
        &["--trace-json", trace_path.to_str().unwrap()],
        &[],
    );
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let doc = parse(&text).expect("trace file is valid JSON");
    assert_eq!(doc.require("version").unwrap().as_u64(), Some(1));

    let mut names = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    collect(&doc, &mut names, &mut counters);
    for expected in [
        "verify/run",
        "characterize",
        "validate/assertion",
        "validate/confidence",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "span {expected:?} missing from {names:?}"
        );
    }
    let total = |name: &str| -> u64 {
        counters
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .sum()
    };
    assert!(total("characterize/executions") > 0, "{counters:?}");
    assert!(total("evaluations") > 0, "{counters:?}");
    assert!(total("confidence_probes") > 0, "{counters:?}");
    assert!(total("tomography/readouts") > 0, "{counters:?}");

    // The checked-in schema accepts the export.
    let lint = Command::new(TRACE_LINT)
        .arg(&trace_path)
        .arg(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../docs/trace-schema.json"
        ))
        .output()
        .unwrap();
    assert_eq!(
        lint.status.code(),
        Some(0),
        "trace_lint rejected the export: {}",
        String::from_utf8_lossy(&lint.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Walks the export, collecting every span name and (name, value) counter
/// pair, root counters included.
fn collect(node: &Value, names: &mut Vec<String>, counters: &mut Vec<(String, u64)>) {
    if let Some(name) = node.get("name").and_then(Value::as_str) {
        names.push(name.to_string());
    }
    if let Some(Value::Object(map)) = node.get("counters") {
        for (k, v) in map {
            if let Some(n) = v.as_u64() {
                counters.push((k.clone(), n));
            }
        }
    }
    for key in ["spans", "children"] {
        if let Some(children) = node.get(key).and_then(Value::as_array) {
            for child in children {
                collect(child, names, counters);
            }
        }
    }
}

#[test]
fn tracing_does_not_change_the_stdout_report() {
    let dir = scratch("stdout");
    let program = write_program(&dir, PASSING);
    let plain = run_verify(&program, &["--seed", "11"], &[]);
    let traced = run_verify(&program, &["--seed", "11"], &[("MORPH_TRACE", "1")]);
    assert_eq!(plain.status.code(), Some(0));
    assert_eq!(traced.status.code(), Some(0));
    assert_eq!(
        plain.stdout, traced.stdout,
        "tracing must leave stdout byte-identical"
    );
    let stderr = String::from_utf8(traced.stderr).unwrap();
    assert!(
        stderr.contains("trace:"),
        "MORPH_TRACE=1 should print the run summary to stderr: {stderr}"
    );
    assert!(
        plain.stderr.is_empty(),
        "untraced run should keep stderr quiet: {:?}",
        String::from_utf8_lossy(&plain.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn morph_trace_zero_keeps_tracing_off() {
    let dir = scratch("trace-off");
    let program = write_program(&dir, PASSING);
    let out = run_verify(&program, &[], &[("MORPH_TRACE", "0")]);
    assert_eq!(out.status.code(), Some(0));
    assert!(
        out.stderr.is_empty(),
        "MORPH_TRACE=0 must not enable the summary: {:?}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
