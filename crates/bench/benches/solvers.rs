//! Criterion bench behind Fig 15(b): validation time by solver backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morph_qprog::{Circuit, TracepointId};
use morphqpv::{
    characterize, validate_assertion, AssumeGuarantee, CharacterizationConfig, RelationPredicate,
    SolverKind, ValidationConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15b_solvers");
    group.sample_size(10);

    let n = 3usize;
    let mut circuit = Circuit::new(n);
    circuit.tracepoint(1, &(0..n).collect::<Vec<_>>());
    circuit.extend_from(&morph_qalgo::shor_circuit(n));
    circuit.tracepoint(2, &(0..n).collect::<Vec<_>>());
    let assertion = AssumeGuarantee::new().guarantee_relation(
        TracepointId(1),
        TracepointId(2),
        RelationPredicate::Equal,
    );
    let mut rng = StdRng::seed_from_u64(0);
    let config = CharacterizationConfig {
        n_samples: 16,
        ..CharacterizationConfig::exact((0..n).collect(), 16)
    };
    let ch = characterize(&circuit, &config, &mut rng);

    for solver in [
        SolverKind::Quadratic,
        SolverKind::Annealing,
        SolverKind::Genetic,
        SolverKind::GradientAscent,
    ] {
        group.bench_with_input(BenchmarkId::new(solver.name(), 16), &solver, |b, &s| {
            b.iter(|| {
                let vconfig = ValidationConfig {
                    solver: s,
                    ..Default::default()
                };
                let mut inner_rng = StdRng::seed_from_u64(1);
                validate_assertion(&assertion, &ch, &vconfig, &mut inner_rng)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
