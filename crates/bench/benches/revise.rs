//! Revision-stream bench: what segment-granular incremental
//! characterization buys in an edit-verify loop.
//!
//! The workload replays a stream of single-gate edits to a 16-qubit
//! program through the segment layer — plan, fingerprint, then
//! fetch-or-characterize each segment against a shared
//! [`SegmentedCache`] — exactly the sweep `try_characterize_incremental`
//! runs before composing. The sweep is the cost driver (simulating every
//! segment on every sample); composition is deliberately excluded here
//! because it walks full-register density matrices and is only practical
//! to ~12 qubits (see DESIGN.md "Segment fingerprinting"), while the
//! cached sweep itself streams statevectors and scales to this width.
//!
//! Arms:
//!
//! - `revise/replay/...`: the full stream, fresh cache per iteration —
//!   the end-to-end edit loop (first revision cold, the rest mostly
//!   warm). The label carries the stream's hit/miss tally from segment
//!   accounting, so perf reports record the hit rate next to the timing.
//! - `revise/cold/revNN`: one revision against a fresh cache — the
//!   from-scratch per-revision latency.
//! - `revise/warm/revNN/hitsHofT`: the same revision against the fully
//!   primed cache — steady-state warm per-revision latency. `HofT` is the
//!   revision's first-encounter hit/miss split from the replay pre-pass
//!   (the honest incremental accounting: a single-gate edit misses at
//!   most two segments).
//!
//! CI asserts warm is at least 5x faster than cold and that the recorded
//! hit counters are nonzero (see `.github/workflows/ci.yml`).
//!
//! Set `MORPH_BENCH_QUICK=1` for the CI smoke subset (shorter stream).

use criterion::{criterion_group, criterion_main, Criterion};
use morph_qprog::{Circuit, Instruction};
use morphqpv::{
    characterize_segment, segment_fingerprint, segment_plan, segment_seed, CharacterizationConfig,
    SegmentedCache, SegmentedConfig,
};

const N_QUBITS: usize = 16;
const SAMPLES: usize = 4;
const SEED: u64 = 10;

fn quick() -> bool {
    std::env::var_os("MORPH_BENCH_QUICK").is_some()
}

fn stream_len() -> usize {
    if quick() {
        4
    } else {
        12
    }
}

/// The program under revision: a Hadamard layer, an entangling ladder,
/// and a rotation layer, traced mid-circuit and at the end.
fn base_circuit() -> Circuit {
    let mut c = Circuit::new(N_QUBITS);
    for q in 0..N_QUBITS {
        c.h(q);
    }
    c.tracepoint(1, &[0, 1]);
    for q in 0..N_QUBITS - 1 {
        c.cx(q, q + 1);
    }
    for q in 0..N_QUBITS {
        c.rz(q, 0.1 + q as f64 * 0.05);
    }
    c.tracepoint(2, &[0, 1, 2]);
    c
}

/// Revision `i` of the stream: one rotation angle nudged, at a gate
/// position that walks the circuit so successive edits land in different
/// segments. Revision 0 is the unedited base program.
fn revision(i: usize) -> Circuit {
    let mut c = base_circuit();
    if i == 0 {
        return c;
    }
    let gate_positions: Vec<usize> = c
        .instructions()
        .iter()
        .enumerate()
        .filter(|(_, inst)| matches!(inst, Instruction::Gate(_)))
        .map(|(p, _)| p)
        .collect();
    let at = gate_positions[(i * 7) % gate_positions.len()];
    c.remove(at);
    let mut nudged = Circuit::new(N_QUBITS);
    nudged.rz(i % N_QUBITS, 0.31 + i as f64 * 0.01);
    c.insert(at, nudged.instructions()[0].clone());
    c
}

fn config() -> CharacterizationConfig {
    CharacterizationConfig::exact(vec![0], SAMPLES)
}

fn seg() -> SegmentedConfig {
    SegmentedConfig::new().segment_gates(8)
}

/// The incremental characterization sweep for one revision: plan,
/// fingerprint, fetch-or-characterize. Returns (hits, misses) with the
/// same accounting `try_characterize_incremental` reports.
fn sweep(circuit: &Circuit, cache: &mut SegmentedCache) -> (u64, u64) {
    let config = config();
    let plan = segment_plan(circuit, &seg()).expect("benchmark program segments");
    let (mut hits, mut misses) = (0, 0);
    for segment in &plan.segments {
        let fp = segment_fingerprint(segment, &config, SEED);
        if cache.get(&fp).is_some() {
            hits += 1;
        } else {
            let artifact = characterize_segment(segment, &config, segment_seed(&fp));
            let _ = cache.put(fp, &artifact);
            misses += 1;
        }
    }
    (hits, misses)
}

fn bench_revise(c: &mut Criterion) {
    let n = stream_len();
    let revisions: Vec<Circuit> = (0..n).map(revision).collect();

    // Untimed pre-pass: one sequential replay records each revision's
    // first-encounter hit/miss split and primes the warm cache.
    let mut warm_cache = SegmentedCache::in_memory();
    let splits: Vec<(u64, u64)> = revisions
        .iter()
        .map(|r| sweep(r, &mut warm_cache))
        .collect();
    let (hits, misses) = splits
        .iter()
        .fold((0, 0), |(h, m), &(rh, rm)| (h + rh, m + rm));

    let mut group = c.benchmark_group("revise");
    group.sample_size(10);

    group.bench_function(
        format!("replay/{n}revs/hits{hits}of{}", hits + misses),
        |b| {
            b.iter(|| {
                let mut cache = SegmentedCache::in_memory();
                for r in &revisions {
                    criterion::black_box(sweep(r, &mut cache));
                }
            });
        },
    );

    for (i, (r, &(rev_hits, rev_misses))) in revisions.iter().zip(&splits).enumerate() {
        group.bench_function(format!("cold/rev{i:02}"), |b| {
            b.iter(|| {
                let mut cache = SegmentedCache::in_memory();
                criterion::black_box(sweep(r, &mut cache));
            });
        });
        group.bench_function(
            format!("warm/rev{i:02}/hits{rev_hits}of{}", rev_hits + rev_misses),
            |b| {
                b.iter(|| criterion::black_box(sweep(r, &mut warm_cache)));
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_revise);
criterion_main!(benches);
