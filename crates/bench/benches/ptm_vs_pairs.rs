//! Ablation bench: pairs-form approximation (the paper's Theorem 1
//! evaluation) vs the explicit Pauli-transfer-matrix form. The pairs form
//! scales with `N_sample`; the PTM form is flat in `N_sample` after a
//! one-time fit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morph_clifford::InputEnsemble;
use morph_linalg::CMatrix;
use morphqpv::{ApproximationFunction, PauliTransferMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(n: usize, samples: usize, rng: &mut StdRng) -> ApproximationFunction {
    let u = morph_qsim::matrices::h().kron(&morph_qsim::matrices::ry(0.8));
    let u = if n == 3 {
        u.kron(&morph_qsim::matrices::rx(0.3))
    } else {
        u
    };
    let inputs: Vec<CMatrix> = InputEnsemble::PauliProduct
        .generate(n, samples, rng)
        .into_iter()
        .map(|i| i.rho)
        .collect();
    let traces: Vec<CMatrix> = inputs
        .iter()
        .map(|r| u.matmul(r).matmul(&u.dagger()))
        .collect();
    ApproximationFunction::new(inputs, traces).expect("valid pairs")
}

fn bench_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("ptm_vs_pairs_predict");
    group.sample_size(20);
    for &(n, samples) in &[(2usize, 16usize), (3, 64)] {
        let mut rng = StdRng::seed_from_u64(0);
        let f = build(n, samples, &mut rng);
        let ptm = PauliTransferMatrix::fit(&f);
        let probe = InputEnsemble::Clifford.generate(n, 1, &mut rng).remove(0);

        group.bench_with_input(
            BenchmarkId::new("pairs", format!("{n}q_{samples}s")),
            &n,
            |b, _| b.iter(|| f.predict(std::hint::black_box(&probe.rho)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("ptm", format!("{n}q_{samples}s")),
            &n,
            |b, _| b.iter(|| ptm.predict(std::hint::black_box(&probe.rho))),
        );
        group.bench_with_input(
            BenchmarkId::new("ptm_fit", format!("{n}q_{samples}s")),
            &n,
            |b, _| b.iter(|| PauliTransferMatrix::fit(std::hint::black_box(&f))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_forms);
criterion_main!(benches);
