//! Criterion bench behind Fig 11(a): time to obtain a tracepoint state
//! under one input — isomorphism-based approximation vs classical
//! simulation vs shot-based state tomography.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morph_clifford::InputEnsemble;
use morph_qprog::{Circuit, Executor, TracepointId};
use morph_qsim::StateVector;
use morph_tomography::{read_state, CostLedger, ReadoutMode};
use morphqpv::{characterize, CharacterizationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_tracepoint_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11a_tracepoint_state");
    group.sample_size(10);

    for &n in &[3usize, 5, 7] {
        let mut rng = StdRng::seed_from_u64(0);
        let mut circuit = Circuit::new(n);
        circuit.extend_from(&morph_qalgo::shor_circuit(n));
        circuit.tracepoint(1, &(0..n).collect::<Vec<_>>());

        let config = CharacterizationConfig {
            n_samples: 2 * n + 2,
            ..CharacterizationConfig::exact((0..n).collect(), 2 * n + 2)
        };
        let ch = characterize(&circuit, &config, &mut rng);
        let f = ch.approximation(TracepointId(1));
        let probe = InputEnsemble::Clifford.generate(n, 1, &mut rng).remove(0);

        group.bench_with_input(BenchmarkId::new("approximation", n), &n, |b, _| {
            b.iter(|| f.predict(std::hint::black_box(&probe.rho)).unwrap());
        });

        let mut full = Circuit::new(n);
        full.extend_from(&probe.prep);
        full.extend_from(&circuit);
        group.bench_with_input(BenchmarkId::new("simulation", n), &n, |b, _| {
            b.iter(|| Executor::default().run_expected(&full, &StateVector::zero_state(n)));
        });

        let truth = Executor::default()
            .run_expected(&full, &StateVector::zero_state(n))
            .state(TracepointId(1))
            .clone();
        group.bench_with_input(BenchmarkId::new("state_tomography", n), &n, |b, _| {
            b.iter(|| {
                let mut ledger = CostLedger::new();
                read_state(
                    std::hint::black_box(&truth),
                    ReadoutMode::Shots(100),
                    1,
                    &mut ledger,
                    &mut rng,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tracepoint_state);
criterion_main!(benches);
