//! Ablation bench: exact vs shot-limited vs probabilities-only tracepoint
//! readout (the trade Strategy-prop exploits).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morph_linalg::{CMatrix, C64};
use morph_tomography::{read_state, CostLedger, ReadoutMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ghz_state(n: usize) -> CMatrix {
    let d = 1usize << n;
    let s = 1.0 / 2f64.sqrt();
    let mut ket = vec![C64::ZERO; d];
    ket[0] = C64::real(s);
    ket[d - 1] = C64::real(s);
    CMatrix::outer(&ket, &ket)
}

fn bench_readout(c: &mut Criterion) {
    let mut group = c.benchmark_group("tomography_readout");
    group.sample_size(10);
    for &n in &[2usize, 3, 4] {
        let rho = ghz_state(n);
        for (label, mode) in [
            ("exact", ReadoutMode::Exact),
            ("shots_1000", ReadoutMode::Shots(1000)),
            ("probs_1000", ReadoutMode::ProbabilitiesOnly(1000)),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                let mut rng = StdRng::seed_from_u64(0);
                b.iter(|| {
                    let mut ledger = CostLedger::new();
                    read_state(std::hint::black_box(&rho), mode, 1, &mut ledger, &mut rng)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_readout);
criterion_main!(benches);
