//! Service-layer bench: what single-flight coalescing buys.
//!
//! Three arms submit the same number of jobs to a fresh [`Service`]:
//!
//! - `coalesced_identical`: identical requests — one leader characterizes,
//!   the rest follow or hit the cache. This is the serve tentpole; it must
//!   approach the cost of a *single* verification as worker count grows.
//! - `independent_seeds`: same program, distinct seeds — distinct
//!   fingerprints, so every job characterizes. The no-sharing baseline.
//! - `sequential_baseline`: the same identical batch run one [`Verifier`]
//!   at a time on the submitting thread (no service, no cache).
//!
//! Set `MORPH_BENCH_QUICK=1` for the CI smoke subset (small batch).

use criterion::{criterion_group, criterion_main, Criterion};
use morph_serve::{JobRequest, ServeConfig, Service};
use morphqpv::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PROGRAM: &str = "\
qreg q[3];
T 1 q[0];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
T 2 q[0,1,2];
// assert assume is_pure(T1) guarantee is_pure(T2)
";

fn quick() -> bool {
    std::env::var_os("MORPH_BENCH_QUICK").is_some()
}

fn batch_size() -> usize {
    if quick() {
        4
    } else {
        16
    }
}

fn request(id: usize, seed: u64) -> JobRequest {
    let mut req = JobRequest::new(format!("job-{id}"), PROGRAM, vec![0]);
    req.seed = seed;
    req.samples = Some(4);
    req
}

fn service() -> Service {
    Service::start(&ServeConfig {
        workers: 4,
        queue_capacity: 64,
        ..ServeConfig::default()
    })
    .expect("in-memory service starts")
}

fn run_jobs(service: &Service, requests: Vec<JobRequest>) {
    let handles: Vec<_> = requests
        .into_iter()
        .map(|r| service.submit(r).expect("queue sized for the batch"))
        .collect();
    for handle in handles {
        let out = handle.wait().expect("job completes");
        assert!(out.report.all_passed());
    }
}

fn bench_serve(c: &mut Criterion) {
    let n = batch_size();
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    group.bench_function("coalesced_identical", |b| {
        b.iter(|| {
            let service = service();
            run_jobs(&service, (0..n).map(|i| request(i, 7)).collect());
            service.shutdown();
        });
    });

    group.bench_function("independent_seeds", |b| {
        b.iter(|| {
            let service = service();
            run_jobs(
                &service,
                (0..n).map(|i| request(i, 1000 + i as u64)).collect(),
            );
            service.shutdown();
        });
    });

    group.bench_function("sequential_baseline", |b| {
        let circuit = parse_program(PROGRAM).expect("parses");
        let assertions = assertions_from_source(PROGRAM).expect("spec parses");
        b.iter(|| {
            for _ in 0..n {
                let mut verifier = Verifier::new(circuit.clone()).input_qubits(&[0]).samples(4);
                for a in &assertions {
                    verifier = verifier.assert_that(a.clone());
                }
                let report = verifier.run(&mut StdRng::seed_from_u64(7));
                assert!(report.all_passed());
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
