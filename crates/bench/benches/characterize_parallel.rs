//! Parallel-characterization bench: serial vs all-cores sweeps on a
//! shot-readout workload big enough to amortize the thread pool (8 qubits,
//! 8 sampled inputs, two traced registers). The sampled traces and the cost
//! ledger are bit-identical between the two arms (see DESIGN.md
//! "Deterministic parallelism"); only wall-clock differs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morph_qprog::Circuit;
use morph_qsim::NoiseModel;
use morph_tomography::ReadoutMode;
use morphqpv::{characterize, CharacterizationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_QUBITS: usize = 8;
const N_SAMPLES: usize = 8;

/// A layered entangling circuit with a mid-point and an end tracepoint,
/// each on a 4-qubit half register — the shape of the Table 4 target
/// programs. Full-register shot tomography at 8 qubits would cost
/// `4^8 - 1` measurement settings per tracepoint per input; the half
/// registers keep the per-input work heavy (2 × 255 settings with PSD
/// projection) but bounded.
fn workload_circuit() -> Circuit {
    let n = N_QUBITS;
    let mut c = Circuit::new(n);
    for layer in 0..3 {
        for q in 0..n {
            c.h(q);
            c.rz(q, 0.37 * (layer as f64 + 1.0) * (q as f64 + 1.0));
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
    }
    c.tracepoint(1, &[0, 1, 2, 3]);
    for q in 0..n {
        c.h(q);
    }
    c.tracepoint(2, &[4, 5, 6, 7]);
    c
}

fn config(parallelism: usize) -> CharacterizationConfig {
    CharacterizationConfig {
        n_samples: N_SAMPLES,
        ensemble: morph_clifford::InputEnsemble::Clifford,
        readout: ReadoutMode::Shots(500),
        input_qubits: (0..N_QUBITS).collect(),
        noise: NoiseModel::noiseless(),
        parallelism,
    }
}

fn bench_characterize(c: &mut Criterion) {
    let circuit = workload_circuit();
    let mut group = c.benchmark_group("characterize_parallel");
    group.sample_size(10);
    for (label, parallelism) in [("serial", 1usize), ("all_cores", 0)] {
        group.bench_with_input(BenchmarkId::new(label, N_SAMPLES), &parallelism, |b, &p| {
            let cfg = config(p);
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                characterize(std::hint::black_box(&circuit), &cfg, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_characterize);
criterion_main!(benches);
