//! Characterization-sweep benches.
//!
//! Two axes are measured on shot-readout workloads whose sampled traces and
//! cost ledgers are bit-identical between all arms (see DESIGN.md
//! "Deterministic parallelism"):
//!
//! - `characterize_parallel`: serial vs all-cores per-state sweeps (8
//!   qubits, 8 inputs, two traced half registers).
//! - `characterize_batched`: per-state vs gate-major batched sweeps at
//!   n = 10 qubits, batch = 32 — the ISSUE-6 headline comparison. Both arms
//!   run single-worker so the speedup isolates the loop inversion, and a
//!   small noisy (density-batch) group covers the channel path.
//!
//! Set `MORPH_BENCH_QUICK=1` for the CI smoke subset (fewer samples, fewer
//! timing repetitions). Set `MORPH_BENCH_JSON=path` to record the medians.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morph_qprog::Circuit;
use morph_qsim::NoiseModel;
use morph_tomography::ReadoutMode;
use morphqpv::{characterize, CharacterizationConfig, SweepMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_QUBITS: usize = 8;
const N_SAMPLES: usize = 8;

fn quick() -> bool {
    std::env::var_os("MORPH_BENCH_QUICK").is_some()
}

/// A layered entangling circuit with a mid-point and an end tracepoint,
/// each on a 4-qubit half register — the shape of the Table 4 target
/// programs. Full-register shot tomography at 8 qubits would cost
/// `4^8 - 1` measurement settings per tracepoint per input; the half
/// registers keep the per-input work heavy (2 × 255 settings with PSD
/// projection) but bounded.
fn workload_circuit() -> Circuit {
    let n = N_QUBITS;
    let mut c = Circuit::new(n);
    for layer in 0..3 {
        for q in 0..n {
            c.h(q);
            c.rz(q, 0.37 * (layer as f64 + 1.0) * (q as f64 + 1.0));
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
    }
    c.tracepoint(1, &[0, 1, 2, 3]);
    for q in 0..n {
        c.h(q);
    }
    c.tracepoint(2, &[4, 5, 6, 7]);
    c
}

fn config(parallelism: usize) -> CharacterizationConfig {
    CharacterizationConfig {
        n_samples: N_SAMPLES,
        ensemble: morph_clifford::InputEnsemble::Clifford,
        readout: ReadoutMode::Shots(500),
        input_qubits: (0..N_QUBITS).collect(),
        noise: NoiseModel::noiseless(),
        parallelism,
        sweep: SweepMode::default(),
        // Pin the dense path: this bench measures the dense sweep's
        // parallel scaling, not backend selection.
        backend: morphqpv::BackendMode::Dense,
    }
}

fn bench_characterize(c: &mut Criterion) {
    let circuit = workload_circuit();
    let mut group = c.benchmark_group("characterize_parallel");
    group.sample_size(10);
    for (label, parallelism) in [("serial", 1usize), ("all_cores", 0)] {
        group.bench_with_input(BenchmarkId::new(label, N_SAMPLES), &parallelism, |b, &p| {
            let cfg = config(p);
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                characterize(std::hint::black_box(&circuit), &cfg, &mut rng)
            });
        });
    }
    group.finish();
}

/// The ISSUE-6 headline workload: a deep layered 10-qubit circuit with a
/// cheap exact tracepoint at the end, so execution (not tomography)
/// dominates and the loop-inversion speedup is what's measured.
fn batched_workload(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        for q in 0..n {
            c.h(q);
            c.rz(q, 0.19 * (layer as f64 + 1.0) * (q as f64 + 1.0));
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
    }
    c.tracepoint(1, &[0, 1]);
    c
}

fn batched_config(sweep: SweepMode, n: usize, samples: usize) -> CharacterizationConfig {
    CharacterizationConfig {
        n_samples: samples,
        ensemble: morph_clifford::InputEnsemble::Clifford,
        readout: ReadoutMode::Exact,
        // Input on a 4-qubit subregister: Clifford sampling on the full
        // 10-qubit register would spend most of the bench building 1024²
        // input ρ matrices, hiding the sweep being measured. Both arms
        // still execute the full n-qubit circuit per input.
        input_qubits: (0..4.min(n)).collect(),
        noise: NoiseModel::noiseless(),
        parallelism: 1,
        sweep,
        backend: morphqpv::BackendMode::Dense,
    }
}

fn bench_batched(c: &mut Criterion) {
    let n = 10;
    let samples = 32; // = the default MORPH_CHAR_BATCH, so one full batch
    let circuit = batched_workload(n, if quick() { 2 } else { 16 });
    let mut group = c.benchmark_group("characterize_batched");
    group.sample_size(if quick() { 3 } else { 10 });
    for (label, sweep) in [
        ("per_state", SweepMode::PerState),
        ("batched", SweepMode::Batched),
    ] {
        group.bench_with_input(BenchmarkId::new(label, samples), &sweep, |b, &sweep| {
            let cfg = batched_config(sweep, n, samples);
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(11);
                characterize(std::hint::black_box(&circuit), &cfg, &mut rng)
            });
        });
    }
    group.finish();
}

/// The channel-noise counterpart on a density-batch-sized register.
fn bench_batched_noisy(c: &mut Criterion) {
    let n = 6;
    let samples = if quick() { 4 } else { 16 };
    let circuit = batched_workload(n, 3);
    let mut group = c.benchmark_group("characterize_batched_noisy");
    group.sample_size(if quick() { 2 } else { 5 });
    for (label, sweep) in [
        ("per_state", SweepMode::PerState),
        ("batched", SweepMode::Batched),
    ] {
        group.bench_with_input(BenchmarkId::new(label, samples), &sweep, |b, &sweep| {
            let mut cfg = batched_config(sweep, n, samples);
            cfg.noise = NoiseModel::ibm_cairo();
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(13);
                characterize(std::hint::black_box(&circuit), &cfg, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_characterize,
    bench_batched,
    bench_batched_noisy
);
criterion_main!(benches);
