//! Characterization-cache bench: cold characterization (full simulator
//! sweep + artifact encode) vs warm reuse (fingerprint + in-memory hit)
//! vs disk reuse (fingerprint + JSON decode from the store directory).
//!
//! The warm arms must be orders of magnitude cheaper than the cold arm —
//! that gap is the entire value proposition of `morph-store` for the
//! figure sweeps, which re-characterize the same reference program
//! dozens of times.

use criterion::{criterion_group, criterion_main, Criterion};
use morph_qprog::Circuit;
use morph_qsim::NoiseModel;
use morph_tomography::ReadoutMode;
use morphqpv::{characterize_cached, CharacterizationCache, CharacterizationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_QUBITS: usize = 6;
const N_SAMPLES: usize = 8;

/// A layered entangling circuit with an output tracepoint — the shape of
/// the comparison workloads that benefit from artifact reuse.
fn workload_circuit() -> Circuit {
    let n = N_QUBITS;
    let mut c = Circuit::new(n);
    for layer in 0..3 {
        for q in 0..n {
            c.h(q);
            c.rz(q, 0.41 * (layer as f64 + 1.0) * (q as f64 + 1.0));
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
    }
    c.tracepoint(1, &(0..n).collect::<Vec<_>>());
    c
}

fn config() -> CharacterizationConfig {
    CharacterizationConfig {
        n_samples: N_SAMPLES,
        ensemble: morph_clifford::InputEnsemble::Clifford,
        readout: ReadoutMode::Exact,
        input_qubits: (0..N_QUBITS).collect(),
        noise: NoiseModel::noiseless(),
        parallelism: 1,
        sweep: morphqpv::SweepMode::default(),
        backend: morphqpv::BackendMode::Auto,
    }
}

fn bench_store_cache(c: &mut Criterion) {
    let circuit = workload_circuit();
    let cfg = config();
    let mut group = c.benchmark_group("store_cache");
    group.sample_size(10);

    // Cold: every iteration characterizes into a fresh empty cache.
    group.bench_function("cold_characterize", |b| {
        b.iter(|| {
            let mut cache = CharacterizationCache::in_memory();
            let mut rng = StdRng::seed_from_u64(11);
            characterize_cached(std::hint::black_box(&circuit), &cfg, &mut rng, &mut cache)
        });
    });

    // Warm (memory): one characterization up front, then every iteration
    // is a fingerprint computation plus an in-memory LRU hit.
    group.bench_function("warm_memory_hit", |b| {
        let mut cache = CharacterizationCache::in_memory();
        let mut rng = StdRng::seed_from_u64(11);
        characterize_cached(&circuit, &cfg, &mut rng, &mut cache);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(11);
            characterize_cached(std::hint::black_box(&circuit), &cfg, &mut rng, &mut cache)
        });
    });

    // Warm (disk): artifacts persisted to a store directory; every
    // iteration drops the in-memory layer first, forcing a JSON decode.
    group.bench_function("warm_disk_hit", |b| {
        let dir = std::env::temp_dir().join(format!("morph-store-bench-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = CharacterizationCache::open(&dir).expect("open bench store dir");
        let mut rng = StdRng::seed_from_u64(11);
        characterize_cached(&circuit, &cfg, &mut rng, &mut cache);
        b.iter(|| {
            cache.store_mut().drop_memory();
            let mut rng = StdRng::seed_from_u64(11);
            characterize_cached(std::hint::black_box(&circuit), &cfg, &mut rng, &mut cache)
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    group.finish();
}

criterion_group!(benches, bench_store_cache);
criterion_main!(benches);
