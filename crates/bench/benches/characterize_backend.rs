//! Backend-selection benches: one Clifford workload characterized on the
//! dense, stabilizer, and sparse backends at n ∈ {10, 16, 24}.
//!
//! The workload is a GHZ-spine Clifford circuit — one superposing `H`,
//! then layered monomial rounds (CX chain, S wall, CZ pairs) — so every
//! backend can represent it: the tableau takes it whole (all-Clifford),
//! and the sparse register never exceeds `2^(|input| + 1)` nonzeros. The
//! dense arm is skipped at n = 24 (2^24 amplitudes per gate pass is not
//! bench-feasible); the fast backends still run there, which is the point
//! of having them.
//!
//! Set `MORPH_BENCH_QUICK=1` for the CI smoke subset (fewer layers,
//! samples, and timing repetitions). Set `MORPH_BENCH_JSON=path` to record
//! the medians — BENCH_7.json in the repo root holds a full run; CI
//! asserts the ≥ 10× dense-vs-stabilizer gap at the largest dense-feasible
//! width from a quick-mode report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morph_qprog::Circuit;
use morph_qsim::NoiseModel;
use morph_tomography::ReadoutMode;
use morphqpv::{characterize, BackendMode, CharacterizationConfig, SweepMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Register widths under comparison.
const SIZES: [usize; 3] = [10, 16, 24];

/// Widest register the dense arm still runs at.
const DENSE_MAX_QUBITS: usize = 16;

fn quick() -> bool {
    std::env::var_os("MORPH_BENCH_QUICK").is_some()
}

/// The GHZ-spine Clifford workload (see module docs).
fn workload(n: usize) -> Circuit {
    let layers = if quick() { 2 } else { 4 };
    let mut c = Circuit::new(n);
    c.h(0);
    for _ in 0..layers {
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        for q in (0..n).step_by(2) {
            c.s(q);
        }
        for q in (0..n - 1).step_by(3) {
            c.cz(q, q + 1);
        }
    }
    c.tracepoint(1, &[0, 1]);
    c
}

fn config(backend: BackendMode, samples: usize) -> CharacterizationConfig {
    CharacterizationConfig {
        n_samples: samples,
        ensemble: morph_clifford::InputEnsemble::Clifford,
        readout: ReadoutMode::Exact,
        // Input on a 4-qubit subregister: all arms execute the full
        // n-qubit circuit per input, and the sparse support stays bounded.
        input_qubits: (0..4).collect(),
        noise: NoiseModel::noiseless(),
        parallelism: 1,
        sweep: SweepMode::default(),
        backend,
    }
}

fn bench_backends(c: &mut Criterion) {
    let samples = if quick() { 2 } else { 4 };
    let mut group = c.benchmark_group("characterize_backend");
    group.sample_size(if quick() { 3 } else { 10 });
    for n in SIZES {
        let circuit = workload(n);
        for (label, backend) in [
            ("dense", BackendMode::Dense),
            ("stabilizer", BackendMode::Stabilizer),
            ("sparse", BackendMode::Sparse),
        ] {
            if backend == BackendMode::Dense && n > DENSE_MAX_QUBITS {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(label, n), &backend, |b, &backend| {
                let cfg = config(backend, samples);
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(17);
                    characterize(std::hint::black_box(&circuit), &cfg, &mut rng)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
