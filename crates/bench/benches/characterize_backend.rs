//! Backend-selection benches: one Clifford workload characterized on the
//! dense, stabilizer, and sparse backends at n ∈ {10, 16, 24}.
//!
//! The workload is a GHZ-spine Clifford circuit — one superposing `H`,
//! then layered monomial rounds (CX chain, S wall, CZ pairs) — so every
//! backend can represent it: the tableau takes it whole (all-Clifford),
//! and the sparse register never exceeds `2^(|input| + 1)` nonzeros. The
//! dense arm is skipped at n = 24 (2^24 amplitudes per gate pass is not
//! bench-feasible); the fast backends still run there, which is the point
//! of having them.
//!
//! Two further groups probe the sparse fast path specifically:
//!
//! - `bounded_fill` — a **non-Clifford** workload (T walls between CX
//!   chains after an 8-qubit H prefix) whose support is permutation- and
//!   diagonal-bound at 2^8 nonzeros: the stabilizer cannot take it, the
//!   dense engine pays 2^n per gate, and the sparse register never grows,
//!   so this isolates the sparse kernels' per-nonzero cost.
//! - `sparse_layout` — the same bounded-fill gate stream applied directly
//!   (no characterization harness) to the current sorted-vec register and
//!   to an in-bench `MapSparse` reference reproducing the previous
//!   `BTreeMap` layout, so the layout change is measured apples-to-apples.
//!
//! Set `MORPH_BENCH_QUICK=1` for the CI smoke subset (fewer layers,
//! samples, and timing repetitions). Set `MORPH_BENCH_JSON=path` to record
//! the medians — BENCH_8.json in the repo root holds a full run (its
//! predecessor BENCH_7.json predates the `bounded_fill`/`sparse_layout`
//! groups and the sorted-vec layout); CI asserts the ≥ 10×
//! dense-vs-stabilizer gap and the ≥ 3× sorted-vec-vs-map gap from a
//! quick-mode report.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morph_backend::{Simulator, SparseSim};
use morph_linalg::C64;
use morph_qprog::Circuit;
use morph_qsim::{Gate, NoiseModel};
use morph_tomography::ReadoutMode;
use morphqpv::{characterize, BackendMode, CharacterizationConfig, SweepMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Register widths under comparison.
const SIZES: [usize; 3] = [10, 16, 24];

/// Widest register the dense arm still runs at.
const DENSE_MAX_QUBITS: usize = 16;

fn quick() -> bool {
    std::env::var_os("MORPH_BENCH_QUICK").is_some()
}

/// The GHZ-spine Clifford workload (see module docs).
fn workload(n: usize) -> Circuit {
    let layers = if quick() { 2 } else { 4 };
    let mut c = Circuit::new(n);
    c.h(0);
    for _ in 0..layers {
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        for q in (0..n).step_by(2) {
            c.s(q);
        }
        for q in (0..n - 1).step_by(3) {
            c.cz(q, q + 1);
        }
    }
    c.tracepoint(1, &[0, 1]);
    c
}

/// The bounded-fill non-Clifford workload (see module docs): an H prefix
/// pins the support at `2^min(8, n-1)` nonzeros, then T walls (diagonal)
/// and CX chains (permutation) churn every amplitude each layer without
/// ever growing the support — or triggering the adaptive switch.
fn bounded_fill(n: usize) -> Circuit {
    let layers = if quick() { 2 } else { 4 };
    let mut c = Circuit::new(n);
    for q in 0..8.min(n - 1) {
        c.h(q);
    }
    for _ in 0..layers {
        for q in 0..n {
            c.t(q);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
    }
    c.tracepoint(1, &[0, 1]);
    c
}

/// The bounded-fill gate stream as a raw gate list, for the layout micro
/// benches that bypass the characterization harness.
fn bounded_fill_gates(n: usize) -> Vec<Gate> {
    bounded_fill(n)
        .instructions()
        .iter()
        .filter_map(|inst| match inst {
            morph_qprog::Instruction::Gate(g) => Some(g.clone()),
            _ => None,
        })
        .collect()
}

/// The previous sparse layout, reproduced for the `sparse_layout` micro
/// group: a `BTreeMap<usize, C64>` keyed by basis index, group bases
/// re-sorted per gate, one map probe per gathered amplitude. Only the
/// kernels the bounded-fill stream needs (H, T, CX) are carried over.
struct MapSparse {
    n: usize,
    amps: BTreeMap<usize, C64>,
}

impl MapSparse {
    fn new(n: usize) -> Self {
        let mut amps = BTreeMap::new();
        amps.insert(0usize, C64::ONE);
        MapSparse { n, amps }
    }

    fn shift(&self, qubit: usize) -> usize {
        self.n - 1 - qubit
    }

    fn get(&self, idx: usize) -> C64 {
        self.amps.get(&idx).copied().unwrap_or(C64::ZERO)
    }

    fn set(&mut self, idx: usize, v: C64) {
        if v == C64::ZERO {
            self.amps.remove(&idx);
        } else {
            self.amps.insert(idx, v);
        }
    }

    fn touched_bases(&self, group_mask: usize) -> Vec<usize> {
        let mut bases: Vec<usize> = self.amps.keys().map(|&k| k & !group_mask).collect();
        bases.sort_unstable();
        bases.dedup();
        bases
    }

    fn apply_gate(&mut self, gate: &Gate) {
        match gate {
            Gate::H(q) => {
                let h = 1.0 / 2f64.sqrt();
                let mask = 1usize << self.shift(*q);
                for base in self.touched_bases(mask) {
                    let a0 = self.get(base);
                    let a1 = self.get(base | mask);
                    self.set(base, (a0 + a1).scale(h));
                    self.set(base | mask, (a0 - a1).scale(h));
                }
            }
            Gate::T(q) => {
                let mask = 1usize << self.shift(*q);
                let phase = C64::cis(std::f64::consts::FRAC_PI_4);
                for (&i, v) in self.amps.iter_mut() {
                    if i & mask != 0 {
                        *v *= phase;
                    }
                }
                self.amps.retain(|_, v| *v != C64::ZERO);
            }
            Gate::CX(c, t) => {
                let cmask = 1usize << self.shift(*c);
                let tmask = 1usize << self.shift(*t);
                let old = std::mem::take(&mut self.amps);
                for (i, a) in old {
                    let j = if i & cmask != 0 { i ^ tmask } else { i };
                    self.amps.insert(j, a);
                }
            }
            other => unreachable!("bounded-fill stream has no {other:?}"),
        }
    }
}

fn config(backend: BackendMode, samples: usize) -> CharacterizationConfig {
    CharacterizationConfig {
        n_samples: samples,
        ensemble: morph_clifford::InputEnsemble::Clifford,
        readout: ReadoutMode::Exact,
        // Input on a 4-qubit subregister: all arms execute the full
        // n-qubit circuit per input, and the sparse support stays bounded.
        input_qubits: (0..4).collect(),
        noise: NoiseModel::noiseless(),
        parallelism: 1,
        sweep: SweepMode::default(),
        backend,
    }
}

fn bench_backends(c: &mut Criterion) {
    let samples = if quick() { 2 } else { 4 };
    let mut group = c.benchmark_group("characterize_backend");
    group.sample_size(if quick() { 3 } else { 10 });
    for n in SIZES {
        let circuit = workload(n);
        for (label, backend) in [
            ("dense", BackendMode::Dense),
            ("stabilizer", BackendMode::Stabilizer),
            ("sparse", BackendMode::Sparse),
        ] {
            if backend == BackendMode::Dense && n > DENSE_MAX_QUBITS {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(label, n), &backend, |b, &backend| {
                let cfg = config(backend, samples);
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(17);
                    characterize(std::hint::black_box(&circuit), &cfg, &mut rng)
                });
            });
        }
    }
    group.finish();
}

/// The non-Clifford bounded-fill comparison: dense pays `2^n` per gate,
/// the sparse register holds 2^8 nonzeros throughout (the stabilizer
/// cannot represent the T walls at all, so it has no arm here).
fn bench_bounded_fill(c: &mut Criterion) {
    let samples = if quick() { 2 } else { 4 };
    let mut group = c.benchmark_group("bounded_fill");
    group.sample_size(if quick() { 3 } else { 10 });
    for n in SIZES {
        let circuit = bounded_fill(n);
        for (label, backend) in [
            ("dense", BackendMode::Dense),
            ("sparse", BackendMode::Sparse),
        ] {
            if backend == BackendMode::Dense && n > DENSE_MAX_QUBITS {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(label, n), &backend, |b, &backend| {
                let cfg = config(backend, samples);
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(17);
                    characterize(std::hint::black_box(&circuit), &cfg, &mut rng)
                });
            });
        }
    }
    group.finish();
}

/// The layout micro comparison: one bounded-fill gate stream applied
/// directly to the sorted-vec register (`sorted`) and to the `BTreeMap`
/// reference (`map`). CI asserts `sorted` beats `map` by ≥ 3× at n = 16.
fn bench_sparse_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_layout");
    group.sample_size(if quick() { 3 } else { 10 });
    for n in [16usize, 20] {
        let gates = bounded_fill_gates(n);
        group.bench_with_input(BenchmarkId::new("map", n), &gates, |b, gates| {
            b.iter(|| {
                let mut sim = MapSparse::new(n);
                for g in gates {
                    sim.apply_gate(std::hint::black_box(g));
                }
                std::hint::black_box(sim.amps.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("sorted", n), &gates, |b, gates| {
            b.iter(|| {
                // Spill/switch thresholds out of reach: the micro bench
                // measures the sparse kernels, never the dense fallback.
                let mut sim = SparseSim::with_thresholds(n, usize::MAX, usize::MAX);
                for g in gates {
                    sim.apply_gate(std::hint::black_box(g)).unwrap();
                }
                std::hint::black_box(sim.nonzeros())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_backends,
    bench_bounded_fill,
    bench_sparse_layout
);
criterion_main!(benches);
