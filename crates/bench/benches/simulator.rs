//! Substrate micro-benchmarks: state-vector gate kernels, the qubit-local
//! density-matrix kernels against the full-matrix `evolve` oracle, the
//! closed-form depolarizing channel against embedded Kraus conjugation,
//! gate fusion, and end-to-end noisy execution.
//!
//! Set `MORPH_BENCH_QUICK=1` to run a smoke-test subset (smallest register
//! only, minimal samples) — used by CI; see `crates/bench/README.md` for
//! recorded full-run numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morph_linalg::CMatrix;
use morph_qprog::{Circuit, Executor, Instruction};
use morph_qsim::{matrices, DensityMatrix, Gate, NoiseModel, StateVector};

fn quick() -> bool {
    std::env::var_os("MORPH_BENCH_QUICK").is_some()
}

fn density_sizes() -> &'static [usize] {
    if quick() {
        &[6]
    } else {
        &[6, 8, 10]
    }
}

/// A density matrix with structure on every qubit (no zero blocks that
/// would flatter sparse access patterns).
fn busy_density(n: usize) -> DensityMatrix {
    let mut rho = DensityMatrix::zero_state(n);
    for q in 0..n {
        rho.apply_gate(&Gate::H(q));
        rho.apply_gate(&Gate::T(q));
    }
    for q in 0..n - 1 {
        rho.apply_gate(&Gate::CX(q, q + 1));
    }
    rho
}

/// Kraus operators of the single-qubit depolarizing channel embedded in an
/// `n`-qubit register — the pre-kernel implementation path.
fn embedded_depolarize_kraus(qubit: usize, p: f64, n: usize) -> Vec<CMatrix> {
    vec![
        CMatrix::identity(2)
            .scale_re((1.0 - 3.0 * p / 4.0).sqrt())
            .embed(&[qubit], n),
        matrices::x().scale_re((p / 4.0).sqrt()).embed(&[qubit], n),
        matrices::y().scale_re((p / 4.0).sqrt()).embed(&[qubit], n),
        matrices::z().scale_re((p / 4.0).sqrt()).embed(&[qubit], n),
    ]
}

fn bench_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_kernels");
    group.sample_size(20);
    for &n in &[10usize, 14, 18] {
        let mut psi = StateVector::zero_state(n);
        for q in 0..n {
            psi.apply_h(q);
        }
        group.bench_with_input(BenchmarkId::new("h", n), &n, |b, _| {
            b.iter(|| {
                let mut s = psi.clone();
                s.apply_h(std::hint::black_box(0));
                s
            });
        });
        group.bench_with_input(BenchmarkId::new("cx", n), &n, |b, _| {
            b.iter(|| {
                let mut s = psi.clone();
                s.apply_cx(0, n - 1);
                s
            });
        });
        group.bench_with_input(BenchmarkId::new("swap", n), &n, |b, _| {
            b.iter(|| {
                let mut s = psi.clone();
                s.apply_swap(0, n - 1);
                s
            });
        });
        group.bench_with_input(BenchmarkId::new("mcz", n), &n, |b, _| {
            let qubits: Vec<usize> = (0..n).collect();
            b.iter(|| {
                let mut s = psi.clone();
                Gate::MCZ(qubits.clone()).apply(&mut s);
                s
            });
        });
        group.bench_with_input(BenchmarkId::new("reduced_dm_3q", n), &n, |b, _| {
            b.iter(|| psi.reduced_density_matrix(&[0, n / 2, n - 1]));
        });
    }
    group.finish();
}

fn bench_density_local(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_local");
    group.sample_size(if quick() { 3 } else { 10 });
    for &n in density_sizes() {
        let rho = busy_density(n);
        group.bench_with_input(BenchmarkId::new("1q_h", n), &n, |b, _| {
            b.iter(|| {
                let mut r = rho.clone();
                r.apply_gate(&Gate::H(n / 2));
                r
            });
        });
        group.bench_with_input(BenchmarkId::new("2q_cx", n), &n, |b, _| {
            b.iter(|| {
                let mut r = rho.clone();
                r.apply_gate(&Gate::CX(0, n - 1));
                r
            });
        });
        group.bench_with_input(BenchmarkId::new("depolarize", n), &n, |b, _| {
            b.iter(|| {
                let mut r = rho.clone();
                r.depolarize(n / 2, 0.01);
                r
            });
        });
    }
    group.finish();
}

fn bench_density_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_full_matrix");
    group.sample_size(2);
    for &n in density_sizes() {
        let rho = busy_density(n);
        let h_full = Gate::H(n / 2).full_matrix(n);
        let cx_full = Gate::CX(0, n - 1).full_matrix(n);
        group.bench_with_input(BenchmarkId::new("1q_h", n), &n, |b, _| {
            b.iter(|| {
                let mut r = rho.clone();
                r.evolve(&h_full);
                r
            });
        });
        group.bench_with_input(BenchmarkId::new("2q_cx", n), &n, |b, _| {
            b.iter(|| {
                let mut r = rho.clone();
                r.evolve(&cx_full);
                r
            });
        });
        // The Kraus comparator pays 2k full matmuls; keep it off the
        // largest register so a full run stays in minutes, not hours.
        if n < 10 {
            let kraus = embedded_depolarize_kraus(n / 2, 0.01, n);
            group.bench_with_input(BenchmarkId::new("depolarize_kraus", n), &n, |b, _| {
                b.iter(|| {
                    let mut r = rho.clone();
                    r.apply_kraus(&kraus);
                    r
                });
            });
        }
    }
    group.finish();
}

/// A layered circuit with plenty of fusable structure: Euler-angle-style
/// single-qubit runs interleaved with entangling layers — the shape
/// characterization sweeps produce after input-state preparation.
fn layered_circuit(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for l in 0..layers {
        let a = 0.3 + l as f64 * 0.1;
        for q in 0..n {
            c.h(q).rx(q, a).ry(q, a * 0.7).rx(q, a * 1.3).ry(q, a * 0.4);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
    }
    c
}

fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_fusion");
    group.sample_size(if quick() { 3 } else { 10 });
    let n = if quick() { 8 } else { 12 };
    let circuit = layered_circuit(n, 8);
    let input = StateVector::zero_state(n);
    group.bench_with_input(BenchmarkId::new("run_expected_fused", n), &n, |b, _| {
        let ex = Executor::default();
        b.iter(|| ex.run_expected(&circuit, &input));
    });
    group.bench_with_input(BenchmarkId::new("run_expected_unfused", n), &n, |b, _| {
        let ex = Executor::builder().fusion(false).build();
        b.iter(|| ex.run_expected(&circuit, &input));
    });
    group.finish();
}

/// Steps a circuit through the pre-kernel noisy path: full-matrix `evolve`
/// per gate plus embedded-Kraus depolarizing after each gate.
fn run_noisy_full_matrix(circuit: &Circuit, noise: &NoiseModel) -> DensityMatrix {
    let n = circuit.n_qubits();
    let mut rho = DensityMatrix::zero_state(n);
    for inst in circuit.instructions() {
        if let Instruction::Gate(g) = inst {
            rho.evolve(&g.full_matrix(n));
            let qs = g.qubits();
            let p = if qs.len() <= 1 { noise.p1 } else { noise.p2 };
            if p > 0.0 {
                for q in qs {
                    rho.apply_kraus(&embedded_depolarize_kraus(q, p, n));
                }
            }
        }
    }
    rho
}

fn bench_noisy_e2e(c: &mut Criterion) {
    let mut group = c.benchmark_group("noisy_e2e");
    group.sample_size(2);
    let n = if quick() { 4 } else { 7 };
    let circuit = layered_circuit(n, 2);
    let noise = NoiseModel::ibm_cairo();
    group.bench_with_input(BenchmarkId::new("local_kernels", n), &n, |b, _| {
        let ex = Executor::builder().noise(noise).build();
        let input = DensityMatrix::zero_state(n);
        b.iter(|| ex.run_expected_noisy(&circuit, &input));
    });
    group.bench_with_input(BenchmarkId::new("full_matrix", n), &n, |b, _| {
        b.iter(|| run_noisy_full_matrix(&circuit, &noise));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gates,
    bench_density_local,
    bench_density_full,
    bench_fusion,
    bench_noisy_e2e
);
criterion_main!(benches);
