//! Substrate micro-benchmarks: state-vector gate kernels and reduced
//! density matrices — the primitives every experiment leans on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morph_qsim::{Gate, StateVector};

fn bench_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_kernels");
    group.sample_size(20);
    for &n in &[10usize, 14, 18] {
        let mut psi = StateVector::zero_state(n);
        for q in 0..n {
            psi.apply_h(q);
        }
        group.bench_with_input(BenchmarkId::new("h", n), &n, |b, _| {
            b.iter(|| {
                let mut s = psi.clone();
                s.apply_h(std::hint::black_box(0));
                s
            });
        });
        group.bench_with_input(BenchmarkId::new("cx", n), &n, |b, _| {
            b.iter(|| {
                let mut s = psi.clone();
                s.apply_cx(0, n - 1);
                s
            });
        });
        group.bench_with_input(BenchmarkId::new("mcz", n), &n, |b, _| {
            let qubits: Vec<usize> = (0..n).collect();
            b.iter(|| {
                let mut s = psi.clone();
                Gate::MCZ(qubits.clone()).apply(&mut s);
                s
            });
        });
        group.bench_with_input(BenchmarkId::new("reduced_dm_3q", n), &n, |b, _| {
            b.iter(|| psi.reduced_density_matrix(&[0, n / 2, n - 1]));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gates);
criterion_main!(benches);
