//! GHZ state preparation — the introductory tracepoint example (Section 4).

use morph_qprog::Circuit;

/// The GHZ preparation circuit: `H` on qubit 0 then a CX chain.
pub fn ghz(n: usize) -> Circuit {
    assert!(n >= 2, "GHZ needs at least two qubits");
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_qprog::Executor;
    use morph_qsim::StateVector;

    #[test]
    fn ghz_amplitudes() {
        for n in [2usize, 3, 5] {
            let c = ghz(n);
            let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(0);
            let out = Executor::default()
                .run_trajectory(&c, &StateVector::zero_state(n), &mut rng)
                .final_state;
            let probs = out.probabilities();
            assert!((probs[0] - 0.5).abs() < 1e-12, "n={n}");
            assert!((probs[(1 << n) - 1] - 0.5).abs() < 1e-12, "n={n}");
            assert!(probs[1..(1 << n) - 1].iter().all(|&p| p < 1e-12), "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_qubit() {
        let _ = ghz(1);
    }
}
