//! Mutation testing (Section 8.2): bug injection by inserting random phase
//! gates into a program, the mechanism used to generate the 100 buggy test
//! cases per benchmark in Table 4 and Fig 12.

use morph_qprog::{Circuit, Instruction};
use morph_qsim::Gate;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Description of an injected bug.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectedBug {
    /// Instruction index before which the phase gate was inserted.
    pub position: usize,
    /// Qubit receiving the phase error.
    pub qubit: usize,
    /// Phase angle of the injected gate.
    pub angle: f64,
}

/// Inserts one random phase gate into the circuit (the paper's mutation
/// operator). The angle is drawn from `[π/4, 7π/4]` so the bug is never
/// negligibly small, and the insertion point is uniform over instruction
/// boundaries after the first instruction.
///
/// Returns the mutated circuit and the bug description.
///
/// # Panics
///
/// Panics if the circuit is empty or has no qubits.
pub fn inject_phase_bug(circuit: &Circuit, rng: &mut impl Rng) -> (Circuit, InjectedBug) {
    assert!(
        !circuit.instructions().is_empty(),
        "cannot mutate an empty circuit"
    );
    assert!(circuit.n_qubits() > 0, "cannot mutate a zero-qubit circuit");
    let position = rng.gen_range(1..=circuit.instructions().len());
    let qubit = rng.gen_range(0..circuit.n_qubits());
    let angle = rng.gen_range(std::f64::consts::FRAC_PI_4..(7.0 * std::f64::consts::FRAC_PI_4));
    let mut mutated = circuit.clone();
    mutated.insert(position, Instruction::Gate(Gate::Phase(qubit, angle)));
    (
        mutated,
        InjectedBug {
            position,
            qubit,
            angle,
        },
    )
}

/// Generates `count` mutated variants of a circuit (the paper's test-case
/// battery).
pub fn mutation_battery(
    circuit: &Circuit,
    count: usize,
    rng: &mut impl Rng,
) -> Vec<(Circuit, InjectedBug)> {
    (0..count).map(|_| inject_phase_bug(circuit, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        c
    }

    #[test]
    fn mutation_adds_exactly_one_gate() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = base();
        let (m, bug) = inject_phase_bug(&c, &mut rng);
        assert_eq!(m.gate_count(), c.gate_count() + 1);
        assert!(bug.position >= 1 && bug.position <= c.instructions().len());
        assert!(bug.qubit < 3);
        assert!(bug.angle >= std::f64::consts::FRAC_PI_4);
    }

    #[test]
    fn mutation_changes_program_semantics() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = base();
        let mut changed = 0;
        for _ in 0..20 {
            let (m, _) = inject_phase_bug(&c, &mut rng);
            let ex = morph_qprog::Executor::default();
            let input = morph_qsim::StateVector::zero_state(3);
            let a = ex.run_trajectory(&c, &input, &mut rng).final_state;
            let b = ex.run_trajectory(&m, &input, &mut rng).final_state;
            if !a.approx_eq_up_to_phase(&b, 1e-9) {
                changed += 1;
            }
        }
        // Some injections land on |0> branches and are invisible from this
        // input, but most should change the state.
        assert!(changed > 5, "only {changed}/20 mutations changed semantics");
    }

    #[test]
    fn battery_produces_requested_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let battery = mutation_battery(&base(), 25, &mut rng);
        assert_eq!(battery.len(), 25);
        // Bugs should vary.
        let distinct: std::collections::HashSet<_> =
            battery.iter().map(|(_, b)| (b.position, b.qubit)).collect();
        assert!(distinct.len() > 5);
    }
}
