//! Quantum teleportation benchmark — the running example of Section 4.
//!
//! Teleports `k` payload qubits from Alice to Bob through `k` EPR pairs.
//! Two variants:
//!
//! - [`teleportation`]: the textbook protocol with Bell measurement and
//!   classically-fed-back X/Z corrections (exercises mid-measurement and
//!   feedback in the verifier), and
//! - [`teleportation_coherent`]: the deferred-measurement form using
//!   CX/CZ corrections, fully unitary — used for the larger registers of
//!   Fig 5 where branch enumeration would be wasteful.
//!
//! Register layout: qubits `0..k` are Alice's payload, `k..2k` are Alice's
//! halves of the EPR pairs, `2k..3k` are Bob's halves (the destination).

use morph_qprog::Circuit;

/// Register layout helper for a `k`-payload teleportation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Teleportation {
    /// Number of payload qubits teleported.
    pub payload: usize,
}

impl Teleportation {
    /// Layout for `payload` teleported qubits (total `3 × payload` qubits).
    ///
    /// # Panics
    ///
    /// Panics if `payload == 0`.
    pub fn new(payload: usize) -> Self {
        assert!(payload > 0, "need at least one payload qubit");
        Teleportation { payload }
    }

    /// Total register width.
    pub fn n_qubits(&self) -> usize {
        3 * self.payload
    }

    /// Alice's payload qubits (the program input).
    pub fn input_qubits(&self) -> Vec<usize> {
        (0..self.payload).collect()
    }

    /// Bob's destination qubits (the program output).
    pub fn output_qubits(&self) -> Vec<usize> {
        (2 * self.payload..3 * self.payload).collect()
    }

    /// The measured-and-corrected protocol with classical feedback.
    pub fn circuit(&self) -> Circuit {
        let k = self.payload;
        let mut c = Circuit::with_cbits(3 * k, 2 * k);
        for i in 0..k {
            let (a, e, b) = (i, k + i, 2 * k + i);
            // EPR pair between Alice's ancilla e and Bob's b.
            c.h(e);
            c.cx(e, b);
            // Bell measurement of (payload, ancilla).
            c.cx(a, e);
            c.h(a);
            c.measure(a, 2 * i);
            c.measure(e, 2 * i + 1);
            // Corrections on Bob's qubit.
            c.conditional(2 * i + 1, 1, morph_qsim::Gate::X(b));
            c.conditional(2 * i, 1, morph_qsim::Gate::Z(b));
        }
        c
    }

    /// The unitary deferred-measurement variant (CX/CZ corrections).
    pub fn circuit_coherent(&self) -> Circuit {
        let k = self.payload;
        let mut c = Circuit::new(3 * k);
        for i in 0..k {
            let (a, e, b) = (i, k + i, 2 * k + i);
            c.h(e);
            c.cx(e, b);
            c.cx(a, e);
            c.h(a);
            c.cx(e, b);
            c.cz(a, b);
        }
        c
    }

    /// The coherent variant with a bug: one payload lane misses its CZ
    /// correction, so states with a `|1⟩` component on that lane pick up a
    /// wrong phase. Detectable only by phase-sensitive verification.
    ///
    /// # Panics
    ///
    /// Panics if `broken_lane >= payload`.
    pub fn circuit_coherent_with_bug(&self, broken_lane: usize) -> Circuit {
        assert!(broken_lane < self.payload, "lane out of range");
        let k = self.payload;
        let mut c = Circuit::new(3 * k);
        for i in 0..k {
            let (a, e, b) = (i, k + i, 2 * k + i);
            c.h(e);
            c.cx(e, b);
            c.cx(a, e);
            c.h(a);
            c.cx(e, b);
            if i != broken_lane {
                c.cz(a, b);
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_qprog::{Executor, TracepointId};
    use morph_qsim::StateVector;

    fn with_traces(mut circuit: Circuit, layout: &Teleportation) -> Circuit {
        let mut c = Circuit::with_cbits(circuit.n_qubits(), circuit.n_cbits());
        c.tracepoint(1, &layout.input_qubits());
        // Move instructions over, then trace the output.
        for inst in circuit.instructions() {
            c.push(inst.clone());
        }
        c.tracepoint(2, &layout.output_qubits());
        circuit = c;
        circuit
    }

    fn random_payload_state(layout: &Teleportation, seed: u64) -> StateVector {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut psi = StateVector::zero_state(layout.n_qubits());
        for q in layout.input_qubits() {
            psi.apply_1q(&morph_qsim::matrices::ry(rng.gen_range(0.0..3.0)), q);
            psi.apply_phase(q, rng.gen_range(0.0..3.0));
        }
        psi
    }

    #[test]
    fn measured_protocol_teleports_random_states() {
        let layout = Teleportation::new(1);
        let circuit = with_traces(layout.circuit(), &layout);
        for seed in 0..5 {
            let input = random_payload_state(&layout, seed);
            let rec = Executor::default().run_expected(&circuit, &input);
            let sent = rec.state(TracepointId(1));
            let received = rec.state(TracepointId(2));
            assert!(
                sent.approx_eq(received, 1e-9),
                "teleportation failed for seed {seed}"
            );
        }
    }

    #[test]
    fn coherent_variant_matches_measured_protocol() {
        let layout = Teleportation::new(2);
        let measured = with_traces(layout.circuit(), &layout);
        let coherent = with_traces(layout.circuit_coherent(), &layout);
        let input = random_payload_state(&layout, 3);
        let ex = Executor::default();
        let rec_m = ex.run_expected(&measured, &input);
        let rec_c = ex.run_expected(&coherent, &input);
        assert!(rec_m
            .state(TracepointId(2))
            .approx_eq(rec_c.state(TracepointId(2)), 1e-9));
    }

    #[test]
    fn coherent_output_is_pure_for_pure_inputs() {
        let layout = Teleportation::new(2);
        let circuit = with_traces(layout.circuit_coherent(), &layout);
        let input = random_payload_state(&layout, 9);
        let rec = Executor::default().run_expected(&circuit, &input);
        let out = rec.state(TracepointId(2));
        assert!((morph_linalg::purity(out) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bug_breaks_phase_but_not_probabilities() {
        let layout = Teleportation::new(1);
        let good = with_traces(layout.circuit_coherent(), &layout);
        let bad = with_traces(layout.circuit_coherent_with_bug(0), &layout);
        let input = random_payload_state(&layout, 1);
        let ex = Executor::default();
        let out_good = ex
            .run_expected(&good, &input)
            .state(TracepointId(2))
            .clone();
        let out_bad = ex.run_expected(&bad, &input).state(TracepointId(2)).clone();
        // Diagonals (probabilities) agree…
        for i in 0..2 {
            assert!((out_good[(i, i)].re - out_bad[(i, i)].re).abs() < 1e-9);
        }
        // …but the states differ (phase error) — and the bad output is mixed
        // because the missing correction leaves payload-Bob entanglement.
        assert!((&out_good - &out_bad).frobenius_norm() > 1e-3);
    }

    #[test]
    fn layout_reports_consistent_registers() {
        let layout = Teleportation::new(3);
        assert_eq!(layout.n_qubits(), 9);
        assert_eq!(layout.input_qubits(), vec![0, 1, 2]);
        assert_eq!(layout.output_qubits(), vec![6, 7, 8]);
    }
}
