//! Quantum error correction benchmark: the bit-flip repetition code.
//!
//! Encodes one logical qubit into `n` physical qubits (`n` odd), optionally
//! injects an error, then decodes. The 3-qubit instance performs real
//! majority correction with a Toffoli; larger instances use the
//! encode–identity–decode structure the paper's QEC benchmark exercises
//! under mutation testing.

use morph_qprog::Circuit;

/// Bit-flip repetition code over `n` physical qubits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepetitionCode {
    /// Number of physical qubits (odd, ≥ 3).
    pub n_qubits: usize,
}

impl RepetitionCode {
    /// Creates the code.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is odd and at least 3.
    pub fn new(n_qubits: usize) -> Self {
        assert!(
            n_qubits >= 3 && n_qubits % 2 == 1,
            "repetition code needs odd n ≥ 3"
        );
        RepetitionCode { n_qubits }
    }

    /// The logical (input/output) qubit.
    pub fn logical_qubit(&self) -> usize {
        0
    }

    /// Encoder: fan out qubit 0 onto the rest.
    pub fn encoder(&self) -> Circuit {
        let mut c = Circuit::new(self.n_qubits);
        for q in 1..self.n_qubits {
            c.cx(0, q);
        }
        c
    }

    /// Decoder: undo the fan-out; for `n = 3` also perform the Toffoli
    /// majority correction so a single X error is repaired.
    pub fn decoder(&self) -> Circuit {
        let mut c = Circuit::new(self.n_qubits);
        for q in 1..self.n_qubits {
            c.cx(0, q);
        }
        if self.n_qubits == 3 {
            c.ccx(1, 2, 0);
        }
        c
    }

    /// Full round-trip program: encode, optional single X error, decode.
    pub fn circuit(&self, error_on: Option<usize>) -> Circuit {
        let mut c = self.encoder();
        if let Some(q) = error_on {
            assert!(q < self.n_qubits, "error qubit out of range");
            c.x(q);
        }
        c.extend_from(&self.decoder());
        c
    }

    /// Phase-flip code encoder: the H-conjugated repetition code, which
    /// protects against Z errors. Unlike the bit-flip code it puts the
    /// physical qubits into superposition, so phase errors are observable
    /// from computational-basis inputs — the variant the evaluation's QEC
    /// benchmark uses.
    pub fn phase_flip_encoder(&self) -> Circuit {
        let mut c = self.encoder();
        for q in 0..self.n_qubits {
            c.h(q);
        }
        c
    }

    /// Phase-flip code decoder (mirror of [`Self::phase_flip_encoder`],
    /// with the 3-qubit majority correction).
    pub fn phase_flip_decoder(&self) -> Circuit {
        let mut c = Circuit::new(self.n_qubits);
        for q in 0..self.n_qubits {
            c.h(q);
        }
        c.extend_from(&self.decoder());
        c
    }

    /// Phase-flip round trip: encode, optional single Z error, decode.
    pub fn phase_flip_circuit(&self, error_on: Option<usize>) -> Circuit {
        let mut c = self.phase_flip_encoder();
        if let Some(q) = error_on {
            assert!(q < self.n_qubits, "error qubit out of range");
            c.z(q);
        }
        c.extend_from(&self.phase_flip_decoder());
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_qprog::{Executor, TracepointId};
    use morph_qsim::StateVector;

    fn round_trip_fidelity(code: &RepetitionCode, error_on: Option<usize>, theta: f64) -> f64 {
        let mut c = Circuit::new(code.n_qubits);
        c.ry(0, theta);
        c.tracepoint(1, &[0]);
        c.extend_from(&code.circuit(error_on));
        c.tracepoint(2, &[0]);
        let rec = Executor::default().run_expected(&c, &StateVector::zero_state(code.n_qubits));
        morph_linalg::fidelity(rec.state(TracepointId(1)), rec.state(TracepointId(2)))
    }

    #[test]
    fn error_free_round_trip_is_identity() {
        for n in [3usize, 5, 7] {
            let code = RepetitionCode::new(n);
            let f = round_trip_fidelity(&code, None, 0.9);
            assert!((f - 1.0).abs() < 1e-9, "n={n}, fidelity {f}");
        }
    }

    #[test]
    fn three_qubit_code_corrects_any_single_flip() {
        let code = RepetitionCode::new(3);
        for q in 0..3 {
            let f = round_trip_fidelity(&code, Some(q), 1.2);
            assert!(
                (f - 1.0).abs() < 1e-9,
                "error on {q} not corrected, fidelity {f}"
            );
        }
    }

    #[test]
    fn five_qubit_variant_detects_but_does_not_correct_data_flip() {
        // Without majority logic the ancilla flip leaves the logical qubit
        // intact only when the error hits a non-logical qubit.
        let code = RepetitionCode::new(5);
        let f_logical = round_trip_fidelity(&code, Some(0), 1.2);
        assert!(
            f_logical < 0.9,
            "flip on the logical qubit must corrupt output"
        );
        let f_anc = round_trip_fidelity(&code, Some(3), 1.2);
        assert!(
            (f_anc - 1.0).abs() < 1e-9,
            "ancilla flip should not affect decoded qubit"
        );
    }

    fn phase_flip_round_trip_fidelity(
        code: &RepetitionCode,
        error_on: Option<usize>,
        theta: f64,
    ) -> f64 {
        let mut c = Circuit::new(code.n_qubits);
        c.ry(0, theta);
        c.tracepoint(1, &[0]);
        c.extend_from(&code.phase_flip_circuit(error_on));
        c.tracepoint(2, &[0]);
        let rec = Executor::default().run_expected(&c, &StateVector::zero_state(code.n_qubits));
        morph_linalg::fidelity(rec.state(TracepointId(1)), rec.state(TracepointId(2)))
    }

    #[test]
    fn phase_flip_round_trip_is_identity() {
        for n in [3usize, 5] {
            let code = RepetitionCode::new(n);
            let f = phase_flip_round_trip_fidelity(&code, None, 0.8);
            assert!((f - 1.0).abs() < 1e-9, "n={n}, fidelity {f}");
        }
    }

    #[test]
    fn three_qubit_phase_flip_code_corrects_any_single_z() {
        let code = RepetitionCode::new(3);
        for q in 0..3 {
            let f = phase_flip_round_trip_fidelity(&code, Some(q), 1.1);
            assert!(
                (f - 1.0).abs() < 1e-9,
                "Z on {q} not corrected, fidelity {f}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_code_size_rejected() {
        let _ = RepetitionCode::new(4);
    }
}
