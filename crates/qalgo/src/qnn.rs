//! Quantum neural network benchmark — Section 7.2.
//!
//! An angle encoder loads four flower attributes into RY rotations; layers
//! of parameterized single-qubit rotations with a CZ entangling ring follow;
//! the prediction is the sign of ⟨Z⟩ on qubit 0. A deterministic synthetic
//! two-class dataset stands in for Iris (see DESIGN.md substitutions).

use morph_qprog::Circuit;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A parameterized QNN: encoder + `layers` of (RY, RZ, CZ-ring).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Qnn {
    /// Number of qubits.
    pub n_qubits: usize,
    /// Rotation angles per layer: `params[layer][qubit] = (ry, rz)`.
    pub params: Vec<Vec<(f64, f64)>>,
}

impl Qnn {
    /// A QNN with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if any layer's width differs from `n_qubits`.
    pub fn new(n_qubits: usize, params: Vec<Vec<(f64, f64)>>) -> Self {
        for layer in &params {
            assert_eq!(layer.len(), n_qubits, "layer width mismatch");
        }
        Qnn { n_qubits, params }
    }

    /// A randomly-initialized QNN.
    pub fn random(n_qubits: usize, layers: usize, rng: &mut impl Rng) -> Self {
        let params = (0..layers)
            .map(|_| {
                (0..n_qubits)
                    .map(|_| {
                        (
                            rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
                            rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
                        )
                    })
                    .collect()
            })
            .collect();
        Qnn { n_qubits, params }
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.params.len()
    }

    /// The encoder circuit for a feature vector: feature `i` is loaded as
    /// `RY(features[i])` on qubit `i % n`, cycling if there are more
    /// features than qubits.
    pub fn encoder(&self, features: &[f64]) -> Circuit {
        let mut c = Circuit::new(self.n_qubits);
        for (i, &f) in features.iter().enumerate() {
            c.ry(i % self.n_qubits, f);
        }
        c
    }

    /// The model body (all parameterized layers, no encoder).
    pub fn body(&self) -> Circuit {
        let mut c = Circuit::new(self.n_qubits);
        for layer in &self.params {
            for (q, &(ry, rz)) in layer.iter().enumerate() {
                c.ry(q, ry);
                c.rz(q, rz);
            }
            for q in 0..self.n_qubits.saturating_sub(1) {
                c.cz(q, q + 1);
            }
            // Close the ring when it is not degenerate.
            if self.n_qubits > 2 {
                c.cz(self.n_qubits - 1, 0);
            }
        }
        c
    }

    /// Full circuit: encoder followed by the body.
    pub fn circuit(&self, features: &[f64]) -> Circuit {
        let mut c = self.encoder(features);
        c.extend_from(&self.body());
        c
    }

    /// A pruned copy with the listed `(layer, qubit, which)` rotations
    /// zeroed out; `which` 0 = RY, 1 = RZ. Models the gate pruning the
    /// paper verifies.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn pruned(&self, removals: &[(usize, usize, usize)]) -> Qnn {
        let mut params = self.params.clone();
        for &(layer, qubit, which) in removals {
            let slot = &mut params[layer][qubit];
            match which {
                0 => slot.0 = 0.0,
                1 => slot.1 = 0.0,
                other => panic!("rotation selector must be 0 or 1, got {other}"),
            }
        }
        Qnn {
            n_qubits: self.n_qubits,
            params,
        }
    }

    /// ⟨Z⟩ on qubit 0 for a feature vector (exact simulation): the model's
    /// raw score. Positive ⇒ class "Setosa", non-positive ⇒ "Virginica".
    pub fn score(&self, features: &[f64]) -> f64 {
        let mut psi = morph_qsim::StateVector::zero_state(self.n_qubits);
        for inst in self.circuit(features).instructions() {
            if let morph_qprog::Instruction::Gate(g) = inst {
                g.apply(&mut psi);
            }
        }
        psi.expectation_z(0)
    }

    /// Classifies a feature vector.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.score(features) > 0.0
    }
}

/// One sample of the synthetic Iris-like dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowerSample {
    /// Four attributes, already scaled into `[0, π]` for angle encoding.
    pub attributes: [f64; 4],
    /// `true` = Setosa, `false` = Virginica.
    pub is_setosa: bool,
}

/// Generates a deterministic two-class, four-attribute dataset with the
/// Iris shape: class clusters separated along the sepal-length axis, with
/// mild noise. Plays the paper's Iris dataset role.
pub fn iris_like_dataset(n_samples: usize, rng: &mut impl Rng) -> Vec<FlowerSample> {
    (0..n_samples)
        .map(|i| {
            let is_setosa = i % 2 == 0;
            let center: [f64; 4] = if is_setosa {
                [0.8, 1.9, 0.7, 0.4]
            } else {
                [2.2, 1.1, 2.3, 1.9]
            };
            let mut attributes = [0.0; 4];
            for (a, &c) in attributes.iter_mut().zip(&center) {
                *a = (c + rng.gen_range(-0.3..0.3)).clamp(0.0, std::f64::consts::PI);
            }
            FlowerSample {
                attributes,
                is_setosa,
            }
        })
        .collect()
}

/// Trains a QNN by coordinate ascent on classification accuracy over a few
/// random restarts, keeping the best-trained model. Not state-of-the-art
/// learning — just enough to produce a working model for the case study.
///
/// Coordinate ascent from a single random initialization is brittle: a bad
/// starting point can leave every ±0.4 step flat and the model stuck at
/// chance. Restarting from independent initializations and keeping the best
/// refined model makes the outcome robust to any individual unlucky draw.
pub fn train_qnn(
    n_qubits: usize,
    layers: usize,
    dataset: &[FlowerSample],
    rng: &mut impl Rng,
) -> Qnn {
    const RESTARTS: usize = 4;

    let accuracy = |m: &Qnn| -> f64 {
        let correct = dataset
            .iter()
            .filter(|s| m.predict(&s.attributes) == s.is_setosa)
            .count();
        correct as f64 / dataset.len().max(1) as f64
    };

    let refine = |mut model: Qnn| -> (Qnn, f64) {
        let mut best = accuracy(&model);
        for _ in 0..3 {
            for layer in 0..layers {
                for q in 0..n_qubits {
                    for which in 0..2 {
                        for delta in [-0.8f64, -0.4, 0.4, 0.8] {
                            let mut trial = model.clone();
                            match which {
                                0 => trial.params[layer][q].0 += delta,
                                _ => trial.params[layer][q].1 += delta,
                            }
                            let acc = accuracy(&trial);
                            if acc > best {
                                best = acc;
                                model = trial;
                            }
                        }
                    }
                }
            }
            if best >= 0.99 {
                break;
            }
        }
        (model, best)
    };

    let mut winner: Option<(Qnn, f64)> = None;
    for _ in 0..RESTARTS {
        let (model, acc) = refine(Qnn::random(n_qubits, layers, rng));
        if winner.as_ref().map_or(true, |(_, best)| acc > *best) {
            winner = Some((model, acc));
        }
        if winner.as_ref().is_some_and(|(_, best)| *best >= 0.99) {
            break;
        }
    }
    winner.expect("at least one restart ran").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn circuit_structure() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = Qnn::random(4, 2, &mut rng);
        let c = model.circuit(&[0.1, 0.2, 0.3, 0.4]);
        // 4 encoder RY + 2 layers × (8 rotations + 4 CZ).
        assert_eq!(c.gate_count(), 4 + 2 * (8 + 4));
    }

    #[test]
    fn score_is_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = Qnn::random(4, 3, &mut rng);
        for s in iris_like_dataset(10, &mut rng) {
            let v = model.score(&s.attributes);
            assert!((-1.0..=1.0).contains(&v), "score {v} out of range");
        }
    }

    #[test]
    fn pruning_zeroes_selected_rotations() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = Qnn::random(4, 2, &mut rng);
        let pruned = model.pruned(&[(0, 1, 0), (1, 2, 1)]);
        assert_eq!(pruned.params[0][1].0, 0.0);
        assert_eq!(pruned.params[1][2].1, 0.0);
        // Untouched parameters survive.
        assert_eq!(pruned.params[0][0], model.params[0][0]);
    }

    #[test]
    fn dataset_is_deterministic_given_seed() {
        let mut a_rng = StdRng::seed_from_u64(5);
        let mut b_rng = StdRng::seed_from_u64(5);
        assert_eq!(
            iris_like_dataset(20, &mut a_rng),
            iris_like_dataset(20, &mut b_rng)
        );
    }

    #[test]
    fn dataset_classes_are_separated() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = iris_like_dataset(40, &mut rng);
        let setosa_mean: f64 = data
            .iter()
            .filter(|s| s.is_setosa)
            .map(|s| s.attributes[0])
            .sum::<f64>()
            / 20.0;
        let virginica_mean: f64 = data
            .iter()
            .filter(|s| !s.is_setosa)
            .map(|s| s.attributes[0])
            .sum::<f64>()
            / 20.0;
        assert!(virginica_mean - setosa_mean > 0.5);
    }

    #[test]
    fn training_beats_chance() {
        let mut rng = StdRng::seed_from_u64(7);
        let data = iris_like_dataset(30, &mut rng);
        let model = train_qnn(4, 2, &data, &mut rng);
        let correct = data
            .iter()
            .filter(|s| model.predict(&s.attributes) == s.is_setosa)
            .count();
        assert!(correct as f64 / 30.0 > 0.7, "accuracy {}/30", correct);
    }
}
