//! Bernstein–Vazirani and Grover search — the algorithms the paper cites
//! as consumers of the quantum-lock phase-kickback module (Section 7.1).

use morph_qprog::Circuit;

/// Bernstein–Vazirani: recovers a secret bit string with one oracle call.
///
/// Register layout: qubits `0..n` hold the query register, qubit `n` is the
/// phase ancilla. After the circuit, measuring the query register yields
/// `secret` deterministically.
///
/// # Panics
///
/// Panics if the secret does not fit `n` bits or `n == 0`.
pub fn bernstein_vazirani(n: usize, secret: u64) -> Circuit {
    assert!(n > 0, "need at least one secret bit");
    assert!(n >= 64 || secret < (1u64 << n), "secret does not fit");
    let mut c = Circuit::new(n + 1);
    // Ancilla in |−⟩.
    c.x(n);
    c.h(n);
    for q in 0..n {
        c.h(q);
    }
    // Oracle: f(x) = s·x realized as CX from each secret bit to the
    // ancilla.
    for q in 0..n {
        if (secret >> (n - 1 - q)) & 1 == 1 {
            c.cx(q, n);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// Grover search over `n` qubits for a single marked basis state, with the
/// standard optimal iteration count `⌊π/4 · √(2^n)⌋` (minimum 1).
///
/// # Panics
///
/// Panics if `marked >= 2^n` or `n == 0`.
pub fn grover(n: usize, marked: u64) -> Circuit {
    grover_with_iterations(n, marked, optimal_grover_iterations(n))
}

/// Grover with an explicit iteration count.
///
/// # Panics
///
/// Panics if `marked >= 2^n` or `n == 0`.
pub fn grover_with_iterations(n: usize, marked: u64, iterations: usize) -> Circuit {
    assert!(n > 0, "need at least one qubit");
    assert!(n >= 64 || marked < (1u64 << n), "marked state does not fit");
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    let all: Vec<usize> = (0..n).collect();
    for _ in 0..iterations {
        // Oracle: phase-flip |marked⟩ (X-masked MCZ — the quantum-lock
        // kickback pattern).
        let masked: Vec<usize> = (0..n)
            .filter(|&q| (marked >> (n - 1 - q)) & 1 == 0)
            .collect();
        for &q in &masked {
            c.x(q);
        }
        c.mcz(&all);
        for &q in &masked {
            c.x(q);
        }
        // Diffusion: H X (MCZ) X H.
        for q in 0..n {
            c.h(q);
            c.x(q);
        }
        c.mcz(&all);
        for q in 0..n {
            c.x(q);
            c.h(q);
        }
    }
    c
}

/// The standard optimal Grover iteration count for a single marked state.
pub fn optimal_grover_iterations(n: usize) -> usize {
    (std::f64::consts::FRAC_PI_4 * ((1u64 << n) as f64).sqrt())
        .floor()
        .max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_qprog::Executor;
    use morph_qsim::StateVector;

    fn run(c: &Circuit) -> StateVector {
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(0);
        Executor::default()
            .run_trajectory(c, &StateVector::zero_state(c.n_qubits()), &mut rng)
            .final_state
    }

    #[test]
    fn bernstein_vazirani_recovers_secret_in_one_query() {
        for (n, secret) in [(3usize, 0b101u64), (4, 0b0110), (5, 0b11011)] {
            let c = bernstein_vazirani(n, secret);
            let out = run(&c);
            // The query register (qubits 0..n) reads the secret; ancilla in |−>.
            let probs = out.probabilities();
            let mut per_query = vec![0.0; 1 << n];
            for (i, p) in probs.iter().enumerate() {
                per_query[i >> 1] += p;
            }
            assert!(
                (per_query[secret as usize] - 1.0).abs() < 1e-9,
                "n={n}: secret {secret:b} not recovered"
            );
        }
    }

    #[test]
    fn grover_amplifies_the_marked_state() {
        let (n, marked) = (4usize, 0b1010u64);
        let c = grover(n, marked);
        let out = run(&c);
        let p = out.probabilities()[marked as usize];
        assert!(p > 0.9, "marked probability {p}");
    }

    #[test]
    fn grover_single_iteration_on_two_qubits_is_exact() {
        // n = 2 is the textbook case: one iteration reaches probability 1.
        let c = grover_with_iterations(2, 0b11, 1);
        let out = run(&c);
        assert!((out.probabilities()[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn over_rotation_reduces_success() {
        let (n, marked) = (3usize, 0b010u64);
        let good = run(&grover_with_iterations(n, marked, 2));
        let over = run(&grover_with_iterations(n, marked, 4));
        assert!(
            good.probabilities()[marked as usize] > over.probabilities()[marked as usize],
            "over-rotation should hurt"
        );
    }

    #[test]
    fn iteration_count_grows_with_register() {
        assert!(optimal_grover_iterations(6) > optimal_grover_iterations(3));
        assert_eq!(optimal_grover_iterations(1), 1);
    }
}
