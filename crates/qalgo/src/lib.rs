//! Benchmark quantum programs for the MorphQPV reproduction.
//!
//! Every algorithm the paper evaluates against (Table 3 plus the case-study
//! programs), implemented on the workspace's circuit IR:
//!
//! - [`QuantumLock`]: phase-kickback lock with an optional unexpected-key
//!   bug (Section 7.1, Fig 7).
//! - [`Qnn`] + [`iris_like_dataset`] + [`train_qnn`]: the quantum neural
//!   network case study (Section 7.2) with gate pruning.
//! - [`Qram`]: table-lookup QRAM with corruptible entries and prefix
//!   circuits for the binary search (Section 7.3, Fig 10).
//! - [`RepetitionCode`]: bit-flip QEC round trip.
//! - [`qft`] / [`shor_circuit`] / [`order_finding_distribution`]: the
//!   Shor-style benchmark.
//! - [`xeb_circuit`] / [`linear_xeb_fidelity`]: cross-entropy benchmarking.
//! - [`Teleportation`]: the Section 4 running example (measured and
//!   coherent variants, plus a phase-bug variant).
//! - [`ghz`]: the tracepoint pragma example.
//! - [`bernstein_vazirani`] / [`grover`]: the phase-kickback consumers the
//!   paper cites when motivating the quantum lock.
//! - [`inject_phase_bug`] / [`mutation_battery`]: the mutation-testing bug
//!   generator behind Table 4 and Fig 12.
//!
//! # Examples
//!
//! ```
//! use morph_qalgo::QuantumLock;
//!
//! let lock = QuantumLock::new(5, 0b1011);
//! let buggy = lock.circuit_with_bug(0b0100);
//! assert!(buggy.gate_count() > lock.circuit().gate_count());
//! ```

mod ghz;
mod grover;
mod mutation;
mod qec;
mod qnn;
mod qram;
mod quantum_lock;
mod shor;
mod teleport;
mod xeb;

pub use ghz::ghz;
pub use grover::{bernstein_vazirani, grover, grover_with_iterations, optimal_grover_iterations};
pub use mutation::{inject_phase_bug, mutation_battery, InjectedBug};
pub use qec::RepetitionCode;
pub use qnn::{iris_like_dataset, train_qnn, FlowerSample, Qnn};
pub use qram::Qram;
pub use quantum_lock::QuantumLock;
pub use shor::{
    inverse_qft, order_finding_distribution, qft, quantum_phase_estimation, shor_circuit,
};
pub use teleport::Teleportation;
pub use xeb::{linear_xeb_fidelity, xeb_circuit};

/// The five benchmark programs of Table 3, sized by total qubits, with a
/// uniform constructor used by the evaluation sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Quantum neural network.
    Qnn,
    /// Quantum lock.
    QuantumLock,
    /// Quantum error correction (repetition code round trip).
    Qec,
    /// Shor-style QFT circuit.
    Shor,
    /// Cross-entropy benchmarking random circuit.
    Xeb,
}

impl Benchmark {
    /// All five benchmarks in Table 3 order.
    pub fn all() -> [Benchmark; 5] {
        [
            Benchmark::Qnn,
            Benchmark::QuantumLock,
            Benchmark::Qec,
            Benchmark::Shor,
            Benchmark::Xeb,
        ]
    }

    /// Short name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Qnn => "QNN",
            Benchmark::QuantumLock => "QL",
            Benchmark::Qec => "QEC",
            Benchmark::Shor => "Shor",
            Benchmark::Xeb => "XEB",
        }
    }

    /// Builds the benchmark circuit at `n` qubits (deterministic given the
    /// RNG seed used for the randomized members).
    ///
    /// # Panics
    ///
    /// Panics for sizes a benchmark cannot support (e.g. even-qubit QEC is
    /// rounded up to the next odd size internally, quantum lock needs ≥ 2).
    pub fn circuit(&self, n: usize, rng: &mut impl rand::Rng) -> morph_qprog::Circuit {
        match self {
            Benchmark::Qnn => {
                let model = Qnn::random(n, 2, rng);
                model.circuit(&vec![0.7; 4.min(n)])
            }
            Benchmark::QuantumLock => {
                let key = rng.gen_range(0..(1u64 << (n - 1).min(62)));
                QuantumLock::new(n, key).circuit()
            }
            Benchmark::Qec => {
                let odd = if n % 2 == 1 { n } else { n + 1 };
                // Phase-flip variant: physical qubits are superposed, so
                // the mutation-testing phase bugs are observable.
                RepetitionCode::new(odd.max(3)).phase_flip_circuit(None)
            }
            Benchmark::Shor => shor_circuit(n),
            Benchmark::Xeb => xeb_circuit(n, n.max(4), rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_benchmarks_build_at_table4_sizes() {
        let mut rng = StdRng::seed_from_u64(0);
        for bench in Benchmark::all() {
            for n in [3usize, 5, 7, 9] {
                let c = bench.circuit(n, &mut rng);
                assert!(c.gate_count() > 0, "{} at {n}q is empty", bench.name());
            }
        }
    }

    #[test]
    fn names_match_table3() {
        let names: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["QNN", "QL", "QEC", "Shor", "XEB"]);
    }
}
