//! Quantum lock (phase-kickback) benchmark — Section 7.1.
//!
//! A quantum lock encodes a binary key. The program outputs `|1⟩` on the
//! output qubit exactly when the input register matches the key, and `|0⟩`
//! otherwise. The buggy variant carries a second, *unexpected* key that
//! also unlocks — the needle-in-a-haystack bug the paper uses to stress
//! input-space coverage.

use morph_qprog::Circuit;

/// Layout of a quantum-lock program.
///
/// Qubit 0 is the output qubit; qubits `1..n` form the input register
/// holding the candidate key (MSB first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantumLock {
    /// Total number of qubits (1 output + `n−1` input).
    pub n_qubits: usize,
    /// The encoded key over `n−1` bits.
    pub key: u64,
}

impl QuantumLock {
    /// Creates the layout for an `n`-qubit lock with the given key.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `key` does not fit into `n − 1` bits.
    pub fn new(n_qubits: usize, key: u64) -> Self {
        assert!(
            n_qubits >= 2,
            "a lock needs an output qubit and at least one input qubit"
        );
        assert!(
            n_qubits > 64 || key < (1u64 << (n_qubits - 1)),
            "key does not fit the input register"
        );
        QuantumLock { n_qubits, key }
    }

    /// Input register qubits.
    pub fn input_qubits(&self) -> Vec<usize> {
        (1..self.n_qubits).collect()
    }

    /// The output qubit (always 0).
    pub fn output_qubit(&self) -> usize {
        0
    }

    /// The correct lock circuit.
    pub fn circuit(&self) -> Circuit {
        let mut c = Circuit::new(self.n_qubits);
        self.push_key_gate(&mut c, self.key);
        c
    }

    /// A lock with an additional unexpected key (the paper's injected bug):
    /// the program also outputs `|1⟩` for `bug_key`.
    ///
    /// # Panics
    ///
    /// Panics if `bug_key == key` or does not fit the register.
    pub fn circuit_with_bug(&self, bug_key: u64) -> Circuit {
        assert_ne!(bug_key, self.key, "bug key must differ from the real key");
        assert!(
            self.n_qubits > 64 || bug_key < (1u64 << (self.n_qubits - 1)),
            "bug key does not fit the input register"
        );
        let mut c = Circuit::new(self.n_qubits);
        // One H sandwich around both phase oracles: kickback from either key.
        c.h(0);
        self.push_oracle(&mut c, self.key);
        self.push_oracle(&mut c, bug_key);
        c.h(0);
        c
    }

    /// Pushes the full H–oracle–H kickback construction for one key.
    fn push_key_gate(&self, c: &mut Circuit, key: u64) {
        c.h(0);
        self.push_oracle(c, key);
        c.h(0);
    }

    /// Phase oracle flipping the phase of `|1⟩` on the output qubit exactly
    /// when the input register holds `key`: X-mask the 0-bits, MCZ over the
    /// whole register, unmask.
    fn push_oracle(&self, c: &mut Circuit, key: u64) {
        let n_in = self.n_qubits - 1;
        let masked: Vec<usize> = (0..n_in)
            .filter(|&bit| (key >> (n_in - 1 - bit)) & 1 == 0)
            .map(|bit| bit + 1)
            .collect();
        for &q in &masked {
            c.x(q);
        }
        let all: Vec<usize> = (0..self.n_qubits).collect();
        c.mcz(&all);
        for &q in &masked {
            c.x(q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_qprog::Executor;
    use morph_qsim::StateVector;

    fn run_with_input(circuit: &Circuit, input_bits: u64) -> f64 {
        let n = circuit.n_qubits();
        // Input register is qubits 1..n, output starts at |0>.
        let basis = (input_bits as usize) & ((1 << (n - 1)) - 1);
        let input = StateVector::basis_state(n, basis);
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(0);
        let rec = Executor::default().run_trajectory(circuit, &input, &mut rng);
        rec.final_state.prob_one(0)
    }

    #[test]
    fn correct_key_unlocks() {
        let lock = QuantumLock::new(4, 0b101);
        let c = lock.circuit();
        assert!((run_with_input(&c, 0b101) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn wrong_keys_do_not_unlock() {
        let lock = QuantumLock::new(4, 0b101);
        let c = lock.circuit();
        for key in 0..8u64 {
            if key != 0b101 {
                assert!(
                    run_with_input(&c, key) < 1e-10,
                    "key {key:03b} unexpectedly unlocked"
                );
            }
        }
    }

    #[test]
    fn bug_key_also_unlocks_in_buggy_circuit() {
        let lock = QuantumLock::new(4, 0b001);
        let c = lock.circuit_with_bug(0b110);
        assert!(
            (run_with_input(&c, 0b001) - 1.0).abs() < 1e-10,
            "real key must still work"
        );
        assert!(
            (run_with_input(&c, 0b110) - 1.0).abs() < 1e-10,
            "bug key must unlock"
        );
        // All other keys still locked.
        for key in 0..8u64 {
            if key != 0b001 && key != 0b110 {
                assert!(run_with_input(&c, key) < 1e-10, "key {key:03b} leaked");
            }
        }
    }

    #[test]
    fn scales_to_larger_registers() {
        let lock = QuantumLock::new(8, 0b0110101);
        let c = lock.circuit();
        assert!((run_with_input(&c, 0b0110101) - 1.0).abs() < 1e-10);
        assert!(run_with_input(&c, 0b0110100) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_key_rejected() {
        let _ = QuantumLock::new(3, 0b100);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn bug_key_must_differ() {
        let lock = QuantumLock::new(3, 0b01);
        let _ = lock.circuit_with_bug(0b01);
    }
}
