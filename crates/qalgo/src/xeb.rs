//! Cross-entropy benchmarking (XEB) circuits — random circuits in the
//! Google-supremacy style: layers of random single-qubit gates from
//! {√X, √Y, T} followed by a CZ ladder, plus the linear XEB fidelity
//! estimator.

use morph_qprog::Circuit;
use rand::Rng;

/// Generates an XEB random circuit of the given depth.
///
/// Each layer applies an independently random gate from {√X, √Y, T} to every
/// qubit and then a brickwork CZ pattern alternating between even and odd
/// pairs.
pub fn xeb_circuit(n: usize, depth: usize, rng: &mut impl Rng) -> Circuit {
    let mut c = Circuit::new(n);
    for layer in 0..depth {
        for q in 0..n {
            match rng.gen_range(0..3) {
                0 => c.rx(q, std::f64::consts::FRAC_PI_2),
                1 => c.ry(q, std::f64::consts::FRAC_PI_2),
                _ => c.t(q),
            };
        }
        let start = layer % 2;
        let mut q = start;
        while q + 1 < n {
            c.cz(q, q + 1);
            q += 2;
        }
    }
    c
}

/// Linear XEB fidelity estimator: `F = 2^n ⟨p_ideal(x)⟩_samples − 1`, where
/// the average runs over sampled bitstrings `x`.
///
/// `ideal_probs` must be the exact output distribution; `sample_counts` the
/// histogram of measured outcomes. Returns ~1 for samples drawn from the
/// ideal distribution of a scrambling circuit and ~0 for uniform noise.
///
/// # Panics
///
/// Panics if the arrays differ in length or no samples were taken.
pub fn linear_xeb_fidelity(ideal_probs: &[f64], sample_counts: &[usize]) -> f64 {
    assert_eq!(
        ideal_probs.len(),
        sample_counts.len(),
        "histogram length mismatch"
    );
    let shots: usize = sample_counts.iter().sum();
    assert!(shots > 0, "no samples");
    let dim = ideal_probs.len() as f64;
    let mean_p: f64 = ideal_probs
        .iter()
        .zip(sample_counts)
        .map(|(&p, &c)| p * c as f64)
        .sum::<f64>()
        / shots as f64;
    dim * mean_p - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_qprog::Executor;
    use morph_qsim::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn circuit_structure_scales_with_depth() {
        let mut rng = StdRng::seed_from_u64(0);
        let shallow = xeb_circuit(4, 2, &mut rng);
        let deep = xeb_circuit(4, 8, &mut rng);
        assert!(deep.gate_count() > shallow.gate_count() * 3);
    }

    #[test]
    fn xeb_fidelity_of_true_sampler_is_high() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = xeb_circuit(4, 8, &mut rng);
        let ex = Executor::default();
        let input = StateVector::zero_state(4);
        let rec = ex.run_trajectory(&c, &input, &mut rng);
        let ideal = rec.final_state.probabilities();
        let counts = rec.final_state.sample_counts(20_000, &mut rng);
        let f = linear_xeb_fidelity(&ideal, &counts);
        assert!(f > 0.5, "true sampler should score near the ideal, got {f}");
    }

    #[test]
    fn xeb_fidelity_of_uniform_noise_is_near_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = xeb_circuit(4, 8, &mut rng);
        let ex = Executor::default();
        let rec = ex.run_trajectory(&c, &StateVector::zero_state(4), &mut rng);
        let ideal = rec.final_state.probabilities();
        // Uniform sampler.
        let mut counts = vec![0usize; 16];
        for _ in 0..20_000 {
            counts[rng.gen_range(0..16)] += 1;
        }
        let f = linear_xeb_fidelity(&ideal, &counts);
        assert!(f.abs() < 0.1, "uniform sampler should score ~0, got {f}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(xeb_circuit(5, 6, &mut a), xeb_circuit(5, 6, &mut b));
    }
}
