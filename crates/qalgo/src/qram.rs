//! Quantum random access memory benchmark — Section 7.3.
//!
//! A table of angles `θᵢ ∈ [0, 2π]` is read by address: for input
//! superposition `Σ λᵢ |i⟩` on the addressing qubits, the data qubit ends
//! in `Σ λᵢ |θᵢ⟩` with `|θ⟩ = cos θ |0⟩ + sin θ |1⟩`. Each table entry is
//! one multi-controlled RY (rotation `2θᵢ`) controlled on its address
//! pattern.

use morph_linalg::{CMatrix, C64};
use morph_qprog::Circuit;

/// A QRAM over `n_addr` addressing qubits holding `2^n_addr` angle values.
#[derive(Debug, Clone, PartialEq)]
pub struct Qram {
    /// Number of addressing qubits.
    pub n_addr: usize,
    /// Table of angles; `values[i]` is returned for address `i`.
    pub values: Vec<f64>,
}

impl Qram {
    /// Creates a QRAM; the table must have exactly `2^n_addr` entries.
    ///
    /// # Panics
    ///
    /// Panics on size mismatch or `n_addr == 0`.
    pub fn new(n_addr: usize, values: Vec<f64>) -> Self {
        assert!(n_addr > 0, "need at least one addressing qubit");
        assert_eq!(values.len(), 1 << n_addr, "table size must be 2^n_addr");
        Qram { n_addr, values }
    }

    /// Total register width (addresses + one data qubit).
    pub fn n_qubits(&self) -> usize {
        self.n_addr + 1
    }

    /// Addressing qubits.
    pub fn address_qubits(&self) -> Vec<usize> {
        (0..self.n_addr).collect()
    }

    /// The data qubit (last).
    pub fn data_qubit(&self) -> usize {
        self.n_addr
    }

    /// The read circuit: one address-masked multi-controlled RY per entry.
    pub fn circuit(&self) -> Circuit {
        let mut c = Circuit::new(self.n_qubits());
        for (addr, &theta) in self.values.iter().enumerate() {
            self.push_entry(&mut c, addr, theta);
        }
        c
    }

    /// The read circuit with one corrupted table entry (`wrong_value` stored
    /// at `bad_addr` instead of the true table value).
    ///
    /// # Panics
    ///
    /// Panics if `bad_addr` is out of range.
    pub fn circuit_with_bug(&self, bad_addr: usize, wrong_value: f64) -> Circuit {
        assert!(bad_addr < self.values.len(), "address out of range");
        let mut c = Circuit::new(self.n_qubits());
        for (addr, &theta) in self.values.iter().enumerate() {
            let effective = if addr == bad_addr { wrong_value } else { theta };
            self.push_entry(&mut c, addr, effective);
        }
        c
    }

    /// A circuit reading only addresses `0..limit` — the prefix programs
    /// used by the paper's binary search for the faulty address.
    ///
    /// # Panics
    ///
    /// Panics if `limit` exceeds the table size.
    pub fn prefix_circuit(&self, limit: usize) -> Circuit {
        assert!(limit <= self.values.len(), "prefix exceeds table");
        let mut c = Circuit::new(self.n_qubits());
        for (addr, &theta) in self.values.iter().enumerate().take(limit) {
            self.push_entry(&mut c, addr, theta);
        }
        c
    }

    fn push_entry(&self, c: &mut Circuit, addr: usize, theta: f64) {
        // X-mask the 0-bits of the address so the controls fire on |addr>.
        let masked: Vec<usize> = (0..self.n_addr)
            .filter(|&bit| (addr >> (self.n_addr - 1 - bit)) & 1 == 0)
            .collect();
        for &q in &masked {
            c.x(q);
        }
        let controls: Vec<usize> = self.address_qubits();
        c.gate(morph_qsim::Gate::MCRY(
            controls,
            self.data_qubit(),
            2.0 * theta,
        ));
        for &q in &masked {
            c.x(q);
        }
    }

    /// The ideal output state of the data qubit for address amplitudes
    /// `lambda` (the paper's `Σᵢⱼ λᵢ λⱼ* |θᵢ⟩⟨θⱼ|`).
    ///
    /// # Panics
    ///
    /// Panics if `lambda.len() != 2^n_addr`.
    pub fn ideal_output(&self, lambda: &[C64]) -> CMatrix {
        assert_eq!(lambda.len(), self.values.len(), "amplitude count mismatch");
        let kets: Vec<[C64; 2]> = self
            .values
            .iter()
            .map(|&t| [C64::real(t.cos()), C64::real(t.sin())])
            .collect();
        let mut out = CMatrix::zeros(2, 2);
        for (i, li) in lambda.iter().enumerate() {
            for (j, lj) in lambda.iter().enumerate() {
                let w = *li * lj.conj();
                for r in 0..2 {
                    for c in 0..2 {
                        out[(r, c)] += w * kets[i][r] * kets[j][c].conj();
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_qprog::{Executor, TracepointId};
    use morph_qsim::StateVector;

    fn data_state_for_basis_input(qram: &Qram, addr: usize) -> CMatrix {
        let mut c = Circuit::new(qram.n_qubits());
        c.extend_from(&qram.circuit());
        c.tracepoint(1, &[qram.data_qubit()]);
        let input = StateVector::basis_state(qram.n_qubits(), addr << 1);
        Executor::default()
            .run_expected(&c, &input)
            .state(TracepointId(1))
            .clone()
    }

    #[test]
    fn basis_address_reads_its_value() {
        let qram = Qram::new(2, vec![0.3, 1.1, 2.0, 0.7]);
        for addr in 0..4 {
            let rho = data_state_for_basis_input(&qram, addr);
            let theta = qram.values[addr];
            let expected = qram.ideal_output(
                &(0..4)
                    .map(|i| if i == addr { C64::ONE } else { C64::ZERO })
                    .collect::<Vec<_>>(),
            );
            assert!(
                rho.approx_eq(&expected, 1e-10),
                "address {addr} (θ={theta}) read incorrectly"
            );
        }
    }

    #[test]
    fn superposition_address_reads_superposed_values() {
        let qram = Qram::new(1, vec![0.4, 1.3]);
        // Input (|0> + |1>)/√2 on the address qubit.
        let mut c = Circuit::new(2);
        c.h(0);
        c.extend_from(&qram.circuit());
        c.tracepoint(1, &[1]);
        let rec = Executor::default().run_expected(&c, &StateVector::zero_state(2));
        let rho = rec.state(TracepointId(1));
        let s = 1.0 / 2f64.sqrt();
        let expected = qram.ideal_output(&[C64::real(s), C64::real(s)]);
        // The data qubit is entangled with the address for differing θ, so
        // the reduced state matches only in its diagonal-weighted parts; the
        // paper's predicate compares against the ideal ensemble. Use the
        // mixture (decohered) expectation instead: Σ |λᵢ|² |θᵢ><θᵢ|.
        let mixture = {
            let mut m = CMatrix::zeros(2, 2);
            for (i, &t) in qram.values.iter().enumerate() {
                let ket = [C64::real(t.cos()), C64::real(t.sin())];
                let w = if i < 2 { 0.5 } else { 0.0 };
                m += &CMatrix::outer(&ket, &ket).scale_re(w);
            }
            m
        };
        assert!(
            rho.approx_eq(&mixture, 1e-10),
            "reduced data state should be the value mixture\n{rho}\nvs\n{mixture}"
        );
        // And the pure ideal differs from the mixture when θ differ.
        assert!((&expected - &mixture).frobenius_norm() > 1e-3);
    }

    #[test]
    fn bug_changes_only_bad_address() {
        let qram = Qram::new(2, vec![0.3, 1.1, 2.0, 0.7]);
        let bad = qram.circuit_with_bug(2, 0.1);
        for addr in 0..4usize {
            let mut c = Circuit::new(3);
            c.extend_from(&bad);
            c.tracepoint(1, &[2]);
            let input = StateVector::basis_state(3, addr << 1);
            let rho = Executor::default()
                .run_expected(&c, &input)
                .state(TracepointId(1))
                .clone();
            let good_rho = data_state_for_basis_input(&qram, addr);
            if addr == 2 {
                assert!((&rho - &good_rho).frobenius_norm() > 0.1, "bug not visible");
            } else {
                assert!(rho.approx_eq(&good_rho, 1e-10), "address {addr} disturbed");
            }
        }
    }

    #[test]
    fn prefix_circuit_reads_only_prefix() {
        let qram = Qram::new(2, vec![0.3, 1.1, 2.0, 0.7]);
        let prefix = qram.prefix_circuit(2);
        // Address 3 is untouched by the prefix circuit: data stays |0>.
        let mut c = Circuit::new(3);
        c.extend_from(&prefix);
        c.tracepoint(1, &[2]);
        let input = StateVector::basis_state(3, 3 << 1);
        let rho = Executor::default()
            .run_expected(&c, &input)
            .state(TracepointId(1))
            .clone();
        assert!((rho[(0, 0)].re - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "table size")]
    fn wrong_table_size_rejected() {
        let _ = Qram::new(2, vec![0.0; 3]);
    }
}
