//! Shor-style benchmark: quantum Fourier transform and a period-finding
//! skeleton.
//!
//! The paper's "Shor" benchmark (via Coppersmith's approximate QFT) is the
//! QFT-dominated phase-estimation circuit. We provide an exact [`qft`] /
//! [`inverse_qft`], the [`shor_circuit`] used by the evaluation sweeps, and
//! a tiny end-to-end [`order_finding_distribution`] demonstration.

use morph_qprog::Circuit;

/// Quantum Fourier transform on `n` qubits (with final qubit-order swaps).
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
        for t in (q + 1)..n {
            let angle = std::f64::consts::PI / (1u64 << (t - q)) as f64;
            c.gate(morph_qsim::Gate::CPhase(t, q, angle));
        }
    }
    for q in 0..n / 2 {
        c.swap(q, n - 1 - q);
    }
    c
}

/// Inverse QFT.
pub fn inverse_qft(n: usize) -> Circuit {
    qft(n).inverse()
}

/// The benchmark "Shor" circuit on `n` qubits: Hadamard layer, a
/// modular-multiplication stand-in of controlled phases (the structure of
/// phase estimation against `x ↦ a·x mod N`), and an inverse QFT.
pub fn shor_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    // Controlled-phase cascade emulating the controlled-U^{2^k} ladder.
    for q in 0..n {
        for t in (q + 1)..n {
            let angle = std::f64::consts::PI / (1u64 << ((t - q).min(20)) as u32) as f64;
            c.gate(morph_qsim::Gate::CPhase(q, t, 3.0 * angle));
        }
    }
    c.extend_from(&inverse_qft(n));
    c
}

/// Quantum phase estimation of the eigenphase `phase ∈ [0, 1)` of the
/// single-qubit unitary `diag(1, e^{2πi·phase})` on its `|1⟩` eigenstate.
///
/// Register layout: qubits `0..n_count` are the counting register; qubit
/// `n_count` holds the eigenstate. Measuring the counting register peaks
/// at `round(phase · 2^n_count)`.
///
/// # Panics
///
/// Panics if `n_count == 0` or `phase` is outside `[0, 1)`.
pub fn quantum_phase_estimation(n_count: usize, phase: f64) -> Circuit {
    assert!(n_count > 0, "need at least one counting qubit");
    assert!((0.0..1.0).contains(&phase), "phase must be in [0, 1)");
    let mut c = Circuit::new(n_count + 1);
    // Eigenstate |1⟩ on the target.
    c.x(n_count);
    for q in 0..n_count {
        c.h(q);
    }
    // Controlled-U^{2^k}: counting qubit q controls 2^(n_count−1−q)
    // applications, i.e. a controlled phase of 2π·phase·2^(n_count−1−q).
    for q in 0..n_count {
        let power = 1u64 << (n_count - 1 - q);
        let angle = 2.0 * std::f64::consts::PI * phase * power as f64;
        c.gate(morph_qsim::Gate::CPhase(q, n_count, angle));
    }
    c.extend_from(&inverse_qft_on(
        &(0..n_count).collect::<Vec<_>>(),
        n_count + 1,
    ));
    c
}

/// Inverse QFT applied to a subset of a larger register.
fn inverse_qft_on(qubits: &[usize], n_total: usize) -> Circuit {
    inverse_qft(qubits.len()).remap_qubits(qubits, n_total)
}

/// Exact measurement distribution of the counting register when running
/// order finding for `a` modulo `N` with `n_count` counting qubits.
///
/// The modular-exponentiation register is simulated classically (the
/// permutation is applied to basis labels), which is faithful for the
/// standard construction and keeps the demonstration exact.
///
/// # Panics
///
/// Panics if `gcd(a, modulus) != 1` or sizes are degenerate.
pub fn order_finding_distribution(a: u64, modulus: u64, n_count: usize) -> Vec<f64> {
    assert!(modulus > 1 && a > 0, "degenerate order finding instance");
    assert_eq!(gcd(a, modulus), 1, "a and N must be coprime");
    // Order r of a mod N.
    let mut r = 1u64;
    let mut acc = a % modulus;
    while acc != 1 {
        acc = acc * a % modulus;
        r += 1;
        assert!(r <= modulus, "order search overran");
    }
    // Phase estimation of eigenphases s/r: the counting register ends in
    // Σ_s |~2^n s/r>; its exact distribution is the Fejér kernel around
    // each s/r. Compute it directly.
    let dim = 1usize << n_count;
    let mut probs = vec![0.0f64; dim];
    for s in 0..r {
        let phase = s as f64 / r as f64;
        for (k, p) in probs.iter_mut().enumerate() {
            // |<k| QFT† |phase>|² = |1/dim Σ_j e^{2πi j (phase − k/dim)}|²
            let delta = phase - k as f64 / dim as f64;
            let x = std::f64::consts::PI * delta * dim as f64;
            let num = if x.abs() < 1e-12 {
                dim as f64
            } else {
                x.sin() / (x / dim as f64).sin()
            };
            *p += (num * num) / (dim as f64 * dim as f64 * r as f64);
        }
    }
    probs
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_qprog::Executor;
    use morph_qsim::StateVector;

    fn run(circuit: &Circuit, input: StateVector) -> StateVector {
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(0);
        Executor::default()
            .run_trajectory(circuit, &input, &mut rng)
            .final_state
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let c = qft(3);
        let out = run(&c, StateVector::zero_state(3));
        for p in out.probabilities() {
            assert!((p - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn qft_inverse_roundtrip() {
        let mut c = qft(4);
        c.extend_from(&inverse_qft(4));
        for basis in [0usize, 3, 9, 15] {
            let out = run(&c, StateVector::basis_state(4, basis));
            assert!(
                (out.probabilities()[basis] - 1.0).abs() < 1e-10,
                "basis {basis}"
            );
        }
    }

    #[test]
    fn qft_matches_dft_matrix() {
        // QFT|j> has amplitudes e^{2πi jk / 2^n} / √(2^n).
        let n = 3;
        let c = qft(n);
        let j = 5usize;
        let out = run(&c, StateVector::basis_state(n, j));
        let dim = 1 << n;
        for k in 0..dim {
            let expected =
                morph_linalg::C64::cis(2.0 * std::f64::consts::PI * (j * k) as f64 / dim as f64)
                    .scale(1.0 / (dim as f64).sqrt());
            assert!(
                out.amplitudes()[k].approx_eq(expected, 1e-10),
                "k={k}: {} vs {expected}",
                out.amplitudes()[k]
            );
        }
    }

    #[test]
    fn shor_circuit_is_nontrivial_but_normalized() {
        let c = shor_circuit(5);
        let out = run(&c, StateVector::zero_state(5));
        assert!((out.norm() - 1.0).abs() < 1e-10);
        // The phase cascade should spread probability across many outcomes.
        let max_p = out.probabilities().into_iter().fold(0.0, f64::max);
        assert!(
            max_p < 0.9,
            "distribution should not be concentrated, max={max_p}"
        );
    }

    #[test]
    fn phase_estimation_peaks_at_encoded_phase() {
        // φ = 3/8 is exactly representable with 3 counting qubits.
        let c = quantum_phase_estimation(3, 3.0 / 8.0);
        let out = run(&c, StateVector::zero_state(4));
        // Counting register (qubits 0..3) should read |011> with
        // certainty; the eigenstate qubit stays |1>.
        let p = out.probabilities();
        assert!((p[0b0111] - 1.0).abs() < 1e-9, "got distribution {p:?}");
    }

    #[test]
    fn phase_estimation_of_inexact_phase_concentrates() {
        // φ = 0.3 is not exactly representable with 4 counting qubits; the
        // distribution concentrates around round(0.3·16) = 5.
        let c = quantum_phase_estimation(4, 0.3);
        let out = run(&c, StateVector::zero_state(5));
        let p = out.probabilities();
        let mut per_count = [0.0; 16];
        for (i, prob) in p.iter().enumerate() {
            per_count[i >> 1] += prob;
        }
        let best = per_count
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 5);
        assert!(per_count[5] > 0.4, "peak mass {}", per_count[5]);
    }

    #[test]
    fn order_finding_peaks_at_multiples() {
        // a=7, N=15 has order 4; with 5 counting qubits peaks at k≈0,8,16,24.
        let probs = order_finding_distribution(7, 15, 5);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for peak in [0usize, 8, 16, 24] {
            assert!(
                probs[peak] > 0.2,
                "expected peak at {peak}, got {}",
                probs[peak]
            );
        }
    }

    #[test]
    #[should_panic(expected = "coprime")]
    fn order_finding_requires_coprime() {
        let _ = order_finding_distribution(6, 15, 4);
    }
}
