//! Simulation-backend selection knob.
//!
//! The actual backend implementations live above this crate (in
//! `morph-backend`); the executor only carries the *request* so that every
//! layer that owns an [`crate::Executor`] — characterization config, serve
//! handlers, benches — can express a preference without depending on the
//! backend crate.

use std::fmt;
use std::str::FromStr;

/// Which simulation backend a run should use.
///
/// `Auto` (the default) lets the circuit-analysis pass pick: stabilizer for
/// all-Clifford unitary circuits, sparse for low-branching circuits, dense
/// otherwise. The forced modes exist for tests, benches, and the
/// `MORPH_BACKEND` environment override.
///
/// # Examples
///
/// ```
/// use morph_qprog::BackendMode;
///
/// assert_eq!(BackendMode::default(), BackendMode::Auto);
/// assert_eq!("stabilizer".parse(), Ok(BackendMode::Stabilizer));
/// assert!("tensor-network".parse::<BackendMode>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendMode {
    /// Pick per run from the circuit analysis (the default).
    #[default]
    Auto,
    /// Always dense statevector / density matrix.
    Dense,
    /// Stabilizer tableau where the circuit is Clifford; falls back to
    /// dense when it is not (a forced stabilizer mode that silently
    /// produced wrong answers on non-Clifford circuits would be worse
    /// than useless).
    Stabilizer,
    /// Sparse statevector, spilling to dense past the nonzero budget.
    Sparse,
}

impl BackendMode {
    /// All modes, in display order (useful for test matrices).
    pub const ALL: [BackendMode; 4] = [
        BackendMode::Auto,
        BackendMode::Dense,
        BackendMode::Stabilizer,
        BackendMode::Sparse,
    ];

    /// Stable lowercase name (round-trips through [`FromStr`]).
    pub fn as_str(self) -> &'static str {
        match self {
            BackendMode::Auto => "auto",
            BackendMode::Dense => "dense",
            BackendMode::Stabilizer => "stabilizer",
            BackendMode::Sparse => "sparse",
        }
    }

    /// The mode requested by the `MORPH_BACKEND` environment variable, or
    /// `None` when unset or empty. Unrecognized values panic rather than
    /// silently running on the wrong backend.
    ///
    /// # Panics
    ///
    /// Panics if `MORPH_BACKEND` is set to something other than
    /// `auto|dense|stabilizer|sparse` (case-insensitive).
    pub fn from_env() -> Option<BackendMode> {
        let raw = std::env::var("MORPH_BACKEND").ok()?;
        if raw.trim().is_empty() {
            return None;
        }
        match raw.parse() {
            Ok(mode) => Some(mode),
            Err(err) => panic!("MORPH_BACKEND: {err}"),
        }
    }

    /// This mode with the `MORPH_BACKEND` override applied. The env
    /// variable replaces `Auto` — so a test matrix can force a backend
    /// across every default call site without touching them — but a mode
    /// that was forced *explicitly* in code keeps its say: parity tests
    /// that pin a dense oracle against a pinned fast path must stay
    /// meaningful under the CI forced-backend matrix.
    pub fn resolve(self) -> BackendMode {
        match self {
            BackendMode::Auto => BackendMode::from_env().unwrap_or(self),
            forced => forced,
        }
    }
}

impl fmt::Display for BackendMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error for unrecognized [`BackendMode`] names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendModeError(String);

impl fmt::Display for ParseBackendModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend mode {:?} (expected auto, dense, stabilizer, or sparse)",
            self.0
        )
    }
}

impl std::error::Error for ParseBackendModeError {}

impl FromStr for BackendMode {
    type Err = ParseBackendModeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(BackendMode::Auto),
            "dense" => Ok(BackendMode::Dense),
            "stabilizer" => Ok(BackendMode::Stabilizer),
            "sparse" => Ok(BackendMode::Sparse),
            _ => Err(ParseBackendModeError(s.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_and_is_case_insensitive() {
        for mode in BackendMode::ALL {
            assert_eq!(mode.as_str().parse(), Ok(mode));
            assert_eq!(mode.as_str().to_uppercase().parse(), Ok(mode));
            assert_eq!(mode.to_string(), mode.as_str());
        }
    }

    #[test]
    fn unknown_name_is_an_error() {
        let err = "tensor".parse::<BackendMode>().unwrap_err();
        assert!(err.to_string().contains("tensor"), "{err}");
    }

    #[test]
    fn resolve_without_env_returns_self() {
        // MORPH_BACKEND is never set inside the test harness environment;
        // the env-override path is exercised by the CI forced-backend
        // matrix on tests/simulator_kernels.rs.
        if std::env::var("MORPH_BACKEND").is_err() {
            assert_eq!(BackendMode::Sparse.resolve(), BackendMode::Sparse);
            assert_eq!(BackendMode::Auto.resolve(), BackendMode::Auto);
        }
    }

    #[test]
    fn explicitly_forced_modes_ignore_the_env_override() {
        // Holds whether or not the CI matrix set MORPH_BACKEND: only
        // `Auto` consults the environment.
        for mode in [
            BackendMode::Dense,
            BackendMode::Stabilizer,
            BackendMode::Sparse,
        ] {
            assert_eq!(mode.resolve(), mode);
        }
    }
}
