//! Quantum program representation and execution for the MorphQPV
//! reproduction.
//!
//! - [`Circuit`] / [`Instruction`]: the program IR with the paper's
//!   tracepoint pragma, mid-circuit measurement, and classical feedback.
//! - [`parse_program`] / [`write_program`]: QASM-like surface syntax
//!   including `T <id> q[..]`, with a lossless round trip.
//! - [`Executor`]: stochastic trajectories, exact branch-enumerated expected
//!   states (noiseless or with channel noise), shot sampling, and hardware
//!   duration estimates.
//!
//! # Examples
//!
//! ```
//! use morph_qprog::{parse_program, Executor, TracepointId};
//! use morph_qsim::StateVector;
//!
//! let program = parse_program(
//!     "qreg q[2];\n\
//!      T 1 q[0];\n\
//!      h q[0];\n\
//!      cx q[0],q[1];\n\
//!      T 2 q[0,1];",
//! )?;
//! let record = Executor::default().run_expected(&program, &StateVector::zero_state(2));
//! let bell = record.state(TracepointId(2));
//! assert!((bell[(0, 3)].re - 0.5).abs() < 1e-12);
//! # Ok::<(), morph_qprog::ParseProgramError>(())
//! ```

mod backend_mode;
mod circuit;
mod executor;
mod fusion;
mod optimize_pass;
mod parser;
mod writer;

pub use backend_mode::{BackendMode, ParseBackendModeError};
pub use circuit::{Circuit, Instruction, TracepointId};
pub use executor::{ExecutionRecord, Executor, ExecutorBuilder, ExpectedRecord, DEFAULT_SHOTS};
pub use fusion::fuse_circuit;
pub use optimize_pass::{simplify, SimplifyStats};
pub use parser::{parse_program, ParseProgramError};
pub use writer::{write_program, UnrepresentableError};
