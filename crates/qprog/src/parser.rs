//! Parser for the QASM-like surface syntax with the tracepoint pragma.
//!
//! The grammar covers what the paper's listings use (Sections 4 and 7):
//!
//! ```text
//! qreg q[4];
//! creg c[1];
//! T 1 q[1,2,3];          // tracepoint pragma: "T <id> q[..]"
//! h q[0];
//! x q[1,2,3];            // single-qubit gates broadcast over lists
//! rx(0.5) q[0];
//! cx q[0],q[1];
//! mcz q[0,1,2],q[3];     // controls list, target
//! mcrx(1.2) q[0,1],q[2];
//! measure q[0] -> c[0];
//! if (c[0]==1) x q[1];
//! reset q[0];
//! barrier;
//! ```
//!
//! Qubit indices are 0-based. `//` comments run to end of line. Statements
//! are `;`-terminated.

use morph_qsim::Gate;

use crate::circuit::{Circuit, Instruction, TracepointId};

/// Error reported when parsing a program fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    /// 1-based line number of the offending statement.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseProgramError {}

/// Parses a program in the QASM-like syntax into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseProgramError`] with the offending line on any syntax or
/// range violation.
///
/// # Examples
///
/// ```
/// use morph_qprog::parse_program;
///
/// let circuit = parse_program(
///     "qreg q[2];\n\
///      T 1 q[0];\n\
///      h q[0];\n\
///      cx q[0],q[1];\n\
///      T 2 q[1];",
/// )?;
/// assert_eq!(circuit.n_qubits(), 2);
/// assert_eq!(circuit.tracepoints().len(), 2);
/// # Ok::<(), morph_qprog::ParseProgramError>(())
/// ```
pub fn parse_program(source: &str) -> Result<Circuit, ParseProgramError> {
    let mut parser = Parser {
        circuit: None,
        n_qubits: 0,
    };
    for (line_idx, raw_line) in source.lines().enumerate() {
        let line_no = line_idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            parser.statement(stmt, line_no)?;
        }
    }
    parser.circuit.ok_or_else(|| ParseProgramError {
        line: 0,
        message: "missing qreg declaration".into(),
    })
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

struct Parser {
    circuit: Option<Circuit>,
    n_qubits: usize,
}

impl Parser {
    fn err(&self, line: usize, message: impl Into<String>) -> ParseProgramError {
        ParseProgramError {
            line,
            message: message.into(),
        }
    }

    fn circuit_mut(&mut self, line: usize) -> Result<&mut Circuit, ParseProgramError> {
        if self.circuit.is_none() {
            return Err(self.err(line, "statement before qreg declaration"));
        }
        Ok(self.circuit.as_mut().expect("checked above"))
    }

    fn statement(&mut self, stmt: &str, line: usize) -> Result<(), ParseProgramError> {
        let (head, rest) = split_head(stmt);
        match head {
            "qreg" => {
                let n = parse_reg_decl(rest, 'q').map_err(|m| self.err(line, m))?;
                if self.circuit.is_some() {
                    return Err(self.err(line, "duplicate qreg declaration"));
                }
                self.n_qubits = n;
                self.circuit = Some(Circuit::new(n));
                Ok(())
            }
            "creg" => {
                let n = parse_reg_decl(rest, 'c').map_err(|m| self.err(line, m))?;
                let nq = self.n_qubits;
                let old = self.circuit_mut(line)?;
                let mut fresh = Circuit::with_cbits(nq, n);
                for inst in old.instructions() {
                    fresh.push(inst.clone());
                }
                *old = fresh;
                Ok(())
            }
            "T" => {
                let (id_str, qubit_str) = split_head(rest);
                let id: u32 = id_str
                    .parse()
                    .map_err(|_| self.err(line, format!("invalid tracepoint id {id_str:?}")))?;
                let qubits = parse_qubit_list(qubit_str).map_err(|m| self.err(line, m))?;
                self.validate_qubits(&qubits, line)?;
                self.circuit_mut(line)?.push(Instruction::Tracepoint {
                    id: TracepointId(id),
                    qubits,
                });
                Ok(())
            }
            "barrier" => {
                self.circuit_mut(line)?.push(Instruction::Barrier);
                Ok(())
            }
            "measure" => {
                // measure q[i] -> c[j]
                let parts: Vec<&str> = rest.split("->").collect();
                if parts.len() != 2 {
                    return Err(self.err(line, "measure requires 'q[i] -> c[j]'"));
                }
                let qubits = parse_qubit_list(parts[0].trim()).map_err(|m| self.err(line, m))?;
                let cbits = parse_indexed(parts[1].trim(), 'c').map_err(|m| self.err(line, m))?;
                if qubits.len() != 1 || cbits.len() != 1 {
                    return Err(self.err(line, "measure takes exactly one qubit and one cbit"));
                }
                self.validate_qubits(&qubits, line)?;
                self.circuit_mut(line)?.push(Instruction::Measure {
                    qubit: qubits[0],
                    cbit: cbits[0],
                });
                Ok(())
            }
            "reset" => {
                let qubits = parse_qubit_list(rest).map_err(|m| self.err(line, m))?;
                self.validate_qubits(&qubits, line)?;
                let c = self.circuit_mut(line)?;
                for q in qubits {
                    c.push(Instruction::Reset(q));
                }
                Ok(())
            }
            "if" => {
                // if (c[j]==v) <gate stmt>
                let rest = rest.trim();
                if !rest.starts_with('(') {
                    return Err(self.err(line, "if requires a parenthesized condition"));
                }
                let close = rest
                    .find(')')
                    .ok_or_else(|| self.err(line, "unterminated if condition"))?;
                let cond = &rest[1..close];
                let body = rest[close + 1..].trim();
                let parts: Vec<&str> = cond.split("==").collect();
                if parts.len() != 2 {
                    return Err(self.err(line, "condition must be 'c[j]==v'"));
                }
                let cbits = parse_indexed(parts[0].trim(), 'c').map_err(|m| self.err(line, m))?;
                let value: u8 = parts[1]
                    .trim()
                    .parse()
                    .map_err(|_| self.err(line, "condition value must be 0 or 1"))?;
                if cbits.len() != 1 || value > 1 {
                    return Err(self.err(line, "condition must test one cbit against 0 or 1"));
                }
                let gates = self.parse_gate_statement(body, line)?;
                if gates.len() != 1 {
                    return Err(self.err(line, "conditional body must be a single gate"));
                }
                let gate = gates.into_iter().next().expect("length checked");
                self.circuit_mut(line)?.push(Instruction::Conditional {
                    cbit: cbits[0],
                    value,
                    gate,
                });
                Ok(())
            }
            _ => {
                self.circuit_mut(line)?;
                let gates = self.parse_gate_statement(stmt, line)?;
                let c = self.circuit_mut(line)?;
                for g in gates {
                    c.gate(g);
                }
                Ok(())
            }
        }
    }

    fn validate_qubits(&self, qubits: &[usize], line: usize) -> Result<(), ParseProgramError> {
        for &q in qubits {
            if q >= self.n_qubits {
                return Err(self.err(line, format!("qubit {q} out of range")));
            }
        }
        Ok(())
    }

    /// Parses a gate application like `rx(0.5) q[0]` or `cx q[0],q[1]`,
    /// broadcasting single-qubit gates over qubit lists.
    fn parse_gate_statement(
        &self,
        stmt: &str,
        line: usize,
    ) -> Result<Vec<Gate>, ParseProgramError> {
        let (mut name, rest) = split_head(stmt);
        let mut angle: Option<f64> = None;
        // Angle may be attached without whitespace: rx(0.5)
        let combined;
        if let Some(open) = name.find('(') {
            let close = name
                .rfind(')')
                .ok_or_else(|| self.err(line, "unterminated angle parameter"))?;
            angle = Some(
                eval_angle(&name[open + 1..close])
                    .ok_or_else(|| self.err(line, "invalid angle expression"))?,
            );
            combined = name[..open].to_string();
            name = &combined;
        } else if rest.starts_with('(') {
            // or separated: rx (0.5) q[0] — handled by re-splitting below
            let close = rest
                .find(')')
                .ok_or_else(|| self.err(line, "unterminated angle parameter"))?;
            angle = Some(
                eval_angle(&rest[1..close])
                    .ok_or_else(|| self.err(line, "invalid angle expression"))?,
            );
        }
        let operand_str = if angle.is_some() && rest.starts_with('(') {
            rest[rest.find(')').expect("checked") + 1..].trim()
        } else {
            rest
        };

        // Operands: comma-separated q[..] groups.
        let groups = parse_qubit_groups(operand_str).map_err(|m| self.err(line, m))?;
        let flat: Vec<usize> = groups.iter().flatten().copied().collect();
        self.validate_qubits(&flat, line)?;

        let need_angle = || -> Result<f64, ParseProgramError> {
            angle.ok_or_else(|| self.err(line, format!("gate {name} requires an angle")))
        };

        let single = |ctor: fn(usize) -> Gate| -> Result<Vec<Gate>, ParseProgramError> {
            if flat.is_empty() {
                return Err(self.err(line, format!("gate {name} requires qubits")));
            }
            Ok(flat.iter().map(|&q| ctor(q)).collect())
        };

        match name.to_ascii_lowercase().as_str() {
            "h" => single(Gate::H),
            "x" => single(Gate::X),
            "y" => single(Gate::Y),
            "z" => single(Gate::Z),
            "s" => single(Gate::S),
            "sdg" => single(Gate::Sdg),
            "t" => single(Gate::T),
            "tdg" => single(Gate::Tdg),
            "rx" => {
                let a = need_angle()?;
                Ok(flat.iter().map(|&q| Gate::RX(q, a)).collect())
            }
            "ry" => {
                let a = need_angle()?;
                Ok(flat.iter().map(|&q| Gate::RY(q, a)).collect())
            }
            "rz" => {
                let a = need_angle()?;
                Ok(flat.iter().map(|&q| Gate::RZ(q, a)).collect())
            }
            "p" | "phase" | "u1" => {
                let a = need_angle()?;
                Ok(flat.iter().map(|&q| Gate::Phase(q, a)).collect())
            }
            "cx" | "cnot" => {
                if flat.len() != 2 {
                    return Err(self.err(line, "cx requires exactly two qubits"));
                }
                Ok(vec![Gate::CX(flat[0], flat[1])])
            }
            "cz" => {
                if flat.len() != 2 {
                    return Err(self.err(line, "cz requires exactly two qubits"));
                }
                Ok(vec![Gate::CZ(flat[0], flat[1])])
            }
            "crz" => {
                let a = need_angle()?;
                if flat.len() != 2 {
                    return Err(self.err(line, "crz requires exactly two qubits"));
                }
                Ok(vec![Gate::CRZ(flat[0], flat[1], a)])
            }
            "cp" | "cphase" => {
                let a = need_angle()?;
                if flat.len() != 2 {
                    return Err(self.err(line, "cp requires exactly two qubits"));
                }
                Ok(vec![Gate::CPhase(flat[0], flat[1], a)])
            }
            "swap" => {
                if flat.len() != 2 {
                    return Err(self.err(line, "swap requires exactly two qubits"));
                }
                Ok(vec![Gate::Swap(flat[0], flat[1])])
            }
            "ccx" | "toffoli" => {
                if flat.len() != 3 {
                    return Err(self.err(line, "ccx requires exactly three qubits"));
                }
                Ok(vec![Gate::CCX(flat[0], flat[1], flat[2])])
            }
            "mcz" => {
                if flat.len() < 2 {
                    return Err(self.err(line, "mcz requires at least two qubits"));
                }
                Ok(vec![Gate::MCZ(flat)])
            }
            "mcrx" => {
                let a = need_angle()?;
                if groups.len() != 2 || groups[1].len() != 1 {
                    return Err(self.err(line, "mcrx requires 'q[controls],q[target]'"));
                }
                Ok(vec![Gate::MCRX(groups[0].clone(), groups[1][0], a)])
            }
            "mcry" => {
                let a = need_angle()?;
                if groups.len() != 2 || groups[1].len() != 1 {
                    return Err(self.err(line, "mcry requires 'q[controls],q[target]'"));
                }
                Ok(vec![Gate::MCRY(groups[0].clone(), groups[1][0], a)])
            }
            other => Err(self.err(line, format!("unknown gate {other:?}"))),
        }
    }
}

fn split_head(s: &str) -> (&str, &str) {
    let s = s.trim();
    match s.find(char::is_whitespace) {
        Some(pos) => (&s[..pos], s[pos..].trim_start()),
        None => (s, ""),
    }
}

fn parse_reg_decl(s: &str, reg: char) -> Result<usize, String> {
    // "q[4]"
    let s = s.trim().trim_end_matches(';').trim();
    let expected_prefix = format!("{reg}[");
    if !s.starts_with(&expected_prefix) || !s.ends_with(']') {
        return Err(format!("expected '{reg}[N]', found {s:?}"));
    }
    s[expected_prefix.len()..s.len() - 1]
        .parse()
        .map_err(|_| format!("invalid register size in {s:?}"))
}

fn parse_indexed(s: &str, reg: char) -> Result<Vec<usize>, String> {
    let s = s.trim();
    let expected_prefix = format!("{reg}[");
    if !s.starts_with(&expected_prefix) || !s.ends_with(']') {
        return Err(format!("expected '{reg}[..]', found {s:?}"));
    }
    s[expected_prefix.len()..s.len() - 1]
        .split(',')
        .map(|part| {
            part.trim()
                .parse()
                .map_err(|_| format!("invalid index {part:?}"))
        })
        .collect()
}

fn parse_qubit_list(s: &str) -> Result<Vec<usize>, String> {
    parse_indexed(s, 'q')
}

/// Splits `q[0,1],q[2]` into groups, respecting brackets.
fn parse_qubit_groups(s: &str) -> Result<Vec<Vec<usize>>, String> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(Vec::new());
    }
    let mut groups = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, ch) in s.char_indices() {
        match ch {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                groups.push(parse_qubit_list(&s[start..i])?);
                start = i + 1;
            }
            _ => {}
        }
    }
    groups.push(parse_qubit_list(&s[start..])?);
    Ok(groups)
}

/// Evaluates simple angle expressions: a float literal, `pi`, `pi/N`,
/// `N*pi`, `-pi/N`, or `N*pi/M`.
fn eval_angle(s: &str) -> Option<f64> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    if let Ok(v) = s.parse::<f64>() {
        return Some(v);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s.as_str()),
    };
    let value = eval_pi_expr(body)?;
    Some(if neg { -value } else { value })
}

fn eval_pi_expr(s: &str) -> Option<f64> {
    // Forms: pi | pi/M | N*pi | N*pi/M
    let (num_part, denom) = match s.split_once('/') {
        Some((a, b)) => (a, b.parse::<f64>().ok()?),
        None => (s, 1.0),
    };
    let coeff = match num_part.split_once('*') {
        Some((n, "pi")) => n.parse::<f64>().ok()?,
        None if num_part == "pi" => 1.0,
        _ => return None,
    };
    Some(coeff * std::f64::consts::PI / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_ghz_example() {
        // Listing from Section 4 (0-based indices).
        let src = "qreg q[3];\nh q[0];\ncx q[0],q[1];\nT 1 q[1];\ncx q[1],q[2];";
        let c = parse_program(src).unwrap();
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.gate_count(), 3);
        assert_eq!(c.tracepoint_position(TracepointId(1)), Some(2));
    }

    #[test]
    fn parses_quantum_lock_listing() {
        // Section 7.1 listing adapted to 0-based indices.
        let src = "\
qreg q[4];
T 1 q[1,2,3];    // add tracepoint T1 on qubits 1,2,3
h q[0];
x q[1,2,3];
mcz q[0,1,2],q[3];
x q[1,2,3];
h q[0];
T 2 q[0];        // add tracepoint T2 on qubit 0
";
        let c = parse_program(src).unwrap();
        assert_eq!(c.tracepoints().len(), 2);
        // Broadcast x over three qubits, twice, plus h twice plus mcz.
        assert_eq!(c.gate_count(), 9);
        let mcz_count = c
            .instructions()
            .iter()
            .filter(|i| matches!(i, Instruction::Gate(Gate::MCZ(qs)) if qs.len() == 4))
            .count();
        assert_eq!(mcz_count, 1);
    }

    #[test]
    fn parses_angles() {
        let c = parse_program(
            "qreg q[1];\nrx(0.5) q[0];\nrz(pi/2) q[0];\nry(-pi) q[0];\np(2*pi/3) q[0];",
        )
        .unwrap();
        let angles: Vec<f64> = c
            .instructions()
            .iter()
            .filter_map(|i| match i {
                Instruction::Gate(Gate::RX(_, a))
                | Instruction::Gate(Gate::RZ(_, a))
                | Instruction::Gate(Gate::RY(_, a))
                | Instruction::Gate(Gate::Phase(_, a)) => Some(*a),
                _ => None,
            })
            .collect();
        assert!((angles[0] - 0.5).abs() < 1e-12);
        assert!((angles[1] - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((angles[2] + std::f64::consts::PI).abs() < 1e-12);
        assert!((angles[3] - 2.0 * std::f64::consts::PI / 3.0).abs() < 1e-12);
    }

    #[test]
    fn parses_measure_and_feedback() {
        let src = "\
qreg q[2];
creg c[1];
h q[0];
measure q[0] -> c[0];
if (c[0]==1) x q[1];
";
        let c = parse_program(src).unwrap();
        assert_eq!(c.n_cbits(), 1);
        assert!(c.has_nonunitary());
        assert!(matches!(
            c.instructions().last(),
            Some(Instruction::Conditional {
                cbit: 0,
                value: 1,
                gate: Gate::X(1)
            })
        ));
    }

    #[test]
    fn parses_mcrx() {
        let c = parse_program("qreg q[3];\nmcrx(pi/3) q[0,1],q[2];").unwrap();
        match &c.instructions()[0] {
            Instruction::Gate(Gate::MCRX(cs, t, a)) => {
                assert_eq!(cs, &vec![0, 1]);
                assert_eq!(*t, 2);
                assert!((a - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_reports_line() {
        let err = parse_program("qreg q[2];\nbogus q[0];").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn rejects_out_of_range_qubit() {
        let err = parse_program("qreg q[2];\nh q[5];").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn rejects_statement_before_qreg() {
        let err = parse_program("h q[0];").unwrap_err();
        assert!(err.message.contains("before qreg"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let c = parse_program("// header\n\nqreg q[1]; // reg\n// mid\nh q[0]; // gate\n").unwrap();
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn multiple_statements_per_line() {
        let c = parse_program("qreg q[2]; h q[0]; cx q[0],q[1];").unwrap();
        assert_eq!(c.gate_count(), 2);
    }
}
