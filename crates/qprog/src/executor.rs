//! Program execution with tracepoint capture.
//!
//! Three execution styles cover everything the paper's evaluation needs:
//!
//! - [`Executor::run_trajectory`]: one stochastic run (a "shot"), collapsing
//!   at measurements and optionally applying trajectory noise — what real
//!   hardware does.
//! - [`Executor::run_expected`]: exact expected tracepoint states by
//!   enumerating every measurement branch with its probability — the
//!   noiseless ground truth used to score approximations.
//! - [`Executor::run_expected_noisy`]: the same enumeration on a density
//!   matrix with exact channel noise (small registers only).

use std::collections::BTreeMap;

use morph_linalg::CMatrix;
use morph_qsim::{DensityBatch, DensityMatrix, Gate, NoiseModel, StateBatch, StateVector};
use rand::Rng;

use crate::backend_mode::BackendMode;
use crate::circuit::{Circuit, Instruction, TracepointId};
use crate::fusion::fuse_circuit;

/// Probability below which a measurement branch is pruned.
const BRANCH_EPS: f64 = 1e-12;

/// Outcome of a single stochastic execution.
#[derive(Debug, Clone)]
pub struct ExecutionRecord {
    /// Reduced density matrix captured at each tracepoint.
    pub tracepoints: BTreeMap<TracepointId, CMatrix>,
    /// Final pure state of the trajectory.
    pub final_state: StateVector,
    /// Classical register contents after the run.
    pub classical: Vec<u8>,
}

/// Expected (probability-weighted) tracepoint states over all measurement
/// branches.
#[derive(Debug, Clone)]
pub struct ExpectedRecord {
    /// Expected reduced density matrix at each tracepoint.
    pub tracepoints: BTreeMap<TracepointId, CMatrix>,
    /// Number of non-negligible measurement branches explored.
    pub branch_count: usize,
}

impl ExpectedRecord {
    /// The state captured at `id`.
    ///
    /// # Panics
    ///
    /// Panics if the tracepoint was not present in the program.
    pub fn state(&self, id: TracepointId) -> &CMatrix {
        self.tracepoints
            .get(&id)
            .unwrap_or_else(|| panic!("tracepoint {id} not captured"))
    }
}

/// Shot count used when [`ExecutorBuilder::shots`] is not configured.
pub const DEFAULT_SHOTS: usize = 1024;

/// Runs programs against the simulator substrate.
///
/// An `Executor` holds only plain configuration data, so a single instance
/// can be shared by reference across the worker threads of a parallel
/// characterization or baseline sweep.
///
/// Construct the default (noiseless, fused) executor with
/// [`Executor::default`], anything else with [`Executor::builder`].
#[derive(Debug, Clone)]
pub struct Executor {
    noise: NoiseModel,
    fuse: bool,
    default_shots: usize,
    backend: BackendMode,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::builder().build()
    }
}

/// Builder for [`Executor`] — the one construction path for every
/// configuration axis (noise model, gate fusion, default shot budget).
///
/// # Examples
///
/// ```
/// use morph_qprog::Executor;
/// use morph_qsim::NoiseModel;
///
/// let noisy = Executor::builder()
///     .noise(NoiseModel::ibm_cairo())
///     .fusion(false)
///     .shots(256)
///     .build();
/// assert!(!noisy.noise().is_noiseless());
/// assert_eq!(noisy.default_shots(), 256);
/// ```
#[derive(Debug, Clone)]
pub struct ExecutorBuilder {
    noise: NoiseModel,
    fusion: bool,
    shots: usize,
    backend: BackendMode,
}

impl ExecutorBuilder {
    /// Sets the hardware noise model (default: noiseless).
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Enables or disables the gate-fusion pre-pass (default: enabled).
    /// Fusion preserves semantics; disabling it exists for debugging and
    /// for oracle comparisons in tests.
    pub fn fusion(mut self, enabled: bool) -> Self {
        self.fusion = enabled;
        self
    }

    /// Sets the shot budget used by [`Executor::sample_counts_default`]
    /// (default: [`DEFAULT_SHOTS`]).
    pub fn shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }

    /// Requests a simulation backend (default: [`BackendMode::Auto`]).
    /// The executor itself always runs dense kernels; the request is read
    /// by the `morph-backend` dispatch layer, and the `MORPH_BACKEND`
    /// environment variable replaces `Auto` at resolution time.
    pub fn backend(mut self, backend: BackendMode) -> Self {
        self.backend = backend;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> Executor {
        Executor {
            noise: self.noise,
            fuse: self.fusion,
            default_shots: self.shots,
            backend: self.backend,
        }
    }
}

impl Default for ExecutorBuilder {
    fn default() -> Self {
        ExecutorBuilder {
            noise: NoiseModel::noiseless(),
            fusion: true,
            shots: DEFAULT_SHOTS,
            backend: BackendMode::Auto,
        }
    }
}

// Parallel characterization shares one executor across scoped worker
// threads; a field change that loses these bounds must fail to compile
// here, not at the distant call site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Executor>()
};

impl Executor {
    /// Starts an [`ExecutorBuilder`] with the default configuration
    /// (noiseless, fusion on, [`DEFAULT_SHOTS`]).
    pub fn builder() -> ExecutorBuilder {
        ExecutorBuilder::default()
    }

    /// Noiseless executor.
    #[deprecated(note = "use `Executor::default()` or `Executor::builder()`")]
    pub fn new() -> Self {
        Executor::default()
    }

    /// Executor with a hardware noise model.
    #[deprecated(note = "use `Executor::builder().noise(noise).build()`")]
    pub fn with_noise(noise: NoiseModel) -> Self {
        Executor::builder().noise(noise).build()
    }

    /// Disables the gate-fusion pre-pass. Fusion preserves semantics, so
    /// this exists for debugging and for oracle comparisons in tests.
    #[deprecated(note = "use `Executor::builder().fusion(false)`")]
    pub fn without_fusion(mut self) -> Self {
        self.fuse = false;
        self
    }

    /// The configured noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The shot budget [`Executor::sample_counts_default`] spends.
    pub fn default_shots(&self) -> usize {
        self.default_shots
    }

    /// The requested simulation backend, before the `MORPH_BACKEND`
    /// environment override (apply [`BackendMode::resolve`] for the
    /// effective mode).
    pub fn backend_mode(&self) -> BackendMode {
        self.backend
    }

    /// Returns the circuit to execute on a noiseless path: the fused form
    /// (stored in `storage`) when fusion is enabled, else `circuit` itself.
    fn fused_for_noiseless<'a>(
        &self,
        circuit: &'a Circuit,
        storage: &'a mut Option<Circuit>,
    ) -> &'a Circuit {
        if self.fuse {
            let fused = storage.insert(fuse_circuit(circuit));
            if morph_trace::enabled() {
                morph_trace::counter("executor/gates_before_fusion", gate_count(circuit));
                morph_trace::counter("executor/gates_fused", gate_count(fused));
            }
            fused
        } else {
            morph_trace::counter("executor/gates_unfused", gate_count(circuit));
            circuit
        }
    }

    /// Runs one stochastic trajectory from `input`, collapsing at
    /// measurements and applying Pauli-twirl noise after each gate when the
    /// noise model is non-trivial.
    ///
    /// # Panics
    ///
    /// Panics if `input` has a different qubit count than the circuit.
    pub fn run_trajectory(
        &self,
        circuit: &Circuit,
        input: &StateVector,
        rng: &mut impl Rng,
    ) -> ExecutionRecord {
        assert_eq!(
            input.n_qubits(),
            circuit.n_qubits(),
            "input register mismatch"
        );
        // Trajectory noise attaches per physical gate, so fusing would
        // change the noise process; only fuse when noiseless.
        let mut storage = None;
        let circuit = if self.noise.is_noiseless() {
            self.fused_for_noiseless(circuit, &mut storage)
        } else {
            morph_trace::counter("executor/gates_unfused", gate_count(circuit));
            circuit
        };
        let mut state = input.clone();
        let mut classical = vec![0u8; circuit.n_cbits()];
        let mut tracepoints = BTreeMap::new();
        for inst in circuit.instructions() {
            match inst {
                Instruction::Gate(g) => {
                    g.apply(&mut state);
                    self.noise.apply_to_trajectory(&mut state, g, rng);
                }
                Instruction::Tracepoint { id, qubits } => {
                    tracepoints.insert(*id, state.reduced_density_matrix(qubits));
                }
                Instruction::Measure { qubit, cbit } => {
                    let bit = state.measure(*qubit, rng);
                    classical[*cbit] = self.noise.apply_readout(bit, rng);
                }
                Instruction::Reset(qubit) => {
                    let bit = state.measure(*qubit, rng);
                    if bit == 1 {
                        state.apply_x(*qubit);
                    }
                }
                Instruction::Conditional { cbit, value, gate } => {
                    if classical[*cbit] == *value {
                        gate.apply(&mut state);
                        self.noise.apply_to_trajectory(&mut state, gate, rng);
                    }
                }
                Instruction::Barrier => {}
            }
        }
        ExecutionRecord {
            tracepoints,
            final_state: state,
            classical,
        }
    }

    /// Computes the exact expected tracepoint states by enumerating every
    /// measurement branch, noiselessly.
    ///
    /// With `k` mid-circuit measurements this explores up to `2^k` branches;
    /// benchmark programs keep `k` small.
    pub fn run_expected(&self, circuit: &Circuit, input: &StateVector) -> ExpectedRecord {
        assert_eq!(
            input.n_qubits(),
            circuit.n_qubits(),
            "input register mismatch"
        );
        let mut storage = None;
        let circuit = self.fused_for_noiseless(circuit, &mut storage);
        let mut acc = Accumulator::new();
        enumerate_pure(
            circuit.instructions(),
            input.clone(),
            vec![0u8; circuit.n_cbits()],
            1.0,
            &mut acc,
        );
        acc.into_record()
    }

    /// Exact expected tracepoint states under channel noise, using a density
    /// matrix backend. Only viable for small registers (≤ ~10 qubits).
    pub fn run_expected_noisy(&self, circuit: &Circuit, input: &DensityMatrix) -> ExpectedRecord {
        assert_eq!(
            input.n_qubits(),
            circuit.n_qubits(),
            "input register mismatch"
        );
        // Channel noise attaches per physical gate, so this path never fuses.
        morph_trace::counter("executor/gates_unfused", gate_count(circuit));
        let mut acc = Accumulator::new();
        enumerate_density(
            circuit.instructions(),
            input.clone(),
            vec![0u8; circuit.n_cbits()],
            1.0,
            &self.noise,
            &mut acc,
        );
        acc.into_record()
    }

    /// Runs the fusion pre-pass once (when enabled) and returns the circuit
    /// to execute, for callers that amortize fusion over many inputs via the
    /// `*_prefused` entry points. Fires the same fusion telemetry counters as
    /// the single-input paths.
    pub fn fuse_for_run(&self, circuit: &Circuit) -> Circuit {
        let mut storage = None;
        self.fused_for_noiseless(circuit, &mut storage);
        storage.unwrap_or_else(|| circuit.clone())
    }

    /// [`Self::run_expected`] on a circuit already prepared by
    /// [`Self::fuse_for_run`] — skips the fusion pre-pass.
    pub fn run_expected_prefused(&self, circuit: &Circuit, input: &StateVector) -> ExpectedRecord {
        assert_eq!(
            input.n_qubits(),
            circuit.n_qubits(),
            "input register mismatch"
        );
        let mut acc = Accumulator::new();
        enumerate_pure(
            circuit.instructions(),
            input.clone(),
            vec![0u8; circuit.n_cbits()],
            1.0,
            &mut acc,
        );
        acc.into_record()
    }

    /// [`Self::run_expected`] over a batch of inputs: fuses once, then
    /// applies each gate across all inputs in one gate-major pass.
    ///
    /// Results are bit-identical to calling [`Self::run_expected`] per
    /// input.
    pub fn run_expected_batch(
        &self,
        circuit: &Circuit,
        inputs: &[StateVector],
    ) -> Vec<ExpectedRecord> {
        let prepared = self.fuse_for_run(circuit);
        self.run_expected_batch_prefused(&prepared, inputs)
    }

    /// [`Self::run_expected_batch`] on a circuit already prepared by
    /// [`Self::fuse_for_run`].
    ///
    /// Purely unitary circuits (gates, tracepoints, barriers) execute on a
    /// [`StateBatch`] so every gate touches all lanes in one strided pass;
    /// circuits with measurement, reset, or classical feedback fall back to
    /// per-lane branch enumeration, which stays bit-identical by
    /// construction.
    pub fn run_expected_batch_prefused(
        &self,
        circuit: &Circuit,
        inputs: &[StateVector],
    ) -> Vec<ExpectedRecord> {
        if inputs.is_empty() {
            return Vec::new();
        }
        if morph_trace::enabled() {
            morph_trace::counter("executor/batch_runs", 1);
            morph_trace::counter("executor/batch_lanes", inputs.len() as u64);
        }
        if circuit.has_nonunitary() {
            morph_trace::counter("executor/batch_fallbacks", 1);
            return inputs
                .iter()
                .map(|input| self.run_expected_prefused(circuit, input))
                .collect();
        }
        for input in inputs {
            assert_eq!(
                input.n_qubits(),
                circuit.n_qubits(),
                "input register mismatch"
            );
        }
        let mut batch = StateBatch::from_states(inputs);
        let mut records: Vec<ExpectedRecord> = (0..inputs.len())
            .map(|_| ExpectedRecord {
                tracepoints: BTreeMap::new(),
                branch_count: 1,
            })
            .collect();
        for inst in circuit.instructions() {
            match inst {
                Instruction::Gate(g) => batch.apply_gate(g),
                Instruction::Tracepoint { id, qubits } => {
                    for (lane, rec) in records.iter_mut().enumerate() {
                        // Weight 1.0 mirrors the single-branch accumulator
                        // path bitwise (scale_re(1.0) is the identity).
                        // Lane-direct readout: the RDM scan reads the
                        // lane's amplitudes straight off the planar batch
                        // storage instead of gathering a StateVector.
                        let rho = batch.lane_reduced_density_matrix(lane, qubits);
                        record_weighted(&mut rec.tracepoints, *id, rho, 1.0);
                    }
                }
                Instruction::Barrier => {}
                other => unreachable!("nonunitary instruction {other:?} on batched fast path"),
            }
        }
        records
    }

    /// [`Self::run_expected_noisy`] over a batch of inputs, gate-major on a
    /// [`DensityBatch`]. Never fuses (channel noise attaches per physical
    /// gate); circuits with measurement, reset, or classical feedback fall
    /// back to per-lane enumeration. Inputs are chunked internally to respect
    /// the density-batch memory budget.
    ///
    /// Results are bit-identical to calling [`Self::run_expected_noisy`] per
    /// input.
    pub fn run_expected_noisy_batch(
        &self,
        circuit: &Circuit,
        inputs: &[DensityMatrix],
    ) -> Vec<ExpectedRecord> {
        if inputs.is_empty() {
            return Vec::new();
        }
        if morph_trace::enabled() {
            morph_trace::counter("executor/batch_runs", 1);
            morph_trace::counter("executor/batch_lanes", inputs.len() as u64);
        }
        if circuit.has_nonunitary() {
            morph_trace::counter("executor/batch_fallbacks", 1);
            return inputs
                .iter()
                .map(|input| self.run_expected_noisy(circuit, input))
                .collect();
        }
        for input in inputs {
            assert_eq!(
                input.n_qubits(),
                circuit.n_qubits(),
                "input register mismatch"
            );
        }
        morph_trace::counter("executor/gates_unfused", gate_count(circuit));
        let n = circuit.n_qubits();
        let mut records = Vec::with_capacity(inputs.len());
        let mut start = 0;
        while start < inputs.len() {
            let lanes = DensityBatch::max_lanes(n, inputs.len() - start);
            let chunk = &inputs[start..start + lanes];
            let mut batch = DensityBatch::from_densities(chunk);
            let mut chunk_records: Vec<ExpectedRecord> = (0..lanes)
                .map(|_| ExpectedRecord {
                    tracepoints: BTreeMap::new(),
                    branch_count: 1,
                })
                .collect();
            for inst in circuit.instructions() {
                match inst {
                    Instruction::Gate(g) => {
                        batch.apply_gate(g);
                        batch.apply_noise(&self.noise, g);
                    }
                    Instruction::Tracepoint { id, qubits } => {
                        for (lane, rec) in chunk_records.iter_mut().enumerate() {
                            let rho = batch.lane(lane).partial_trace(qubits);
                            record_weighted(&mut rec.tracepoints, *id, rho, 1.0);
                        }
                    }
                    Instruction::Barrier => {}
                    other => {
                        unreachable!("nonunitary instruction {other:?} on batched fast path")
                    }
                }
            }
            records.extend(chunk_records);
            start += lanes;
        }
        records
    }

    /// Averages tracepoint states over `n_trajectories` stochastic noisy
    /// runs — the large-register stand-in for [`Self::run_expected_noisy`].
    pub fn run_average(
        &self,
        circuit: &Circuit,
        input: &StateVector,
        n_trajectories: usize,
        rng: &mut impl Rng,
    ) -> ExpectedRecord {
        assert!(n_trajectories > 0, "need at least one trajectory");
        let mut tracepoints: BTreeMap<TracepointId, CMatrix> = BTreeMap::new();
        for _ in 0..n_trajectories {
            let rec = self.run_trajectory(circuit, input, rng);
            for (id, rho) in rec.tracepoints {
                let scaled = rho.scale_re(1.0 / n_trajectories as f64);
                tracepoints
                    .entry(id)
                    .and_modify(|acc| *acc += &scaled)
                    .or_insert(scaled);
            }
        }
        ExpectedRecord {
            tracepoints,
            branch_count: n_trajectories,
        }
    }

    /// Samples `shots` final-register measurement outcomes. For programs
    /// without mid-circuit measurement/noise a single run is reused for all
    /// shots; otherwise each shot is its own trajectory.
    pub fn sample_counts(
        &self,
        circuit: &Circuit,
        input: &StateVector,
        shots: usize,
        rng: &mut impl Rng,
    ) -> Vec<usize> {
        if !circuit.has_nonunitary() && self.noise.is_noiseless() {
            let rec = self.run_trajectory(circuit, input, rng);
            return rec.final_state.sample_counts(shots, rng);
        }
        let mut counts = vec![0usize; 1usize << circuit.n_qubits()];
        for _ in 0..shots {
            let rec = self.run_trajectory(circuit, input, rng);
            counts[rec.final_state.sample(rng)] += 1;
        }
        counts
    }

    /// [`Executor::sample_counts`] spending the builder-configured default
    /// shot budget ([`ExecutorBuilder::shots`]).
    pub fn sample_counts_default(
        &self,
        circuit: &Circuit,
        input: &StateVector,
        rng: &mut impl Rng,
    ) -> Vec<usize> {
        self.sample_counts(circuit, input, self.default_shots, rng)
    }

    /// Estimated wall-clock duration of one shot on hardware, in
    /// nanoseconds, using the noise model's gate/readout times.
    pub fn duration_ns(&self, circuit: &Circuit) -> f64 {
        let mut t = 0.0;
        for inst in circuit.instructions() {
            match inst {
                Instruction::Gate(g) | Instruction::Conditional { gate: g, .. } => {
                    t += self.noise.gate_duration_ns(g);
                }
                Instruction::Measure { .. } | Instruction::Reset(_) => t += self.noise.tread_ns,
                _ => {}
            }
        }
        t + self.noise.tread_ns // final readout
    }
}

/// Number of gate applications a circuit performs (conditional gates
/// included), for the executor's fused-vs-unfused telemetry.
fn gate_count(circuit: &Circuit) -> u64 {
    circuit
        .instructions()
        .iter()
        .filter(|i| matches!(i, Instruction::Gate(_) | Instruction::Conditional { .. }))
        .count() as u64
}

/// Accumulates `weight * rho` into `map[id]`, the shared arithmetic for both
/// the branch-enumeration accumulator and the batched fast paths (bitwise
/// agreement between them depends on this being one expression).
fn record_weighted(
    map: &mut BTreeMap<TracepointId, CMatrix>,
    id: TracepointId,
    rho: CMatrix,
    weight: f64,
) {
    let scaled = rho.scale_re(weight);
    map.entry(id)
        .and_modify(|acc| *acc += &scaled)
        .or_insert(scaled);
}

struct Accumulator {
    tracepoints: BTreeMap<TracepointId, CMatrix>,
    branch_count: usize,
}

impl Accumulator {
    fn new() -> Self {
        Accumulator {
            tracepoints: BTreeMap::new(),
            branch_count: 0,
        }
    }

    fn record(&mut self, id: TracepointId, rho: CMatrix, weight: f64) {
        record_weighted(&mut self.tracepoints, id, rho, weight);
    }

    fn into_record(self) -> ExpectedRecord {
        ExpectedRecord {
            tracepoints: self.tracepoints,
            branch_count: self.branch_count,
        }
    }
}

fn enumerate_pure(
    instructions: &[Instruction],
    mut state: StateVector,
    mut classical: Vec<u8>,
    weight: f64,
    acc: &mut Accumulator,
) {
    for (idx, inst) in instructions.iter().enumerate() {
        match inst {
            Instruction::Gate(g) => g.apply(&mut state),
            Instruction::Tracepoint { id, qubits } => {
                acc.record(*id, state.reduced_density_matrix(qubits), weight);
            }
            Instruction::Measure { qubit, cbit } => {
                let p1 = state.prob_one(*qubit);
                let rest = &instructions[idx + 1..];
                for outcome in [0u8, 1u8] {
                    let p = if outcome == 1 { p1 } else { 1.0 - p1 };
                    if p < BRANCH_EPS {
                        continue;
                    }
                    let mut branch = state.clone();
                    branch.collapse(*qubit, outcome);
                    let mut cls = classical.clone();
                    cls[*cbit] = outcome;
                    enumerate_pure(rest, branch, cls, weight * p, acc);
                }
                return;
            }
            Instruction::Reset(qubit) => {
                let p1 = state.prob_one(*qubit);
                let rest = &instructions[idx + 1..];
                for outcome in [0u8, 1u8] {
                    let p = if outcome == 1 { p1 } else { 1.0 - p1 };
                    if p < BRANCH_EPS {
                        continue;
                    }
                    let mut branch = state.clone();
                    branch.collapse(*qubit, outcome);
                    if outcome == 1 {
                        branch.apply_x(*qubit);
                    }
                    enumerate_pure(rest, branch, classical.clone(), weight * p, acc);
                }
                return;
            }
            Instruction::Conditional { cbit, value, gate } => {
                if classical[*cbit] == *value {
                    gate.apply(&mut state);
                }
            }
            Instruction::Barrier => {}
        }
        let _ = &mut classical;
    }
    acc.branch_count += 1;
}

fn enumerate_density(
    instructions: &[Instruction],
    mut state: DensityMatrix,
    mut classical: Vec<u8>,
    weight: f64,
    noise: &NoiseModel,
    acc: &mut Accumulator,
) {
    for (idx, inst) in instructions.iter().enumerate() {
        match inst {
            Instruction::Gate(g) => {
                state.apply_gate(g);
                noise.apply_to_density(&mut state, g);
            }
            Instruction::Tracepoint { id, qubits } => {
                acc.record(*id, state.partial_trace(qubits), weight);
            }
            Instruction::Measure { qubit, cbit } => {
                let p1 = state.prob_one(*qubit);
                let rest = &instructions[idx + 1..];
                for outcome in [0u8, 1u8] {
                    let p = if outcome == 1 { p1 } else { 1.0 - p1 };
                    if p < BRANCH_EPS {
                        continue;
                    }
                    let mut branch = state.clone();
                    branch.collapse(*qubit, outcome);
                    let mut cls = classical.clone();
                    // Readout error: the recorded bit flips with prob r.
                    if noise.readout > 0.0 {
                        // Split into correctly- and incorrectly-read branches.
                        for (bit, bp) in
                            [(outcome, 1.0 - noise.readout), (outcome ^ 1, noise.readout)]
                        {
                            if bp < BRANCH_EPS {
                                continue;
                            }
                            cls[*cbit] = bit;
                            enumerate_density(
                                rest,
                                branch.clone(),
                                cls.clone(),
                                weight * p * bp,
                                noise,
                                acc,
                            );
                        }
                    } else {
                        cls[*cbit] = outcome;
                        enumerate_density(rest, branch, cls, weight * p, noise, acc);
                    }
                }
                return;
            }
            Instruction::Reset(qubit) => {
                let p1 = state.prob_one(*qubit);
                let rest = &instructions[idx + 1..];
                for outcome in [0u8, 1u8] {
                    let p = if outcome == 1 { p1 } else { 1.0 - p1 };
                    if p < BRANCH_EPS {
                        continue;
                    }
                    let mut branch = state.clone();
                    branch.collapse(*qubit, outcome);
                    if outcome == 1 {
                        branch.apply_gate(&Gate::X(*qubit));
                    }
                    enumerate_density(rest, branch, classical.clone(), weight * p, noise, acc);
                }
                return;
            }
            Instruction::Conditional { cbit, value, gate } => {
                if classical[*cbit] == *value {
                    state.apply_gate(gate);
                    noise.apply_to_density(&mut state, gate);
                }
            }
            Instruction::Barrier => {}
        }
        let _ = &mut classical;
    }
    acc.branch_count += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bell_with_traces() -> Circuit {
        let mut c = Circuit::new(2);
        c.tracepoint(1, &[0]);
        c.h(0).cx(0, 1);
        c.tracepoint(2, &[0, 1]);
        c
    }

    #[test]
    fn expected_tracepoints_of_bell() {
        let c = bell_with_traces();
        let rec = Executor::default().run_expected(&c, &StateVector::zero_state(2));
        let t1 = rec.state(TracepointId(1));
        assert!((t1[(0, 0)].re - 1.0).abs() < 1e-12);
        let t2 = rec.state(TracepointId(2));
        assert!((t2[(0, 0)].re - 0.5).abs() < 1e-12);
        assert!((t2[(0, 3)].re - 0.5).abs() < 1e-12);
        assert_eq!(rec.branch_count, 1);
    }

    #[test]
    fn trajectory_matches_expected_for_unitary_program() {
        let c = bell_with_traces();
        let mut rng = StdRng::seed_from_u64(0);
        let rec = Executor::default().run_trajectory(&c, &StateVector::zero_state(2), &mut rng);
        let exp = Executor::default().run_expected(&c, &StateVector::zero_state(2));
        for (id, rho) in &rec.tracepoints {
            assert!(rho.approx_eq(exp.state(*id), 1e-12), "mismatch at {id}");
        }
    }

    #[test]
    fn expected_enumerates_measurement_branches() {
        // H; measure; tracepoint — expected state is the classical mixture.
        let mut c = Circuit::new(1);
        c.h(0).measure(0, 0).tracepoint(1, &[0]);
        let rec = Executor::default().run_expected(&c, &StateVector::zero_state(1));
        let rho = rec.state(TracepointId(1));
        assert!((rho[(0, 0)].re - 0.5).abs() < 1e-12);
        assert!((rho[(1, 1)].re - 0.5).abs() < 1e-12);
        assert!(rho[(0, 1)].abs() < 1e-12);
        assert_eq!(rec.branch_count, 2);
    }

    #[test]
    fn feedback_teleportation_style() {
        // Prepare q0 in RY(0.8)|0>, entangle q1-q2, Bell-measure, correct.
        let theta = 0.8;
        let mut c = Circuit::new(3);
        c.ry(0, theta);
        c.tracepoint(1, &[0]);
        c.h(1).cx(1, 2);
        c.cx(0, 1).h(0);
        c.measure(0, 0).measure(1, 1);
        c.conditional(1, 1, Gate::X(2));
        c.conditional(0, 1, Gate::Z(2));
        c.tracepoint(2, &[2]);
        let rec = Executor::default().run_expected(&c, &StateVector::zero_state(3));
        let t1 = rec.state(TracepointId(1));
        let t2 = rec.state(TracepointId(2));
        assert!(
            t1.approx_eq(t2, 1e-10),
            "teleportation should preserve the state"
        );
        assert_eq!(rec.branch_count, 4);
    }

    #[test]
    fn trajectory_feedback_consistency() {
        // Measure |1> then conditionally flip another qubit.
        let mut c = Circuit::new(2);
        c.x(0).measure(0, 0).conditional(0, 1, Gate::X(1));
        let mut rng = StdRng::seed_from_u64(5);
        let rec = Executor::default().run_trajectory(&c, &StateVector::zero_state(2), &mut rng);
        assert_eq!(rec.classical, vec![1]);
        assert!((rec.final_state.prob_one(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_returns_qubit_to_zero() {
        let mut c = Circuit::new(1);
        c.h(0).push(Instruction::Reset(0));
        c.tracepoint(1, &[0]);
        let rec = Executor::default().run_expected(&c, &StateVector::zero_state(1));
        let rho = rec.state(TracepointId(1));
        assert!((rho[(0, 0)].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_expected_loses_purity() {
        let c = bell_with_traces();
        let ex = Executor::builder().noise(NoiseModel::ibm_cairo()).build();
        let rec = ex.run_expected_noisy(&c, &DensityMatrix::zero_state(2));
        let t2 = rec.state(TracepointId(2));
        let p = morph_linalg::purity(t2);
        assert!(p < 1.0, "noise must reduce purity, got {p}");
        assert!(p > 0.8, "Cairo-level noise is mild, got {p}");
    }

    #[test]
    fn run_average_approaches_expected() {
        let c = bell_with_traces();
        let mut rng = StdRng::seed_from_u64(11);
        let ex = Executor::default();
        let avg = ex.run_average(&c, &StateVector::zero_state(2), 10, &mut rng);
        let exp = ex.run_expected(&c, &StateVector::zero_state(2));
        // Unitary program: every trajectory is identical.
        assert!(avg
            .state(TracepointId(2))
            .approx_eq(exp.state(TracepointId(2)), 1e-12));
    }

    #[test]
    fn sample_counts_total_and_distribution() {
        let c = bell_with_traces();
        let mut rng = StdRng::seed_from_u64(2);
        let counts =
            Executor::default().sample_counts(&c, &StateVector::zero_state(2), 4000, &mut rng);
        assert_eq!(counts.iter().sum::<usize>(), 4000);
        assert_eq!(counts[1], 0);
        assert_eq!(counts[2], 0);
        let f = counts[0] as f64 / 4000.0;
        assert!((f - 0.5).abs() < 0.05);
    }

    fn random_inputs(n: usize, count: usize, seed: u64) -> Vec<StateVector> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let mut s = StateVector::zero_state(n);
                for q in 0..n {
                    Gate::RY(q, rng.gen_range(0.0..1.0) * 3.0).apply(&mut s);
                    Gate::RZ(q, rng.gen_range(0.0..1.0) * 3.0).apply(&mut s);
                }
                for q in 0..n.saturating_sub(1) {
                    Gate::CX(q, q + 1).apply(&mut s);
                }
                s
            })
            .collect()
    }

    fn deep_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.tracepoint(1, &[0]);
        for layer in 0..3 {
            for q in 0..n {
                c.h(q).rz(q, 0.3 + layer as f64 + q as f64);
            }
            for q in 0..n - 1 {
                c.cx(q, q + 1);
            }
        }
        c.tracepoint(2, &[0, 1]);
        c
    }

    #[test]
    fn batched_expected_is_bitwise_identical_to_per_state() {
        let c = deep_circuit(4);
        let ex = Executor::default();
        for count in [1usize, 3, 8] {
            let inputs = random_inputs(4, count, 17 + count as u64);
            let prepared = ex.fuse_for_run(&c);
            let batched = ex.run_expected_batch(&c, &inputs);
            assert_eq!(batched.len(), count);
            for (rec, input) in batched.iter().zip(&inputs) {
                let oracle = ex.run_expected_prefused(&prepared, input);
                assert_eq!(rec.branch_count, oracle.branch_count);
                assert_eq!(rec.tracepoints, oracle.tracepoints);
            }
        }
    }

    #[test]
    fn batched_expected_falls_back_on_nonunitary_circuits() {
        let mut c = Circuit::new(2);
        c.h(0).measure(0, 0);
        c.push(Instruction::Conditional {
            cbit: 0,
            value: 1,
            gate: Gate::X(1),
        });
        c.tracepoint(7, &[1]);
        let ex = Executor::default();
        let inputs = random_inputs(2, 3, 5);
        let prepared = ex.fuse_for_run(&c);
        let batched = ex.run_expected_batch(&c, &inputs);
        for (rec, input) in batched.iter().zip(&inputs) {
            let oracle = ex.run_expected_prefused(&prepared, input);
            assert_eq!(rec.branch_count, oracle.branch_count);
            assert_eq!(rec.tracepoints, oracle.tracepoints);
        }
    }

    #[test]
    fn batched_noisy_is_bitwise_identical_to_per_state() {
        let c = deep_circuit(3);
        let ex = Executor::builder().noise(NoiseModel::ibm_cairo()).build();
        let inputs: Vec<DensityMatrix> = random_inputs(3, 4, 23)
            .iter()
            .map(DensityMatrix::from_state_vector)
            .collect();
        let batched = ex.run_expected_noisy_batch(&c, &inputs);
        assert_eq!(batched.len(), inputs.len());
        for (rec, input) in batched.iter().zip(&inputs) {
            let oracle = ex.run_expected_noisy(&c, input);
            assert_eq!(rec.branch_count, oracle.branch_count);
            assert_eq!(rec.tracepoints, oracle.tracepoints);
        }
    }

    #[test]
    fn batched_paths_handle_empty_input_slices() {
        let c = deep_circuit(2);
        let ex = Executor::default();
        assert!(ex.run_expected_batch(&c, &[]).is_empty());
        assert!(ex.run_expected_noisy_batch(&c, &[]).is_empty());
    }

    #[test]
    fn duration_accounts_for_gates_and_readout() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure(0, 0);
        let ex = Executor::builder().noise(NoiseModel::ibm_cairo()).build();
        let t = ex.duration_ns(&c);
        // 60 + 340 + 732 (mid) + 732 (final).
        assert!((t - (60.0 + 340.0 + 732.0 + 732.0)).abs() < 1e-9);
    }
}
