//! Gate-fusion pre-pass for noiseless execution.
//!
//! [`fuse_circuit`] rewrites a circuit so that runs of adjacent
//! single-qubit gates on the same qubit collapse into one `2×2`
//! [`Gate::Unitary`], and single-qubit gates flanking a two-qubit gate are
//! absorbed into that gate's `4×4` matrix. Consecutive two-qubit gates on
//! the same ordered qubit pair also merge into a single `4×4`. The fused
//! circuit applies strictly fewer simulator kernels while producing a
//! bit-for-bit-equivalent-up-to-rounding state, so the executor runs it on
//! every noiseless path.
//!
//! Fusion is only sound when nothing observes the state between the fused
//! gates: noise channels attach to individual gates, so noisy paths must
//! execute the original instruction stream. Tracepoints, measurements,
//! resets, and conditionals act as barriers on the qubits they touch
//! (unitaries on *disjoint* qubits commute with them, so only the touched
//! qubits flush); an explicit [`Instruction::Barrier`] flushes everything.
//!
//! ## Why flushing only `inst.qubits()` is enough for classical feedback
//!
//! The fall-through boundary arm of [`fuse_circuit`] flushes only the
//! qubits the instruction touches — for a [`Instruction::Conditional`],
//! the conditioned gate's qubits, with no mention of the classical bit or
//! the measurement that feeds it. That is sufficient:
//!
//! - A conditional (like a measurement or reset) passes through verbatim
//!   and never enters the pending/attach state, so it can never merge with
//!   anything on either side.
//! - The boundary first emits any pending matrices on the touched qubits,
//!   so gates that precede the conditional in program order stay before it.
//! - A later single-qubit matrix can fold backward into a two-qubit
//!   unitary emitted *before* the boundary only if its qubit's attach
//!   entry survived — which means no intervening instruction (measure,
//!   reset, conditional, tracepoint) touched that qubit. A unitary on a
//!   disjoint qubit commutes with the measurement operator, the
//!   classically-controlled gate, and tracepoint capture (a partial trace
//!   over its qubit), so the fold never crosses a dependency.
//!
//! `random_circuits_with_measurement_and_feedback_match_unfused` stress-
//! tests exactly this boundary.

use std::collections::BTreeMap;

use morph_linalg::CMatrix;
use morph_qsim::Gate;

use crate::circuit::{Circuit, Instruction};

/// Accumulates pending single-qubit matrices and the fused output stream.
struct Fuser {
    ops: Vec<Instruction>,
    /// Net `2×2` unitary per qubit, not yet emitted. Keyed by a BTreeMap so
    /// multi-qubit flushes happen in a deterministic (ascending) order.
    pending: BTreeMap<usize, CMatrix>,
    /// Qubit → index in `ops` of the most recent fused two-qubit unitary
    /// touching it, with no emitted instruction on that qubit since.
    attach: BTreeMap<usize, usize>,
}

impl Fuser {
    fn new() -> Self {
        Fuser {
            ops: Vec::new(),
            pending: BTreeMap::new(),
            attach: BTreeMap::new(),
        }
    }

    /// Left-multiplies `m` (program order: `m` comes after) into the pending
    /// matrix for `q`.
    fn push_1q(&mut self, q: usize, m: &CMatrix) {
        match self.pending.remove(&q) {
            Some(prev) => {
                self.pending.insert(q, m.matmul(&prev));
            }
            None => {
                self.pending.insert(q, m.clone());
            }
        }
    }

    /// Emits a two-qubit gate on the ordered pair `(a, b)` (`a` more
    /// significant in `m4`), absorbing any pending flanking 1q matrices and
    /// merging into the previous op when it is a fused unitary on the same
    /// ordered pair.
    fn push_2q(&mut self, a: usize, b: usize, m4: CMatrix) {
        let id2 = CMatrix::identity(2);
        let pa = self.pending.remove(&a);
        let pb = self.pending.remove(&b);
        let m4 = if pa.is_some() || pb.is_some() {
            let pa = pa.unwrap_or_else(|| id2.clone());
            let pb = pb.unwrap_or(id2);
            m4.matmul(&pa.kron(&pb))
        } else {
            m4
        };
        if let (Some(&ia), Some(&ib)) = (self.attach.get(&a), self.attach.get(&b)) {
            if ia == ib {
                if let Instruction::Gate(Gate::Unitary(ts, prev)) = &self.ops[ia] {
                    if ts.as_slice() == [a, b] {
                        let merged = m4.matmul(prev);
                        self.ops[ia] = Instruction::Gate(Gate::Unitary(vec![a, b], merged));
                        return;
                    }
                }
            }
        }
        self.ops
            .push(Instruction::Gate(Gate::Unitary(vec![a, b], m4)));
        let idx = self.ops.len() - 1;
        self.attach.insert(a, idx);
        self.attach.insert(b, idx);
    }

    /// Emits the pending matrix for `q`, preferring to fold it into the
    /// attached two-qubit unitary (nothing emitted since touches `q`, and
    /// unitaries on other qubits commute with ops on `q`).
    fn flush(&mut self, q: usize) {
        let Some(p) = self.pending.remove(&q) else {
            return;
        };
        if let Some(&i) = self.attach.get(&q) {
            if let Instruction::Gate(Gate::Unitary(ts, m)) = &self.ops[i] {
                if ts.len() == 2 && ts.contains(&q) {
                    let id2 = CMatrix::identity(2);
                    let lift = if ts[0] == q {
                        p.kron(&id2)
                    } else {
                        id2.kron(&p)
                    };
                    let ts = ts.clone();
                    let merged = lift.matmul(m);
                    self.ops[i] = Instruction::Gate(Gate::Unitary(ts, merged));
                    return;
                }
            }
        }
        self.ops.push(Instruction::Gate(Gate::Unitary(vec![q], p)));
    }

    /// Flushes `qubits` (ascending) and invalidates their attach points —
    /// called at any instruction that observes or conditions on them.
    fn boundary(&mut self, qubits: &[usize]) {
        let mut qs: Vec<usize> = qubits.to_vec();
        qs.sort_unstable();
        qs.dedup();
        for q in qs {
            self.flush(q);
            self.attach.remove(&q);
        }
    }

    fn flush_all(&mut self) {
        let qs: Vec<usize> = self.pending.keys().copied().collect();
        for q in qs {
            self.flush(q);
        }
        self.attach.clear();
    }
}

/// Returns an observably equivalent circuit with adjacent unitaries fused.
///
/// Runs of single-qubit gates become one `Gate::Unitary` on one qubit;
/// two-qubit gates absorb flanking single-qubit gates into their `4×4` and
/// merge with a preceding fused gate on the same ordered pair. Gates on
/// three or more qubits, tracepoints, measurements, resets, conditionals,
/// and barriers pass through unchanged (flushing the qubits they touch).
///
/// # Examples
///
/// ```
/// use morph_qprog::{fuse_circuit, Circuit};
///
/// let mut c = Circuit::new(2);
/// c.h(0).h(1).cx(0, 1).h(1);
/// let fused = fuse_circuit(&c);
/// assert_eq!(fused.gate_count(), 1); // one 4x4 unitary
/// ```
pub fn fuse_circuit(circuit: &Circuit) -> Circuit {
    let mut f = Fuser::new();
    for inst in circuit.instructions() {
        match inst {
            Instruction::Gate(g) => {
                let qs = g.qubits();
                match qs.len() {
                    1 => f.push_1q(qs[0], &g.local_matrix()),
                    2 => f.push_2q(qs[0], qs[1], g.local_matrix()),
                    _ => {
                        f.boundary(&qs);
                        f.ops.push(inst.clone());
                    }
                }
            }
            Instruction::Barrier => {
                f.flush_all();
                f.ops.push(inst.clone());
            }
            _ => {
                f.boundary(&inst.qubits());
                f.ops.push(inst.clone());
            }
        }
    }
    f.flush_all();
    let mut out = Circuit::with_cbits(circuit.n_qubits(), circuit.n_cbits());
    for op in f.ops {
        out.push(op);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::TracepointId;
    use crate::executor::Executor;
    use morph_qsim::StateVector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn final_state(c: &Circuit) -> StateVector {
        let mut rng = StdRng::seed_from_u64(0);
        Executor::builder()
            .fusion(false)
            .build()
            .run_trajectory(c, &StateVector::zero_state(c.n_qubits()), &mut rng)
            .final_state
    }

    fn assert_equivalent(c: &Circuit) {
        let fused = fuse_circuit(c);
        let a = final_state(c);
        let b = final_state(&fused);
        for i in 0..a.amplitudes().len() {
            let d = (a.amplitudes()[i] - b.amplitudes()[i]).abs();
            assert!(d < 1e-12, "amplitude {i} differs by {d}");
        }
    }

    #[test]
    fn run_of_1q_gates_becomes_one_unitary() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0).s(0);
        let fused = fuse_circuit(&c);
        assert_eq!(fused.gate_count(), 1);
        assert_equivalent(&c);
    }

    #[test]
    fn flanking_1q_gates_absorb_into_2q() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1).t(0).h(1);
        let fused = fuse_circuit(&c);
        // One 4x4 holds everything: leading H⊗H, CX, trailing T⊗H.
        assert_eq!(fused.gate_count(), 1);
        assert_equivalent(&c);
    }

    #[test]
    fn consecutive_2q_on_same_pair_merge() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cz(0, 1).cx(0, 1);
        let fused = fuse_circuit(&c);
        assert_eq!(fused.gate_count(), 1);
        assert_equivalent(&c);
    }

    #[test]
    fn reversed_pair_does_not_merge_but_stays_correct() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        let fused = fuse_circuit(&c);
        assert_eq!(fused.gate_count(), 2);
        assert_equivalent(&c);
    }

    #[test]
    fn boundaries_flush_only_touched_qubits() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).measure(0, 0).h(1);
        let fused = fuse_circuit(&c);
        // q0's H must be emitted before the measure; q1's pair fuses.
        let kinds: Vec<bool> = fused
            .instructions()
            .iter()
            .map(|i| matches!(i, Instruction::Measure { .. }))
            .collect();
        assert_eq!(kinds, vec![false, true, false]);
        assert_eq!(fused.gate_count(), 2);
    }

    #[test]
    fn barrier_flushes_everything() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).push(Instruction::Barrier);
        c.cx(0, 1);
        let fused = fuse_circuit(&c);
        // Two 1q unitaries, the barrier, then the CX-derived unitary.
        assert_eq!(fused.gate_count(), 3);
        assert_equivalent(&c);
    }

    #[test]
    fn three_qubit_gates_pass_through() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).ccx(0, 1, 2).h(2);
        let fused = fuse_circuit(&c);
        assert!(fused
            .instructions()
            .iter()
            .any(|i| matches!(i, Instruction::Gate(Gate::CCX(..)))));
        assert_equivalent(&c);
    }

    #[test]
    fn trailing_1q_folds_into_attached_2q_across_other_ops() {
        // H on q2 is pending while the (0,1) unitary is emitted; flushing q2
        // must not be folded into the (0,1) op.
        let mut c = Circuit::new(3);
        c.h(2).cx(0, 1).t(2);
        assert_equivalent(&c);
    }

    #[test]
    fn random_circuits_match_unfused_execution() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let n = 4;
            let mut c = Circuit::new(n);
            for _ in 0..30 {
                match rng.gen_range(0..8) {
                    0 => {
                        c.h(rng.gen_range(0..n));
                    }
                    1 => {
                        c.t(rng.gen_range(0..n));
                    }
                    2 => {
                        c.rx(rng.gen_range(0..n), rng.gen_range(0.0..3.0));
                    }
                    3 | 4 => {
                        let a = rng.gen_range(0..n);
                        let b = (a + rng.gen_range(1..n)) % n;
                        c.cx(a, b);
                    }
                    5 => {
                        let a = rng.gen_range(0..n);
                        let b = (a + rng.gen_range(1..n)) % n;
                        c.swap(a, b);
                    }
                    6 => {
                        c.push(Instruction::Barrier);
                    }
                    _ => {
                        let a = rng.gen_range(0..n);
                        let b = (a + rng.gen_range(1..n)) % n;
                        c.cz(a, b);
                    }
                }
            }
            assert_equivalent(&c);
        }
    }

    #[test]
    fn conditional_gate_is_not_folded_across_its_feeding_measurement() {
        let mut c = Circuit::with_cbits(2, 1);
        c.h(0).h(1).measure(0, 0);
        c.conditional(0, 1, Gate::X(1));
        c.h(1);
        c.tracepoint(1, &[0, 1]);
        let fused = fuse_circuit(&c);
        let instructions = fused.instructions();
        let measure_at = instructions
            .iter()
            .position(|i| matches!(i, Instruction::Measure { .. }))
            .expect("measure survives fusion");
        let cond_at = instructions
            .iter()
            .position(|i| matches!(i, Instruction::Conditional { .. }))
            .expect("conditional survives fusion");
        assert!(
            measure_at < cond_at,
            "feedback must stay after the measurement feeding it"
        );
        let trailing_h1 = instructions
            .iter()
            .rposition(|i| matches!(i, Instruction::Gate(g) if g.qubits() == [1]))
            .expect("trailing gate on qubit 1 survives");
        assert!(
            trailing_h1 > cond_at,
            "a gate after the conditional must not fold across it"
        );
        let input = StateVector::zero_state(2);
        let with_fusion = Executor::default().run_expected(&c, &input);
        let plain = Executor::builder()
            .fusion(false)
            .build()
            .run_expected(&c, &input);
        assert!(with_fusion
            .state(TracepointId(1))
            .approx_eq(plain.state(TracepointId(1)), 1e-12));
    }

    #[test]
    fn random_circuits_with_measurement_and_feedback_match_unfused() {
        // Stress the fall-through boundary arm: random programs mixing
        // unitaries with measurement, reset, classical feedback, and
        // tracepoints must yield identical expected records fused and
        // unfused at every captured tracepoint.
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..15 {
            let n = 4;
            let mut c = Circuit::with_cbits(n, n);
            let mut next_tp = 1u32;
            for _ in 0..25 {
                match rng.gen_range(0..12) {
                    0 | 1 => {
                        c.h(rng.gen_range(0..n));
                    }
                    2 => {
                        c.t(rng.gen_range(0..n));
                    }
                    3 => {
                        c.rx(rng.gen_range(0..n), rng.gen_range(0.0..3.0));
                    }
                    4 | 5 => {
                        let a = rng.gen_range(0..n);
                        let b = (a + rng.gen_range(1..n)) % n;
                        c.cx(a, b);
                    }
                    6 => {
                        let a = rng.gen_range(0..n);
                        let b = (a + rng.gen_range(1..n)) % n;
                        c.cz(a, b);
                    }
                    7 => {
                        c.measure(rng.gen_range(0..n), rng.gen_range(0..n));
                    }
                    8 => {
                        c.push(Instruction::Reset(rng.gen_range(0..n)));
                    }
                    9 => {
                        c.conditional(
                            rng.gen_range(0..n),
                            rng.gen_range(0..2u32) as u8,
                            Gate::X(rng.gen_range(0..n)),
                        );
                    }
                    10 => {
                        c.tracepoint(next_tp, &[rng.gen_range(0..n)]);
                        next_tp += 1;
                    }
                    _ => {
                        c.push(Instruction::Barrier);
                    }
                }
            }
            c.tracepoint(next_tp, &[0, 1, 2, 3]);
            let input = StateVector::zero_state(n);
            let fused = Executor::default().run_expected(&c, &input);
            let plain = Executor::builder()
                .fusion(false)
                .build()
                .run_expected(&c, &input);
            assert_eq!(fused.tracepoints.len(), plain.tracepoints.len());
            for (id, rho) in &plain.tracepoints {
                assert!(
                    fused.state(*id).approx_eq(rho, 1e-10),
                    "round {round}: tracepoint {id} drifted between fused and unfused"
                );
            }
        }
    }

    #[test]
    fn fused_expected_record_matches_unfused() {
        let mut c = Circuit::new(3);
        c.h(0).tracepoint(1, &[0]).cx(0, 1).h(2).t(2);
        c.measure(0, 0);
        c.conditional(0, 1, Gate::X(2));
        c.tracepoint(2, &[1, 2]);
        let input = StateVector::zero_state(3);
        let fused = Executor::default().run_expected(&c, &input);
        let plain = Executor::builder()
            .fusion(false)
            .build()
            .run_expected(&c, &input);
        for id in [TracepointId(1), TracepointId(2)] {
            assert!(fused.state(id).approx_eq(plain.state(id), 1e-12));
        }
    }
}
