//! Pretty-printer for the QASM-like surface syntax — the inverse of
//! [`crate::parse_program`] for the gate set that syntax covers.

use morph_qsim::Gate;

use crate::circuit::{Circuit, Instruction};

/// Error for circuits containing instructions the surface syntax cannot
/// express (currently only dense [`Gate::Unitary`] blocks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnrepresentableError {
    /// Index of the offending instruction.
    pub index: usize,
    /// Description of the offending construct.
    pub what: String,
}

impl std::fmt::Display for UnrepresentableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "instruction {} ({}) has no surface syntax",
            self.index, self.what
        )
    }
}

impl std::error::Error for UnrepresentableError {}

/// Renders a circuit as program text that [`crate::parse_program`] accepts.
///
/// # Errors
///
/// Returns [`UnrepresentableError`] for dense `Unitary` gates, which have
/// no textual form.
///
/// # Examples
///
/// ```
/// use morph_qprog::{parse_program, write_program};
///
/// let mut c = morph_qprog::Circuit::new(2);
/// c.tracepoint(1, &[0]);
/// c.h(0).cx(0, 1);
/// let text = write_program(&c)?;
/// let reparsed = parse_program(&text).expect("round trip");
/// assert_eq!(reparsed, c);
/// # Ok::<(), morph_qprog::UnrepresentableError>(())
/// ```
pub fn write_program(circuit: &Circuit) -> Result<String, UnrepresentableError> {
    let mut out = String::new();
    out.push_str(&format!("qreg q[{}];\n", circuit.n_qubits()));
    if circuit.n_cbits() > 0 {
        out.push_str(&format!("creg c[{}];\n", circuit.n_cbits()));
    }
    for (index, inst) in circuit.instructions().iter().enumerate() {
        match inst {
            Instruction::Gate(g) => {
                out.push_str(&gate_text(g, index)?);
                out.push('\n');
            }
            Instruction::Tracepoint { id, qubits } => {
                out.push_str(&format!("T {} q[{}];\n", id.0, join(qubits)));
            }
            Instruction::Measure { qubit, cbit } => {
                out.push_str(&format!("measure q[{qubit}] -> c[{cbit}];\n"));
            }
            Instruction::Reset(q) => {
                out.push_str(&format!("reset q[{q}];\n"));
            }
            Instruction::Conditional { cbit, value, gate } => {
                out.push_str(&format!(
                    "if (c[{cbit}]=={value}) {}\n",
                    gate_text(gate, index)?
                ));
            }
            Instruction::Barrier => out.push_str("barrier;\n"),
        }
    }
    Ok(out)
}

fn join(qubits: &[usize]) -> String {
    qubits
        .iter()
        .map(|q| q.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn gate_text(gate: &Gate, index: usize) -> Result<String, UnrepresentableError> {
    let text = match gate {
        Gate::H(q) => format!("h q[{q}];"),
        Gate::X(q) => format!("x q[{q}];"),
        Gate::Y(q) => format!("y q[{q}];"),
        Gate::Z(q) => format!("z q[{q}];"),
        Gate::S(q) => format!("s q[{q}];"),
        Gate::Sdg(q) => format!("sdg q[{q}];"),
        Gate::T(q) => format!("t q[{q}];"),
        Gate::Tdg(q) => format!("tdg q[{q}];"),
        Gate::RX(q, a) => format!("rx({a}) q[{q}];"),
        Gate::RY(q, a) => format!("ry({a}) q[{q}];"),
        Gate::RZ(q, a) => format!("rz({a}) q[{q}];"),
        Gate::Phase(q, a) => format!("p({a}) q[{q}];"),
        Gate::CX(c, t) => format!("cx q[{c}],q[{t}];"),
        Gate::CZ(a, b) => format!("cz q[{a}],q[{b}];"),
        Gate::CRZ(c, t, a) => format!("crz({a}) q[{c}],q[{t}];"),
        Gate::CPhase(c, t, a) => format!("cp({a}) q[{c}],q[{t}];"),
        Gate::Swap(a, b) => format!("swap q[{a}],q[{b}];"),
        Gate::CCX(c1, c2, t) => format!("ccx q[{c1}],q[{c2}],q[{t}];"),
        Gate::MCZ(qs) => format!("mcz q[{}];", join(qs)),
        Gate::MCRX(cs, t, a) => format!("mcrx({a}) q[{}],q[{t}];", join(cs)),
        Gate::MCRY(cs, t, a) => format!("mcry({a}) q[{}],q[{t}];", join(cs)),
        Gate::Unitary(..) => {
            return Err(UnrepresentableError {
                index,
                what: "dense unitary".into(),
            })
        }
    };
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn roundtrip_all_representable_gates() {
        let mut c = Circuit::with_cbits(4, 2);
        c.tracepoint(1, &[0, 2]);
        c.h(0).x(1).y(2).z(3).s(0).t(1);
        c.gate(Gate::Sdg(2)).gate(Gate::Tdg(3));
        c.rx(0, 0.123).ry(1, -1.5).rz(2, 2.7).phase(3, 0.9);
        c.cx(0, 1).cz(2, 3).swap(0, 3).ccx(0, 1, 2);
        c.gate(Gate::CRZ(1, 2, 0.4)).gate(Gate::CPhase(0, 3, -0.2));
        c.mcz(&[0, 1, 2]).mcrx(&[0, 1], 3, 1.1);
        c.gate(Gate::MCRY(vec![2], 0, -0.6));
        c.measure(0, 0);
        c.conditional(0, 1, Gate::X(1));
        c.push(Instruction::Reset(2));
        c.push(Instruction::Barrier);
        c.tracepoint(2, &[3]);

        let text = write_program(&c).unwrap();
        let reparsed = parse_program(&text).unwrap();
        assert_eq!(reparsed, c);
    }

    #[test]
    fn angles_roundtrip_exactly() {
        let mut c = Circuit::new(1);
        c.rx(0, std::f64::consts::PI / 7.0);
        let text = write_program(&c).unwrap();
        let reparsed = parse_program(&text).unwrap();
        match (&reparsed.instructions()[0], &c.instructions()[0]) {
            (Instruction::Gate(Gate::RX(_, a)), Instruction::Gate(Gate::RX(_, b))) => {
                assert_eq!(
                    a, b,
                    "shortest-round-trip Display must preserve f64 exactly"
                );
            }
            _ => panic!("unexpected instruction"),
        }
    }

    #[test]
    fn unitary_gate_is_rejected() {
        let mut c = Circuit::new(1);
        c.gate(Gate::Unitary(vec![0], morph_linalg::CMatrix::identity(2)));
        let err = write_program(&c).unwrap_err();
        assert_eq!(err.index, 0);
        assert!(err.to_string().contains("dense unitary"));
    }

    #[test]
    fn header_includes_registers() {
        let mut c = Circuit::with_cbits(3, 2);
        c.h(0);
        let text = write_program(&c).unwrap();
        assert!(text.starts_with("qreg q[3];\ncreg c[2];\n"));
    }
}
