//! Quantum program intermediate representation.
//!
//! A [`Circuit`] is a linear sequence of [`Instruction`]s over an `n`-qubit
//! register and a classical bit register. Tracepoints (the paper's
//! `T <id> q[..]` pragma) are first-class instructions: they mark *where* in
//! program time the verifier should capture the reduced density matrix of a
//! qubit subset.

use morph_qsim::Gate;
use serde::json::{FromValueError, Value};
use serde::{Deserialize, Serialize};

/// Identifier of a tracepoint within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TracepointId(pub u32);

impl std::fmt::Display for TracepointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// One step of a quantum program.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// Apply a unitary gate.
    Gate(Gate),
    /// Capture the reduced state of `qubits` under the given id.
    Tracepoint {
        /// Identifier referenced by assertions.
        id: TracepointId,
        /// Qubits whose joint reduced density matrix is recorded.
        qubits: Vec<usize>,
    },
    /// Projectively measure `qubit` into classical bit `cbit`.
    Measure {
        /// Measured qubit.
        qubit: usize,
        /// Classical bit receiving the outcome.
        cbit: usize,
    },
    /// Reset `qubit` to `|0⟩` (measure and conditionally flip).
    Reset(usize),
    /// Apply `gate` only when classical bit `cbit` equals `value`
    /// (classical feedback).
    Conditional {
        /// Classical bit examined.
        cbit: usize,
        /// Required value.
        value: u8,
        /// Gate applied when the condition holds.
        gate: Gate,
    },
    /// Scheduling barrier; a no-op for simulation.
    Barrier,
}

impl Instruction {
    /// Qubits touched by the instruction.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Instruction::Gate(g) => g.qubits(),
            Instruction::Tracepoint { qubits, .. } => qubits.clone(),
            Instruction::Measure { qubit, .. } | Instruction::Reset(qubit) => vec![*qubit],
            Instruction::Conditional { gate, .. } => gate.qubits(),
            Instruction::Barrier => Vec::new(),
        }
    }
}

/// A quantum program: a register plus an ordered instruction list.
///
/// # Examples
///
/// ```
/// use morph_qprog::Circuit;
///
/// // GHZ with a tracepoint before and after.
/// let mut c = Circuit::new(3);
/// c.tracepoint(1, &[0, 1, 2]);
/// c.h(0).cx(0, 1).cx(1, 2);
/// c.tracepoint(2, &[0, 1, 2]);
/// assert_eq!(c.gate_count(), 3);
/// assert_eq!(c.tracepoints().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    n_cbits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Empty circuit on `n_qubits` qubits and no classical bits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            n_cbits: 0,
            instructions: Vec::new(),
        }
    }

    /// Empty circuit with an explicit classical register size.
    pub fn with_cbits(n_qubits: usize, n_cbits: usize) -> Self {
        Circuit {
            n_qubits,
            n_cbits,
            instructions: Vec::new(),
        }
    }

    /// Number of qubits in the register.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of classical bits.
    #[inline]
    pub fn n_cbits(&self) -> usize {
        self.n_cbits
    }

    /// The instruction sequence.
    #[inline]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Appends an instruction after validating qubit/cbit indices.
    ///
    /// # Panics
    ///
    /// Panics if any referenced qubit or classical bit is out of range.
    pub fn push(&mut self, instruction: Instruction) -> &mut Self {
        for q in instruction.qubits() {
            assert!(
                q < self.n_qubits,
                "qubit {q} out of range ({} qubits)",
                self.n_qubits
            );
        }
        match &instruction {
            Instruction::Measure { cbit, .. } | Instruction::Conditional { cbit, .. }
                if *cbit >= self.n_cbits =>
            {
                self.n_cbits = cbit + 1;
            }
            _ => {}
        }
        self.instructions.push(instruction);
        self
    }

    /// Appends a gate.
    pub fn gate(&mut self, g: Gate) -> &mut Self {
        self.push(Instruction::Gate(g))
    }

    /// Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::H(q))
    }

    /// Pauli-X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::X(q))
    }

    /// Pauli-Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Y(q))
    }

    /// Pauli-Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Z(q))
    }

    /// Phase gate S.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::S(q))
    }

    /// T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::T(q))
    }

    /// X-rotation.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.gate(Gate::RX(q, theta))
    }

    /// Y-rotation.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.gate(Gate::RY(q, theta))
    }

    /// Z-rotation.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.gate(Gate::RZ(q, theta))
    }

    /// Phase gate `diag(1, e^{iθ})`.
    pub fn phase(&mut self, q: usize, theta: f64) -> &mut Self {
        self.gate(Gate::Phase(q, theta))
    }

    /// CNOT.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.gate(Gate::CX(control, target))
    }

    /// Controlled-Z.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.gate(Gate::CZ(a, b))
    }

    /// SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.gate(Gate::Swap(a, b))
    }

    /// Toffoli.
    pub fn ccx(&mut self, c1: usize, c2: usize, t: usize) -> &mut Self {
        self.gate(Gate::CCX(c1, c2, t))
    }

    /// Multi-controlled Z.
    pub fn mcz(&mut self, qubits: &[usize]) -> &mut Self {
        self.gate(Gate::MCZ(qubits.to_vec()))
    }

    /// Multi-controlled RX.
    pub fn mcrx(&mut self, controls: &[usize], target: usize, theta: f64) -> &mut Self {
        self.gate(Gate::MCRX(controls.to_vec(), target, theta))
    }

    /// Tracepoint pragma `T <id> q[..]`.
    pub fn tracepoint(&mut self, id: u32, qubits: &[usize]) -> &mut Self {
        self.push(Instruction::Tracepoint {
            id: TracepointId(id),
            qubits: qubits.to_vec(),
        })
    }

    /// Measurement into a classical bit.
    pub fn measure(&mut self, qubit: usize, cbit: usize) -> &mut Self {
        self.push(Instruction::Measure { qubit, cbit })
    }

    /// Classically conditioned gate.
    pub fn conditional(&mut self, cbit: usize, value: u8, gate: Gate) -> &mut Self {
        self.push(Instruction::Conditional { cbit, value, gate })
    }

    /// Appends every instruction of `other` (registers must be compatible).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than `self`.
    pub fn extend_from(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.n_qubits <= self.n_qubits,
            "circuit extension exceeds register"
        );
        for inst in &other.instructions {
            self.push(inst.clone());
        }
        self
    }

    /// Number of gate instructions (excluding tracepoints, barriers,
    /// measurements).
    pub fn gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::Gate(_) | Instruction::Conditional { .. }))
            .count()
    }

    /// Total two-qubit-equivalent operation cost (used by overhead
    /// accounting).
    pub fn op_cost(&self) -> usize {
        self.instructions
            .iter()
            .map(|i| match i {
                Instruction::Gate(g) | Instruction::Conditional { gate: g, .. } => g.op_cost(),
                Instruction::Measure { .. } | Instruction::Reset(_) => 1,
                _ => 0,
            })
            .sum()
    }

    /// Circuit depth: the length of the longest chain of instructions that
    /// touch overlapping qubits (barriers synchronize all qubits;
    /// tracepoints are transparent).
    pub fn depth(&self) -> usize {
        let mut ready = vec![0usize; self.n_qubits];
        let mut max_depth = 0usize;
        for inst in &self.instructions {
            match inst {
                Instruction::Tracepoint { .. } => {}
                Instruction::Barrier => {
                    let level = ready.iter().copied().max().unwrap_or(0);
                    ready.fill(level);
                }
                other => {
                    let qubits = other.qubits();
                    let level = qubits.iter().map(|&q| ready[q]).max().unwrap_or(0) + 1;
                    for &q in &qubits {
                        ready[q] = level;
                    }
                    max_depth = max_depth.max(level);
                }
            }
        }
        max_depth
    }

    /// Number of mid-circuit measurements.
    pub fn measurement_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::Measure { .. } | Instruction::Reset(_)))
            .count()
    }

    /// All tracepoints in program order as `(id, qubits)` pairs.
    pub fn tracepoints(&self) -> Vec<(TracepointId, Vec<usize>)> {
        self.instructions
            .iter()
            .filter_map(|i| match i {
                Instruction::Tracepoint { id, qubits } => Some((*id, qubits.clone())),
                _ => None,
            })
            .collect()
    }

    /// Position (instruction index) of the given tracepoint, if present.
    pub fn tracepoint_position(&self, id: TracepointId) -> Option<usize> {
        self.instructions
            .iter()
            .position(|i| matches!(i, Instruction::Tracepoint { id: tid, .. } if *tid == id))
    }

    /// A copy with all tracepoints removed (what actually runs on hardware).
    pub fn without_tracepoints(&self) -> Circuit {
        Circuit {
            n_qubits: self.n_qubits,
            n_cbits: self.n_cbits,
            instructions: self
                .instructions
                .iter()
                .filter(|i| !matches!(i, Instruction::Tracepoint { .. }))
                .cloned()
                .collect(),
        }
    }

    /// The inverse circuit. Only valid for measurement-free programs.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains measurements, resets, or conditionals.
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::new(self.n_qubits);
        for inst in self.instructions.iter().rev() {
            match inst {
                Instruction::Gate(g) => {
                    inv.gate(g.inverse());
                }
                Instruction::Tracepoint { .. } | Instruction::Barrier => {}
                other => panic!("cannot invert non-unitary instruction {other:?}"),
            }
        }
        inv
    }

    /// Embeds this circuit into a larger register: qubit `i` of `self`
    /// becomes `mapping[i]` in a fresh `n_qubits`-wide circuit.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is shorter than the circuit's register, maps
    /// outside `n_qubits`, or contains duplicates.
    pub fn remap_qubits(&self, mapping: &[usize], n_qubits: usize) -> Circuit {
        assert!(
            mapping.len() >= self.n_qubits,
            "mapping shorter than register"
        );
        {
            let mut seen = vec![false; n_qubits];
            for &m in mapping {
                assert!(m < n_qubits, "mapping target {m} out of range");
                assert!(!seen[m], "duplicate mapping target {m}");
                seen[m] = true;
            }
        }
        let mut out = Circuit::with_cbits(n_qubits, self.n_cbits);
        for inst in &self.instructions {
            let mapped = match inst {
                Instruction::Gate(g) => Instruction::Gate(g.remapped(|q| mapping[q])),
                Instruction::Tracepoint { id, qubits } => Instruction::Tracepoint {
                    id: *id,
                    qubits: qubits.iter().map(|&q| mapping[q]).collect(),
                },
                Instruction::Measure { qubit, cbit } => Instruction::Measure {
                    qubit: mapping[*qubit],
                    cbit: *cbit,
                },
                Instruction::Reset(q) => Instruction::Reset(mapping[*q]),
                Instruction::Conditional { cbit, value, gate } => Instruction::Conditional {
                    cbit: *cbit,
                    value: *value,
                    gate: gate.remapped(|q| mapping[q]),
                },
                Instruction::Barrier => Instruction::Barrier,
            };
            out.push(mapped);
        }
        out
    }

    /// Inserts an instruction at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index > len` or the instruction references invalid qubits.
    pub fn insert(&mut self, index: usize, instruction: Instruction) {
        for q in instruction.qubits() {
            assert!(q < self.n_qubits, "qubit {q} out of range");
        }
        self.instructions.insert(index, instruction);
    }

    /// Removes and returns the instruction at `index`.
    pub fn remove(&mut self, index: usize) -> Instruction {
        self.instructions.remove(index)
    }

    /// `true` if the program contains mid-circuit measurement or feedback.
    pub fn has_nonunitary(&self) -> bool {
        self.instructions.iter().any(|i| {
            matches!(
                i,
                Instruction::Measure { .. }
                    | Instruction::Reset(_)
                    | Instruction::Conditional { .. }
            )
        })
    }

    /// Appends the circuit's canonical byte encoding used by morph-store
    /// fingerprinting: register sizes, instruction count, then each
    /// instruction as a one-byte opcode plus operands (gates via
    /// [`Gate::canonical_bytes`]). Tracepoints are instructions, so two
    /// programs that differ only in tracepoint placement fingerprint
    /// differently — their characterization artifacts are not interchangeable.
    pub fn canonical_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.n_qubits as u64).to_le_bytes());
        out.extend_from_slice(&(self.n_cbits as u64).to_le_bytes());
        out.extend_from_slice(&(self.instructions.len() as u64).to_le_bytes());
        for inst in &self.instructions {
            match inst {
                Instruction::Gate(g) => {
                    out.push(0);
                    g.canonical_bytes(out);
                }
                Instruction::Tracepoint { id, qubits } => {
                    out.push(1);
                    out.extend_from_slice(&u64::from(id.0).to_le_bytes());
                    out.extend_from_slice(&(qubits.len() as u64).to_le_bytes());
                    for &q in qubits {
                        out.extend_from_slice(&(q as u64).to_le_bytes());
                    }
                }
                Instruction::Measure { qubit, cbit } => {
                    out.push(2);
                    out.extend_from_slice(&(*qubit as u64).to_le_bytes());
                    out.extend_from_slice(&(*cbit as u64).to_le_bytes());
                }
                Instruction::Reset(q) => {
                    out.push(3);
                    out.extend_from_slice(&(*q as u64).to_le_bytes());
                }
                Instruction::Conditional { cbit, value, gate } => {
                    out.push(4);
                    out.extend_from_slice(&(*cbit as u64).to_le_bytes());
                    out.push(*value);
                    gate.canonical_bytes(out);
                }
                Instruction::Barrier => out.push(5),
            }
        }
    }
}

impl Serialize for TracepointId {
    fn to_value(&self) -> Value {
        Value::UInt(u64::from(self.0))
    }
}

impl<'de> Deserialize<'de> for TracepointId {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        match value.as_u64() {
            Some(id) if id <= u64::from(u32::MAX) => Ok(TracepointId(id as u32)),
            _ => Err(FromValueError::expected("tracepoint id (u32)", value)),
        }
    }
}

impl Serialize for Instruction {
    /// Encodes as a tagged array, e.g. `["Measure", qubit, cbit]`.
    fn to_value(&self) -> Value {
        let v = match self {
            Instruction::Gate(g) => vec![Value::Str("Gate".into()), g.to_value()],
            Instruction::Tracepoint { id, qubits } => vec![
                Value::Str("Tracepoint".into()),
                id.to_value(),
                qubits.to_value(),
            ],
            Instruction::Measure { qubit, cbit } => vec![
                Value::Str("Measure".into()),
                Value::UInt(*qubit as u64),
                Value::UInt(*cbit as u64),
            ],
            Instruction::Reset(q) => vec![Value::Str("Reset".into()), Value::UInt(*q as u64)],
            Instruction::Conditional { cbit, value, gate } => vec![
                Value::Str("Conditional".into()),
                Value::UInt(*cbit as u64),
                Value::UInt(u64::from(*value)),
                gate.to_value(),
            ],
            Instruction::Barrier => vec![Value::Str("Barrier".into())],
        };
        Value::Array(v)
    }
}

impl<'de> Deserialize<'de> for Instruction {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        let parts = value
            .as_array()
            .ok_or_else(|| FromValueError::expected("instruction array", value))?;
        let (tag, rest) = match parts.split_first() {
            Some((Value::Str(tag), rest)) => (tag.as_str(), rest),
            _ => return Err(FromValueError::expected("tagged instruction array", value)),
        };
        let index = |v: &Value, what: &str| {
            v.as_u64()
                .map(|q| q as usize)
                .ok_or_else(|| FromValueError::new(format!("expected {what} index")))
        };
        match (tag, rest) {
            ("Gate", [g]) => Ok(Instruction::Gate(Gate::from_value(g)?)),
            ("Tracepoint", [id, qubits]) => Ok(Instruction::Tracepoint {
                id: TracepointId::from_value(id)?,
                qubits: Vec::from_value(qubits)?,
            }),
            ("Measure", [qubit, cbit]) => Ok(Instruction::Measure {
                qubit: index(qubit, "qubit")?,
                cbit: index(cbit, "cbit")?,
            }),
            ("Reset", [q]) => Ok(Instruction::Reset(index(q, "qubit")?)),
            ("Conditional", [cbit, val, gate]) => {
                let value = val
                    .as_u64()
                    .filter(|&v| v <= u64::from(u8::MAX))
                    .ok_or_else(|| FromValueError::expected("condition value (u8)", val))?;
                Ok(Instruction::Conditional {
                    cbit: index(cbit, "cbit")?,
                    value: value as u8,
                    gate: Gate::from_value(gate)?,
                })
            }
            ("Barrier", []) => Ok(Instruction::Barrier),
            _ => Err(FromValueError::new(format!(
                "unknown or malformed instruction tag {tag:?}"
            ))),
        }
    }
}

impl Serialize for Circuit {
    fn to_value(&self) -> Value {
        let mut m = std::collections::BTreeMap::new();
        m.insert("n_qubits".to_string(), Value::UInt(self.n_qubits as u64));
        m.insert("n_cbits".to_string(), Value::UInt(self.n_cbits as u64));
        m.insert("instructions".to_string(), self.instructions.to_value());
        Value::Object(m)
    }
}

impl<'de> Deserialize<'de> for Circuit {
    /// Rebuilds the circuit, re-validating every instruction against the
    /// declared register sizes (a malformed artifact yields an error, never
    /// a panic from the builder's asserts).
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        let n_qubits = value
            .require("n_qubits")?
            .as_u64()
            .ok_or_else(|| FromValueError::new("n_qubits must be an unsigned integer"))?
            as usize;
        let n_cbits = value
            .require("n_cbits")?
            .as_u64()
            .ok_or_else(|| FromValueError::new("n_cbits must be an unsigned integer"))?
            as usize;
        let instructions: Vec<Instruction> = Vec::from_value(value.require("instructions")?)?;
        for inst in &instructions {
            for q in inst.qubits() {
                if q >= n_qubits {
                    return Err(FromValueError::new(format!(
                        "instruction references qubit {q} outside {n_qubits}-qubit register"
                    )));
                }
            }
            match inst {
                Instruction::Measure { cbit, .. } | Instruction::Conditional { cbit, .. }
                    if *cbit >= n_cbits =>
                {
                    return Err(FromValueError::new(format!(
                        "instruction references cbit {cbit} outside {n_cbits}-cbit register"
                    )));
                }
                _ => {}
            }
        }
        Ok(Circuit {
            n_qubits,
            n_cbits,
            instructions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).tracepoint(1, &[1]);
        assert_eq!(c.instructions().len(), 3);
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.tracepoints(), vec![(TracepointId(1), vec![1])]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_rejected() {
        let mut c = Circuit::new(2);
        c.h(2);
    }

    #[test]
    fn cbits_grow_on_demand() {
        let mut c = Circuit::new(2);
        assert_eq!(c.n_cbits(), 0);
        c.measure(0, 3);
        assert_eq!(c.n_cbits(), 4);
    }

    #[test]
    fn without_tracepoints_strips_only_tracepoints() {
        let mut c = Circuit::new(2);
        c.tracepoint(1, &[0]).h(0).tracepoint(2, &[1]).measure(0, 0);
        let stripped = c.without_tracepoints();
        assert_eq!(stripped.instructions().len(), 2);
        assert!(stripped.tracepoints().is_empty());
        assert_eq!(stripped.measurement_count(), 1);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).s(1).cx(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.gate_count(), 3);
        // First inverse instruction is the inverse of the last original.
        match &inv.instructions()[0] {
            Instruction::Gate(Gate::CX(0, 1)) => {}
            other => panic!("unexpected {other:?}"),
        }
        match &inv.instructions()[1] {
            Instruction::Gate(Gate::Sdg(1)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "cannot invert")]
    fn inverse_rejects_measurement() {
        let mut c = Circuit::new(1);
        c.measure(0, 0);
        let _ = c.inverse();
    }

    #[test]
    fn tracepoint_position_lookup() {
        let mut c = Circuit::new(1);
        c.h(0).tracepoint(7, &[0]).x(0);
        assert_eq!(c.tracepoint_position(TracepointId(7)), Some(1));
        assert_eq!(c.tracepoint_position(TracepointId(8)), None);
    }

    #[test]
    fn op_cost_counts_multicontrolled() {
        let mut c = Circuit::new(4);
        c.h(0).mcz(&[0, 1, 2, 3]);
        assert!(c.op_cost() > 2);
    }

    #[test]
    fn has_nonunitary_detection() {
        let mut pure = Circuit::new(1);
        pure.h(0);
        assert!(!pure.has_nonunitary());
        let mut fb = Circuit::new(2);
        fb.measure(0, 0).conditional(0, 1, Gate::X(1));
        assert!(fb.has_nonunitary());
    }

    #[test]
    fn depth_tracks_qubit_dependencies() {
        let mut c = Circuit::new(3);
        // Parallel H layer: depth 1.
        c.h(0).h(1).h(2);
        assert_eq!(c.depth(), 1);
        // CX chain adds sequential depth.
        c.cx(0, 1).cx(1, 2);
        assert_eq!(c.depth(), 3);
        // Tracepoints are transparent.
        c.tracepoint(1, &[0, 1, 2]);
        assert_eq!(c.depth(), 3);
        // A gate on an idle qubit does not deepen the circuit.
        let mut d = Circuit::new(2);
        d.h(0).h(0).h(0).x(1);
        assert_eq!(d.depth(), 3);
    }

    #[test]
    fn barrier_synchronizes_depth() {
        let mut c = Circuit::new(2);
        c.h(0).h(0); // qubit 0 at depth 2
        c.push(Instruction::Barrier);
        c.x(1); // after the barrier, qubit 1 starts at depth 2
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn extend_from_appends() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.extend_from(&b);
        assert_eq!(a.gate_count(), 2);
    }

    fn sample_program() -> Circuit {
        let mut c = Circuit::with_cbits(3, 2);
        c.tracepoint(1, &[0, 1]);
        c.h(0).cx(0, 1).rz(2, 0.25);
        c.push(Instruction::Barrier);
        c.measure(0, 0).conditional(0, 1, Gate::X(2));
        c.push(Instruction::Reset(1));
        c.tracepoint(2, &[2]);
        c
    }

    #[test]
    fn circuit_serialization_round_trips() {
        let c = sample_program();
        let json = serde::json::to_string(&c);
        let back: Circuit = serde::json::from_str(&json).expect("deserialize");
        assert_eq!(back, c);
    }

    #[test]
    fn circuit_deserialization_rejects_out_of_range_indices() {
        let mut c = Circuit::new(2);
        c.h(1);
        let json = serde::json::to_string(&c);
        // Shrink the register below the instruction's qubit index.
        let bad = json.replace("\"n_qubits\":2", "\"n_qubits\":1");
        assert_ne!(bad, json);
        assert!(serde::json::from_str::<Circuit>(&bad).is_err());
    }

    #[test]
    fn canonical_bytes_sensitive_to_structure() {
        let base = sample_program();
        let mut a = Vec::new();
        base.canonical_bytes(&mut a);

        // Same gates, tracepoint moved: different encoding.
        let mut moved = Circuit::with_cbits(3, 2);
        moved.h(0).tracepoint(1, &[0, 1]).cx(0, 1).rz(2, 0.25);
        moved.push(Instruction::Barrier);
        moved.measure(0, 0).conditional(0, 1, Gate::X(2));
        moved.push(Instruction::Reset(1));
        moved.tracepoint(2, &[2]);
        let mut b = Vec::new();
        moved.canonical_bytes(&mut b);
        assert_ne!(a, b);

        // Identical program: identical encoding.
        let mut c = Vec::new();
        sample_program().canonical_bytes(&mut c);
        assert_eq!(a, c);

        // Angle change: different encoding.
        let mut tweaked = sample_program();
        tweaked.rz(2, 0.250000001);
        let mut d = Vec::new();
        tweaked.canonical_bytes(&mut d);
        assert_ne!(a, d);
    }
}
