//! Peephole circuit simplification: cancels adjacent inverse gate pairs
//! and merges consecutive rotations on the same qubit.
//!
//! The QNN case study (Section 7.2) verifies *gate pruning*; this pass is
//! the complementary sound transformation — it never changes semantics, so
//! `verify(original ≡ simplified)` is a useful self-check (and a test in
//! this module does exactly that).

use morph_qsim::Gate;

use crate::circuit::{Circuit, Instruction};

/// Result of a simplification pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Gates removed by inverse-pair cancellation.
    pub cancelled: usize,
    /// Rotation pairs merged into one gate.
    pub merged: usize,
}

/// Applies cancellation/merging until a fixpoint; returns the simplified
/// circuit and statistics.
///
/// Only gate-gate adjacency *on the same qubit set with no interposed
/// instruction touching those qubits* is considered, so the pass is sound
/// in the presence of tracepoints (which are transparent), measurements,
/// and feedback (which are barriers for their qubits).
pub fn simplify(circuit: &Circuit) -> (Circuit, SimplifyStats) {
    let mut stats = SimplifyStats {
        cancelled: 0,
        merged: 0,
    };
    let mut instructions: Vec<Instruction> = circuit.instructions().to_vec();
    loop {
        let (next, changed, pass_stats) = one_pass(&instructions, circuit.n_qubits());
        stats.cancelled += pass_stats.cancelled;
        stats.merged += pass_stats.merged;
        instructions = next;
        if !changed {
            break;
        }
    }
    let mut out = Circuit::with_cbits(circuit.n_qubits(), circuit.n_cbits());
    for inst in instructions {
        out.push(inst);
    }
    (out, stats)
}

fn one_pass(
    instructions: &[Instruction],
    n_qubits: usize,
) -> (Vec<Instruction>, bool, SimplifyStats) {
    let mut stats = SimplifyStats {
        cancelled: 0,
        merged: 0,
    };
    let mut out: Vec<Instruction> = Vec::with_capacity(instructions.len());
    let mut changed = false;
    // For each qubit, the index in `out` of the last gate touching it
    // (None when blocked by a non-gate instruction).
    let mut last_gate: Vec<Option<usize>> = vec![None; n_qubits];

    for inst in instructions {
        match inst {
            Instruction::Gate(g) => {
                let qubits = g.qubits();
                // Candidate: every touched qubit must point at the same
                // previous gate.
                let candidate = qubits
                    .first()
                    .and_then(|&q| last_gate[q])
                    .filter(|&idx| qubits.iter().all(|&q| last_gate[q] == Some(idx)));
                if let Some(idx) = candidate {
                    if let Instruction::Gate(prev) = &out[idx] {
                        // Also require the previous gate to touch exactly
                        // the same qubit set.
                        let mut prev_qubits = prev.qubits();
                        let mut cur_qubits = qubits.clone();
                        prev_qubits.sort_unstable();
                        cur_qubits.sort_unstable();
                        if prev_qubits == cur_qubits {
                            if prev.inverse() == *g {
                                // Cancel the pair: replace the earlier gate
                                // with a removal sentinel.
                                out[idx] = Instruction::Tracepoint {
                                    id: crate::circuit::TracepointId(u32::MAX),
                                    qubits: Vec::new(),
                                };
                                for &q in &qubits {
                                    last_gate[q] = None;
                                }
                                stats.cancelled += 2;
                                changed = true;
                                continue;
                            }
                            if let Some(merged) = merge_rotations(prev, g) {
                                out[idx] = Instruction::Gate(merged);
                                stats.merged += 1;
                                changed = true;
                                continue;
                            }
                        }
                    }
                }
                let idx = out.len();
                out.push(inst.clone());
                for q in qubits {
                    last_gate[q] = Some(idx);
                }
            }
            Instruction::Tracepoint { .. } | Instruction::Barrier => {
                out.push(inst.clone());
            }
            other => {
                // Measurement/reset/conditional block their qubits.
                for q in other.qubits() {
                    last_gate[q] = None;
                }
                out.push(other.clone());
            }
        }
    }
    // Drop cancellation placeholders (empty-qubit sentinel tracepoints).
    let filtered: Vec<Instruction> = out
        .into_iter()
        .filter(|i| {
            !matches!(i, Instruction::Tracepoint { id, qubits }
                if id.0 == u32::MAX && qubits.is_empty())
        })
        .collect();
    (filtered, changed, stats)
}

/// Merges two same-axis rotations on the same qubit into one.
fn merge_rotations(a: &Gate, b: &Gate) -> Option<Gate> {
    match (a, b) {
        (Gate::RX(q1, t1), Gate::RX(q2, t2)) if q1 == q2 => Some(Gate::RX(*q1, t1 + t2)),
        (Gate::RY(q1, t1), Gate::RY(q2, t2)) if q1 == q2 => Some(Gate::RY(*q1, t1 + t2)),
        (Gate::RZ(q1, t1), Gate::RZ(q2, t2)) if q1 == q2 => Some(Gate::RZ(*q1, t1 + t2)),
        (Gate::Phase(q1, t1), Gate::Phase(q2, t2)) if q1 == q2 => Some(Gate::Phase(*q1, t1 + t2)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use morph_qsim::StateVector;

    fn equivalent(a: &Circuit, b: &Circuit) -> bool {
        // Compare action on a handful of basis states.
        let n = a.n_qubits();
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(0);
        for basis in 0..(1usize << n).min(8) {
            let input = StateVector::basis_state(n, basis);
            let ex = Executor::default();
            let sa = ex.run_trajectory(a, &input, &mut rng).final_state;
            let sb = ex.run_trajectory(b, &input, &mut rng).final_state;
            if sa.inner(&sb).re < 1.0 - 1e-9 {
                return false;
            }
        }
        true
    }

    #[test]
    fn cancels_adjacent_inverse_pairs() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).cx(0, 1).cx(0, 1).s(1).gate(Gate::Sdg(1)).x(0);
        let (simplified, stats) = simplify(&c);
        assert_eq!(simplified.gate_count(), 1, "only the final X survives");
        assert_eq!(stats.cancelled, 6);
        assert!(equivalent(&c, &simplified));
    }

    #[test]
    fn merges_rotations() {
        let mut c = Circuit::new(1);
        c.rx(0, 0.3).rx(0, 0.4).rz(0, 1.0).rz(0, -1.0);
        let (simplified, stats) = simplify(&c);
        // RX pair merges to 0.7; the RZ pair is an exact inverse pair and
        // cancels outright.
        assert_eq!(stats.merged, 1);
        assert_eq!(stats.cancelled, 2);
        assert_eq!(simplified.gate_count(), 1);
        assert!(equivalent(&c, &simplified));
    }

    #[test]
    fn interposed_gate_blocks_cancellation() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0);
        let (simplified, stats) = simplify(&c);
        assert_eq!(stats.cancelled, 0);
        assert_eq!(simplified.gate_count(), 3);
    }

    #[test]
    fn tracepoints_are_transparent_but_kept() {
        let mut c = Circuit::new(1);
        c.h(0).tracepoint(1, &[0]).h(0);
        let (simplified, stats) = simplify(&c);
        assert_eq!(stats.cancelled, 2);
        assert_eq!(simplified.gate_count(), 0);
        assert_eq!(
            simplified.tracepoints().len(),
            1,
            "user tracepoints survive"
        );
    }

    #[test]
    fn measurement_blocks_cancellation() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0, 0).h(0);
        let (simplified, stats) = simplify(&c);
        assert_eq!(stats.cancelled, 0);
        assert_eq!(simplified.gate_count(), 2);
    }

    #[test]
    fn fixpoint_cascades() {
        // h s sdg h — inner pair cancels, then the outer pair becomes
        // adjacent and cancels too.
        let mut c = Circuit::new(1);
        c.h(0).s(0).gate(Gate::Sdg(0)).h(0);
        let (simplified, stats) = simplify(&c);
        assert_eq!(simplified.gate_count(), 0);
        assert_eq!(stats.cancelled, 4);
    }

    #[test]
    fn random_circuits_stay_equivalent() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let c = morph_qalgo_free_random(&mut rng);
            let (simplified, _) = simplify(&c);
            assert!(
                equivalent(&c, &simplified),
                "simplification changed semantics"
            );
        }
    }

    /// Random 3-qubit circuit without depending on morph-qalgo.
    fn morph_qalgo_free_random(rng: &mut impl rand::Rng) -> Circuit {
        let mut c = Circuit::new(3);
        for _ in 0..20 {
            match rng.gen_range(0..6) {
                0 => {
                    c.h(rng.gen_range(0..3));
                }
                1 => {
                    c.s(rng.gen_range(0..3));
                }
                2 => {
                    c.x(rng.gen_range(0..3));
                }
                3 => {
                    c.rx(rng.gen_range(0..3), rng.gen_range(-1.0..1.0));
                }
                4 => {
                    let a = rng.gen_range(0..3);
                    let b = (a + 1 + rng.gen_range(0..2)) % 3;
                    c.cx(a, b);
                }
                _ => {
                    c.rz(rng.gen_range(0..3), rng.gen_range(-1.0..1.0));
                }
            }
        }
        c
    }
}
