//! Classical-shadow estimation (Huang–Kueng–Preskill style).
//!
//! Full state tomography pays `4^n − 1` measurement settings; a classical
//! shadow instead stores single-shot snapshots in random local Pauli bases
//! and reconstructs *any* low-weight Pauli expectation after the fact with
//! `3^w`-ish sample overhead (w = observable weight). This is the
//! extension direction the paper's complexity discussion points toward for
//! cutting characterization cost on wide tracepoints.

use morph_linalg::CMatrix;
use rand::Rng;

use crate::accounting::CostLedger;

/// A single snapshot: the random local basis and the observed bits.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Snapshot {
    /// Basis per qubit: 0 = X, 1 = Y, 2 = Z.
    bases: Vec<u8>,
    /// Measured bit per qubit.
    bits: Vec<u8>,
}

/// A collection of classical-shadow snapshots of one state.
#[derive(Debug, Clone)]
pub struct ClassicalShadow {
    n_qubits: usize,
    snapshots: Vec<Snapshot>,
}

impl ClassicalShadow {
    /// Collects `n_snapshots` single-shot snapshots of the (simulated)
    /// state `rho`: each snapshot rotates every qubit into a uniformly
    /// random Pauli basis and samples one computational-basis outcome.
    /// Each snapshot is one program execution in the ledger.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not a square power-of-two matrix or
    /// `n_snapshots == 0`.
    pub fn collect(
        rho: &CMatrix,
        n_snapshots: usize,
        ops_per_shot: u64,
        ledger: &mut CostLedger,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(rho.is_square(), "state must be square");
        assert!(n_snapshots > 0, "need at least one snapshot");
        let d = rho.rows();
        assert!(d.is_power_of_two(), "dimension must be a power of two");
        let n_qubits = d.trailing_zeros() as usize;

        let h = morph_qsim::matrices::h();
        let hsdg = morph_qsim::matrices::h()
            .matmul(&morph_qsim::matrices::phase(-std::f64::consts::FRAC_PI_2));
        let mut snapshots = Vec::with_capacity(n_snapshots);
        for _ in 0..n_snapshots {
            let bases: Vec<u8> = (0..n_qubits).map(|_| rng.gen_range(0..3u8)).collect();
            // Rotate into the chosen bases with qubit-local kernels
            // (X ↦ H, Y ↦ H·S†, Z ↦ I) — O(n·4^n) per snapshot instead of
            // the O(8^n) full-unitary conjugation.
            let mut rotated = morph_qsim::DensityMatrix::from_matrix(rho.clone());
            for (q, &b) in bases.iter().enumerate() {
                match b {
                    0 => rotated.apply_1q_local(&h, q),
                    1 => rotated.apply_1q_local(&hsdg, q),
                    _ => {}
                }
            }
            // Sample one outcome from the rotated diagonal.
            let r: f64 = rng.gen();
            let mut acc = 0.0;
            let mut outcome = d - 1;
            for i in 0..d {
                acc += rotated.matrix()[(i, i)].re.max(0.0);
                if r < acc {
                    outcome = i;
                    break;
                }
            }
            let bits: Vec<u8> = (0..n_qubits)
                .map(|q| ((outcome >> (n_qubits - 1 - q)) & 1) as u8)
                .collect();
            ledger.record_execution(1, ops_per_shot);
            snapshots.push(Snapshot { bases, bits });
        }
        ClassicalShadow {
            n_qubits,
            snapshots,
        }
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` if no snapshots are stored (never after `collect`).
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Estimates the expectation of a Pauli string (over `IXYZ`) using the
    /// median-of-means estimator with `k` batches.
    ///
    /// # Panics
    ///
    /// Panics if the string length differs from the register or contains
    /// invalid characters.
    pub fn estimate_pauli(&self, pauli: &str, k_batches: usize) -> f64 {
        assert_eq!(pauli.len(), self.n_qubits, "Pauli string length mismatch");
        let letters: Vec<u8> = pauli
            .chars()
            .map(|c| match c.to_ascii_uppercase() {
                'I' => 255u8,
                'X' => 0,
                'Y' => 1,
                'Z' => 2,
                other => panic!("invalid Pauli character {other:?}"),
            })
            .collect();

        let single = |snap: &Snapshot| -> f64 {
            let mut value = 1.0;
            for (q, &want) in letters.iter().enumerate() {
                if want == 255 {
                    continue;
                }
                if snap.bases[q] != want {
                    return 0.0;
                }
                let sign = if snap.bits[q] == 0 { 1.0 } else { -1.0 };
                value *= 3.0 * sign;
            }
            value
        };

        let k = k_batches.clamp(1, self.snapshots.len());
        let batch_size = self.snapshots.len().div_ceil(k);
        let mut means: Vec<f64> = self
            .snapshots
            .chunks(batch_size)
            .map(|batch| batch.iter().map(single).sum::<f64>() / batch.len() as f64)
            .collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        means[means.len() / 2]
    }

    /// The theoretical snapshot budget for estimating weight-`w` Pauli
    /// observables to precision ε: `O(3^w / ε²)`.
    pub fn snapshots_needed(weight: usize, epsilon: f64) -> usize {
        ((3f64.powi(weight as i32)) / (epsilon * epsilon)).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_linalg::C64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bell() -> CMatrix {
        let s = 1.0 / 2f64.sqrt();
        let ket = [C64::real(s), C64::ZERO, C64::ZERO, C64::real(s)];
        CMatrix::outer(&ket, &ket)
    }

    #[test]
    fn estimates_z_on_basis_state() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ledger = CostLedger::new();
        let zero = CMatrix::outer(&[C64::ONE, C64::ZERO], &[C64::ONE, C64::ZERO]);
        let shadow = ClassicalShadow::collect(&zero, 3000, 1, &mut ledger, &mut rng);
        let est = shadow.estimate_pauli("Z", 10);
        assert!((est - 1.0).abs() < 0.15, "⟨Z⟩ estimate {est}");
        assert_eq!(ledger.executions, 3000);
    }

    #[test]
    fn estimates_bell_correlations() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ledger = CostLedger::new();
        let shadow = ClassicalShadow::collect(&bell(), 20_000, 1, &mut ledger, &mut rng);
        // Bell state: ⟨XX⟩ = ⟨ZZ⟩ = 1, ⟨YY⟩ = −1, ⟨ZI⟩ = 0.
        assert!((shadow.estimate_pauli("XX", 20) - 1.0).abs() < 0.25);
        assert!((shadow.estimate_pauli("ZZ", 20) - 1.0).abs() < 0.25);
        assert!((shadow.estimate_pauli("YY", 20) + 1.0).abs() < 0.25);
        assert!(shadow.estimate_pauli("ZI", 20).abs() < 0.25);
    }

    #[test]
    fn identity_observable_is_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ledger = CostLedger::new();
        let shadow = ClassicalShadow::collect(&bell(), 50, 1, &mut ledger, &mut rng);
        assert!((shadow.estimate_pauli("II", 5) - 1.0).abs() < 1e-12);
        assert_eq!(shadow.len(), 50);
        assert!(!shadow.is_empty());
    }

    #[test]
    fn budget_formula_scales_with_weight() {
        assert!(
            ClassicalShadow::snapshots_needed(2, 0.1) > ClassicalShadow::snapshots_needed(1, 0.1)
        );
        assert_eq!(ClassicalShadow::snapshots_needed(1, 1.0), 3);
    }

    #[test]
    fn shadow_beats_tomography_execution_count_for_single_observable() {
        // Estimating one weight-2 observable on a 4-qubit state: full
        // tomography needs 4^4−1 = 255 settings × shots; shadows need a
        // few thousand single-shot runs regardless of register width.
        let settings = crate::state_tomography::pauli_strings(4).len() - 1;
        let shots_per_setting = 1000;
        let tomography_shots = settings * shots_per_setting;
        let shadow_shots = ClassicalShadow::snapshots_needed(2, 0.1);
        assert!(shadow_shots < tomography_shots / 100);
    }
}
