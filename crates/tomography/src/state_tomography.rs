//! Simulated quantum state tomography.
//!
//! Hardware cannot read a density matrix directly; it estimates every Pauli
//! expectation from repeated measurements. This module reproduces that
//! estimator faithfully on top of the simulator: given the *exact* reduced
//! state a tracepoint produced, it simulates the binomial shot noise of each
//! Pauli-basis setting, performs linear inversion, and projects back onto
//! the density-matrix set — exactly the pipeline MorphQPV's characterization
//! pays for on hardware.

use morph_linalg::{project_to_density, CMatrix, C64};
use morph_qsim::matrices;
use rand::Rng;

use crate::accounting::CostLedger;

/// How a tracepoint state is read out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadoutMode {
    /// Ideal readout: the exact reduced density matrix (infinite shots).
    Exact,
    /// Full state tomography with the given number of shots per Pauli basis.
    Shots(usize),
    /// Probability-only readout (Strategy-prop): only the computational
    /// basis is measured with the given shots; off-diagonals are dropped.
    ProbabilitiesOnly(usize),
    /// Classical-shadow readout with the given number of single-shot
    /// snapshots: one measurement setting per snapshot instead of
    /// `4^k − 1` fixed settings, at the price of `3^w` variance per
    /// weight-`w` Pauli coordinate.
    Shadow(usize),
}

impl ReadoutMode {
    /// Number of measurement settings needed for a `k`-qubit state.
    pub fn settings_for(&self, k: usize) -> u64 {
        match self {
            ReadoutMode::Exact => 1,
            ReadoutMode::Shots(_) => (4u64.pow(k as u32)) - 1,
            ReadoutMode::ProbabilitiesOnly(_) => 1,
            ReadoutMode::Shadow(n) => *n as u64,
        }
    }

    /// Shots per measurement setting.
    pub fn shots_per_setting(&self) -> u64 {
        match self {
            ReadoutMode::Exact | ReadoutMode::Shadow(_) => 1,
            ReadoutMode::Shots(s) | ReadoutMode::ProbabilitiesOnly(s) => *s as u64,
        }
    }

    /// Stable `(tag, parameter)` pair used by serialization and
    /// morph-store fingerprints.
    pub fn tag(&self) -> (&'static str, u64) {
        match self {
            ReadoutMode::Exact => ("exact", 0),
            ReadoutMode::Shots(s) => ("shots", *s as u64),
            ReadoutMode::ProbabilitiesOnly(s) => ("probabilities-only", *s as u64),
            ReadoutMode::Shadow(n) => ("shadow", *n as u64),
        }
    }
}

impl serde::Serialize for ReadoutMode {
    fn to_value(&self) -> serde::json::Value {
        let (tag, param) = self.tag();
        serde::json::Value::Array(vec![
            serde::json::Value::Str(tag.to_string()),
            serde::json::Value::UInt(param),
        ])
    }
}

impl<'de> serde::Deserialize<'de> for ReadoutMode {
    fn from_value(value: &serde::json::Value) -> Result<Self, serde::json::FromValueError> {
        use serde::json::{FromValueError, Value};
        let parts = value
            .as_array()
            .ok_or_else(|| FromValueError::expected("[tag, param] readout mode", value))?;
        match parts {
            [Value::Str(tag), param] => {
                let n = param
                    .as_u64()
                    .ok_or_else(|| FromValueError::expected("readout parameter", param))?
                    as usize;
                match tag.as_str() {
                    "exact" => Ok(ReadoutMode::Exact),
                    "shots" => Ok(ReadoutMode::Shots(n)),
                    "probabilities-only" => Ok(ReadoutMode::ProbabilitiesOnly(n)),
                    "shadow" => Ok(ReadoutMode::Shadow(n)),
                    _ => Err(FromValueError::new(format!(
                        "unknown readout mode tag {tag:?}"
                    ))),
                }
            }
            _ => Err(FromValueError::expected("[tag, param] readout mode", value)),
        }
    }
}

/// Enumerates all `4^k` Pauli strings over `k` qubits (in `IXYZ` alphabet),
/// identity first.
pub fn pauli_strings(k: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(4usize.pow(k as u32));
    let letters = ['I', 'X', 'Y', 'Z'];
    for code in 0..4usize.pow(k as u32) {
        let mut s = String::with_capacity(k);
        let mut c = code;
        for _ in 0..k {
            s.push(letters[c % 4]);
            c /= 4;
        }
        out.push(s.chars().rev().collect());
    }
    out
}

/// Estimates the expectation of an observable with eigenvalues ±1 from
/// `shots` simulated measurements given the true expectation `e`.
fn sample_expectation(e: f64, shots: usize, rng: &mut impl Rng) -> f64 {
    let p_plus = ((1.0 + e) / 2.0).clamp(0.0, 1.0);
    let mut plus = 0usize;
    for _ in 0..shots {
        if rng.gen::<f64>() < p_plus {
            plus += 1;
        }
    }
    2.0 * (plus as f64 / shots as f64) - 1.0
}

/// Runs simulated state tomography on a `k`-qubit state.
///
/// For [`ReadoutMode::Exact`] this returns a clone of `rho`. For
/// [`ReadoutMode::Shots`] every non-identity Pauli expectation is estimated
/// with binomial shot noise and the linear-inversion estimate is projected
/// to the nearest density matrix. For [`ReadoutMode::ProbabilitiesOnly`]
/// only the diagonal is estimated (multinomial sampling), reproducing
/// Strategy-prop's cheap readout.
///
/// Costs are recorded into `ledger`: one execution per measurement setting,
/// with `ops_per_shot` quantum operations each (pass the circuit's per-shot
/// cost).
///
/// # Panics
///
/// Panics if `rho` is not square or shot counts are zero in a shot mode.
pub fn read_state(
    rho: &CMatrix,
    mode: ReadoutMode,
    ops_per_shot: u64,
    ledger: &mut CostLedger,
    rng: &mut impl Rng,
) -> CMatrix {
    assert!(rho.is_square(), "state must be square");
    let d = rho.rows();
    let k = d.trailing_zeros() as usize;
    morph_trace::counter("tomography/readouts", 1);
    match mode {
        ReadoutMode::Exact => {
            ledger.record_execution(1, ops_per_shot);
            rho.clone()
        }
        ReadoutMode::Shots(shots) => {
            assert!(shots > 0, "tomography requires at least one shot");
            morph_trace::counter("tomography/shots", shots as u64);
            let mut estimate = CMatrix::identity(d).scale_re(1.0 / d as f64);
            for s in pauli_strings(k).into_iter().skip(1) {
                let p = matrices::pauli_string(&s);
                let true_e = morph_linalg::trace_product(&p, rho).re;
                let est_e = sample_expectation(true_e, shots, rng);
                estimate += &p.scale_re(est_e / d as f64);
                ledger.record_execution(shots as u64, ops_per_shot);
            }
            project_to_density(&estimate)
        }
        ReadoutMode::Shadow(n_snapshots) => {
            assert!(
                n_snapshots > 0,
                "shadow readout requires at least one snapshot"
            );
            morph_trace::counter("tomography/shadow_snapshots", n_snapshots as u64);
            let shadow = crate::shadows::ClassicalShadow::collect(
                rho,
                n_snapshots,
                ops_per_shot,
                ledger,
                rng,
            );
            let mut estimate = CMatrix::identity(d).scale_re(1.0 / d as f64);
            for s in pauli_strings(k).into_iter().skip(1) {
                let e = shadow.estimate_pauli(&s, 10).clamp(-1.0, 1.0);
                if e != 0.0 {
                    estimate += &matrices::pauli_string(&s).scale_re(e / d as f64);
                }
            }
            project_to_density(&estimate)
        }
        ReadoutMode::ProbabilitiesOnly(shots) => {
            assert!(shots > 0, "probability readout requires at least one shot");
            let probs: Vec<f64> = (0..d).map(|i| rho[(i, i)].re.max(0.0)).collect();
            let total: f64 = probs.iter().sum();
            let mut counts = vec![0usize; d];
            for _ in 0..shots {
                let r: f64 = rng.gen::<f64>() * total;
                let mut acc = 0.0;
                let mut chosen = d - 1;
                for (i, p) in probs.iter().enumerate() {
                    acc += p;
                    if r < acc {
                        chosen = i;
                        break;
                    }
                }
                counts[chosen] += 1;
            }
            ledger.record_execution(shots as u64, ops_per_shot);
            let diag: Vec<C64> = counts
                .iter()
                .map(|&c| C64::real(c as f64 / shots as f64))
                .collect();
            CMatrix::from_diag(&diag)
        }
    }
}

/// Simulated process tomography of a `k`-qubit channel presented as a
/// black-box map on density matrices.
///
/// The channel is probed with the `d²` spanning inputs
/// `{|j⟩⟨j|, |j⟩+|k⟩ superpositions, |j⟩+i|k⟩ superpositions}` and each
/// output is read with the given mode; the result is the list of
/// (input, estimated output) pairs from which any process representation
/// can be assembled. The quadratic input count times the exponential
/// tomography cost is what makes Fig 11(a)'s process-tomography curve so
/// expensive.
pub fn process_tomography(
    k: usize,
    channel: impl Fn(&CMatrix) -> CMatrix,
    mode: ReadoutMode,
    ops_per_shot: u64,
    ledger: &mut CostLedger,
    rng: &mut impl Rng,
) -> Vec<(CMatrix, CMatrix)> {
    let d = 1usize << k;
    let mut pairs = Vec::new();
    let basis_kets: Vec<Vec<C64>> = (0..d)
        .map(|j| {
            let mut v = vec![C64::ZERO; d];
            v[j] = C64::ONE;
            v
        })
        .collect();
    // |j><j| probes.
    for ket in &basis_kets {
        let rho_in = CMatrix::outer(ket, ket);
        let out = read_state(&channel(&rho_in), mode, ops_per_shot, ledger, rng);
        pairs.push((rho_in, out));
    }
    // (|j>+|k>)/√2 and (|j>+i|k>)/√2 probes.
    let s = 1.0 / 2f64.sqrt();
    for j in 0..d {
        for l in (j + 1)..d {
            for phase in [C64::ONE, C64::I] {
                let mut v = vec![C64::ZERO; d];
                v[j] = C64::real(s);
                v[l] = phase.scale(s);
                let rho_in = CMatrix::outer(&v, &v);
                let out = read_state(&channel(&rho_in), mode, ops_per_shot, ledger, rng);
                pairs.push((rho_in, out));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plus_state() -> CMatrix {
        let h = 1.0 / 2f64.sqrt();
        CMatrix::outer(&[C64::real(h), C64::real(h)], &[C64::real(h), C64::real(h)])
    }

    #[test]
    fn pauli_strings_enumeration() {
        let strings = pauli_strings(2);
        assert_eq!(strings.len(), 16);
        assert_eq!(strings[0], "II");
        assert!(strings.contains(&"XZ".to_string()));
        assert!(strings.contains(&"YY".to_string()));
        // All distinct.
        let set: std::collections::HashSet<_> = strings.iter().collect();
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn exact_mode_is_identity() {
        let mut ledger = CostLedger::new();
        let mut rng = StdRng::seed_from_u64(0);
        let rho = plus_state();
        let est = read_state(&rho, ReadoutMode::Exact, 5, &mut ledger, &mut rng);
        assert!(est.approx_eq(&rho, 0.0));
        assert_eq!(ledger.executions, 1);
    }

    #[test]
    fn shot_tomography_converges() {
        let mut rng = StdRng::seed_from_u64(7);
        let rho = plus_state();
        let mut coarse_ledger = CostLedger::new();
        let coarse = read_state(
            &rho,
            ReadoutMode::Shots(100),
            1,
            &mut coarse_ledger,
            &mut rng,
        );
        let mut fine_ledger = CostLedger::new();
        let fine = read_state(
            &rho,
            ReadoutMode::Shots(50_000),
            1,
            &mut fine_ledger,
            &mut rng,
        );
        let coarse_err = (&coarse - &rho).frobenius_norm();
        let fine_err = (&fine - &rho).frobenius_norm();
        assert!(fine_err < coarse_err, "more shots should reduce error");
        assert!(
            fine_err < 0.02,
            "50k shots should be accurate, err={fine_err}"
        );
        // 3 Pauli settings for one qubit.
        assert_eq!(fine_ledger.executions, 3);
        assert_eq!(fine_ledger.shots, 150_000);
    }

    #[test]
    fn shot_tomography_output_is_valid_density() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ledger = CostLedger::new();
        let est = read_state(
            &plus_state(),
            ReadoutMode::Shots(200),
            1,
            &mut ledger,
            &mut rng,
        );
        assert!(morph_linalg::is_density_matrix(&est, 1e-9));
    }

    #[test]
    fn probabilities_only_drops_coherences() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ledger = CostLedger::new();
        let est = read_state(
            &plus_state(),
            ReadoutMode::ProbabilitiesOnly(10_000),
            1,
            &mut ledger,
            &mut rng,
        );
        assert!(est[(0, 1)].abs() < 1e-12, "no off-diagonal information");
        assert!((est[(0, 0)].re - 0.5).abs() < 0.03);
        assert_eq!(ledger.executions, 1);
    }

    #[test]
    fn shadow_readout_reconstructs_with_flat_execution_count() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut ledger = CostLedger::new();
        let est = read_state(
            &plus_state(),
            ReadoutMode::Shadow(4000),
            1,
            &mut ledger,
            &mut rng,
        );
        assert!(morph_linalg::is_density_matrix(&est, 1e-9));
        assert!(
            morph_linalg::fidelity(&est, &plus_state()) > 0.9,
            "shadow estimate too far off"
        );
        // Executions = snapshots, independent of the 4^k setting count.
        assert_eq!(ledger.executions, 4000);
        assert_eq!(ledger.shots, 4000);
    }

    #[test]
    fn settings_count_model() {
        assert_eq!(ReadoutMode::Exact.settings_for(3), 1);
        assert_eq!(ReadoutMode::Shots(10).settings_for(2), 15);
        assert_eq!(ReadoutMode::ProbabilitiesOnly(10).settings_for(5), 1);
        assert_eq!(ReadoutMode::Shadow(500).settings_for(5), 500);
    }

    #[test]
    fn two_qubit_tomography_recovers_bell() {
        // Bell state density matrix.
        let s = 1.0 / 2f64.sqrt();
        let bell = CMatrix::outer(
            &[C64::real(s), C64::ZERO, C64::ZERO, C64::real(s)],
            &[C64::real(s), C64::ZERO, C64::ZERO, C64::real(s)],
        );
        let mut rng = StdRng::seed_from_u64(11);
        let mut ledger = CostLedger::new();
        let est = read_state(&bell, ReadoutMode::Shots(20_000), 1, &mut ledger, &mut rng);
        assert!((morph_linalg::fidelity(&est, &bell) - 1.0).abs() < 0.02);
        assert_eq!(ledger.executions, 15);
    }

    #[test]
    fn process_tomography_identity_channel() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut ledger = CostLedger::new();
        let pairs = process_tomography(
            1,
            |rho| rho.clone(),
            ReadoutMode::Exact,
            1,
            &mut ledger,
            &mut rng,
        );
        // d=2: 2 basis + 2 superposition pairs = 4 probes.
        assert_eq!(pairs.len(), 4);
        for (input, output) in &pairs {
            assert!(input.approx_eq(output, 1e-12));
        }
    }

    #[test]
    fn process_tomography_cost_scales() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut l1 = CostLedger::new();
        process_tomography(
            1,
            |r| r.clone(),
            ReadoutMode::Shots(10),
            1,
            &mut l1,
            &mut rng,
        );
        let mut l2 = CostLedger::new();
        process_tomography(
            2,
            |r| r.clone(),
            ReadoutMode::Shots(10),
            1,
            &mut l2,
            &mut rng,
        );
        assert!(
            l2.executions > 4 * l1.executions,
            "process tomography cost must blow up"
        );
    }
}
