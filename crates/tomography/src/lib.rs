//! Simulated tomography and cost accounting for the MorphQPV reproduction.
//!
//! On hardware, a tracepoint state can only be *estimated* by repeating the
//! program under many measurement settings. This crate models that pipeline
//! exactly — Pauli-basis settings, binomial shot noise, linear inversion,
//! PSD projection — while the underlying simulator supplies the true state:
//!
//! - [`read_state`]: state tomography under a [`ReadoutMode`] (exact /
//!   shot-limited / probabilities-only for the paper's Strategy-prop).
//! - [`process_tomography`]: `d²`-probe process characterization, the most
//!   expensive curve of Fig 11(a).
//! - [`ClassicalShadow`]: Huang–Kueng–Preskill shadow estimation — the
//!   low-weight-observable shortcut around full tomography.
//! - [`CostLedger`] / [`SharedLedger`]: executions / shots / quantum-ops
//!   accounting used by every table in the evaluation.
//!
//! # Examples
//!
//! ```
//! use morph_linalg::{C64, CMatrix};
//! use morph_tomography::{read_state, CostLedger, ReadoutMode};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let h = 1.0 / 2f64.sqrt();
//! let plus = CMatrix::outer(&[C64::real(h), C64::real(h)], &[C64::real(h), C64::real(h)]);
//! let mut ledger = CostLedger::new();
//! let mut rng = StdRng::seed_from_u64(1);
//! let est = read_state(&plus, ReadoutMode::Shots(4000), 1, &mut ledger, &mut rng);
//! assert!(morph_linalg::fidelity(&est, &plus) > 0.95);
//! assert_eq!(ledger.executions, 3); // X, Y, Z settings
//! ```

mod accounting;
mod shadows;
mod state_tomography;

pub use accounting::{CostLedger, SharedLedger};
pub use shadows::ClassicalShadow;
pub use state_tomography::{pauli_strings, process_tomography, read_state, ReadoutMode};
