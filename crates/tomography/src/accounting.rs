//! Cost accounting for verification experiments.
//!
//! The paper's headline numbers are *counts*: program executions (one input,
//! many shots), total shots, and quantum operations introduced by a
//! verification method. [`CostLedger`] accumulates them; [`SharedLedger`]
//! is the thread-safe handle used when sweeps run in parallel.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::json::{FromValueError, Value};
use serde::{Deserialize, Serialize};

/// Accumulated execution costs of a verification run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostLedger {
    /// Distinct program executions (an input preparation + measurement
    /// setting run on hardware).
    pub executions: u64,
    /// Total measurement shots across all executions.
    pub shots: u64,
    /// Two-qubit-equivalent quantum operations consumed (shots × per-shot
    /// circuit cost, plus any injected verification circuitry).
    pub quantum_ops: u64,
}

impl CostLedger {
    /// A zeroed ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Records one program execution of `shots` shots over a circuit whose
    /// per-shot operation cost is `ops_per_shot`.
    pub fn record_execution(&mut self, shots: u64, ops_per_shot: u64) {
        self.executions += 1;
        self.shots += shots;
        self.quantum_ops += shots.saturating_mul(ops_per_shot);
    }

    /// Records extra quantum operations (e.g. synthesized assertion
    /// circuitry) without an execution.
    pub fn record_ops(&mut self, ops: u64) {
        self.quantum_ops += ops;
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        self.executions += other.executions;
        self.shots += other.shots;
        self.quantum_ops += other.quantum_ops;
    }
}

impl std::fmt::Display for CostLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} executions, {} shots, {} quantum ops",
            self.executions, self.shots, self.quantum_ops
        )
    }
}

impl Serialize for CostLedger {
    /// Counters are persisted as digit-exact JSON integers (the serde
    /// shim's `u64` path never routes through `f64`), so ledgers above
    /// 2^53 operations survive a store round trip unchanged.
    fn to_value(&self) -> Value {
        let mut m = std::collections::BTreeMap::new();
        m.insert("executions".to_string(), Value::UInt(self.executions));
        m.insert("shots".to_string(), Value::UInt(self.shots));
        m.insert("quantum_ops".to_string(), Value::UInt(self.quantum_ops));
        Value::Object(m)
    }
}

impl<'de> Deserialize<'de> for CostLedger {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        let field = |name: &str| -> Result<u64, FromValueError> {
            value
                .require(name)?
                .as_u64()
                .ok_or_else(|| FromValueError::new(format!("{name} must be a u64 counter")))
        };
        Ok(CostLedger {
            executions: field("executions")?,
            shots: field("shots")?,
            quantum_ops: field("quantum_ops")?,
        })
    }
}

/// Thread-safe shared ledger for parallel sweeps.
#[derive(Debug, Clone, Default)]
pub struct SharedLedger {
    inner: Arc<Mutex<CostLedger>>,
}

impl SharedLedger {
    /// A zeroed shared ledger.
    pub fn new() -> Self {
        SharedLedger::default()
    }

    /// Records one execution (see [`CostLedger::record_execution`]).
    pub fn record_execution(&self, shots: u64, ops_per_shot: u64) {
        self.inner.lock().record_execution(shots, ops_per_shot);
    }

    /// Records extra quantum operations.
    pub fn record_ops(&self, ops: u64) {
        self.inner.lock().record_ops(ops);
    }

    /// Merges a local ledger.
    pub fn merge(&self, other: &CostLedger) {
        self.inner.lock().merge(other);
    }

    /// Snapshot of the current totals.
    pub fn snapshot(&self) -> CostLedger {
        *self.inner.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut ledger = CostLedger::new();
        ledger.record_execution(1000, 7);
        ledger.record_execution(1000, 7);
        assert_eq!(ledger.executions, 2);
        assert_eq!(ledger.shots, 2000);
        assert_eq!(ledger.quantum_ops, 14_000);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = CostLedger::new();
        a.record_execution(10, 1);
        let mut b = CostLedger::new();
        b.record_execution(5, 2);
        b.record_ops(100);
        a.merge(&b);
        assert_eq!(a.executions, 2);
        assert_eq!(a.shots, 15);
        assert_eq!(a.quantum_ops, 120);
    }

    #[test]
    fn shared_ledger_is_cloneable_view() {
        let shared = SharedLedger::new();
        let view = shared.clone();
        shared.record_execution(3, 2);
        view.record_ops(4);
        let snap = shared.snapshot();
        assert_eq!(snap.executions, 1);
        assert_eq!(snap.shots, 3);
        assert_eq!(snap.quantum_ops, 10);
    }

    #[test]
    fn ledger_round_trips_above_f64_precision() {
        let ledger = CostLedger {
            executions: 3,
            shots: (1u64 << 53) + 1, // not representable as f64
            quantum_ops: u64::MAX,
        };
        let json = serde::json::to_string(&ledger);
        let back: CostLedger = serde::json::from_str(&json).unwrap();
        assert_eq!(back, ledger);
    }

    #[test]
    fn display_is_informative() {
        let mut ledger = CostLedger::new();
        ledger.record_execution(2, 3);
        let text = ledger.to_string();
        assert!(text.contains("1 executions"));
        assert!(text.contains("2 shots"));
    }
}
