//! Spectral matrix functions and state-comparison metrics.
//!
//! These are the quantities MorphQPV's predicates and accuracy model are
//! built from: purity, fidelity, Hilbert–Schmidt accuracy, PSD projection
//! (used after noisy tomography), and the principal square root.

use crate::complex::C64;
use crate::eigen::eigh;
use crate::matrix::CMatrix;

/// `tr(A·B)` without forming the product: `Σ_{ij} A[i][j]·B[j][i]`.
///
/// O(d²) versus the O(d³) of `a.matmul(b).trace()`, and exactly the same
/// arithmetic per summand. This is the hot kernel behind [`expectation`] and
/// [`purity`], both called once per Pauli string in tomography loops.
///
/// # Panics
///
/// Panics unless `a` is `m×n` and `b` is `n×m` (so the product is square).
pub fn trace_product(a: &CMatrix, b: &CMatrix) -> C64 {
    assert_eq!(a.cols(), b.rows(), "trace_product inner dimension mismatch");
    assert_eq!(
        a.rows(),
        b.cols(),
        "trace_product is defined for square A·B"
    );
    let mut acc = C64::ZERO;
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            acc += a[(i, j)] * b[(j, i)];
        }
    }
    acc
}

/// Purity `tr(ρ²)` of a density matrix. Equals 1 exactly for pure states and
/// `1/d ≤ tr(ρ²) < 1` for mixed states.
///
/// # Panics
///
/// Panics if `rho` is not square.
pub fn purity(rho: &CMatrix) -> f64 {
    trace_product(rho, rho).re
}

/// The paper's purity-defect objective `‖ρρ† − ρ‖`, which is 0 iff `ρ` is a
/// pure state (for a valid density matrix).
pub fn purity_defect(rho: &CMatrix) -> f64 {
    (&rho.matmul(&rho.dagger()) - rho).frobenius_norm()
}

/// Principal square root of a positive semi-definite Hermitian matrix,
/// computed spectrally. Negative eigenvalues from rounding are clamped to 0.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn sqrt_psd(a: &CMatrix) -> CMatrix {
    eigh(a).map_spectrum(|x| x.max(0.0).sqrt())
}

/// Projects a Hermitian matrix onto the set of density matrices: clips
/// negative eigenvalues and renormalizes the trace to 1.
///
/// Used after finite-shot tomography, whose linear-inversion estimate is
/// Hermitian but often slightly non-PSD.
///
/// # Panics
///
/// Panics if `a` is not square or its positive part has zero trace.
pub fn project_to_density(a: &CMatrix) -> CMatrix {
    let eig = eigh(a);
    let clipped: Vec<f64> = eig.values.iter().map(|&x| x.max(0.0)).collect();
    let total: f64 = clipped.iter().sum();
    assert!(total > 1e-12, "matrix has no positive spectral weight");
    let n = a.rows();
    let mut out = CMatrix::zeros(n, n);
    for (k, &clipped_k) in clipped.iter().enumerate() {
        let w = clipped_k / total;
        if w == 0.0 {
            continue;
        }
        for r in 0..n {
            let vr = eig.vectors[(r, k)];
            for c in 0..n {
                out[(r, c)] += (vr * eig.vectors[(c, k)].conj()).scale(w);
            }
        }
    }
    out
}

/// Uhlmann fidelity `F(ρ, σ) = [tr √(√ρ σ √ρ)]²` between density matrices.
///
/// For a pure `ρ = |ψ⟩⟨ψ|` this reduces to `⟨ψ|σ|ψ⟩`.
///
/// # Panics
///
/// Panics if shapes differ or the matrices are not square.
pub fn fidelity(rho: &CMatrix, sigma: &CMatrix) -> f64 {
    assert_eq!(rho.rows(), sigma.rows(), "fidelity shape mismatch");
    let sr = sqrt_psd(rho);
    let inner = sr.matmul(sigma).matmul(&sr);
    let eig = eigh(&inner);
    let t: f64 = eig.values.iter().map(|&x| x.max(0.0).sqrt()).sum();
    (t * t).clamp(0.0, 1.0)
}

/// The paper's approximation-accuracy metric (Theorem 2 proof):
/// `acc = tr(√(ρ_approx · ρ_truth))²`, a fidelity-style overlap that is 1
/// when the approximation matches the ground truth.
///
/// The approximation may be non-PSD (it is a signed linear combination), so
/// the product spectrum is clamped at zero before the square root.
pub fn hs_accuracy(approx: &CMatrix, truth: &CMatrix) -> f64 {
    assert_eq!(approx.rows(), truth.rows(), "hs_accuracy shape mismatch");
    let prod = approx.matmul(truth);
    // For Hermitian A, B the product has real spectrum if either is PSD;
    // symmetrize to stay within the Hermitian eigensolver's domain.
    let sym = CMatrix::from_fn(prod.rows(), prod.cols(), |r, c| {
        (prod[(r, c)] + prod[(c, r)].conj()).scale(0.5)
    });
    let eig = eigh(&sym);
    let t: f64 = eig.values.iter().map(|&x| x.max(0.0).sqrt()).sum();
    (t * t).clamp(0.0, 1.0 + 1e-9).min(1.0)
}

/// Trace distance `½ tr|ρ − σ|`.
pub fn trace_distance(rho: &CMatrix, sigma: &CMatrix) -> f64 {
    let d = rho - sigma;
    let eig = eigh(&d);
    0.5 * eig.values.iter().map(|x| x.abs()).sum::<f64>()
}

/// Expectation `tr(O ρ).re` of a Hermitian observable on a state.
pub fn expectation(observable: &CMatrix, rho: &CMatrix) -> f64 {
    trace_product(observable, rho).re
}

/// Von Neumann entropy `−Σ λ log₂ λ` of a density matrix.
pub fn von_neumann_entropy(rho: &CMatrix) -> f64 {
    eigh(rho)
        .values
        .iter()
        .filter(|&&l| l > 1e-15)
        .map(|&l| -l * l.log2())
        .sum()
}

/// `true` if `rho` is a valid density matrix to tolerance `tol`: Hermitian,
/// unit trace, and PSD.
pub fn is_density_matrix(rho: &CMatrix, tol: f64) -> bool {
    if !rho.is_square() || !rho.is_hermitian(tol) {
        return false;
    }
    if (rho.trace().re - 1.0).abs() > tol || rho.trace().im.abs() > tol {
        return false;
    }
    eigh(rho).values.iter().all(|&l| l >= -tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;

    fn ket(v: &[C64]) -> CMatrix {
        CMatrix::outer(v, v)
    }

    fn zero() -> CMatrix {
        ket(&[C64::ONE, C64::ZERO])
    }

    fn one() -> CMatrix {
        ket(&[C64::ZERO, C64::ONE])
    }

    fn plus() -> CMatrix {
        let h = 1.0 / 2f64.sqrt();
        ket(&[C64::real(h), C64::real(h)])
    }

    fn maximally_mixed(d: usize) -> CMatrix {
        CMatrix::identity(d).scale_re(1.0 / d as f64)
    }

    #[test]
    fn purity_bounds() {
        assert!((purity(&zero()) - 1.0).abs() < 1e-12);
        assert!((purity(&maximally_mixed(2)) - 0.5).abs() < 1e-12);
        assert!(purity_defect(&plus()) < 1e-12);
        assert!(purity_defect(&maximally_mixed(2)) > 0.1);
    }

    #[test]
    fn sqrt_of_projector_is_projector() {
        let p = plus();
        assert!(sqrt_psd(&p).approx_eq(&p, 1e-9));
        let m = maximally_mixed(2);
        let s = sqrt_psd(&m);
        assert!(s.matmul(&s).approx_eq(&m, 1e-9));
    }

    #[test]
    fn fidelity_extremes() {
        assert!((fidelity(&zero(), &zero()) - 1.0).abs() < 1e-9);
        assert!(fidelity(&zero(), &one()) < 1e-9);
        // <0|+>² = 1/2.
        assert!((fidelity(&zero(), &plus()) - 0.5).abs() < 1e-9);
        // Symmetric.
        assert!((fidelity(&plus(), &zero()) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fidelity_with_mixed_state() {
        let m = maximally_mixed(2);
        // F(|0><0|, I/2) = 1/2.
        assert!((fidelity(&zero(), &m) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hs_accuracy_perfect_match() {
        assert!((hs_accuracy(&plus(), &plus()) - 1.0).abs() < 1e-9);
        assert!(hs_accuracy(&zero(), &one()) < 1e-9);
    }

    #[test]
    fn trace_distance_extremes() {
        assert!(trace_distance(&zero(), &zero()) < 1e-12);
        assert!((trace_distance(&zero(), &one()) - 1.0).abs() < 1e-9);
        assert!((trace_distance(&zero(), &maximally_mixed(2)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn projection_repairs_nonpsd_estimate() {
        // A tomography-style estimate with a small negative eigenvalue.
        let est = CMatrix::from_rows(&[
            &[C64::real(1.05), C64::real(0.1)],
            &[C64::real(0.1), C64::real(-0.05)],
        ]);
        let rho = project_to_density(&est);
        assert!(is_density_matrix(&rho, 1e-9));
    }

    #[test]
    fn trace_product_matches_matmul_trace() {
        let a = CMatrix::from_rows(&[
            &[C64::new(0.3, -0.2), C64::new(1.1, 0.4)],
            &[C64::new(-0.7, 0.9), C64::new(0.05, -1.3)],
        ]);
        let b = CMatrix::from_rows(&[
            &[C64::new(0.8, 0.1), C64::new(-0.6, 0.2)],
            &[C64::new(0.33, -0.5), C64::new(1.4, 0.7)],
        ]);
        let fast = trace_product(&a, &b);
        let slow = a.matmul(&b).trace();
        assert!((fast - slow).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_z() {
        let z = CMatrix::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, -C64::ONE]]);
        assert!((expectation(&z, &zero()) - 1.0).abs() < 1e-12);
        assert!((expectation(&z, &one()) + 1.0).abs() < 1e-12);
        assert!(expectation(&z, &plus()).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_pure_and_mixed() {
        assert!(von_neumann_entropy(&zero()) < 1e-9);
        assert!((von_neumann_entropy(&maximally_mixed(2)) - 1.0).abs() < 1e-9);
        assert!((von_neumann_entropy(&maximally_mixed(4)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn density_matrix_validation() {
        assert!(is_density_matrix(&plus(), 1e-9));
        assert!(is_density_matrix(&maximally_mixed(4), 1e-9));
        // Trace 2 is invalid.
        assert!(!is_density_matrix(&CMatrix::identity(2), 1e-9));
        // Non-Hermitian is invalid.
        let bad = CMatrix::from_rows(&[&[C64::ONE, C64::I], &[C64::I, C64::ZERO]]);
        assert!(!is_density_matrix(&bad, 1e-9));
    }
}
