//! Complex scalar arithmetic.
//!
//! The workspace deliberately avoids external numeric crates, so this module
//! provides the `f64`-backed complex number used by every quantum object in
//! the reproduction (state vectors, density matrices, gate unitaries).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::json::{FromValueError, Value};
use serde::{Deserialize, Serialize};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use morph_linalg::C64;
///
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// assert!((C64::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{iθ}`.
    ///
    /// ```
    /// use morph_linalg::C64;
    /// let z = C64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - C64::new(0.0, 2.0)).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}`, a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns `C64::ZERO` components as NaN/inf if `z == 0`, matching `f64`
    /// division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        C64::new(self.re / d, -self.im / d)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        C64::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        C64::from_polar(self.re.exp(), self.im)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64::new(self.re * s, self.im * s)
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality with absolute tolerance `tol` on the modulus of
    /// the difference.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self - other).abs() <= tol
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    // Complex division is multiplication by the reciprocal.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl Serialize for C64 {
    /// Encodes as a `[re, im]` pair of bit-exact `f64` values (see the
    /// serde shim's `f64` impl), so artifacts reload bit-identically.
    fn to_value(&self) -> Value {
        Value::Array(vec![self.re.to_value(), self.im.to_value()])
    }
}

impl<'de> Deserialize<'de> for C64 {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        match value.as_array() {
            Some([re, im]) => Ok(C64 {
                re: f64::from_value(re)?,
                im: f64::from_value(im)?,
            }),
            _ => Err(FromValueError::expected("[re, im] pair", value)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(2.0, -3.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert_eq!(z - z, C64::ZERO);
        assert!((z * z.recip() - C64::ONE).abs() < 1e-12);
    }

    #[test]
    fn conjugation_and_modulus() {
        let z = C64::new(1.0, 2.0);
        assert_eq!(z.conj(), C64::new(1.0, -2.0));
        assert!((z * z.conj()).im.abs() < 1e-15);
        assert!(((z * z.conj()).re - z.norm_sqr()).abs() < 1e-15);
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::new(-1.5, 0.7);
        let w = C64::from_polar(z.abs(), z.arg());
        assert!(z.approx_eq(w, 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (0.0, 2.0), (-1.0, 0.0), (3.0, -4.0)] {
            let z = C64::new(re, im);
            let s = z.sqrt();
            assert!((s * s).approx_eq(z, 1e-12), "sqrt failed for {z}");
        }
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = (C64::I * std::f64::consts::PI).exp();
        assert!(z.approx_eq(C64::new(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn division_matches_multiplication() {
        let a = C64::new(3.0, 1.0);
        let b = C64::new(-2.0, 5.0);
        assert!(((a / b) * b).approx_eq(a, 1e-12));
    }

    #[test]
    fn sum_of_phases() {
        let total: C64 = (0..4)
            .map(|k| C64::cis(k as f64 * std::f64::consts::FRAC_PI_2))
            .sum();
        assert!(total.abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", C64::ZERO).is_empty());
        assert!(format!("{}", C64::new(1.0, -1.0)).contains('-'));
    }
}
