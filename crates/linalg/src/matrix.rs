//! Dense complex matrices.
//!
//! [`CMatrix`] is the workhorse container of the reproduction: density
//! matrices, unitaries, and measurement operators are all `CMatrix` values.
//! Storage is row-major.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use serde::json::{FromValueError, Value};
use serde::{Deserialize, Serialize};

use crate::complex::C64;

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use morph_linalg::{CMatrix, C64};
///
/// let x = CMatrix::from_rows(&[
///     &[C64::ZERO, C64::ONE],
///     &[C64::ONE, C64::ZERO],
/// ]);
/// assert!(x.is_unitary(1e-12));
/// assert_eq!((&x * &x).trace(), C64::new(2.0, 0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl Serialize for CMatrix {
    /// Encodes as `{"rows": r, "cols": c, "data": [re, im, re, im, …]}`
    /// with each component a bit-exact `f64` — the morph-store artifact
    /// format for density matrices and unitaries.
    fn to_value(&self) -> Value {
        let mut flat = Vec::with_capacity(2 * self.data.len());
        for z in &self.data {
            flat.push(z.re.to_value());
            flat.push(z.im.to_value());
        }
        let mut map = std::collections::BTreeMap::new();
        map.insert("rows".to_string(), self.rows.to_value());
        map.insert("cols".to_string(), self.cols.to_value());
        map.insert("data".to_string(), Value::Array(flat));
        Value::Object(map)
    }
}

impl<'de> Deserialize<'de> for CMatrix {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        let rows = usize::from_value(value.require("rows")?)?;
        let cols = usize::from_value(value.require("cols")?)?;
        let flat = value
            .require("data")?
            .as_array()
            .ok_or_else(|| FromValueError::expected("component array", value))?;
        let entries = rows
            .checked_mul(cols)
            .filter(|&n| n <= (1 << 30) && flat.len() == 2 * n)
            .ok_or_else(|| {
                FromValueError::new(format!(
                    "matrix shape {rows}x{cols} inconsistent with {} components",
                    flat.len()
                ))
            })?;
        let mut data = Vec::with_capacity(entries);
        for pair in flat.chunks_exact(2) {
            data.push(C64 {
                re: f64::from_value(&pair[0])?,
                im: f64::from_value(&pair[1])?,
            });
        }
        Ok(CMatrix { rows, cols, data })
    }
}

impl CMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        CMatrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "inconsistent row length");
            data.extend_from_slice(row);
        }
        CMatrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        CMatrix { rows, cols, data }
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[C64]) -> Self {
        let n = diag.len();
        let mut m = CMatrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Rank-one outer product `v · w†` (column `v` times conjugated row `w`).
    pub fn outer(v: &[C64], w: &[C64]) -> Self {
        CMatrix::from_fn(v.len(), w.len(), |r, c| v[r] * w[c].conj())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Appends the canonical byte encoding (dimensions, then per-entry
    /// `f64` bit patterns, all little-endian) used by morph-store
    /// content-addressed fingerprinting.
    pub fn canonical_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.rows as u64).to_le_bytes());
        out.extend_from_slice(&(self.cols as u64).to_le_bytes());
        for z in &self.data {
            out.extend_from_slice(&z.re.to_bits().to_le_bytes());
            out.extend_from_slice(&z.im.to_bits().to_le_bytes());
        }
    }

    /// Raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<C64> {
        self.data
    }

    /// Conjugate transpose `A†`.
    pub fn dagger(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Plain transpose without conjugation.
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace of a non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius (L2) norm: `sqrt(Σ |a_ij|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry modulus (max norm).
    pub fn max_norm(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, s: C64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Scales every entry by a real factor.
    pub fn scale_re(&self, s: f64) -> CMatrix {
        self.scale(C64::real(s))
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == C64::ZERO {
                    continue;
                }
                let row_off = k * rhs.cols;
                let out_off = r * rhs.cols;
                for c in 0..rhs.cols {
                    out.data[out_off + c] += a * rhs.data[row_off + c];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![C64::ZERO; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let off = r * self.cols;
            let mut acc = C64::ZERO;
            for (&m, &x) in self.data[off..off + self.cols].iter().zip(v) {
                acc += m * x;
            }
            *slot = acc;
        }
        out
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMatrix) -> CMatrix {
        let rows = self.rows * rhs.rows;
        let cols = self.cols * rhs.cols;
        CMatrix::from_fn(rows, cols, |r, c| {
            self[(r / rhs.rows, c / rhs.cols)] * rhs[(r % rhs.rows, c % rhs.cols)]
        })
    }

    /// Hilbert–Schmidt inner product `tr(A† B)`.
    ///
    /// For Hermitian `A` and `B` the result is real up to rounding.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hs_inner(&self, rhs: &CMatrix) -> C64 {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "hs_inner shape mismatch"
        );
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// `tr(A† B).re` — convenience for Hermitian operands.
    pub fn hs_inner_re(&self, rhs: &CMatrix) -> f64 {
        self.hs_inner(rhs).re
    }

    /// `true` if `‖A − A†‖_max ≤ tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in r..self.cols {
                if (self[(r, c)] - self[(c, r)].conj()).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// `true` if `‖A†A − I‖_max ≤ tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let p = self.dagger().matmul(self);
        let id = CMatrix::identity(self.rows);
        (&p - &id).max_norm() <= tol
    }

    /// Approximate entry-wise equality with absolute tolerance `tol`.
    pub fn approx_eq(&self, rhs: &CMatrix, tol: f64) -> bool {
        self.rows == rhs.rows && self.cols == rhs.cols && (self - rhs).max_norm() <= tol
    }

    /// Returns the `(r, c)` entry, or `None` if out of range.
    pub fn get(&self, r: usize, c: usize) -> Option<C64> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Embeds `self` (acting on `k` qubits at positions `targets`) into an
    /// `n`-qubit operator via identity padding, with qubit 0 as the most
    /// significant bit of the index.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not `2^k × 2^k`, a target repeats, or a target is
    /// `≥ n`.
    pub fn embed(&self, targets: &[usize], n: usize) -> CMatrix {
        let k = targets.len();
        let dk = 1usize << k;
        assert_eq!(
            self.rows, dk,
            "operator dimension does not match target count"
        );
        assert!(self.is_square(), "embed requires a square operator");
        let mut seen = vec![false; n];
        for &t in targets {
            assert!(t < n, "target {t} out of range for {n} qubits");
            assert!(!seen[t], "duplicate target {t}");
            seen[t] = true;
        }
        let dn = 1usize << n;
        let mut out = CMatrix::zeros(dn, dn);
        // For every basis pair (row, col) of the big space, the entry is the
        // small-operator entry on the target bits when the non-target bits
        // agree, and zero otherwise.
        let rest: Vec<usize> = (0..n).filter(|q| !targets.contains(q)).collect();
        let dr = 1usize << rest.len();
        for tr in 0..dk {
            for tc in 0..dk {
                let v = self[(tr, tc)];
                if v == C64::ZERO {
                    continue;
                }
                for r_bits in 0..dr {
                    let mut row = 0usize;
                    let mut col = 0usize;
                    for (bit_idx, &q) in targets.iter().enumerate() {
                        // qubit 0 is the most significant bit
                        let shift = n - 1 - q;
                        let tb_r = (tr >> (k - 1 - bit_idx)) & 1;
                        let tb_c = (tc >> (k - 1 - bit_idx)) & 1;
                        row |= tb_r << shift;
                        col |= tb_c << shift;
                    }
                    for (bit_idx, &q) in rest.iter().enumerate() {
                        let shift = n - 1 - q;
                        let b = (r_bits >> (rest.len() - 1 - bit_idx)) & 1;
                        row |= b << shift;
                        col |= b << shift;
                    }
                    out[(row, col)] = v;
                }
            }
        }
        out
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = C64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub shape mismatch"
        );
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        self.matmul(rhs)
    }
}

impl Neg for &CMatrix {
    type Output = CMatrix;
    fn neg(self) -> CMatrix {
        self.scale_re(-1.0)
    }
}

impl AddAssign<&CMatrix> for CMatrix {
    fn add_assign(&mut self, rhs: &CMatrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += *b;
        }
    }
}

impl SubAssign<&CMatrix> for CMatrix {
    fn sub_assign(&mut self, rhs: &CMatrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= *b;
        }
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMatrix {
        CMatrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]])
    }

    fn pauli_y() -> CMatrix {
        CMatrix::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]])
    }

    fn pauli_z() -> CMatrix {
        CMatrix::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, -C64::ONE]])
    }

    #[test]
    fn identity_is_neutral() {
        let x = pauli_x();
        let id = CMatrix::identity(2);
        assert!(x.matmul(&id).approx_eq(&x, 0.0));
        assert!(id.matmul(&x).approx_eq(&x, 0.0));
    }

    #[test]
    fn pauli_algebra() {
        let (x, y, z) = (pauli_x(), pauli_y(), pauli_z());
        // XY = iZ
        assert!(x.matmul(&y).approx_eq(&z.scale(C64::I), 1e-15));
        // X² = I
        assert!(x.matmul(&x).approx_eq(&CMatrix::identity(2), 1e-15));
        // traceless
        assert!(x.trace().abs() < 1e-15);
        assert!(y.trace().abs() < 1e-15);
        assert!(z.trace().abs() < 1e-15);
    }

    #[test]
    fn dagger_involution() {
        let m = CMatrix::from_fn(3, 2, |r, c| C64::new(r as f64, c as f64 + 0.5));
        assert!(m.dagger().dagger().approx_eq(&m, 0.0));
        assert_eq!(m.dagger().rows(), 2);
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let z = pauli_z();
        let xz = x.kron(&z);
        assert_eq!(xz.rows(), 4);
        assert_eq!(xz[(0, 2)], C64::ONE);
        assert_eq!(xz[(1, 3)], -C64::ONE);
        // (X⊗Z)(X⊗Z) = I4
        assert!(xz.matmul(&xz).approx_eq(&CMatrix::identity(4), 1e-15));
    }

    #[test]
    fn hs_inner_orthogonality_of_paulis() {
        let paulis = [CMatrix::identity(2), pauli_x(), pauli_y(), pauli_z()];
        for (i, a) in paulis.iter().enumerate() {
            for (j, b) in paulis.iter().enumerate() {
                let v = a.hs_inner(b);
                if i == j {
                    assert!((v - C64::real(2.0)).abs() < 1e-14);
                } else {
                    assert!(v.abs() < 1e-14);
                }
            }
        }
    }

    #[test]
    fn hermiticity_and_unitarity_checks() {
        assert!(pauli_y().is_hermitian(1e-15));
        assert!(pauli_y().is_unitary(1e-15));
        let m = CMatrix::from_fn(2, 2, |r, c| C64::new((r + c) as f64, 1.0));
        assert!(!m.is_hermitian(1e-12));
    }

    #[test]
    fn embed_single_qubit_matches_kron() {
        let x = pauli_x();
        let id = CMatrix::identity(2);
        // Embed X on qubit 0 of 2 qubits (qubit 0 = MSB): X ⊗ I
        assert!(x.embed(&[0], 2).approx_eq(&x.kron(&id), 1e-15));
        // Qubit 1: I ⊗ X
        assert!(x.embed(&[1], 2).approx_eq(&id.kron(&x), 1e-15));
    }

    #[test]
    fn embed_two_qubit_reversed_targets_swaps_roles() {
        // CNOT with control=q0, target=q1 in the standard MSB convention.
        let cnot = CMatrix::from_rows(&[
            &[C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO],
            &[C64::ZERO, C64::ONE, C64::ZERO, C64::ZERO],
            &[C64::ZERO, C64::ZERO, C64::ZERO, C64::ONE],
            &[C64::ZERO, C64::ZERO, C64::ONE, C64::ZERO],
        ]);
        let direct = cnot.embed(&[0, 1], 2);
        assert!(direct.approx_eq(&cnot, 1e-15));
        // Reversing targets exchanges control/target.
        let flipped = cnot.embed(&[1, 0], 2);
        // |01> -> |11>, i.e. column 1 -> row 3.
        assert_eq!(flipped[(3, 1)], C64::ONE);
        assert_eq!(flipped[(1, 1)], C64::ZERO);
    }

    #[test]
    fn outer_product_projector() {
        let plus = [C64::real(1.0 / 2f64.sqrt()), C64::real(1.0 / 2f64.sqrt())];
        let p = CMatrix::outer(&plus, &plus);
        assert!((p.trace() - C64::ONE).abs() < 1e-14);
        assert!(p.matmul(&p).approx_eq(&p, 1e-14));
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = CMatrix::from_fn(3, 3, |r, c| C64::new((r * 3 + c) as f64, 0.0));
        let v = [C64::ONE, C64::I, C64::real(2.0)];
        let as_mat = CMatrix::from_vec(3, 1, v.to_vec());
        let lhs = m.matvec(&v);
        let rhs = m.matmul(&as_mat);
        for i in 0..3 {
            assert!(lhs[i].approx_eq(rhs[(i, 0)], 1e-14));
        }
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn from_diag_and_trace() {
        let d = CMatrix::from_diag(&[C64::ONE, C64::real(2.0), C64::I]);
        assert_eq!(d.trace(), C64::new(3.0, 1.0));
        assert_eq!(d[(1, 1)], C64::real(2.0));
        assert_eq!(d[(0, 1)], C64::ZERO);
    }
}
