//! Hermitian eigendecomposition via the cyclic complex Jacobi method.
//!
//! Density matrices are Hermitian and at most a few hundred rows in the
//! experiments, so a robust O(n³)-per-sweep Jacobi solver is both simple and
//! fast enough. Eigenvalues come back sorted in descending order together
//! with the unitary of column eigenvectors.

use crate::complex::C64;
use crate::matrix::CMatrix;

/// Result of a Hermitian eigendecomposition: `A = V · diag(λ) · V†`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, sorted in descending order. Real because `A` is Hermitian.
    pub values: Vec<f64>,
    /// Unitary matrix whose `k`-th column is the eigenvector of `values[k]`.
    pub vectors: CMatrix,
}

impl EigenDecomposition {
    /// Reconstructs `V · diag(λ) · V†`; useful for testing and for spectral
    /// functions of the matrix.
    pub fn reconstruct(&self) -> CMatrix {
        reconstruct_with(&self.values, &self.vectors, |x| x)
    }

    /// Applies `f` to the spectrum and reconstructs `V · diag(f(λ)) · V†`.
    pub fn map_spectrum(&self, f: impl Fn(f64) -> f64) -> CMatrix {
        reconstruct_with(&self.values, &self.vectors, f)
    }

    /// Returns the `k`-th eigenvector as an owned column.
    pub fn vector(&self, k: usize) -> Vec<C64> {
        (0..self.vectors.rows())
            .map(|r| self.vectors[(r, k)])
            .collect()
    }
}

fn reconstruct_with(values: &[f64], vectors: &CMatrix, f: impl Fn(f64) -> f64) -> CMatrix {
    let n = values.len();
    let mut out = CMatrix::zeros(n, n);
    for k in 0..n {
        let fv = f(values[k]);
        if fv == 0.0 {
            continue;
        }
        for r in 0..n {
            let vr = vectors[(r, k)];
            if vr == C64::ZERO {
                continue;
            }
            for c in 0..n {
                out[(r, c)] += (vr * vectors[(c, k)].conj()).scale(fv);
            }
        }
    }
    out
}

/// Computes the eigendecomposition of a Hermitian matrix.
///
/// The input is symmetrized as `(A + A†)/2` first, so small Hermiticity
/// violations from floating-point noise are tolerated.
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// # Examples
///
/// ```
/// use morph_linalg::{CMatrix, C64, eigh};
///
/// let z = CMatrix::from_rows(&[
///     &[C64::ONE, C64::ZERO],
///     &[C64::ZERO, -C64::ONE],
/// ]);
/// let eig = eigh(&z);
/// assert!((eig.values[0] - 1.0).abs() < 1e-12);
/// assert!((eig.values[1] + 1.0).abs() < 1e-12);
/// ```
pub fn eigh(a: &CMatrix) -> EigenDecomposition {
    assert!(a.is_square(), "eigh requires a square matrix");
    let n = a.rows();
    // Symmetrize to guard against rounding noise.
    let mut m = CMatrix::from_fn(n, n, |r, c| (a[(r, c)] + a[(c, r)].conj()).scale(0.5));
    let mut v = CMatrix::identity(n);

    let tol = 1e-14 * m.frobenius_norm().max(1.0);
    const MAX_SWEEPS: usize = 100;

    for _ in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&m);
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                jacobi_rotate(&mut m, &mut v, p, q);
            }
        }
    }

    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)].re, i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let values: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let vectors = CMatrix::from_fn(n, n, |r, c| v[(r, pairs[c].1)]);
    EigenDecomposition { values, vectors }
}

fn off_diagonal_norm(m: &CMatrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for r in 0..n {
        for c in 0..n {
            if r != c {
                s += m[(r, c)].norm_sqr();
            }
        }
    }
    s.sqrt()
}

/// One complex Jacobi rotation zeroing `m[(p, q)]`, applied two-sided to `m`
/// and accumulated one-sided into `v`.
fn jacobi_rotate(m: &mut CMatrix, v: &mut CMatrix, p: usize, q: usize) {
    let apq = m[(p, q)];
    if apq.abs() < 1e-300 {
        return;
    }
    let app = m[(p, p)].re;
    let aqq = m[(q, q)].re;

    // Phase that makes the pivot real and positive: apq = |apq| e^{iφ}.
    let phi = apq.arg();
    let abs_apq = apq.abs();

    // Real Jacobi angle for the 2×2 block [[app, |apq|], [|apq|, aqq]].
    let theta = 0.5 * (2.0 * abs_apq).atan2(app - aqq);
    let c = theta.cos();
    let s = theta.sin();

    // Column rotation: G acts on columns p, q with
    //   new_p =  c·e^{-iφ/…}·p − s·…·q — we use the standard form below.
    let e_pos = C64::cis(phi); // e^{iφ}

    let n = m.rows();
    // Apply from the right: M ← M · G where
    //   G[p,p]=c, G[q,p]=s·e^{-iφ}, G[p,q]=−s·e^{iφ}, G[q,q]=c.
    for r in 0..n {
        let mrp = m[(r, p)];
        let mrq = m[(r, q)];
        m[(r, p)] = mrp.scale(c) + mrq * e_pos.conj().scale(s);
        m[(r, q)] = mrq.scale(c) - mrp * e_pos.scale(s);
    }
    // Apply from the left: M ← G† · M.
    for cidx in 0..n {
        let mpc = m[(p, cidx)];
        let mqc = m[(q, cidx)];
        m[(p, cidx)] = mpc.scale(c) + mqc * e_pos.scale(s);
        m[(q, cidx)] = mqc.scale(c) - mpc * e_pos.conj().scale(s);
    }
    // Accumulate eigenvectors: V ← V · G.
    for r in 0..n {
        let vrp = v[(r, p)];
        let vrq = v[(r, q)];
        v[(r, p)] = vrp.scale(c) + vrq * e_pos.conj().scale(s);
        v[(r, q)] = vrq.scale(c) - vrp * e_pos.scale(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_hermitian(n: usize, rng: &mut StdRng) -> CMatrix {
        let raw = CMatrix::from_fn(n, n, |_, _| {
            C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        CMatrix::from_fn(n, n, |r, c| (raw[(r, c)] + raw[(c, r)].conj()).scale(0.5))
    }

    #[test]
    fn diagonal_matrix_is_its_own_spectrum() {
        let d = CMatrix::from_diag(&[C64::real(3.0), C64::real(-1.0), C64::real(0.5)]);
        let eig = eigh(&d);
        assert!((eig.values[0] - 3.0).abs() < 1e-12);
        assert!((eig.values[1] - 0.5).abs() < 1e-12);
        assert!((eig.values[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_y_spectrum() {
        let y = CMatrix::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]]);
        let eig = eigh(&y);
        assert!((eig.values[0] - 1.0).abs() < 1e-10);
        assert!((eig.values[1] + 1.0).abs() < 1e-10);
        assert!(eig.vectors.is_unitary(1e-10));
    }

    #[test]
    fn reconstruction_roundtrip_random() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2usize, 3, 5, 8] {
            let a = random_hermitian(n, &mut rng);
            let eig = eigh(&a);
            assert!(
                eig.reconstruct().approx_eq(&a, 1e-9),
                "reconstruction failed for n={n}"
            );
            assert!(eig.vectors.is_unitary(1e-9));
            // Sorted descending.
            for w in eig.values.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn eigenvector_equation_holds() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_hermitian(6, &mut rng);
        let eig = eigh(&a);
        for k in 0..6 {
            let v = eig.vector(k);
            let av = a.matvec(&v);
            for i in 0..6 {
                let expect = v[i].scale(eig.values[k]);
                assert!(av[i].approx_eq(expect, 1e-8), "Av != λv at k={k}, i={i}");
            }
        }
    }

    #[test]
    fn map_spectrum_square_of_projector() {
        // P = |+><+| has eigenvalues {1, 0}; squaring the spectrum is a no-op.
        let h = 1.0 / 2f64.sqrt();
        let plus = [C64::real(h), C64::real(h)];
        let p = CMatrix::outer(&plus, &plus);
        let eig = eigh(&p);
        assert!(eig.map_spectrum(|x| x * x).approx_eq(&p, 1e-10));
    }

    #[test]
    fn trace_preserved_by_spectrum() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_hermitian(7, &mut rng);
        let eig = eigh(&a);
        let spectral_sum: f64 = eig.values.iter().sum();
        assert!((spectral_sum - a.trace().re).abs() < 1e-9);
    }
}
