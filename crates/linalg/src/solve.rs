//! Linear solvers: complex LU with partial pivoting, real symmetric solves,
//! and the Gram-system least squares used by the isomorphism-based
//! approximation to decompose an input state over the sampled basis.

use crate::complex::C64;
use crate::matrix::CMatrix;

/// Error produced by the solvers in this module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The coefficient matrix is singular to working precision.
    Singular,
    /// Input dimensions do not line up.
    DimensionMismatch,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Singular => write!(f, "matrix is singular to working precision"),
            SolveError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Solves the complex linear system `A x = b` by LU with partial pivoting.
///
/// # Errors
///
/// Returns [`SolveError::DimensionMismatch`] if `A` is not square or `b` has
/// the wrong length, and [`SolveError::Singular`] if a pivot underflows.
///
/// # Examples
///
/// ```
/// use morph_linalg::{CMatrix, C64, solve};
///
/// let a = CMatrix::from_rows(&[
///     &[C64::real(2.0), C64::real(1.0)],
///     &[C64::real(1.0), C64::real(3.0)],
/// ]);
/// let x = solve(&a, &[C64::real(3.0), C64::real(4.0)])?;
/// assert!((x[0] - C64::real(1.0)).abs() < 1e-12);
/// assert!((x[1] - C64::real(1.0)).abs() < 1e-12);
/// # Ok::<(), morph_linalg::SolveError>(())
/// ```
pub fn solve(a: &CMatrix, b: &[C64]) -> Result<Vec<C64>, SolveError> {
    if !a.is_square() || b.len() != a.rows() {
        return Err(SolveError::DimensionMismatch);
    }
    let n = a.rows();
    let mut lu: Vec<C64> = a.as_slice().to_vec();
    let mut x: Vec<C64> = b.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();

    for k in 0..n {
        // Partial pivot on modulus.
        let mut best = k;
        let mut best_abs = lu[perm[k] * n + k].abs();
        for r in (k + 1)..n {
            let v = lu[perm[r] * n + k].abs();
            if v > best_abs {
                best = r;
                best_abs = v;
            }
        }
        if best_abs < 1e-300 {
            return Err(SolveError::Singular);
        }
        perm.swap(k, best);
        let pk = perm[k];
        let pivot = lu[pk * n + k];
        for &pr in &perm[(k + 1)..n] {
            let factor = lu[pr * n + k] / pivot;
            lu[pr * n + k] = factor;
            for c in (k + 1)..n {
                let sub = factor * lu[pk * n + c];
                lu[pr * n + c] -= sub;
            }
        }
    }

    // Forward substitution on the permuted rows.
    let mut y = vec![C64::ZERO; n];
    for r in 0..n {
        let mut acc = x[perm[r]];
        for c in 0..r {
            acc -= lu[perm[r] * n + c] * y[c];
        }
        y[r] = acc;
    }
    // Back substitution.
    for r in (0..n).rev() {
        let mut acc = y[r];
        for c in (r + 1)..n {
            acc -= lu[perm[r] * n + c] * x[c];
        }
        x[r] = acc / lu[perm[r] * n + r];
    }
    Ok(x)
}

/// Solves a real symmetric system `G x = b` (used for Gram systems), falling
/// back to Tikhonov regularization `(G + λI) x = b` when `G` is singular.
///
/// Gram matrices of nearly linearly dependent sample states are frequently
/// rank-deficient; the regularized solve returns the minimum-norm-flavored
/// solution instead of failing.
///
/// # Errors
///
/// Returns [`SolveError::DimensionMismatch`] on shape mismatch. Singular
/// systems do not error — they are regularized.
pub fn solve_sym_regularized(g: &[Vec<f64>], b: &[f64]) -> Result<Vec<f64>, SolveError> {
    let n = g.len();
    if b.len() != n || g.iter().any(|row| row.len() != n) {
        return Err(SolveError::DimensionMismatch);
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let scale = g
        .iter()
        .flat_map(|row| row.iter())
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(1e-12);
    let mut lambda = 0.0;
    for _ in 0..6 {
        if let Some(x) = solve_real_sym(g, b, lambda) {
            return Ok(x);
        }
        lambda = if lambda == 0.0 {
            scale * 1e-10
        } else {
            lambda * 100.0
        };
    }
    // Heavy regularization always succeeds for finite inputs.
    Ok(solve_real_sym(g, b, scale * 1e-2).unwrap_or_else(|| vec![0.0; n]))
}

/// Gaussian elimination with partial pivoting for `（G + λI) x = b`; returns
/// `None` when a pivot underflows.
fn solve_real_sym(g: &[Vec<f64>], b: &[f64], lambda: f64) -> Option<Vec<f64>> {
    let n = g.len();
    let mut a: Vec<f64> = Vec::with_capacity(n * n);
    for (r, row) in g.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            a.push(if r == c { v + lambda } else { v });
        }
    }
    let mut x = b.to_vec();
    for k in 0..n {
        let mut best = k;
        let mut best_abs = a[k * n + k].abs();
        for r in (k + 1)..n {
            if a[r * n + k].abs() > best_abs {
                best = r;
                best_abs = a[r * n + k].abs();
            }
        }
        if best_abs < 1e-12 {
            return None;
        }
        if best != k {
            for c in 0..n {
                a.swap(k * n + c, best * n + c);
            }
            x.swap(k, best);
        }
        let pivot = a[k * n + k];
        for r in (k + 1)..n {
            let f = a[r * n + k] / pivot;
            if f == 0.0 {
                continue;
            }
            for c in k..n {
                a[r * n + c] -= f * a[k * n + c];
            }
            x[r] -= f * x[k];
        }
    }
    for r in (0..n).rev() {
        let mut acc = x[r];
        for c in (r + 1)..n {
            acc -= a[r * n + c] * x[c];
        }
        x[r] = acc / a[r * n + r];
    }
    Some(x)
}

/// Least-squares decomposition of a Hermitian target over a set of Hermitian
/// basis matrices: finds real `α` minimizing `‖ target − Σ αᵢ basisᵢ ‖_F`.
///
/// This is the core numerical primitive of MorphQPV's isomorphism-based
/// approximation (Theorem 1): the sampled input states are the basis, the
/// unknown program input is the target, and the same `α` then reconstructs
/// the tracepoint state.
///
/// Solved via the normal equations with the (real) Gram matrix
/// `G_ij = tr(basisᵢ† basisⱼ).re`, regularized when rank-deficient.
///
/// # Errors
///
/// Returns [`SolveError::DimensionMismatch`] if basis and target shapes
/// disagree or the basis is empty.
pub fn decompose_hermitian(basis: &[CMatrix], target: &CMatrix) -> Result<Vec<f64>, SolveError> {
    if basis.is_empty() {
        return Err(SolveError::DimensionMismatch);
    }
    for m in basis {
        if m.rows() != target.rows() || m.cols() != target.cols() {
            return Err(SolveError::DimensionMismatch);
        }
    }
    let n = basis.len();
    let mut g = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in i..n {
            let v = basis[i].hs_inner_re(&basis[j]);
            g[i][j] = v;
            g[j][i] = v;
        }
    }
    let b: Vec<f64> = basis.iter().map(|m| m.hs_inner_re(target)).collect();
    solve_sym_regularized(&g, &b)
}

/// Reconstructs `Σ αᵢ basisᵢ`.
///
/// # Panics
///
/// Panics if `alphas.len() != basis.len()` or the basis is empty.
pub fn recombine(basis: &[CMatrix], alphas: &[f64]) -> CMatrix {
    assert_eq!(basis.len(), alphas.len(), "coefficient count mismatch");
    assert!(!basis.is_empty(), "empty basis");
    let mut out = CMatrix::zeros(basis[0].rows(), basis[0].cols());
    for (m, &a) in basis.iter().zip(alphas) {
        if a == 0.0 {
            continue;
        }
        out += &m.scale_re(a);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn complex_solve_roundtrip() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 4, 7] {
            let a = CMatrix::from_fn(n, n, |_, _| {
                C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
            });
            let x_true: Vec<C64> = (0..n)
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let b = a.matvec(&x_true);
            let x = solve(&a, &b).expect("random dense matrix should be nonsingular");
            for i in 0..n {
                assert!(x[i].approx_eq(x_true[i], 1e-9), "n={n}, i={i}");
            }
        }
    }

    #[test]
    fn singular_matrix_reports_error() {
        let a = CMatrix::from_rows(&[&[C64::ONE, C64::ONE], &[C64::ONE, C64::ONE]]);
        assert_eq!(solve(&a, &[C64::ONE, C64::ZERO]), Err(SolveError::Singular));
    }

    #[test]
    fn dimension_mismatch_reported() {
        let a = CMatrix::zeros(2, 3);
        assert_eq!(
            solve(&a, &[C64::ONE, C64::ZERO]),
            Err(SolveError::DimensionMismatch)
        );
        let sq = CMatrix::identity(2);
        assert_eq!(solve(&sq, &[C64::ONE]), Err(SolveError::DimensionMismatch));
    }

    #[test]
    fn symmetric_solver_exact_case() {
        let g = vec![vec![4.0, 1.0], vec![1.0, 3.0]];
        let x = solve_sym_regularized(&g, &[1.0, 2.0]).unwrap();
        // Solve manually: [4 1; 1 3] x = [1; 2] => x = [1/11, 7/11].
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-10);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-10);
    }

    #[test]
    fn symmetric_solver_survives_singular_gram() {
        // Rank-1 Gram (two identical basis elements): must not error.
        let g = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let x = solve_sym_regularized(&g, &[1.0, 1.0]).unwrap();
        // Any split with x0 + x1 ≈ 1 is acceptable under regularization.
        assert!((x[0] + x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn decompose_exact_member_of_span() {
        // Single-qubit: ρ = 0.3|0><0| + 0.7|+><+| decomposed over those two.
        let zero = CMatrix::outer(&[C64::ONE, C64::ZERO], &[C64::ONE, C64::ZERO]);
        let h = 1.0 / 2f64.sqrt();
        let plus = CMatrix::outer(&[C64::real(h), C64::real(h)], &[C64::real(h), C64::real(h)]);
        let target = &zero.scale_re(0.3) + &plus.scale_re(0.7);
        let alphas = decompose_hermitian(&[zero.clone(), plus.clone()], &target).unwrap();
        assert!((alphas[0] - 0.3).abs() < 1e-9);
        assert!((alphas[1] - 0.7).abs() < 1e-9);
        let rec = recombine(&[zero, plus], &alphas);
        assert!(rec.approx_eq(&target, 1e-9));
    }

    #[test]
    fn decompose_projects_outside_span() {
        // Basis spans only diagonal matrices; target has off-diagonals.
        let zero = CMatrix::outer(&[C64::ONE, C64::ZERO], &[C64::ONE, C64::ZERO]);
        let one = CMatrix::outer(&[C64::ZERO, C64::ONE], &[C64::ZERO, C64::ONE]);
        let h = 1.0 / 2f64.sqrt();
        let plus = CMatrix::outer(&[C64::real(h), C64::real(h)], &[C64::real(h), C64::real(h)]);
        let alphas = decompose_hermitian(&[zero.clone(), one.clone()], &plus).unwrap();
        let rec = recombine(&[zero, one], &alphas);
        // Projection keeps the diagonal 1/2, 1/2.
        assert!((rec[(0, 0)].re - 0.5).abs() < 1e-9);
        assert!((rec[(1, 1)].re - 0.5).abs() < 1e-9);
        assert!(rec[(0, 1)].abs() < 1e-9);
    }

    #[test]
    fn decompose_dimension_checks() {
        let id2 = CMatrix::identity(2);
        let id4 = CMatrix::identity(4);
        assert_eq!(
            decompose_hermitian(&[id2], &id4),
            Err(SolveError::DimensionMismatch)
        );
        assert_eq!(
            decompose_hermitian(&[], &id4),
            Err(SolveError::DimensionMismatch)
        );
    }
}
