//! Complex linear algebra substrate for the MorphQPV reproduction.
//!
//! Everything quantum in this workspace — state vectors, density matrices,
//! unitaries, measurement operators — is built on the types in this crate:
//!
//! - [`C64`]: `f64`-backed complex scalar.
//! - [`CMatrix`]: dense row-major complex matrix with quantum-flavored
//!   helpers (`dagger`, `kron`, `hs_inner`, `embed`).
//! - [`eigh`]: Hermitian eigendecomposition (cyclic complex Jacobi).
//! - [`solve`] / [`decompose_hermitian`]: linear and Gram-system solvers;
//!   the latter is the numerical heart of MorphQPV's isomorphism-based
//!   approximation.
//! - Spectral metrics: [`fidelity`], [`hs_accuracy`], [`purity`],
//!   [`trace_distance`], [`project_to_density`].
//!
//! # Examples
//!
//! Decompose a state over sampled basis states (Theorem 1's first step):
//!
//! ```
//! use morph_linalg::{C64, CMatrix, decompose_hermitian, recombine};
//!
//! let zero = CMatrix::outer(&[C64::ONE, C64::ZERO], &[C64::ONE, C64::ZERO]);
//! let one = CMatrix::outer(&[C64::ZERO, C64::ONE], &[C64::ZERO, C64::ONE]);
//! let mixed = &zero.scale_re(0.25) + &one.scale_re(0.75);
//!
//! let alphas = decompose_hermitian(&[zero.clone(), one.clone()], &mixed)?;
//! assert!((alphas[0] - 0.25).abs() < 1e-9);
//! let rebuilt = recombine(&[zero, one], &alphas);
//! assert!(rebuilt.approx_eq(&mixed, 1e-9));
//! # Ok::<(), morph_linalg::SolveError>(())
//! ```

mod complex;
mod eigen;
mod func;
mod matrix;
mod solve;

pub use complex::C64;
pub use eigen::{eigh, EigenDecomposition};
pub use func::{
    expectation, fidelity, hs_accuracy, is_density_matrix, project_to_density, purity,
    purity_defect, sqrt_psd, trace_distance, trace_product, von_neumann_entropy,
};
pub use matrix::CMatrix;
pub use solve::{decompose_hermitian, recombine, solve, solve_sym_regularized, SolveError};
