//! Mixed-state simulation via dense density matrices.
//!
//! Used for small registers where exact noisy evolution matters (Table 4's
//! shot-based baselines, Fig 14's noisy-characterization study). Large
//! registers stay in [`crate::StateVector`] and expose tracepoint states via
//! reduced density matrices.
//!
//! # Qubit-local kernels
//!
//! Gates and single-qubit channels never build the full `2^n × 2^n`
//! operator. `ρ ← U ρ U†` for a k-qubit unitary factors into a *row pass*
//! (`ρ ← U ρ`: mix `2^k`-tuples of rows, column by column) followed by a
//! *column pass* (`ρ ← ρ U†`: per row, mix `2^k`-tuples of columns), each an
//! O(4^n) sweep touching only the affected amplitude blocks — versus O(8^n)
//! flops and an O(4^n) allocation for the dense-matmul path, which survives
//! as [`DensityMatrix::evolve`] and serves as the test oracle. Diagonal
//! gates (Z, S, T, RZ, CZ, CPhase, CRZ, MCZ, …) collapse further into one
//! elementwise pass `ρ[r][c] ← d_r · ρ[r][c] · d̄_c`. The standard Pauli
//! channels apply in closed form on 2×2 blocks with no Kraus operators at
//! all.
//!
//! Registers at or above the [`MORPH_DENSITY_PAR_THRESHOLD`-controlled
//! threshold](crate::DensityMatrix::apply_gate) fan the sweeps out over row
//! chunks with `morph_parallel::parallel_chunks_mut`; every element's new
//! value is a pure function of the old matrix, so results are bit-identical
//! at any worker count.

use std::sync::OnceLock;

use morph_linalg::{eigh, CMatrix, C64};
use rand::Rng;

use crate::bits;
use crate::gate::{matrices, Gate};
use crate::state::StateVector;

/// Default qubit count at which local kernels start fanning out over row
/// chunks; below it a single O(4^n) sweep is cheaper than thread dispatch.
const DEFAULT_PARALLEL_THRESHOLD: usize = 10;

/// Threshold resolved once from `MORPH_DENSITY_PAR_THRESHOLD`.
fn parallel_threshold() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        morph_trace::env_knob("MORPH_DENSITY_PAR_THRESHOLD").unwrap_or(DEFAULT_PARALLEL_THRESHOLD)
    })
}

/// Worker request for an `n`-qubit kernel: serial below the threshold, all
/// cores (`0`) at or above it.
fn auto_workers(n_qubits: usize) -> usize {
    if n_qubits >= parallel_threshold() {
        0
    } else {
        1
    }
}

/// Rows per chunk for passes that parallelize over arbitrary row ranges.
fn row_chunk_len(d: usize, workers: usize) -> usize {
    let w = morph_parallel::effective_workers(workers);
    d.div_ceil(4 * w).max(1)
}

/// [`morph_parallel::parallel_chunks_mut`] with telemetry: records how many
/// chunks each multi-worker sweep fans out into. The counter only fires
/// with the recorder enabled and never touches the data, so sweeps remain
/// bit-identical at every worker count.
fn traced_chunks_mut<F>(workers: usize, data: &mut [C64], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [C64]) + Sync,
{
    if morph_trace::enabled() && morph_parallel::effective_workers(workers) > 1 {
        let chunks = data.len().div_ceil(chunk_len.max(1)) as u64;
        morph_trace::counter("qsim/density_parallel_chunks", chunks);
        morph_trace::counter("qsim/density_parallel_sweeps", 1);
    }
    morph_parallel::parallel_chunks_mut(workers, data, chunk_len, f);
}

/// Row pass `ρ ← U ρ` then column pass `ρ ← ρ U†` for a 1-qubit unitary at
/// bit position `shift`. `data` is the row-major `d × d` matrix.
fn kernel_1q(data: &mut [C64], d: usize, shift: usize, u: &CMatrix, workers: usize) {
    let m = 1usize << shift;
    let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
    // Row pass: the pair (r, r | m) lives inside one 2m-row super-block.
    traced_chunks_mut(workers, data, 2 * m * d, |_, chunk| {
        for r in 0..m {
            let off0 = r * d;
            let off1 = (r + m) * d;
            for c in 0..d {
                let a0 = chunk[off0 + c];
                let a1 = chunk[off1 + c];
                chunk[off0 + c] = u00 * a0 + u01 * a1;
                chunk[off1 + c] = u10 * a0 + u11 * a1;
            }
        }
    });
    // Column pass: every row is independent; new[j] = Σ_k old[k]·conj(u[j][k]).
    let (c00, c01, c10, c11) = (u00.conj(), u01.conj(), u10.conj(), u11.conj());
    let rows = row_chunk_len(d, workers);
    traced_chunks_mut(workers, data, rows * d, |_, chunk| {
        for row in chunk.chunks_mut(d) {
            for base in 0..d / 2 {
                let col0 = bits::deposit(base, shift);
                let col1 = col0 | m;
                let b0 = row[col0];
                let b1 = row[col1];
                row[col0] = b0 * c00 + b1 * c01;
                row[col1] = b0 * c10 + b1 * c11;
            }
        }
    });
}

/// Two-qubit conjugation kernel; `sa` is the bit position of the unitary's
/// more significant qubit, `sb` the less significant one (gate order).
fn kernel_2q(data: &mut [C64], d: usize, sa: usize, sb: usize, u: &CMatrix, workers: usize) {
    let ma = 1usize << sa;
    let mb = 1usize << sb;
    let (lo, hi) = (sa.min(sb), sa.max(sb));
    let mut uu = [[C64::ZERO; 4]; 4];
    for r in 0..4 {
        for c in 0..4 {
            uu[r][c] = u[(r, c)];
        }
    }
    // Row pass over super-blocks spanning the higher of the two bits.
    let block_rows = 1usize << (hi + 1);
    traced_chunks_mut(workers, data, block_rows * d, |_, chunk| {
        for lb in 0..block_rows / 4 {
            let r00 = bits::deposit(bits::deposit(lb, lo), hi);
            let rows = [r00, r00 | mb, r00 | ma, r00 | ma | mb];
            for c in 0..d {
                let a = [
                    chunk[rows[0] * d + c],
                    chunk[rows[1] * d + c],
                    chunk[rows[2] * d + c],
                    chunk[rows[3] * d + c],
                ];
                for (j, &row_idx) in rows.iter().enumerate() {
                    let mut acc = C64::ZERO;
                    for (k, &ak) in a.iter().enumerate() {
                        acc += uu[j][k] * ak;
                    }
                    chunk[row_idx * d + c] = acc;
                }
            }
        }
    });
    // Column pass: per row, mix the column quad with conj(u).
    let rows_per_chunk = row_chunk_len(d, workers);
    traced_chunks_mut(workers, data, rows_per_chunk * d, |_, chunk| {
        for row in chunk.chunks_mut(d) {
            for base in 0..d / 4 {
                let c00 = bits::deposit(bits::deposit(base, lo), hi);
                let cols = [c00, c00 | mb, c00 | ma, c00 | ma | mb];
                let b = [row[cols[0]], row[cols[1]], row[cols[2]], row[cols[3]]];
                for (j, &col_idx) in cols.iter().enumerate() {
                    let mut acc = C64::ZERO;
                    for (k, &bk) in b.iter().enumerate() {
                        acc += bk * uu[j][k].conj();
                    }
                    row[col_idx] = acc;
                }
            }
        }
    });
}

/// Controlled-1q conjugation: the 2×2 payload acts on the target bit only on
/// rows/columns where every control bit is set. The row pass is a serial
/// half-sweep; the column pass parallelizes over rows.
fn kernel_controlled(
    data: &mut [C64],
    d: usize,
    cmask: usize,
    tshift: usize,
    u: &CMatrix,
    workers: usize,
) {
    let tm = 1usize << tshift;
    let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
    let mut fixed: Vec<usize> = (0..usize::BITS as usize)
        .filter(|&s| cmask & (1 << s) != 0)
        .collect();
    fixed.push(tshift);
    fixed.sort_unstable();
    let n_base = d >> fixed.len();
    // Row pass: rows with controls set, paired on the target bit.
    for base in 0..n_base {
        let r0 = bits::deposit_multi(base, &fixed) | cmask;
        let r1 = r0 | tm;
        for c in 0..d {
            let a0 = data[r0 * d + c];
            let a1 = data[r1 * d + c];
            data[r0 * d + c] = u00 * a0 + u01 * a1;
            data[r1 * d + c] = u10 * a0 + u11 * a1;
        }
    }
    // Column pass.
    let (c00, c01, c10, c11) = (u00.conj(), u01.conj(), u10.conj(), u11.conj());
    let rows = row_chunk_len(d, workers);
    traced_chunks_mut(workers, data, rows * d, |_, chunk| {
        for row in chunk.chunks_mut(d) {
            for base in 0..n_base {
                let col0 = bits::deposit_multi(base, &fixed) | cmask;
                let col1 = col0 | tm;
                let b0 = row[col0];
                let b1 = row[col1];
                row[col0] = b0 * c00 + b1 * c01;
                row[col1] = b0 * c10 + b1 * c11;
            }
        }
    });
}

/// SWAP conjugation: exchange rows, then columns, whose two bits differ.
fn kernel_swap(data: &mut [C64], d: usize, sa: usize, sb: usize, workers: usize) {
    let ma = 1usize << sa;
    let mb = 1usize << sb;
    let (lo, hi) = (sa.min(sb), sa.max(sb));
    for base in 0..d / 4 {
        let r00 = bits::deposit(bits::deposit(base, lo), hi);
        let (ra, rb) = (r00 | ma, r00 | mb);
        for c in 0..d {
            data.swap(ra * d + c, rb * d + c);
        }
    }
    let rows = row_chunk_len(d, workers);
    traced_chunks_mut(workers, data, rows * d, |_, chunk| {
        for row in chunk.chunks_mut(d) {
            for base in 0..d / 4 {
                let c00 = bits::deposit(bits::deposit(base, lo), hi);
                row.swap(c00 | ma, c00 | mb);
            }
        }
    });
}

/// Diagonal-unitary conjugation: `ρ[r][c] ← diag[r] · ρ[r][c] · conj(diag[c])`
/// in one elementwise pass.
fn kernel_diag(data: &mut [C64], d: usize, diag: &[C64], workers: usize) {
    let rows = row_chunk_len(d, workers);
    traced_chunks_mut(workers, data, rows * d, |ci, chunk| {
        for (lr, row) in chunk.chunks_mut(d).enumerate() {
            let dr = diag[ci * rows + lr];
            for (x, dc) in row.iter_mut().zip(diag.iter()) {
                *x = dr * *x * dc.conj();
            }
        }
    });
}

/// Closed-form single-qubit channel: `f` maps the 2×2 block
/// `(ρ[r0,c0], ρ[r0,c1], ρ[r1,c0], ρ[r1,c1])` (target bit clear/set) to its
/// new values, applied to every block in one O(4^n) sweep.
fn kernel_channel_1q<F>(data: &mut [C64], d: usize, shift: usize, workers: usize, f: F)
where
    F: Fn(C64, C64, C64, C64) -> (C64, C64, C64, C64) + Sync,
{
    let m = 1usize << shift;
    traced_chunks_mut(workers, data, 2 * m * d, |_, chunk| {
        for r in 0..m {
            let off0 = r * d;
            let off1 = (r + m) * d;
            for base in 0..d / 2 {
                let c0 = bits::deposit(base, shift);
                let c1 = c0 | m;
                let (a, b, c, dd) = (
                    chunk[off0 + c0],
                    chunk[off0 + c1],
                    chunk[off1 + c0],
                    chunk[off1 + c1],
                );
                let (na, nb, nc, nd) = f(a, b, c, dd);
                chunk[off0 + c0] = na;
                chunk[off0 + c1] = nb;
                chunk[off1 + c0] = nc;
                chunk[off1 + c1] = nd;
            }
        }
    });
}

/// An `n`-qubit mixed state `ρ` stored as a dense `2^n × 2^n` matrix.
///
/// # Examples
///
/// ```
/// use morph_qsim::{DensityMatrix, Gate};
///
/// let mut rho = DensityMatrix::zero_state(1);
/// rho.apply_gate(&Gate::H(0));
/// assert!((rho.purity() - 1.0).abs() < 1e-12);
/// rho.depolarize(0, 0.5);
/// assert!(rho.purity() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    rho: CMatrix,
}

impl DensityMatrix {
    /// `|0…0⟩⟨0…0|`.
    pub fn zero_state(n_qubits: usize) -> Self {
        assert!(n_qubits <= 13, "density matrix would exceed memory budget");
        let d = 1usize << n_qubits;
        let mut rho = CMatrix::zeros(d, d);
        rho[(0, 0)] = C64::ONE;
        DensityMatrix { n_qubits, rho }
    }

    /// Wraps an existing density matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not square with power-of-two dimension.
    pub fn from_matrix(rho: CMatrix) -> Self {
        assert!(rho.is_square(), "density matrix must be square");
        assert!(
            rho.rows().is_power_of_two(),
            "dimension must be a power of two"
        );
        let n_qubits = rho.rows().trailing_zeros() as usize;
        DensityMatrix { n_qubits, rho }
    }

    /// Projects a pure state into a density matrix.
    pub fn from_state_vector(psi: &StateVector) -> Self {
        DensityMatrix {
            n_qubits: psi.n_qubits(),
            rho: psi.density_matrix(),
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Borrow the underlying matrix.
    #[inline]
    pub fn matrix(&self) -> &CMatrix {
        &self.rho
    }

    /// Consumes `self`, returning the matrix.
    #[inline]
    pub fn into_matrix(self) -> CMatrix {
        self.rho
    }

    /// Purity `tr(ρ²)`.
    pub fn purity(&self) -> f64 {
        morph_linalg::purity(&self.rho)
    }

    /// Bit position of `qubit` (qubit 0 is the most significant bit).
    #[inline]
    fn shift(&self, qubit: usize) -> usize {
        assert!(qubit < self.n_qubits, "qubit {qubit} out of range");
        self.n_qubits - 1 - qubit
    }

    #[inline]
    fn dim(&self) -> usize {
        1usize << self.n_qubits
    }

    /// Unitary evolution `ρ ← U ρ U†` with a full-register unitary.
    ///
    /// O(8^n) dense-matmul path, kept as the oracle the local kernels are
    /// property-tested against; hot paths go through [`Self::apply_gate`].
    pub fn evolve(&mut self, u: &CMatrix) {
        assert_eq!(u.rows(), self.rho.rows(), "unitary dimension mismatch");
        self.rho = u.matmul(&self.rho).matmul(&u.dagger());
    }

    /// Applies a gate in place through the qubit-local kernels: O(4^n) per
    /// gate, no full-register embedding, no allocation beyond O(2^n) scratch
    /// for diagonal and k≥3-qubit gates.
    pub fn apply_gate(&mut self, gate: &Gate) {
        self.apply_gate_with_workers(gate, auto_workers(self.n_qubits));
    }

    /// [`Self::apply_gate`] with an explicit worker request (`0` = all
    /// cores). Results are bit-identical for every worker count; the
    /// explicit form exists so determinism tests can pin both sides.
    pub fn apply_gate_with_workers(&mut self, gate: &Gate, workers: usize) {
        morph_trace::counter("qsim/density_gates", 1);
        match gate {
            // Diagonal 1q gates: one elementwise pass.
            Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::RZ(q, _)
            | Gate::Phase(q, _) => {
                let u = gate.local_matrix();
                self.diag_1q(*q, u[(0, 0)], u[(1, 1)], workers);
            }
            Gate::H(q) | Gate::X(q) | Gate::Y(q) => {
                self.apply_1q_with_workers(&gate.local_matrix(), *q, workers);
            }
            Gate::RX(q, _) | Gate::RY(q, _) => {
                self.apply_1q_with_workers(&gate.local_matrix(), *q, workers);
            }
            // Diagonal controlled-phase family.
            Gate::CZ(c, t) => self.diag_controlled(&[*c], *t, C64::ONE, -C64::ONE, workers),
            Gate::CPhase(c, t, a) => {
                self.diag_controlled(&[*c], *t, C64::ONE, C64::cis(*a), workers);
            }
            Gate::CRZ(c, t, a) => {
                self.diag_controlled(&[*c], *t, C64::cis(-a / 2.0), C64::cis(a / 2.0), workers);
            }
            Gate::MCZ(qs) => {
                let (last, rest) = qs.split_last().expect("MCZ over at least one qubit");
                self.diag_controlled(rest, *last, C64::ONE, -C64::ONE, workers);
            }
            Gate::CX(c, t) => self.controlled_with_workers(&matrices::x(), &[*c], *t, workers),
            Gate::CCX(c1, c2, t) => {
                self.controlled_with_workers(&matrices::x(), &[*c1, *c2], *t, workers);
            }
            Gate::MCRX(cs, t, a) => {
                self.controlled_with_workers(&matrices::rx(*a), cs, *t, workers);
            }
            Gate::MCRY(cs, t, a) => {
                self.controlled_with_workers(&matrices::ry(*a), cs, *t, workers);
            }
            Gate::Swap(a, b) => self.swap_with_workers(*a, *b, workers),
            Gate::Unitary(qs, u) => match qs.len() {
                1 => self.apply_1q_with_workers(u, qs[0], workers),
                2 => self.apply_2q_with_workers(u, qs[0], qs[1], workers),
                _ => self.apply_kq_local(u, qs),
            },
        }
    }

    /// In-place `ρ ← U ρ U†` for a single-qubit unitary `u` on `qubit`.
    pub fn apply_1q_local(&mut self, u: &CMatrix, qubit: usize) {
        self.apply_1q_with_workers(u, qubit, auto_workers(self.n_qubits));
    }

    fn apply_1q_with_workers(&mut self, u: &CMatrix, qubit: usize, workers: usize) {
        assert_eq!(u.rows(), 2, "apply_1q_local expects a 2×2 unitary");
        let shift = self.shift(qubit);
        let d = self.dim();
        kernel_1q(self.rho.as_mut_slice(), d, shift, u, workers);
    }

    /// In-place `ρ ← U ρ U†` for a two-qubit unitary `u`; `q_a` indexes the
    /// unitary's more significant qubit.
    pub fn apply_2q_local(&mut self, u: &CMatrix, q_a: usize, q_b: usize) {
        self.apply_2q_with_workers(u, q_a, q_b, auto_workers(self.n_qubits));
    }

    fn apply_2q_with_workers(&mut self, u: &CMatrix, q_a: usize, q_b: usize, workers: usize) {
        assert_eq!(u.rows(), 4, "apply_2q_local expects a 4×4 unitary");
        assert_ne!(q_a, q_b, "two-qubit gate requires distinct qubits");
        let sa = self.shift(q_a);
        let sb = self.shift(q_b);
        let d = self.dim();
        kernel_2q(self.rho.as_mut_slice(), d, sa, sb, u, workers);
    }

    /// In-place conjugation by a multi-controlled single-qubit unitary.
    pub fn apply_controlled_local(&mut self, u: &CMatrix, controls: &[usize], target: usize) {
        self.controlled_with_workers(u, controls, target, auto_workers(self.n_qubits));
    }

    fn controlled_with_workers(
        &mut self,
        u: &CMatrix,
        controls: &[usize],
        target: usize,
        workers: usize,
    ) {
        assert_eq!(u.rows(), 2, "controlled payload must be 2×2");
        if controls.is_empty() {
            return self.apply_1q_with_workers(u, target, workers);
        }
        let mut cmask = 0usize;
        for &c in controls {
            assert_ne!(c, target, "control equals target");
            cmask |= 1usize << self.shift(c);
        }
        let tshift = self.shift(target);
        let d = self.dim();
        kernel_controlled(self.rho.as_mut_slice(), d, cmask, tshift, u, workers);
    }

    /// In-place SWAP of two qubits: one row-exchange pass plus one
    /// column-exchange pass, no arithmetic at all.
    pub fn apply_swap_local(&mut self, q_a: usize, q_b: usize) {
        self.swap_with_workers(q_a, q_b, auto_workers(self.n_qubits));
    }

    fn swap_with_workers(&mut self, q_a: usize, q_b: usize, workers: usize) {
        assert_ne!(q_a, q_b, "swap requires distinct qubits");
        let sa = self.shift(q_a);
        let sb = self.shift(q_b);
        let d = self.dim();
        kernel_swap(self.rho.as_mut_slice(), d, sa, sb, workers);
    }

    /// In-place conjugation by a diagonal unitary given as its full-register
    /// diagonal: `ρ[r][c] ← diag[r]·ρ[r][c]·conj(diag[c])`.
    ///
    /// # Panics
    ///
    /// Panics if `diag.len() != 2^n`.
    pub fn apply_diag_local(&mut self, diag: &[C64]) {
        let d = self.dim();
        assert_eq!(diag.len(), d, "diagonal length mismatch");
        kernel_diag(
            self.rho.as_mut_slice(),
            d,
            diag,
            auto_workers(self.n_qubits),
        );
    }

    fn diag_1q(&mut self, qubit: usize, d0: C64, d1: C64, workers: usize) {
        let m = 1usize << self.shift(qubit);
        let d = self.dim();
        let diag: Vec<C64> = (0..d).map(|i| if i & m != 0 { d1 } else { d0 }).collect();
        kernel_diag(self.rho.as_mut_slice(), d, &diag, workers);
    }

    fn diag_controlled(
        &mut self,
        controls: &[usize],
        target: usize,
        p0: C64,
        p1: C64,
        workers: usize,
    ) {
        let mut cmask = 0usize;
        for &c in controls {
            assert_ne!(c, target, "control equals target");
            cmask |= 1usize << self.shift(c);
        }
        let tm = 1usize << self.shift(target);
        let d = self.dim();
        let diag: Vec<C64> = (0..d)
            .map(|i| {
                if i & cmask != cmask {
                    C64::ONE
                } else if i & tm != 0 {
                    p1
                } else {
                    p0
                }
            })
            .collect();
        kernel_diag(self.rho.as_mut_slice(), d, &diag, workers);
    }

    /// In-place `ρ ← U ρ U†` for a k-qubit unitary on `targets` (most
    /// significant first). O(4^n · 2^k) with O(4^k) scratch.
    pub fn apply_kq_local(&mut self, u: &CMatrix, targets: &[usize]) {
        let k = targets.len();
        let dk = 1usize << k;
        assert_eq!(u.rows(), dk, "unitary does not match target count");
        let d = self.dim();
        let mut sorted: Vec<usize> = targets.iter().map(|&q| self.shift(q)).collect();
        sorted.sort_unstable();
        assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "duplicate target qubit"
        );
        // spread[j]: operator bit b of j lands at the bit position of
        // targets[k-1-b] (targets are most significant first).
        let spread: Vec<usize> = (0..dk)
            .map(|j| {
                let mut mask = 0usize;
                for (b, &q) in targets.iter().rev().enumerate() {
                    if j & (1 << b) != 0 {
                        mask |= 1usize << self.shift(q);
                    }
                }
                mask
            })
            .collect();
        let data = self.rho.as_mut_slice();
        let n_rest = d >> k;
        let mut block = vec![C64::ZERO; dk * dk];
        let mut tmp = vec![C64::ZERO; dk * dk];
        for rr in 0..n_rest {
            let row_base = bits::deposit_multi(rr, &sorted);
            for cr in 0..n_rest {
                let col_base = bits::deposit_multi(cr, &sorted);
                for j in 0..dk {
                    let row = (row_base | spread[j]) * d + col_base;
                    for l in 0..dk {
                        block[j * dk + l] = data[row + spread[l]];
                    }
                }
                // tmp = U · block
                for j in 0..dk {
                    for l in 0..dk {
                        let mut acc = C64::ZERO;
                        for p in 0..dk {
                            acc += u[(j, p)] * block[p * dk + l];
                        }
                        tmp[j * dk + l] = acc;
                    }
                }
                // out = tmp · U†, scattered back in place.
                for j in 0..dk {
                    let row = (row_base | spread[j]) * d + col_base;
                    for l in 0..dk {
                        let mut acc = C64::ZERO;
                        for p in 0..dk {
                            acc += tmp[j * dk + p] * u[(l, p)].conj();
                        }
                        data[row + spread[l]] = acc;
                    }
                }
            }
        }
    }

    /// Applies a Kraus channel `ρ ← Σ K ρ K†` with full-register operators.
    ///
    /// O(8^n) per operator; kept as the oracle for the local channel
    /// kernels. Hot paths use [`Self::apply_kraus_local`] or the closed-form
    /// channels.
    ///
    /// # Panics
    ///
    /// Panics if any operator has the wrong dimension.
    pub fn apply_kraus(&mut self, operators: &[CMatrix]) {
        let d = self.rho.rows();
        let mut out = CMatrix::zeros(d, d);
        for k in operators {
            assert_eq!(k.rows(), d, "Kraus operator dimension mismatch");
            out += &k.matmul(&self.rho).matmul(&k.dagger());
        }
        self.rho = out;
    }

    /// Applies a k-qubit Kraus channel `ρ ← Σ K ρ K†` where each operator
    /// is `2^k × 2^k` on `targets` (most significant first) — no embedding,
    /// O(4^n · 2^k) per operator.
    pub fn apply_kraus_local(&mut self, operators: &[CMatrix], targets: &[usize]) {
        let k = targets.len();
        let dk = 1usize << k;
        assert!(!operators.is_empty(), "empty Kraus family");
        for op in operators {
            assert_eq!(op.rows(), dk, "Kraus operator does not match targets");
        }
        let d = self.dim();
        let mut sorted: Vec<usize> = targets.iter().map(|&q| self.shift(q)).collect();
        sorted.sort_unstable();
        assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "duplicate target qubit"
        );
        let spread: Vec<usize> = (0..dk)
            .map(|j| {
                let mut mask = 0usize;
                for (b, &q) in targets.iter().rev().enumerate() {
                    if j & (1 << b) != 0 {
                        mask |= 1usize << self.shift(q);
                    }
                }
                mask
            })
            .collect();
        let data = self.rho.as_mut_slice();
        let n_rest = d >> k;
        let mut block = vec![C64::ZERO; dk * dk];
        let mut tmp = vec![C64::ZERO; dk * dk];
        let mut acc_block = vec![C64::ZERO; dk * dk];
        for rr in 0..n_rest {
            let row_base = bits::deposit_multi(rr, &sorted);
            for cr in 0..n_rest {
                let col_base = bits::deposit_multi(cr, &sorted);
                for j in 0..dk {
                    let row = (row_base | spread[j]) * d + col_base;
                    for l in 0..dk {
                        block[j * dk + l] = data[row + spread[l]];
                    }
                }
                acc_block.iter_mut().for_each(|x| *x = C64::ZERO);
                for op in operators {
                    for j in 0..dk {
                        for l in 0..dk {
                            let mut acc = C64::ZERO;
                            for p in 0..dk {
                                acc += op[(j, p)] * block[p * dk + l];
                            }
                            tmp[j * dk + l] = acc;
                        }
                    }
                    for j in 0..dk {
                        for l in 0..dk {
                            let mut acc = C64::ZERO;
                            for p in 0..dk {
                                acc += tmp[j * dk + p] * op[(l, p)].conj();
                            }
                            acc_block[j * dk + l] += acc;
                        }
                    }
                }
                for j in 0..dk {
                    let row = (row_base | spread[j]) * d + col_base;
                    for l in 0..dk {
                        data[row + spread[l]] = acc_block[j * dk + l];
                    }
                }
            }
        }
    }

    /// Single-qubit depolarizing channel with error probability `p`, in
    /// closed form on 2×2 blocks: populations mix as
    /// `(1 − p/2)·own + (p/2)·other`, coherences shrink by `1 − p`. Exactly
    /// the Kraus channel `(1 − 3p/4)ρ + (p/4)(XρX + YρY + ZρZ)`.
    pub fn depolarize(&mut self, qubit: usize, p: f64) {
        self.depolarize_with_workers(qubit, p, auto_workers(self.n_qubits));
    }

    /// [`Self::depolarize`] with an explicit worker request (`0` = all
    /// cores); bit-identical for every worker count.
    pub fn depolarize_with_workers(&mut self, qubit: usize, p: f64, workers: usize) {
        let shift = self.shift(qubit);
        let d = self.dim();
        let keep = 1.0 - p / 2.0;
        let mix = p / 2.0;
        let coh = 1.0 - p;
        kernel_channel_1q(self.rho.as_mut_slice(), d, shift, workers, |a, b, c, dd| {
            (
                a.scale(keep) + dd.scale(mix),
                b.scale(coh),
                c.scale(coh),
                dd.scale(keep) + a.scale(mix),
            )
        });
    }

    /// Two-qubit depolarizing channel with error probability `p`, applied as
    /// independent single-qubit depolarizations of strength `p` on each
    /// participant (the standard twirled approximation).
    pub fn depolarize_pair(&mut self, q_a: usize, q_b: usize, p: f64) {
        self.depolarize(q_a, p);
        self.depolarize(q_b, p);
    }

    /// Phase-damping (pure dephasing) channel with strength `lambda` on
    /// `qubit`: coherences shrink by `√(1−λ)`, populations are untouched.
    pub fn phase_damp(&mut self, qubit: usize, lambda: f64) {
        let shift = self.shift(qubit);
        let d = self.dim();
        let damp = (1.0 - lambda).sqrt();
        let workers = auto_workers(self.n_qubits);
        kernel_channel_1q(self.rho.as_mut_slice(), d, shift, workers, |a, b, c, dd| {
            (a, b.scale(damp), c.scale(damp), dd)
        });
    }

    /// Bit-flip channel: applies X on `qubit` with probability `p`, in
    /// closed form as the convex mix `(1−p)·ρ + p·XρX` on 2×2 blocks.
    pub fn bit_flip(&mut self, qubit: usize, p: f64) {
        let shift = self.shift(qubit);
        let d = self.dim();
        let keep = 1.0 - p;
        let workers = auto_workers(self.n_qubits);
        kernel_channel_1q(self.rho.as_mut_slice(), d, shift, workers, |a, b, c, dd| {
            (
                a.scale(keep) + dd.scale(p),
                b.scale(keep) + c.scale(p),
                c.scale(keep) + b.scale(p),
                dd.scale(keep) + a.scale(p),
            )
        });
    }

    /// Amplitude-damping channel with decay probability `gamma` on `qubit`:
    /// excited population decays into the ground block, coherences shrink by
    /// `√(1−γ)`.
    pub fn amplitude_damp(&mut self, qubit: usize, gamma: f64) {
        let shift = self.shift(qubit);
        let d = self.dim();
        let damp = (1.0 - gamma).sqrt();
        let keep = 1.0 - gamma;
        let workers = auto_workers(self.n_qubits);
        kernel_channel_1q(self.rho.as_mut_slice(), d, shift, workers, |a, b, c, dd| {
            (
                a + dd.scale(gamma),
                b.scale(damp),
                c.scale(damp),
                dd.scale(keep),
            )
        });
    }

    /// Probability of measuring `qubit` as 1.
    pub fn prob_one(&self, qubit: usize) -> f64 {
        let mask = 1usize << self.shift(qubit);
        (0..self.rho.rows())
            .filter(|i| i & mask != 0)
            .map(|i| self.rho[(i, i)].re)
            .sum()
    }

    /// Diagonal of `ρ` — the computational-basis probability distribution.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.rho.rows())
            .map(|i| self.rho[(i, i)].re.max(0.0))
            .collect()
    }

    /// Samples a basis outcome from the diagonal distribution.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let probs = self.probabilities();
        let total: f64 = probs.iter().sum();
        let r: f64 = rng.gen::<f64>() * total;
        let mut acc = 0.0;
        for (i, p) in probs.iter().enumerate() {
            acc += p;
            if r < acc {
                return i;
            }
        }
        probs.len() - 1
    }

    /// Projectively measures `qubit`, collapsing the state. Returns the
    /// outcome.
    pub fn measure(&mut self, qubit: usize, rng: &mut impl Rng) -> u8 {
        let p1 = self.prob_one(qubit);
        let outcome = if rng.gen::<f64>() < p1 { 1u8 } else { 0u8 };
        self.collapse(qubit, outcome);
        outcome
    }

    /// Projects onto the `outcome` branch of `qubit` and renormalizes.
    ///
    /// # Panics
    ///
    /// Panics if the branch probability is (near-)zero.
    pub fn collapse(&mut self, qubit: usize, outcome: u8) {
        let mask = 1usize << self.shift(qubit);
        let keep_one = outcome == 1;
        let d = self.rho.rows();
        let mut p = 0.0;
        for i in 0..d {
            if (i & mask != 0) == keep_one {
                p += self.rho[(i, i)].re;
            }
        }
        assert!(p > 1e-12, "collapsing onto a zero-probability branch");
        let mut out = CMatrix::zeros(d, d);
        for r in 0..d {
            if (r & mask != 0) != keep_one {
                continue;
            }
            for c in 0..d {
                if (c & mask != 0) != keep_one {
                    continue;
                }
                out[(r, c)] = self.rho[(r, c)] / p;
            }
        }
        self.rho = out;
    }

    /// Partial trace keeping only the listed qubits (order preserved).
    pub fn partial_trace(&self, keep: &[usize]) -> CMatrix {
        let k = keep.len();
        let dk = 1usize << k;
        let shifts: Vec<usize> = keep
            .iter()
            .map(|&q| {
                assert!(q < self.n_qubits, "qubit {q} out of range");
                self.n_qubits - 1 - q
            })
            .collect();
        let rest: Vec<usize> = (0..self.n_qubits)
            .filter(|q| !keep.contains(q))
            .map(|q| self.n_qubits - 1 - q)
            .collect();
        let dr = 1usize << rest.len();
        let mut out = CMatrix::zeros(dk, dk);
        for r in 0..dk {
            for c in 0..dk {
                let mut acc = C64::ZERO;
                for e in 0..dr {
                    let mut row = 0usize;
                    let mut col = 0usize;
                    for (bit, &s) in shifts.iter().enumerate() {
                        if (r >> (k - 1 - bit)) & 1 == 1 {
                            row |= 1 << s;
                        }
                        if (c >> (k - 1 - bit)) & 1 == 1 {
                            col |= 1 << s;
                        }
                    }
                    for (bit, &s) in rest.iter().enumerate() {
                        if (e >> (rest.len() - 1 - bit)) & 1 == 1 {
                            row |= 1 << s;
                            col |= 1 << s;
                        }
                    }
                    acc += self.rho[(row, col)];
                }
                out[(r, c)] = acc;
            }
        }
        out
    }

    /// Expectation of a Hermitian observable.
    pub fn expectation(&self, observable: &CMatrix) -> f64 {
        morph_linalg::expectation(observable, &self.rho)
    }

    /// Eigenvalues of the state (descending).
    pub fn spectrum(&self) -> Vec<f64> {
        eigh(&self.rho).values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::matrices;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A reproducible random mixed state: average of a few random pure
    /// states.
    fn random_mixed(n: usize, seed: u64) -> DensityMatrix {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let d = 1usize << n;
        let mut rho = CMatrix::zeros(d, d);
        for _ in 0..3 {
            let amps: Vec<C64> = (0..d)
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let norm: f64 = amps.iter().map(|a| a.abs() * a.abs()).sum::<f64>().sqrt();
            let amps: Vec<C64> = amps
                .iter()
                .map(|a| a.scale(1.0 / norm / 3f64.sqrt()))
                .collect();
            rho += &CMatrix::outer(&amps, &amps);
        }
        DensityMatrix::from_matrix(rho)
    }

    #[test]
    fn pure_evolution_matches_state_vector() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&Gate::H(0));
        rho.apply_gate(&Gate::CX(0, 1));
        let mut psi = StateVector::zero_state(2);
        psi.apply_h(0);
        psi.apply_cx(0, 1);
        assert!(rho.matrix().approx_eq(&psi.density_matrix(), 1e-12));
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn local_kernels_match_full_matrix_oracle() {
        let gates = [
            Gate::H(1),
            Gate::Y(2),
            Gate::T(0),
            Gate::RZ(2, 0.37),
            Gate::RX(1, -1.2),
            Gate::CX(2, 0),
            Gate::CZ(0, 2),
            Gate::CRZ(1, 0, 0.9),
            Gate::CPhase(2, 1, -0.4),
            Gate::Swap(0, 2),
            Gate::CCX(2, 0, 1),
            Gate::MCZ(vec![0, 2]),
            Gate::MCRX(vec![1], 2, 0.8),
            Gate::MCRY(vec![0, 1], 2, -0.6),
            Gate::Unitary(vec![1], matrices::ry(0.3)),
            Gate::Unitary(vec![2, 0], matrices::swap()),
            Gate::Unitary(vec![1, 2, 0], matrices::controlled(&matrices::rx(0.5), 2)),
        ];
        for g in &gates {
            let mut fast = random_mixed(3, 11);
            let mut oracle = fast.clone();
            fast.apply_gate(g);
            oracle.evolve(&g.full_matrix(3));
            assert!(
                fast.matrix().approx_eq(oracle.matrix(), 1e-12),
                "{g:?} disagrees with the evolve oracle"
            );
        }
    }

    #[test]
    fn kraus_local_matches_embedded_kraus() {
        let k0 = matrices::i().scale_re((1.0 - 0.3f64).sqrt());
        let k1 = matrices::x().scale_re(0.3f64.sqrt());
        let mut fast = random_mixed(3, 5);
        let mut oracle = fast.clone();
        fast.apply_kraus_local(&[k0.clone(), k1.clone()], &[1]);
        oracle.apply_kraus(&[k0.embed(&[1], 3), k1.embed(&[1], 3)]);
        assert!(fast.matrix().approx_eq(oracle.matrix(), 1e-12));
    }

    #[test]
    fn depolarizing_reduces_purity_monotonically() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::H(0));
        let mut last = rho.purity();
        for _ in 0..4 {
            rho.depolarize(0, 0.2);
            let p = rho.purity();
            assert!(p < last + 1e-12);
            last = p;
        }
        // Full depolarization limit: maximally mixed.
        for _ in 0..200 {
            rho.depolarize(0, 0.5);
        }
        assert!((rho.purity() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn closed_form_depolarize_matches_kraus_oracle() {
        let p = 0.17;
        let mut fast = random_mixed(3, 29);
        let mut oracle = fast.clone();
        fast.depolarize(1, p);
        let i = CMatrix::identity(2).scale_re((1.0 - 3.0 * p / 4.0).sqrt());
        let scale = (p / 4.0).sqrt();
        let ops: Vec<CMatrix> = [
            i,
            matrices::x().scale_re(scale),
            matrices::y().scale_re(scale),
            matrices::z().scale_re(scale),
        ]
        .iter()
        .map(|k| k.embed(&[1], 3))
        .collect();
        oracle.apply_kraus(&ops);
        assert!(fast.matrix().approx_eq(oracle.matrix(), 1e-12));
    }

    #[test]
    fn depolarize_preserves_trace() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&Gate::H(0));
        rho.apply_gate(&Gate::CX(0, 1));
        rho.depolarize_pair(0, 1, 0.1);
        assert!((rho.matrix().trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_damping_drives_to_ground() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::X(0));
        for _ in 0..100 {
            rho.amplitude_damp(0, 0.2);
        }
        assert!(rho.prob_one(0) < 1e-6);
        assert!((rho.matrix().trace().re - 1.0).abs() < 1e-10);
    }

    #[test]
    fn phase_damping_kills_coherences_only() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::H(0));
        let p1_before = rho.prob_one(0);
        for _ in 0..50 {
            rho.phase_damp(0, 0.3);
        }
        // Populations preserved, coherence gone.
        assert!((rho.prob_one(0) - p1_before).abs() < 1e-10);
        assert!(rho.matrix()[(0, 1)].abs() < 1e-3);
        assert!((rho.matrix().trace().re - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bit_flip_channel_mixes_populations() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.bit_flip(0, 0.25);
        assert!((rho.prob_one(0) - 0.25).abs() < 1e-12);
        // Repeated flips converge to the 50/50 mixture.
        for _ in 0..200 {
            rho.bit_flip(0, 0.25);
        }
        assert!((rho.prob_one(0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn parallel_workers_are_bit_identical() {
        for g in [
            Gate::H(0),
            Gate::CX(0, 3),
            Gate::Swap(1, 2),
            Gate::RZ(3, 0.7),
            Gate::MCZ(vec![0, 1, 3]),
        ] {
            let mut serial = random_mixed(4, 83);
            let mut wide = serial.clone();
            serial.apply_gate_with_workers(&g, 1);
            wide.apply_gate_with_workers(&g, 4);
            assert_eq!(serial, wide, "{g:?} differs across worker counts");
        }
        let mut serial = random_mixed(4, 84);
        let mut wide = serial.clone();
        serial.depolarize_with_workers(2, 0.1, 1);
        wide.depolarize_with_workers(2, 0.1, 4);
        assert_eq!(serial, wide);
    }

    #[test]
    fn measurement_collapse_updates_probabilities() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&Gate::H(0));
        rho.apply_gate(&Gate::CX(0, 1));
        let outcome = rho.measure(0, &mut rng);
        assert!((rho.prob_one(1) - outcome as f64).abs() < 1e-10);
    }

    #[test]
    fn partial_trace_matches_state_vector_reduction() {
        let mut psi = StateVector::zero_state(3);
        psi.apply_h(0);
        psi.apply_cx(0, 2);
        psi.apply_1q(&matrices::ry(0.7), 1);
        let rho = DensityMatrix::from_state_vector(&psi);
        for keep in [vec![0], vec![2], vec![0, 2], vec![2, 0], vec![1]] {
            let a = rho.partial_trace(&keep);
            let b = psi.reduced_density_matrix(&keep);
            assert!(a.approx_eq(&b, 1e-12), "keep={keep:?}");
        }
    }

    #[test]
    fn expectation_z_on_plus_state() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::H(0));
        assert!(rho.expectation(&matrices::z()).abs() < 1e-12);
        assert!((rho.expectation(&matrices::x()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spectrum_of_mixed_state() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::H(0));
        rho.depolarize(0, 0.4);
        let spec = rho.spectrum();
        assert_eq!(spec.len(), 2);
        assert!((spec.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        assert!(spec[0] > spec[1]);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::RY(0, 2.0 * (0.3f64.sqrt()).asin()));
        // P(1) = 0.3 by construction.
        assert!((rho.prob_one(0) - 0.3).abs() < 1e-10);
        let shots = 20_000;
        let ones = (0..shots).filter(|_| rho.sample(&mut rng) == 1).count();
        assert!((ones as f64 / shots as f64 - 0.3).abs() < 0.02);
    }
}
