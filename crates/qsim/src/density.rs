//! Mixed-state simulation via dense density matrices.
//!
//! Used for small registers where exact noisy evolution matters (Table 4's
//! shot-based baselines, Fig 14's noisy-characterization study). Large
//! registers stay in [`crate::StateVector`] and expose tracepoint states via
//! reduced density matrices.

use morph_linalg::{eigh, CMatrix, C64};
use rand::Rng;

use crate::gate::Gate;
use crate::state::StateVector;

/// An `n`-qubit mixed state `ρ` stored as a dense `2^n × 2^n` matrix.
///
/// # Examples
///
/// ```
/// use morph_qsim::{DensityMatrix, Gate};
///
/// let mut rho = DensityMatrix::zero_state(1);
/// rho.apply_gate(&Gate::H(0));
/// assert!((rho.purity() - 1.0).abs() < 1e-12);
/// rho.depolarize(0, 0.5);
/// assert!(rho.purity() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    rho: CMatrix,
}

impl DensityMatrix {
    /// `|0…0⟩⟨0…0|`.
    pub fn zero_state(n_qubits: usize) -> Self {
        assert!(n_qubits <= 13, "density matrix would exceed memory budget");
        let d = 1usize << n_qubits;
        let mut rho = CMatrix::zeros(d, d);
        rho[(0, 0)] = C64::ONE;
        DensityMatrix { n_qubits, rho }
    }

    /// Wraps an existing density matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not square with power-of-two dimension.
    pub fn from_matrix(rho: CMatrix) -> Self {
        assert!(rho.is_square(), "density matrix must be square");
        assert!(
            rho.rows().is_power_of_two(),
            "dimension must be a power of two"
        );
        let n_qubits = rho.rows().trailing_zeros() as usize;
        DensityMatrix { n_qubits, rho }
    }

    /// Projects a pure state into a density matrix.
    pub fn from_state_vector(psi: &StateVector) -> Self {
        DensityMatrix {
            n_qubits: psi.n_qubits(),
            rho: psi.density_matrix(),
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Borrow the underlying matrix.
    #[inline]
    pub fn matrix(&self) -> &CMatrix {
        &self.rho
    }

    /// Consumes `self`, returning the matrix.
    #[inline]
    pub fn into_matrix(self) -> CMatrix {
        self.rho
    }

    /// Purity `tr(ρ²)`.
    pub fn purity(&self) -> f64 {
        morph_linalg::purity(&self.rho)
    }

    /// Unitary evolution `ρ ← U ρ U†` with a full-register unitary.
    pub fn evolve(&mut self, u: &CMatrix) {
        assert_eq!(u.rows(), self.rho.rows(), "unitary dimension mismatch");
        self.rho = u.matmul(&self.rho).matmul(&u.dagger());
    }

    /// Applies a gate by embedding its local unitary.
    pub fn apply_gate(&mut self, gate: &Gate) {
        let u = gate.full_matrix(self.n_qubits);
        self.evolve(&u);
    }

    /// Applies a Kraus channel `ρ ← Σ K ρ K†`.
    ///
    /// # Panics
    ///
    /// Panics if any operator has the wrong dimension.
    pub fn apply_kraus(&mut self, operators: &[CMatrix]) {
        let d = self.rho.rows();
        let mut out = CMatrix::zeros(d, d);
        for k in operators {
            assert_eq!(k.rows(), d, "Kraus operator dimension mismatch");
            out += &k.matmul(&self.rho).matmul(&k.dagger());
        }
        self.rho = out;
    }

    /// Single-qubit depolarizing channel with error probability `p`.
    pub fn depolarize(&mut self, qubit: usize, p: f64) {
        use crate::gate::matrices;
        let i = CMatrix::identity(2).scale_re((1.0 - 3.0 * p / 4.0).sqrt());
        let scale = (p / 4.0).sqrt();
        let ops = [
            i,
            matrices::x().scale_re(scale),
            matrices::y().scale_re(scale),
            matrices::z().scale_re(scale),
        ];
        let embedded: Vec<CMatrix> = ops
            .iter()
            .map(|k| k.embed(&[qubit], self.n_qubits))
            .collect();
        self.apply_kraus(&embedded);
    }

    /// Two-qubit depolarizing channel with error probability `p`, applied as
    /// independent single-qubit depolarizations of strength `p` on each
    /// participant (the standard twirled approximation).
    pub fn depolarize_pair(&mut self, q_a: usize, q_b: usize, p: f64) {
        self.depolarize(q_a, p);
        self.depolarize(q_b, p);
    }

    /// Phase-damping (pure dephasing) channel with strength `lambda` on
    /// `qubit`: coherences shrink by `√(1−λ)`, populations are untouched.
    pub fn phase_damp(&mut self, qubit: usize, lambda: f64) {
        let k0 = CMatrix::from_rows(&[
            &[C64::ONE, C64::ZERO],
            &[C64::ZERO, C64::real((1.0 - lambda).sqrt())],
        ]);
        let k1 = CMatrix::from_rows(&[
            &[C64::ZERO, C64::ZERO],
            &[C64::ZERO, C64::real(lambda.sqrt())],
        ]);
        let ops = [
            k0.embed(&[qubit], self.n_qubits),
            k1.embed(&[qubit], self.n_qubits),
        ];
        self.apply_kraus(&ops);
    }

    /// Bit-flip channel: applies X on `qubit` with probability `p`.
    pub fn bit_flip(&mut self, qubit: usize, p: f64) {
        use crate::gate::matrices;
        let keep = CMatrix::identity(2).scale_re((1.0 - p).sqrt());
        let flip = matrices::x().scale_re(p.sqrt());
        let ops = [
            keep.embed(&[qubit], self.n_qubits),
            flip.embed(&[qubit], self.n_qubits),
        ];
        self.apply_kraus(&ops);
    }

    /// Amplitude-damping channel with decay probability `gamma` on `qubit`.
    pub fn amplitude_damp(&mut self, qubit: usize, gamma: f64) {
        let k0 = CMatrix::from_rows(&[
            &[C64::ONE, C64::ZERO],
            &[C64::ZERO, C64::real((1.0 - gamma).sqrt())],
        ]);
        let k1 = CMatrix::from_rows(&[
            &[C64::ZERO, C64::real(gamma.sqrt())],
            &[C64::ZERO, C64::ZERO],
        ]);
        let ops = [
            k0.embed(&[qubit], self.n_qubits),
            k1.embed(&[qubit], self.n_qubits),
        ];
        self.apply_kraus(&ops);
    }

    /// Probability of measuring `qubit` as 1.
    pub fn prob_one(&self, qubit: usize) -> f64 {
        let shift = self.n_qubits - 1 - qubit;
        let mask = 1usize << shift;
        (0..self.rho.rows())
            .filter(|i| i & mask != 0)
            .map(|i| self.rho[(i, i)].re)
            .sum()
    }

    /// Diagonal of `ρ` — the computational-basis probability distribution.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.rho.rows())
            .map(|i| self.rho[(i, i)].re.max(0.0))
            .collect()
    }

    /// Samples a basis outcome from the diagonal distribution.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let probs = self.probabilities();
        let total: f64 = probs.iter().sum();
        let r: f64 = rng.gen::<f64>() * total;
        let mut acc = 0.0;
        for (i, p) in probs.iter().enumerate() {
            acc += p;
            if r < acc {
                return i;
            }
        }
        probs.len() - 1
    }

    /// Projectively measures `qubit`, collapsing the state. Returns the
    /// outcome.
    pub fn measure(&mut self, qubit: usize, rng: &mut impl Rng) -> u8 {
        let p1 = self.prob_one(qubit);
        let outcome = if rng.gen::<f64>() < p1 { 1u8 } else { 0u8 };
        self.collapse(qubit, outcome);
        outcome
    }

    /// Projects onto the `outcome` branch of `qubit` and renormalizes.
    ///
    /// # Panics
    ///
    /// Panics if the branch probability is (near-)zero.
    pub fn collapse(&mut self, qubit: usize, outcome: u8) {
        let shift = self.n_qubits - 1 - qubit;
        let mask = 1usize << shift;
        let keep_one = outcome == 1;
        let d = self.rho.rows();
        let mut p = 0.0;
        for i in 0..d {
            if (i & mask != 0) == keep_one {
                p += self.rho[(i, i)].re;
            }
        }
        assert!(p > 1e-12, "collapsing onto a zero-probability branch");
        let mut out = CMatrix::zeros(d, d);
        for r in 0..d {
            if (r & mask != 0) != keep_one {
                continue;
            }
            for c in 0..d {
                if (c & mask != 0) != keep_one {
                    continue;
                }
                out[(r, c)] = self.rho[(r, c)] / p;
            }
        }
        self.rho = out;
    }

    /// Partial trace keeping only the listed qubits (order preserved).
    pub fn partial_trace(&self, keep: &[usize]) -> CMatrix {
        let k = keep.len();
        let dk = 1usize << k;
        let shifts: Vec<usize> = keep
            .iter()
            .map(|&q| {
                assert!(q < self.n_qubits, "qubit {q} out of range");
                self.n_qubits - 1 - q
            })
            .collect();
        let rest: Vec<usize> = (0..self.n_qubits)
            .filter(|q| !keep.contains(q))
            .map(|q| self.n_qubits - 1 - q)
            .collect();
        let dr = 1usize << rest.len();
        let mut out = CMatrix::zeros(dk, dk);
        for r in 0..dk {
            for c in 0..dk {
                let mut acc = C64::ZERO;
                for e in 0..dr {
                    let mut row = 0usize;
                    let mut col = 0usize;
                    for (bit, &s) in shifts.iter().enumerate() {
                        if (r >> (k - 1 - bit)) & 1 == 1 {
                            row |= 1 << s;
                        }
                        if (c >> (k - 1 - bit)) & 1 == 1 {
                            col |= 1 << s;
                        }
                    }
                    for (bit, &s) in rest.iter().enumerate() {
                        if (e >> (rest.len() - 1 - bit)) & 1 == 1 {
                            row |= 1 << s;
                            col |= 1 << s;
                        }
                    }
                    acc += self.rho[(row, col)];
                }
                out[(r, c)] = acc;
            }
        }
        out
    }

    /// Expectation of a Hermitian observable.
    pub fn expectation(&self, observable: &CMatrix) -> f64 {
        morph_linalg::expectation(observable, &self.rho)
    }

    /// Eigenvalues of the state (descending).
    pub fn spectrum(&self) -> Vec<f64> {
        eigh(&self.rho).values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::matrices;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pure_evolution_matches_state_vector() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&Gate::H(0));
        rho.apply_gate(&Gate::CX(0, 1));
        let mut psi = StateVector::zero_state(2);
        psi.apply_h(0);
        psi.apply_cx(0, 1);
        assert!(rho.matrix().approx_eq(&psi.density_matrix(), 1e-12));
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_reduces_purity_monotonically() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::H(0));
        let mut last = rho.purity();
        for _ in 0..4 {
            rho.depolarize(0, 0.2);
            let p = rho.purity();
            assert!(p < last + 1e-12);
            last = p;
        }
        // Full depolarization limit: maximally mixed.
        for _ in 0..200 {
            rho.depolarize(0, 0.5);
        }
        assert!((rho.purity() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn depolarize_preserves_trace() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&Gate::H(0));
        rho.apply_gate(&Gate::CX(0, 1));
        rho.depolarize_pair(0, 1, 0.1);
        assert!((rho.matrix().trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_damping_drives_to_ground() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::X(0));
        for _ in 0..100 {
            rho.amplitude_damp(0, 0.2);
        }
        assert!(rho.prob_one(0) < 1e-6);
        assert!((rho.matrix().trace().re - 1.0).abs() < 1e-10);
    }

    #[test]
    fn phase_damping_kills_coherences_only() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::H(0));
        let p1_before = rho.prob_one(0);
        for _ in 0..50 {
            rho.phase_damp(0, 0.3);
        }
        // Populations preserved, coherence gone.
        assert!((rho.prob_one(0) - p1_before).abs() < 1e-10);
        assert!(rho.matrix()[(0, 1)].abs() < 1e-3);
        assert!((rho.matrix().trace().re - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bit_flip_channel_mixes_populations() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.bit_flip(0, 0.25);
        assert!((rho.prob_one(0) - 0.25).abs() < 1e-12);
        // Repeated flips converge to the 50/50 mixture.
        for _ in 0..200 {
            rho.bit_flip(0, 0.25);
        }
        assert!((rho.prob_one(0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn measurement_collapse_updates_probabilities() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&Gate::H(0));
        rho.apply_gate(&Gate::CX(0, 1));
        let outcome = rho.measure(0, &mut rng);
        assert!((rho.prob_one(1) - outcome as f64).abs() < 1e-10);
    }

    #[test]
    fn partial_trace_matches_state_vector_reduction() {
        let mut psi = StateVector::zero_state(3);
        psi.apply_h(0);
        psi.apply_cx(0, 2);
        psi.apply_1q(&matrices::ry(0.7), 1);
        let rho = DensityMatrix::from_state_vector(&psi);
        for keep in [vec![0], vec![2], vec![0, 2], vec![2, 0], vec![1]] {
            let a = rho.partial_trace(&keep);
            let b = psi.reduced_density_matrix(&keep);
            assert!(a.approx_eq(&b, 1e-12), "keep={keep:?}");
        }
    }

    #[test]
    fn expectation_z_on_plus_state() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::H(0));
        assert!(rho.expectation(&matrices::z()).abs() < 1e-12);
        assert!((rho.expectation(&matrices::x()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spectrum_of_mixed_state() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::H(0));
        rho.depolarize(0, 0.4);
        let spec = rho.spectrum();
        assert_eq!(spec.len(), 2);
        assert!((spec.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        assert!(spec[0] > spec[1]);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::RY(0, 2.0 * (0.3f64.sqrt()).asin()));
        // P(1) = 0.3 by construction.
        assert!((rho.prob_one(0) - 0.3).abs() < 1e-10);
        let shots = 20_000;
        let ones = (0..shots).filter(|_| rho.sample(&mut rng) == 1).count();
        assert!((ones as f64 / shots as f64 - 0.3).abs() < 0.02);
    }
}
