//! Pauli-string observables on state vectors, without dense matrices.
//!
//! A Pauli string over `n` qubits is applied in `O(2^n)` by bit
//! manipulation, so expectations `⟨ψ|P|ψ⟩` and shot-based estimates stay
//! cheap even at 20+ qubits — the fast path behind Strategy-prop readout
//! and the expectation-style predicates.

use morph_linalg::C64;
use rand::Rng;

use crate::state::StateVector;

/// A Pauli string like `"IXYZ"` over a fixed register.
///
/// # Examples
///
/// ```
/// use morph_qsim::{PauliString, StateVector};
///
/// let mut psi = StateVector::zero_state(2);
/// psi.apply_h(0);
/// psi.apply_cx(0, 1);
/// let xx: PauliString = "XX".parse()?;
/// assert!((xx.expectation(&psi) - 1.0).abs() < 1e-12);
/// # Ok::<(), morph_qsim::ParsePauliError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauliString {
    /// One letter in `IXYZ` per qubit (qubit 0 first).
    letters: Vec<u8>,
}

/// Error parsing a Pauli string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePauliError {
    /// The offending character.
    pub ch: char,
}

impl std::fmt::Display for ParsePauliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid Pauli character {:?} (expected I, X, Y, or Z)",
            self.ch
        )
    }
}

impl std::error::Error for ParsePauliError {}

impl std::str::FromStr for PauliString {
    type Err = ParsePauliError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut letters = Vec::with_capacity(s.len());
        for ch in s.chars() {
            match ch.to_ascii_uppercase() {
                'I' => letters.push(b'I'),
                'X' => letters.push(b'X'),
                'Y' => letters.push(b'Y'),
                'Z' => letters.push(b'Z'),
                other => return Err(ParsePauliError { ch: other }),
            }
        }
        Ok(PauliString { letters })
    }
}

impl std::fmt::Display for PauliString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for &l in &self.letters {
            write!(f, "{}", l as char)?;
        }
        Ok(())
    }
}

impl PauliString {
    /// Number of qubits the string covers.
    pub fn n_qubits(&self) -> usize {
        self.letters.len()
    }

    /// `true` if every letter is `I`.
    pub fn is_identity(&self) -> bool {
        self.letters.iter().all(|&l| l == b'I')
    }

    /// Number of non-identity letters (the string's weight).
    pub fn weight(&self) -> usize {
        self.letters.iter().filter(|&&l| l != b'I').count()
    }

    /// Applies the string to a state: `|ψ⟩ → P|ψ⟩`, in `O(2^n)`.
    ///
    /// # Panics
    ///
    /// Panics if the register sizes disagree.
    pub fn apply(&self, psi: &StateVector) -> StateVector {
        assert_eq!(psi.n_qubits(), self.n_qubits(), "register size mismatch");
        let n = self.n_qubits();
        // Bit masks: X/Y flip the bit; Z/Y contribute phases.
        let mut flip_mask = 0usize;
        let mut z_mask = 0usize;
        let mut y_count = 0u32;
        for (q, &l) in self.letters.iter().enumerate() {
            let bit = 1usize << (n - 1 - q);
            match l {
                b'X' => flip_mask |= bit,
                b'Y' => {
                    flip_mask |= bit;
                    z_mask |= bit;
                    y_count += 1;
                }
                b'Z' => z_mask |= bit,
                _ => {}
            }
        }
        // Global factor from Y = i·XZ per Y letter.
        let global = C64::I.scale(1.0).powu(y_count);
        let amps = psi.amplitudes();
        let mut out = vec![C64::ZERO; amps.len()];
        for (i, &a) in amps.iter().enumerate() {
            if a == C64::ZERO {
                continue;
            }
            // P|i⟩ = phase(i) |i ^ flip⟩ with phase from Z (and Y's Z part)
            // acting on |i⟩ *after* the flip order convention: apply Z first
            // then X (P = i^{|Y|} X-part · Z-part).
            let z_parity = (i & z_mask).count_ones() & 1;
            let mut coeff = global;
            if z_parity == 1 {
                coeff = -coeff;
            }
            out[i ^ flip_mask] += coeff * a;
        }
        StateVector::from_amplitudes(out)
    }

    /// Expectation `⟨ψ|P|ψ⟩` (real for Hermitian P).
    pub fn expectation(&self, psi: &StateVector) -> f64 {
        psi.inner(&self.apply(psi)).re
    }

    /// Shot-based estimate of the expectation: simulates `shots` ±1
    /// measurements of the observable.
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`.
    pub fn estimate(&self, psi: &StateVector, shots: usize, rng: &mut impl Rng) -> f64 {
        assert!(shots > 0, "need at least one shot");
        let e = self.expectation(psi).clamp(-1.0, 1.0);
        let p_plus = (1.0 + e) / 2.0;
        let mut plus = 0usize;
        for _ in 0..shots {
            if rng.gen::<f64>() < p_plus {
                plus += 1;
            }
        }
        2.0 * (plus as f64 / shots as f64) - 1.0
    }
}

/// Integer power of a complex unit (helper for `i^k`).
trait PowU {
    fn powu(self, k: u32) -> Self;
}

impl PowU for C64 {
    fn powu(self, k: u32) -> C64 {
        let mut acc = C64::ONE;
        for _ in 0..(k % 4) {
            acc *= self;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::matrices;

    fn random_state(n: usize, seed: u64) -> StateVector {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let amps: Vec<C64> = (0..(1 << n))
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        StateVector::from_amplitudes(amps)
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let p: PauliString = "iXyZ".parse().unwrap();
        assert_eq!(p.to_string(), "IXYZ");
        assert_eq!(p.weight(), 3);
        assert!(!p.is_identity());
        assert!("IXQ".parse::<PauliString>().is_err());
    }

    #[test]
    fn apply_matches_dense_matrix() {
        for s in ["X", "Y", "Z", "XY", "ZZ", "IYX", "YYZ", "XIZY"] {
            let p: PauliString = s.parse().unwrap();
            let n = p.n_qubits();
            let psi = random_state(n, 42 + n as u64);
            let fast = p.apply(&psi);
            let dense = matrices::pauli_string(s).matvec(psi.amplitudes());
            for (i, &a) in fast.amplitudes().iter().enumerate() {
                assert!(
                    a.approx_eq(dense[i], 1e-10),
                    "{s} mismatch at {i}: {a} vs {}",
                    dense[i]
                );
            }
        }
    }

    #[test]
    fn expectation_matches_dense() {
        for s in ["XX", "YZ", "ZI", "YY"] {
            let p: PauliString = s.parse().unwrap();
            let psi = random_state(2, 7);
            let dense = matrices::pauli_string(s)
                .matmul(&psi.density_matrix())
                .trace()
                .re;
            assert!((p.expectation(&psi) - dense).abs() < 1e-10, "{s}");
        }
    }

    #[test]
    fn identity_expectation_is_one() {
        let p: PauliString = "III".parse().unwrap();
        assert!(p.is_identity());
        let psi = random_state(3, 5);
        assert!((p.expectation(&psi) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn pauli_strings_are_involutions() {
        let p: PauliString = "XYZY".parse().unwrap();
        let psi = random_state(4, 3);
        let twice = p.apply(&p.apply(&psi));
        for (a, b) in twice.amplitudes().iter().zip(psi.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }

    #[test]
    fn shot_estimate_converges() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        let mut psi = StateVector::zero_state(1);
        psi.apply_1q(&matrices::ry(1.0), 0);
        let p: PauliString = "Z".parse().unwrap();
        let exact = p.expectation(&psi);
        let est = p.estimate(&psi, 50_000, &mut rng);
        assert!((est - exact).abs() < 0.02, "est {est} vs exact {exact}");
    }
}
