//! Gate library: named unitaries with parameterized rotations and
//! multi-controlled variants, plus matrix constructors.

use morph_linalg::{CMatrix, C64};

use crate::state::StateVector;

/// A quantum gate applied to specific qubits.
///
/// The enum mirrors the instruction set used by the paper's benchmark
/// programs: Cliffords, parameterized rotations, and the multi-controlled
/// `Z`/`RX` gates that implement the quantum-lock and QRAM circuits.
///
/// # Examples
///
/// ```
/// use morph_qsim::{Gate, StateVector};
///
/// let mut psi = StateVector::zero_state(2);
/// Gate::H(0).apply(&mut psi);
/// Gate::CX(0, 1).apply(&mut psi);
/// assert!((psi.probabilities()[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(usize),
    /// Pauli-X.
    X(usize),
    /// Pauli-Y.
    Y(usize),
    /// Pauli-Z.
    Z(usize),
    /// Phase gate S = diag(1, i).
    S(usize),
    /// S†.
    Sdg(usize),
    /// T = diag(1, e^{iπ/4}).
    T(usize),
    /// T†.
    Tdg(usize),
    /// Rotation about X by the given angle.
    RX(usize, f64),
    /// Rotation about Y by the given angle.
    RY(usize, f64),
    /// Rotation about Z by the given angle.
    RZ(usize, f64),
    /// Phase gate diag(1, e^{iθ}).
    Phase(usize, f64),
    /// Controlled-X (control, target).
    CX(usize, usize),
    /// Controlled-Z (symmetric pair).
    CZ(usize, usize),
    /// Controlled-RZ (control, target, angle).
    CRZ(usize, usize, f64),
    /// Controlled-phase (control, target, angle).
    CPhase(usize, usize, f64),
    /// SWAP.
    Swap(usize, usize),
    /// Toffoli (control, control, target).
    CCX(usize, usize, usize),
    /// Multi-controlled Z over all listed qubits.
    MCZ(Vec<usize>),
    /// Multi-controlled RX: controls, target, angle.
    MCRX(Vec<usize>, usize, f64),
    /// Multi-controlled RY: controls, target, angle.
    MCRY(Vec<usize>, usize, f64),
    /// Arbitrary unitary on the listed targets (most significant first).
    Unitary(Vec<usize>, CMatrix),
}

impl Gate {
    /// Qubits the gate acts on (controls first where applicable).
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::RX(q, _)
            | Gate::RY(q, _)
            | Gate::RZ(q, _)
            | Gate::Phase(q, _) => vec![*q],
            Gate::CX(c, t)
            | Gate::CZ(c, t)
            | Gate::CRZ(c, t, _)
            | Gate::CPhase(c, t, _)
            | Gate::Swap(c, t) => {
                vec![*c, *t]
            }
            Gate::CCX(c1, c2, t) => vec![*c1, *c2, *t],
            Gate::MCZ(qs) => qs.clone(),
            Gate::MCRX(cs, t, _) | Gate::MCRY(cs, t, _) => {
                let mut v = cs.clone();
                v.push(*t);
                v
            }
            Gate::Unitary(qs, _) => qs.clone(),
        }
    }

    /// Number of two-qubit-equivalent operations, used by the overhead
    /// accounting (a k-controlled gate decomposes into `O(k)` two-qubit
    /// gates; we use the standard `2k − 3`-Toffoli estimate floor-ed at 1).
    pub fn op_cost(&self) -> usize {
        match self {
            Gate::CX(..) | Gate::CZ(..) | Gate::CRZ(..) | Gate::CPhase(..) | Gate::Swap(..) => 1,
            Gate::CCX(..) => 6,
            Gate::MCZ(qs) => (2 * qs.len()).saturating_sub(3).max(1),
            Gate::MCRX(cs, _, _) | Gate::MCRY(cs, _, _) => {
                (2 * (cs.len() + 1)).saturating_sub(3).max(1)
            }
            Gate::Unitary(qs, _) => 1usize << qs.len(),
            _ => 1,
        }
    }

    /// `true` if the gate touches a parameterized angle (used by mutation
    /// testing to avoid mutating structural gates).
    pub fn is_parameterized(&self) -> bool {
        matches!(
            self,
            Gate::RX(..)
                | Gate::RY(..)
                | Gate::RZ(..)
                | Gate::Phase(..)
                | Gate::CRZ(..)
                | Gate::CPhase(..)
                | Gate::MCRX(..)
                | Gate::MCRY(..)
        )
    }

    /// The inverse gate.
    pub fn inverse(&self) -> Gate {
        match self {
            Gate::S(q) => Gate::Sdg(*q),
            Gate::Sdg(q) => Gate::S(*q),
            Gate::T(q) => Gate::Tdg(*q),
            Gate::Tdg(q) => Gate::T(*q),
            Gate::RX(q, a) => Gate::RX(*q, -a),
            Gate::RY(q, a) => Gate::RY(*q, -a),
            Gate::RZ(q, a) => Gate::RZ(*q, -a),
            Gate::Phase(q, a) => Gate::Phase(*q, -a),
            Gate::CRZ(c, t, a) => Gate::CRZ(*c, *t, -a),
            Gate::CPhase(c, t, a) => Gate::CPhase(*c, *t, -a),
            Gate::MCRX(cs, t, a) => Gate::MCRX(cs.clone(), *t, -a),
            Gate::MCRY(cs, t, a) => Gate::MCRY(cs.clone(), *t, -a),
            Gate::Unitary(qs, u) => Gate::Unitary(qs.clone(), u.dagger()),
            other => other.clone(),
        }
    }

    /// The same gate with every qubit index passed through `f` — used to
    /// embed a sub-register circuit into a larger register.
    pub fn remapped(&self, f: impl Fn(usize) -> usize) -> Gate {
        match self {
            Gate::H(q) => Gate::H(f(*q)),
            Gate::X(q) => Gate::X(f(*q)),
            Gate::Y(q) => Gate::Y(f(*q)),
            Gate::Z(q) => Gate::Z(f(*q)),
            Gate::S(q) => Gate::S(f(*q)),
            Gate::Sdg(q) => Gate::Sdg(f(*q)),
            Gate::T(q) => Gate::T(f(*q)),
            Gate::Tdg(q) => Gate::Tdg(f(*q)),
            Gate::RX(q, a) => Gate::RX(f(*q), *a),
            Gate::RY(q, a) => Gate::RY(f(*q), *a),
            Gate::RZ(q, a) => Gate::RZ(f(*q), *a),
            Gate::Phase(q, a) => Gate::Phase(f(*q), *a),
            Gate::CX(c, t) => Gate::CX(f(*c), f(*t)),
            Gate::CZ(a, b) => Gate::CZ(f(*a), f(*b)),
            Gate::CRZ(c, t, a) => Gate::CRZ(f(*c), f(*t), *a),
            Gate::CPhase(c, t, a) => Gate::CPhase(f(*c), f(*t), *a),
            Gate::Swap(a, b) => Gate::Swap(f(*a), f(*b)),
            Gate::CCX(c1, c2, t) => Gate::CCX(f(*c1), f(*c2), f(*t)),
            Gate::MCZ(qs) => Gate::MCZ(qs.iter().map(|&q| f(q)).collect()),
            Gate::MCRX(cs, t, a) => Gate::MCRX(cs.iter().map(|&q| f(q)).collect(), f(*t), *a),
            Gate::MCRY(cs, t, a) => Gate::MCRY(cs.iter().map(|&q| f(q)).collect(), f(*t), *a),
            Gate::Unitary(qs, u) => Gate::Unitary(qs.iter().map(|&q| f(q)).collect(), u.clone()),
        }
    }

    /// Applies the gate to a state vector.
    ///
    /// # Panics
    ///
    /// Panics if any qubit index is out of range for `psi`.
    pub fn apply(&self, psi: &mut StateVector) {
        match self {
            Gate::H(q) => psi.apply_h(*q),
            Gate::X(q) => psi.apply_x(*q),
            Gate::Y(q) => psi.apply_1q(&matrices::y(), *q),
            Gate::Z(q) => psi.apply_z(*q),
            Gate::S(q) => psi.apply_s(*q),
            Gate::Sdg(q) => psi.apply_sdg(*q),
            Gate::T(q) => psi.apply_phase(*q, std::f64::consts::FRAC_PI_4),
            Gate::Tdg(q) => psi.apply_phase(*q, -std::f64::consts::FRAC_PI_4),
            Gate::RX(q, a) => psi.apply_1q(&matrices::rx(*a), *q),
            Gate::RY(q, a) => psi.apply_1q(&matrices::ry(*a), *q),
            Gate::RZ(q, a) => psi.apply_1q(&matrices::rz(*a), *q),
            Gate::Phase(q, a) => psi.apply_phase(*q, *a),
            Gate::CX(c, t) => psi.apply_cx(*c, *t),
            Gate::CZ(a, b) => psi.apply_cz(*a, *b),
            Gate::CRZ(c, t, a) => psi.apply_controlled_1q(&matrices::rz(*a), &[*c], *t),
            Gate::CPhase(c, t, a) => psi.apply_controlled_1q(&matrices::phase(*a), &[*c], *t),
            Gate::Swap(a, b) => psi.apply_swap(*a, *b),
            Gate::CCX(c1, c2, t) => psi.apply_controlled_1q(&matrices::x(), &[*c1, *c2], *t),
            Gate::MCZ(qs) => psi.apply_mcz(qs),
            Gate::MCRX(cs, t, a) => psi.apply_controlled_1q(&matrices::rx(*a), cs, *t),
            Gate::MCRY(cs, t, a) => psi.apply_controlled_1q(&matrices::ry(*a), cs, *t),
            Gate::Unitary(qs, u) => psi.apply_kq(u, qs),
        }
    }

    /// The gate's unitary on its own qubits (`2^k × 2^k`, controls as the
    /// more significant bits in `qubits()` order).
    pub fn local_matrix(&self) -> CMatrix {
        match self {
            Gate::H(_) => matrices::h(),
            Gate::X(_) => matrices::x(),
            Gate::Y(_) => matrices::y(),
            Gate::Z(_) => matrices::z(),
            Gate::S(_) => matrices::s(),
            Gate::Sdg(_) => matrices::sdg(),
            Gate::T(_) => matrices::phase(std::f64::consts::FRAC_PI_4),
            Gate::Tdg(_) => matrices::phase(-std::f64::consts::FRAC_PI_4),
            Gate::RX(_, a) => matrices::rx(*a),
            Gate::RY(_, a) => matrices::ry(*a),
            Gate::RZ(_, a) => matrices::rz(*a),
            Gate::Phase(_, a) => matrices::phase(*a),
            Gate::CX(..) => matrices::controlled(&matrices::x(), 1),
            Gate::CZ(..) => matrices::controlled(&matrices::z(), 1),
            Gate::CRZ(_, _, a) => matrices::controlled(&matrices::rz(*a), 1),
            Gate::CPhase(_, _, a) => matrices::controlled(&matrices::phase(*a), 1),
            Gate::Swap(..) => matrices::swap(),
            Gate::CCX(..) => matrices::controlled(&matrices::x(), 2),
            Gate::MCZ(qs) => matrices::controlled(&matrices::z(), qs.len() - 1),
            Gate::MCRX(cs, _, a) => matrices::controlled(&matrices::rx(*a), cs.len()),
            Gate::MCRY(cs, _, a) => matrices::controlled(&matrices::ry(*a), cs.len()),
            Gate::Unitary(_, u) => u.clone(),
        }
    }

    /// The gate's unitary embedded in an `n`-qubit register.
    pub fn full_matrix(&self, n_qubits: usize) -> CMatrix {
        self.local_matrix().embed(&self.qubits(), n_qubits)
    }
}

/// Constructors for the standard gate matrices.
pub mod matrices {
    use super::*;

    /// Hadamard.
    pub fn h() -> CMatrix {
        let s = 1.0 / 2f64.sqrt();
        CMatrix::from_rows(&[
            &[C64::real(s), C64::real(s)],
            &[C64::real(s), C64::real(-s)],
        ])
    }

    /// Pauli-X.
    pub fn x() -> CMatrix {
        CMatrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]])
    }

    /// Pauli-Y.
    pub fn y() -> CMatrix {
        CMatrix::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]])
    }

    /// Pauli-Z.
    pub fn z() -> CMatrix {
        CMatrix::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, -C64::ONE]])
    }

    /// Identity.
    pub fn i() -> CMatrix {
        CMatrix::identity(2)
    }

    /// `RX(θ) = exp(−iθX/2)`.
    pub fn rx(theta: f64) -> CMatrix {
        let c = C64::real((theta / 2.0).cos());
        let s = C64::new(0.0, -(theta / 2.0).sin());
        CMatrix::from_rows(&[&[c, s], &[s, c]])
    }

    /// `RY(θ) = exp(−iθY/2)`.
    pub fn ry(theta: f64) -> CMatrix {
        let c = C64::real((theta / 2.0).cos());
        let s = (theta / 2.0).sin();
        CMatrix::from_rows(&[&[c, C64::real(-s)], &[C64::real(s), c]])
    }

    /// `RZ(θ) = exp(−iθZ/2)`.
    pub fn rz(theta: f64) -> CMatrix {
        CMatrix::from_diag(&[C64::cis(-theta / 2.0), C64::cis(theta / 2.0)])
    }

    /// Phase gate `diag(1, e^{iθ})`.
    pub fn phase(theta: f64) -> CMatrix {
        CMatrix::from_diag(&[C64::ONE, C64::cis(theta)])
    }

    /// `S = diag(1, i)` with an exact imaginary unit rather than
    /// `cis(π/2)` (whose real part rounds to `6.1e-17`). Keeping the entry
    /// exact makes dense simulation of {X, Y, Z, S, S†, CX, CZ, SWAP}
    /// circuits float-exact, which the stabilizer-backend parity tests
    /// rely on.
    pub fn s() -> CMatrix {
        CMatrix::from_diag(&[C64::ONE, C64::I])
    }

    /// `S† = diag(1, −i)`, exact (see [`s`]).
    pub fn sdg() -> CMatrix {
        CMatrix::from_diag(&[C64::ONE, C64::new(0.0, -1.0)])
    }

    /// SWAP on two qubits.
    pub fn swap() -> CMatrix {
        let mut m = CMatrix::zeros(4, 4);
        m[(0, 0)] = C64::ONE;
        m[(1, 2)] = C64::ONE;
        m[(2, 1)] = C64::ONE;
        m[(3, 3)] = C64::ONE;
        m
    }

    /// Adds `n_controls` controls to a payload unitary, controls as the most
    /// significant qubits.
    pub fn controlled(payload: &CMatrix, n_controls: usize) -> CMatrix {
        let dp = payload.rows();
        let d = dp << n_controls;
        let mut m = CMatrix::identity(d);
        let offset = d - dp;
        for r in 0..dp {
            for c in 0..dp {
                m[(offset + r, offset + c)] = payload[(r, c)];
            }
        }
        m
    }

    /// The `k`-qubit Pauli string given by characters in `"IXYZ"`.
    ///
    /// # Panics
    ///
    /// Panics on characters outside `IXYZ`.
    pub fn pauli_string(s: &str) -> CMatrix {
        let mut m = CMatrix::identity(1);
        for ch in s.chars() {
            let p = match ch {
                'I' => i(),
                'X' => x(),
                'Y' => y(),
                'Z' => z(),
                other => panic!("invalid Pauli character {other:?}"),
            };
            m = m.kron(&p);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fixed_gates_are_unitary() {
        let gates = [
            Gate::H(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::RX(0, 0.3),
            Gate::RY(0, 1.2),
            Gate::RZ(0, -0.7),
            Gate::Phase(0, 2.0),
            Gate::CX(0, 1),
            Gate::CZ(0, 1),
            Gate::CRZ(0, 1, 0.4),
            Gate::CPhase(0, 1, 0.9),
            Gate::Swap(0, 1),
            Gate::CCX(0, 1, 2),
            Gate::MCZ(vec![0, 1, 2]),
            Gate::MCRX(vec![0, 1], 2, 0.8),
        ];
        for g in &gates {
            assert!(g.local_matrix().is_unitary(1e-12), "{g:?} not unitary");
        }
    }

    #[test]
    fn gate_inverse_cancels() {
        let gates = [
            Gate::S(0),
            Gate::T(0),
            Gate::RX(0, 0.37),
            Gate::RY(0, -1.1),
            Gate::RZ(0, 2.2),
            Gate::CRZ(0, 1, 0.6),
            Gate::MCRX(vec![0], 1, 1.5),
        ];
        for g in &gates {
            let m = g.local_matrix().matmul(&g.inverse().local_matrix());
            assert!(
                m.approx_eq(&CMatrix::identity(m.rows()), 1e-12),
                "{g:?} inverse failed"
            );
        }
    }

    #[test]
    fn apply_matches_full_matrix() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let gates = [
            Gate::H(1),
            Gate::CX(2, 0),
            Gate::CZ(0, 2),
            Gate::Swap(1, 2),
            Gate::CCX(2, 0, 1),
            Gate::MCZ(vec![0, 2]),
            Gate::MCRX(vec![1], 0, 0.9),
            Gate::RY(2, 0.5),
            Gate::CRZ(1, 2, -0.3),
        ];
        for g in &gates {
            let amps: Vec<C64> = (0..8)
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let sv = StateVector::from_amplitudes(amps);
            let mut fast = sv.clone();
            g.apply(&mut fast);
            let expected = g.full_matrix(3).matvec(sv.amplitudes());
            for (i, &e) in expected.iter().enumerate() {
                assert!(
                    fast.amplitudes()[i].approx_eq(e, 1e-12),
                    "{g:?} mismatch at {i}"
                );
            }
        }
    }

    #[test]
    fn swap_kernel_matches_cx_decomposition() {
        let mut sv = StateVector::basis_state(2, 0b10);
        Gate::Swap(0, 1).apply(&mut sv);
        assert_eq!(sv.amplitudes()[0b01], C64::ONE);

        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(37);
        let amps: Vec<C64> = (0..16)
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let sv = StateVector::from_amplitudes(amps);
        let mut direct = sv.clone();
        direct.apply_swap(1, 3);
        let mut via_cx = sv;
        via_cx.apply_cx(1, 3);
        via_cx.apply_cx(3, 1);
        via_cx.apply_cx(1, 3);
        for (i, &e) in via_cx.amplitudes().iter().enumerate() {
            assert!(
                direct.amplitudes()[i].approx_eq(e, 1e-12),
                "mismatch at {i}"
            );
        }
    }

    #[test]
    fn controlled_matrix_structure() {
        let cx = matrices::controlled(&matrices::x(), 1);
        // |10> -> |11>
        assert_eq!(cx[(3, 2)], C64::ONE);
        assert_eq!(cx[(0, 0)], C64::ONE);
        assert_eq!(cx[(1, 1)], C64::ONE);
    }

    #[test]
    fn pauli_string_dimensions() {
        let zz = matrices::pauli_string("ZZ");
        assert_eq!(zz.rows(), 4);
        assert_eq!(zz[(0, 0)], C64::ONE);
        assert_eq!(zz[(1, 1)], -C64::ONE);
        assert_eq!(zz[(2, 2)], -C64::ONE);
        assert_eq!(zz[(3, 3)], C64::ONE);
    }

    #[test]
    fn op_cost_scales_with_controls() {
        assert_eq!(Gate::CX(0, 1).op_cost(), 1);
        assert!(Gate::MCZ(vec![0, 1, 2, 3]).op_cost() > Gate::MCZ(vec![0, 1]).op_cost());
    }

    #[test]
    fn qubits_reported_in_order() {
        assert_eq!(Gate::CX(3, 1).qubits(), vec![3, 1]);
        assert_eq!(Gate::MCRX(vec![0, 2], 4, 0.1).qubits(), vec![0, 2, 4]);
    }
}
