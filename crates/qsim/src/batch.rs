//! Batched (gate-major) execution: one gate applied across many states in a
//! single strided pass.
//!
//! The characterization sweep executes the *same* circuit over dozens of
//! sampled input states. The per-state path walks the gate list once per
//! state, re-reading every gate matrix and re-deriving every kernel index
//! `B` times. [`StateBatch`] and [`DensityBatch`] invert that loop: storage
//! is batch-innermost (`data[amp_index * batch + lane]`), so each gate's
//! index arithmetic is computed once per amplitude block and the per-lane
//! update becomes a contiguous, autovectorization-friendly inner loop.
//!
//! # Bit-identity contract
//!
//! Every batched kernel uses the *same arithmetic expressions per element*
//! as the per-state kernels in [`crate::StateVector`] and
//! [`crate::DensityMatrix`] — including the `C64::ZERO`-seeded accumulation
//! folds and the `.scale(h)` forms, which differ at the last bit from
//! algebraically equal alternatives (`0.0 + (-0.0)` is `+0.0`). Lanes never
//! mix, so every lane of a batch is **bitwise identical** to running the
//! per-state kernel on that lane alone, at any batch size. The unit tests
//! below and the workspace-level proptests enforce this with exact
//! equality, keeping the per-state path as the oracle.
//!
//! [`StateBatchF32`] is the opt-in single-precision variant for
//! confidence-only sweeps: it is *not* bit-identical to the `f64` path and
//! instead tracks an accumulated Euclidean-norm error bound.

use morph_linalg::{CMatrix, C64};

use crate::bits;
use crate::density::DensityMatrix;
use crate::gate::{matrices, Gate};
use crate::noise::NoiseModel;
use crate::state::StateVector;

/// Disjoint mutable lane slices at `i0` and `j0` (requires `i0 + len <= j0`).
#[inline(always)]
fn lane_pair<T>(data: &mut [T], i0: usize, j0: usize, len: usize) -> (&mut [T], &mut [T]) {
    debug_assert!(i0 + len <= j0);
    let (head, tail) = data.split_at_mut(j0);
    (&mut head[i0..i0 + len], &mut tail[..len])
}

/// Four disjoint mutable lane slices; `starts` must be ascending with gaps
/// of at least `len`.
#[inline(always)]
fn lane_quad<T>(data: &mut [T], starts: [usize; 4], len: usize) -> [&mut [T]; 4] {
    debug_assert!(starts[0] + len <= starts[1]);
    debug_assert!(starts[1] + len <= starts[2]);
    debug_assert!(starts[2] + len <= starts[3]);
    let (s0, rest) = data.split_at_mut(starts[1]);
    let (s1, rest) = rest.split_at_mut(starts[2] - starts[1]);
    let (s2, s3) = rest.split_at_mut(starts[3] - starts[2]);
    [
        &mut s0[starts[0]..starts[0] + len],
        &mut s1[..len],
        &mut s2[..len],
        &mut s3[..len],
    ]
}

/// Widest SIMD level the running CPU supports for the `f64` lane kernels.
///
/// The kernels themselves are plain scalar Rust compiled three times — once
/// per feature level via `#[target_feature]` — so wider vectors never change
/// the per-element operations, only how many lanes retire per instruction.
/// Detection is cached by `is_x86_feature_detected!` itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimdLevel {
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    Portable,
}

#[inline]
fn simd_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return SimdLevel::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
    }
    SimdLevel::Portable
}

/// Stamps `#[target_feature]` wrappers for a generic lane-kernel body and a
/// dispatcher that picks the widest supported one. The body must be
/// `#[inline(always)]` so each wrapper recompiles it at its feature level.
macro_rules! simd_dispatch {
    ($dispatch:ident, $body:ident, $body_avx512:ident, $body_avx2:ident,
     ($($arg:ident: $ty:ty),* $(,)?)) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $body_avx512<const B: usize>($($arg: $ty),*) {
            $body::<B>($($arg),*)
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $body_avx2<const B: usize>($($arg: $ty),*) {
            $body::<B>($($arg),*)
        }

        #[allow(clippy::too_many_arguments)]
        fn $dispatch<const B: usize>($($arg: $ty),*) {
            match simd_level() {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: the feature was detected at runtime.
                SimdLevel::Avx512 => unsafe { $body_avx512::<B>($($arg),*) },
                #[cfg(target_arch = "x86_64")]
                // SAFETY: the feature was detected at runtime.
                SimdLevel::Avx2 => unsafe { $body_avx2::<B>($($arg),*) },
                SimdLevel::Portable => $body::<B>($($arg),*),
            }
        }
    };
}

/// Accumulates `o += u * a` exactly as `C64`'s `Mul` + `AddAssign` do for
/// planar operands: `o.re += u.re*a.re - u.im*a.im`,
/// `o.im += u.re*a.im + u.im*a.re`.
macro_rules! cmul_acc {
    ($or:ident, $oi:ident, $u:expr, $ar:expr, $ai:expr) => {
        $or += $u.re * $ar - $u.im * $ai;
        $oi += $u.re * $ai + $u.im * $ar;
    };
}

/// Single-qubit lane kernel over planar storage: one fused pass reads both
/// amplitude rows once and writes them once. Per element this is exactly
/// `x' = u00*a0 + u01*a1; y' = u10*a0 + u11*a1` in `C64` arithmetic, so
/// lanes stay bitwise identical to [`StateVector::apply_1q`]. `B` is the
/// compile-time batch width, or 0 for the runtime-width fallback.
#[inline(always)]
fn batch_1q_body<const B: usize>(
    re: &mut [f64],
    im: &mut [f64],
    batch: usize,
    dim: usize,
    shift: usize,
    uu: [C64; 4],
) {
    let b = if B == 0 { batch } else { B };
    debug_assert_eq!(b, batch);
    let mask = 1usize << shift;
    let [u00, u01, u10, u11] = uu;
    for base in 0..dim / 2 {
        let i = bits::deposit(base, shift);
        let j = i | mask;
        let (r0, r1) = lane_pair(re, i * b, j * b, b);
        let (i0, i1) = lane_pair(im, i * b, j * b, b);
        for l in 0..b {
            let (a0r, a0i) = (r0[l], i0[l]);
            let (a1r, a1i) = (r1[l], i1[l]);
            r0[l] = (u00.re * a0r - u00.im * a0i) + (u01.re * a1r - u01.im * a1i);
            i0[l] = (u00.re * a0i + u00.im * a0r) + (u01.re * a1i + u01.im * a1r);
            r1[l] = (u10.re * a0r - u10.im * a0i) + (u11.re * a1r - u11.im * a1i);
            i1[l] = (u10.re * a0i + u10.im * a0r) + (u11.re * a1i + u11.im * a1r);
        }
    }
}

simd_dispatch!(
    batch_1q_dispatch,
    batch_1q_body,
    batch_1q_body_avx512,
    batch_1q_body_avx2,
    (re: &mut [f64], im: &mut [f64], batch: usize, dim: usize, shift: usize, uu: [C64; 4])
);

/// Two-qubit lane kernel over planar storage: one fused pass per amplitude
/// quad loads the four input rows once and computes all four outputs, with
/// every complex multiply-add expanded into the scalar `f64` operations
/// `C64`'s `Mul`/`Add`/`AddAssign` perform for `acc += u[r][c] * a[c]`
/// folded from `C64::ZERO` in column order — bitwise identical to
/// [`StateVector::apply_2q`] per lane. `swap_mid` maps the ascending-index
/// middle slices back to the gate's row order `[i00, i00|mb, i00|ma,
/// i00|ma|mb]`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn batch_2q_body<const B: usize>(
    re: &mut [f64],
    im: &mut [f64],
    batch: usize,
    dim: usize,
    lo: usize,
    hi: usize,
    swap_mid: bool,
    uu: [[C64; 4]; 4],
) {
    let b = if B == 0 { batch } else { B };
    debug_assert_eq!(b, batch);
    let (mlo, mhi) = (1usize << lo, 1usize << hi);
    let [u0, u1, u2, u3] = uu;
    for base in 0..dim / 4 {
        let i00 = bits::deposit(bits::deposit(base, lo), hi);
        let starts = [
            i00 * b,
            (i00 | mlo) * b,
            (i00 | mhi) * b,
            (i00 | mlo | mhi) * b,
        ];
        let [r0, rlo, rhi, r3] = lane_quad(re, starts, b);
        let [i0, ilo, ihi, i3] = lane_quad(im, starts, b);
        let (r1, r2) = if swap_mid { (rlo, rhi) } else { (rhi, rlo) };
        let (i1, i2) = if swap_mid { (ilo, ihi) } else { (ihi, ilo) };
        for l in 0..b {
            let (a0r, a0i) = (r0[l], i0[l]);
            let (a1r, a1i) = (r1[l], i1[l]);
            let (a2r, a2i) = (r2[l], i2[l]);
            let (a3r, a3i) = (r3[l], i3[l]);
            let (mut o0r, mut o0i) = (0.0f64, 0.0f64);
            cmul_acc!(o0r, o0i, u0[0], a0r, a0i);
            cmul_acc!(o0r, o0i, u0[1], a1r, a1i);
            cmul_acc!(o0r, o0i, u0[2], a2r, a2i);
            cmul_acc!(o0r, o0i, u0[3], a3r, a3i);
            let (mut o1r, mut o1i) = (0.0f64, 0.0f64);
            cmul_acc!(o1r, o1i, u1[0], a0r, a0i);
            cmul_acc!(o1r, o1i, u1[1], a1r, a1i);
            cmul_acc!(o1r, o1i, u1[2], a2r, a2i);
            cmul_acc!(o1r, o1i, u1[3], a3r, a3i);
            let (mut o2r, mut o2i) = (0.0f64, 0.0f64);
            cmul_acc!(o2r, o2i, u2[0], a0r, a0i);
            cmul_acc!(o2r, o2i, u2[1], a1r, a1i);
            cmul_acc!(o2r, o2i, u2[2], a2r, a2i);
            cmul_acc!(o2r, o2i, u2[3], a3r, a3i);
            let (mut o3r, mut o3i) = (0.0f64, 0.0f64);
            cmul_acc!(o3r, o3i, u3[0], a0r, a0i);
            cmul_acc!(o3r, o3i, u3[1], a1r, a1i);
            cmul_acc!(o3r, o3i, u3[2], a2r, a2i);
            cmul_acc!(o3r, o3i, u3[3], a3r, a3i);
            r0[l] = o0r;
            i0[l] = o0i;
            r1[l] = o1r;
            i1[l] = o1i;
            r2[l] = o2r;
            i2[l] = o2i;
            r3[l] = o3r;
            i3[l] = o3i;
        }
    }
}

simd_dispatch!(
    batch_2q_dispatch,
    batch_2q_body,
    batch_2q_body_avx512,
    batch_2q_body_avx2,
    (
        re: &mut [f64],
        im: &mut [f64],
        batch: usize,
        dim: usize,
        lo: usize,
        hi: usize,
        swap_mid: bool,
        uu: [[C64; 4]; 4],
    )
);

/// A batch of `B` pure states over the same register, stored planar
/// (separate `re`/`im` planes) and batch-innermost: amplitude `i` of lane
/// `l` lives at `re[i * batch + lane]` / `im[i * batch + lane]`.
///
/// The planar split means the hot gate kernels read and write unit-stride
/// `f64` streams with loop-invariant coefficients — the shape the loop
/// vectorizer handles best — instead of interleaved complex pairs.
///
/// # Examples
///
/// ```
/// use morph_qsim::{Gate, StateBatch};
///
/// let mut batch = StateBatch::zero_states(2, 4);
/// batch.apply_gate(&Gate::H(0));
/// batch.apply_gate(&Gate::CX(0, 1));
/// for l in 0..4 {
///     assert!((batch.lane(l).probabilities()[3] - 0.5).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateBatch {
    n_qubits: usize,
    batch: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl StateBatch {
    /// `B` copies of `|0…0⟩`.
    pub fn zero_states(n_qubits: usize, batch: usize) -> Self {
        Self::assert_budget(n_qubits, batch);
        let len = (1usize << n_qubits) * batch;
        let mut re = vec![0.0f64; len];
        re[..batch].fill(1.0);
        StateBatch {
            n_qubits,
            batch,
            re,
            im: vec![0.0f64; len],
        }
    }

    /// Packs per-lane states into batch-innermost storage, bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty or qubit counts differ.
    pub fn from_states(states: &[StateVector]) -> Self {
        assert!(!states.is_empty(), "state batch cannot be empty");
        let n_qubits = states[0].n_qubits();
        assert!(
            states.iter().all(|s| s.n_qubits() == n_qubits),
            "all lanes must share one register size"
        );
        let batch = states.len();
        Self::assert_budget(n_qubits, batch);
        let dim = 1usize << n_qubits;
        let mut re = vec![0.0f64; dim * batch];
        let mut im = vec![0.0f64; dim * batch];
        for (l, s) in states.iter().enumerate() {
            for (i, &a) in s.amplitudes().iter().enumerate() {
                re[i * batch + l] = a.re;
                im[i * batch + l] = a.im;
            }
        }
        StateBatch {
            n_qubits,
            batch,
            re,
            im,
        }
    }

    fn assert_budget(n_qubits: usize, batch: usize) {
        assert!(batch >= 1, "state batch cannot be empty");
        assert!(n_qubits < 28, "state batch would exceed memory budget");
        assert!(
            batch <= (1usize << 27) >> n_qubits || batch == 1,
            "state batch of {batch} lanes at {n_qubits} qubits exceeds memory budget"
        );
    }

    /// Number of qubits per lane.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of lanes.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    #[inline]
    fn dim(&self) -> usize {
        1usize << self.n_qubits
    }

    #[inline]
    fn bit_shift(&self, qubit: usize) -> usize {
        assert!(qubit < self.n_qubits, "qubit {qubit} out of range");
        self.n_qubits - 1 - qubit
    }

    /// Extracts lane `lane` as a [`StateVector`], bit-exactly.
    pub fn lane(&self, lane: usize) -> StateVector {
        assert!(lane < self.batch, "lane {lane} out of range");
        let amps: Vec<C64> = (0..self.dim())
            .map(|i| {
                C64::new(
                    self.re[i * self.batch + lane],
                    self.im[i * self.batch + lane],
                )
            })
            .collect();
        StateVector::from_normalized_amplitudes(amps)
    }

    /// Reduced density matrix of `qubits` for one lane, read directly from
    /// the planar storage — no per-lane [`StateVector`] is materialized.
    ///
    /// Runs the same bucket scan as
    /// [`StateVector::reduced_density_matrix`] over the lane's strided
    /// amplitudes, so the result is bit-identical to
    /// `self.lane(lane).reduced_density_matrix(qubits)` without the
    /// `O(2^n)` gather-and-copy that `lane` performs. This is the batched
    /// sweep's tracepoint readout.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range lane or duplicate/out-of-range qubits.
    pub fn lane_reduced_density_matrix(&self, lane: usize, qubits: &[usize]) -> CMatrix {
        assert!(lane < self.batch, "lane {lane} out of range");
        let shifts: Vec<usize> = qubits.iter().map(|&q| self.bit_shift(q)).collect();
        let (batch, re, im) = (self.batch, &self.re, &self.im);
        crate::state::rdm_scan(self.dim(), &shifts, |i| {
            C64::new(re[i * batch + lane], im[i * batch + lane])
        })
    }

    /// Applies `gate` to every lane, dispatching exactly as
    /// [`Gate::apply`] does for a single state.
    pub fn apply_gate(&mut self, gate: &Gate) {
        morph_trace::counter("qsim/batch_gates", 1);
        match gate {
            Gate::H(q) => self.apply_h(*q),
            Gate::X(q) => self.apply_x(*q),
            Gate::Y(q) => self.apply_1q(&matrices::y(), *q),
            Gate::Z(q) => self.apply_z(*q),
            Gate::S(q) => self.apply_s(*q),
            Gate::Sdg(q) => self.apply_sdg(*q),
            Gate::T(q) => self.apply_phase(*q, std::f64::consts::FRAC_PI_4),
            Gate::Tdg(q) => self.apply_phase(*q, -std::f64::consts::FRAC_PI_4),
            Gate::RX(q, a) => self.apply_1q(&matrices::rx(*a), *q),
            Gate::RY(q, a) => self.apply_1q(&matrices::ry(*a), *q),
            Gate::RZ(q, a) => self.apply_1q(&matrices::rz(*a), *q),
            Gate::Phase(q, a) => self.apply_phase(*q, *a),
            Gate::CX(c, t) => self.apply_cx(*c, *t),
            Gate::CZ(a, b) => self.apply_cz(*a, *b),
            Gate::CRZ(c, t, a) => self.apply_controlled_1q(&matrices::rz(*a), &[*c], *t),
            Gate::CPhase(c, t, a) => self.apply_controlled_1q(&matrices::phase(*a), &[*c], *t),
            Gate::Swap(a, b) => self.apply_swap(*a, *b),
            Gate::CCX(c1, c2, t) => self.apply_controlled_1q(&matrices::x(), &[*c1, *c2], *t),
            Gate::MCZ(qs) => self.apply_mcz(qs),
            Gate::MCRX(cs, t, a) => self.apply_controlled_1q(&matrices::rx(*a), cs, *t),
            Gate::MCRY(cs, t, a) => self.apply_controlled_1q(&matrices::ry(*a), cs, *t),
            Gate::Unitary(qs, u) => self.apply_kq(u, qs),
        }
    }

    /// Batched [`StateVector::apply_1q`]: one index computation per
    /// amplitude pair, then a contiguous per-lane update.
    ///
    /// The per-lane loop splits each complex multiply-add into the exact
    /// scalar `f64` operations `C64`'s `Mul`/`Add` impls perform, in the
    /// same order, so every lane stays bitwise identical to
    /// [`StateVector::apply_1q`] while the loop body vectorizes cleanly
    /// (planar loads, loop-invariant coefficients, one output stream).
    pub fn apply_1q(&mut self, u: &CMatrix, qubit: usize) {
        assert_eq!(u.rows(), 2, "apply_1q requires a 2x2 matrix");
        assert_eq!(u.cols(), 2, "apply_1q requires a 2x2 matrix");
        // Monomorphize the hot batch widths so the per-lane loops have a
        // compile-time trip count (no bounds checks, full unroll + SIMD);
        // other widths share the same code with a runtime length.
        match self.batch {
            8 => self.apply_1q_lanes::<8>(u, qubit),
            16 => self.apply_1q_lanes::<16>(u, qubit),
            32 => self.apply_1q_lanes::<32>(u, qubit),
            64 => self.apply_1q_lanes::<64>(u, qubit),
            _ => self.apply_1q_lanes::<0>(u, qubit),
        }
    }

    /// `B` is the compile-time batch width, or `0` for the runtime-width
    /// fallback. Both paths run the identical per-element expressions.
    fn apply_1q_lanes<const B: usize>(&mut self, u: &CMatrix, qubit: usize) {
        let shift = self.bit_shift(qubit);
        let uu = [u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]];
        batch_1q_dispatch::<B>(
            &mut self.re,
            &mut self.im,
            self.batch,
            1 << self.n_qubits,
            shift,
            uu,
        );
    }

    /// Batched [`StateVector::apply_2q`] with the gate matrix hoisted into
    /// registers once per gate instead of once per amplitude quad.
    pub fn apply_2q(&mut self, u: &CMatrix, q_a: usize, q_b: usize) {
        assert_eq!(u.rows(), 4, "apply_2q requires a 4x4 matrix");
        assert_ne!(q_a, q_b, "two-qubit gate targets must differ");
        // Same monomorphization scheme as [`Self::apply_1q`].
        match self.batch {
            8 => self.apply_2q_lanes::<8>(u, q_a, q_b),
            16 => self.apply_2q_lanes::<16>(u, q_a, q_b),
            32 => self.apply_2q_lanes::<32>(u, q_a, q_b),
            64 => self.apply_2q_lanes::<64>(u, q_a, q_b),
            _ => self.apply_2q_lanes::<0>(u, q_a, q_b),
        }
    }

    /// `B` is the compile-time batch width, or `0` for the runtime-width
    /// fallback. Both paths run the identical per-element expressions.
    fn apply_2q_lanes<const B: usize>(&mut self, u: &CMatrix, q_a: usize, q_b: usize) {
        let sa = self.bit_shift(q_a);
        let sb = self.bit_shift(q_b);
        let mut uu = [[C64::ZERO; 4]; 4];
        for r in 0..4 {
            for c in 0..4 {
                uu[r][c] = u[(r, c)];
            }
        }
        batch_2q_dispatch::<B>(
            &mut self.re,
            &mut self.im,
            self.batch,
            1 << self.n_qubits,
            sa.min(sb),
            sa.max(sb),
            sb < sa,
            uu,
        );
    }

    /// Batched [`StateVector::apply_kq`]; `k <= 2` delegates so the
    /// arithmetic stays identical to the per-state dispatch.
    pub fn apply_kq(&mut self, u: &CMatrix, targets: &[usize]) {
        let k = targets.len();
        assert_eq!(
            u.rows(),
            1 << k,
            "operator size does not match target count"
        );
        match k {
            1 => return self.apply_1q(u, targets[0]),
            2 => return self.apply_2q(u, targets[0], targets[1]),
            _ => {}
        }
        let shifts: Vec<usize> = targets.iter().map(|&q| self.bit_shift(q)).collect();
        {
            let mut sorted = shifts.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicate targets");
        }
        let dk = 1usize << k;
        let sorted = {
            let mut s = shifts.clone();
            s.sort_unstable();
            s
        };
        let spread: Vec<usize> = (0..dk)
            .map(|t| {
                let mut mask = 0usize;
                for (bit, &s) in shifts.iter().enumerate() {
                    if (t >> (k - 1 - bit)) & 1 == 1 {
                        mask |= 1 << s;
                    }
                }
                mask
            })
            .collect();
        let b = self.batch;
        let mut scratch = vec![C64::ZERO; dk];
        for rest in 0..self.dim() >> k {
            let base = bits::deposit_multi(rest, &sorted);
            for l in 0..b {
                for (t, slot) in scratch.iter_mut().enumerate() {
                    let at = (base | spread[t]) * b + l;
                    *slot = C64::new(self.re[at], self.im[at]);
                }
                for r in 0..dk {
                    let mut acc = C64::ZERO;
                    for c in 0..dk {
                        acc += u[(r, c)] * scratch[c];
                    }
                    let at = (base | spread[r]) * b + l;
                    self.re[at] = acc.re;
                    self.im[at] = acc.im;
                }
            }
        }
    }

    /// Batched [`StateVector::apply_controlled_1q`].
    pub fn apply_controlled_1q(&mut self, u: &CMatrix, controls: &[usize], target: usize) {
        assert_eq!(u.rows(), 2, "controlled gate payload must be 2x2");
        let ts = self.bit_shift(target);
        let tmask = 1usize << ts;
        let cmask: usize = controls
            .iter()
            .map(|&c| {
                assert_ne!(c, target, "control equals target");
                1usize << self.bit_shift(c)
            })
            .sum();
        let fixed = {
            let mut f: Vec<usize> = controls.iter().map(|&c| self.bit_shift(c)).collect();
            f.push(ts);
            f.sort_unstable();
            f
        };
        let b = self.batch;
        let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
        for base in 0..self.dim() >> fixed.len() {
            let i = bits::deposit_multi(base, &fixed) | cmask;
            let j = i | tmask;
            let (r0, r1) = lane_pair(&mut self.re, i * b, j * b, b);
            let (i0, i1) = lane_pair(&mut self.im, i * b, j * b, b);
            for l in 0..b {
                let (a0r, a0i) = (r0[l], i0[l]);
                let (a1r, a1i) = (r1[l], i1[l]);
                r0[l] = (u00.re * a0r - u00.im * a0i) + (u01.re * a1r - u01.im * a1i);
                i0[l] = (u00.re * a0i + u00.im * a0r) + (u01.re * a1i + u01.im * a1r);
                r1[l] = (u10.re * a0r - u10.im * a0i) + (u11.re * a1r - u11.im * a1i);
                i1[l] = (u10.re * a0i + u10.im * a0r) + (u11.re * a1i + u11.im * a1r);
            }
        }
    }

    /// Batched [`StateVector::apply_h`].
    pub fn apply_h(&mut self, qubit: usize) {
        let h = 1.0 / 2f64.sqrt();
        let shift = self.bit_shift(qubit);
        let mask = 1usize << shift;
        let b = self.batch;
        for base in 0..self.dim() / 2 {
            let i = bits::deposit(base, shift);
            let j = i | mask;
            let (r0, r1) = lane_pair(&mut self.re, i * b, j * b, b);
            let (i0, i1) = lane_pair(&mut self.im, i * b, j * b, b);
            for l in 0..b {
                let (a0r, a0i) = (r0[l], i0[l]);
                let (a1r, a1i) = (r1[l], i1[l]);
                r0[l] = (a0r + a1r) * h;
                i0[l] = (a0i + a1i) * h;
                r1[l] = (a0r - a1r) * h;
                i1[l] = (a0i - a1i) * h;
            }
        }
    }

    /// Batched [`StateVector::apply_x`] — pure lane swaps, no arithmetic.
    pub fn apply_x(&mut self, qubit: usize) {
        let shift = self.bit_shift(qubit);
        let mask = 1usize << shift;
        let b = self.batch;
        for base in 0..self.dim() / 2 {
            let i = bits::deposit(base, shift);
            let (r0, r1) = lane_pair(&mut self.re, i * b, (i | mask) * b, b);
            r0.swap_with_slice(r1);
            let (i0, i1) = lane_pair(&mut self.im, i * b, (i | mask) * b, b);
            i0.swap_with_slice(i1);
        }
    }

    /// Batched [`StateVector::apply_z`].
    pub fn apply_z(&mut self, qubit: usize) {
        let shift = self.bit_shift(qubit);
        let mask = 1usize << shift;
        let b = self.batch;
        for base in 0..self.dim() / 2 {
            let i = (bits::deposit(base, shift) | mask) * b;
            for x in &mut self.re[i..i + b] {
                *x = -*x;
            }
            for x in &mut self.im[i..i + b] {
                *x = -*x;
            }
        }
    }

    /// Batched [`StateVector::apply_s`]: the exact component swap
    /// `(re, im) ↦ (−im, re)` per lane, bitwise identical to the per-state
    /// kernel.
    pub fn apply_s(&mut self, qubit: usize) {
        let shift = self.bit_shift(qubit);
        let mask = 1usize << shift;
        let b = self.batch;
        for base in 0..self.dim() / 2 {
            let i = (bits::deposit(base, shift) | mask) * b;
            let (re, im) = (&mut self.re[i..i + b], &mut self.im[i..i + b]);
            for l in 0..b {
                let (xr, xi) = (re[l], im[l]);
                re[l] = -xi;
                im[l] = xr;
            }
        }
    }

    /// Batched [`StateVector::apply_sdg`]: `(re, im) ↦ (im, −re)` per lane.
    pub fn apply_sdg(&mut self, qubit: usize) {
        let shift = self.bit_shift(qubit);
        let mask = 1usize << shift;
        let b = self.batch;
        for base in 0..self.dim() / 2 {
            let i = (bits::deposit(base, shift) | mask) * b;
            let (re, im) = (&mut self.re[i..i + b], &mut self.im[i..i + b]);
            for l in 0..b {
                let (xr, xi) = (re[l], im[l]);
                re[l] = xi;
                im[l] = -xr;
            }
        }
    }

    /// Batched [`StateVector::apply_phase`].
    pub fn apply_phase(&mut self, qubit: usize, theta: f64) {
        let shift = self.bit_shift(qubit);
        let mask = 1usize << shift;
        let phase = C64::cis(theta);
        let b = self.batch;
        for base in 0..self.dim() / 2 {
            let i = (bits::deposit(base, shift) | mask) * b;
            let (re, im) = (&mut self.re[i..i + b], &mut self.im[i..i + b]);
            for l in 0..b {
                let (xr, xi) = (re[l], im[l]);
                re[l] = xr * phase.re - xi * phase.im;
                im[l] = xr * phase.im + xi * phase.re;
            }
        }
    }

    /// Batched [`StateVector::apply_cx`].
    pub fn apply_cx(&mut self, control: usize, target: usize) {
        assert_ne!(control, target, "control equals target");
        let cs = self.bit_shift(control);
        let ts = self.bit_shift(target);
        let cmask = 1usize << cs;
        let tmask = 1usize << ts;
        let (lo, hi) = (cs.min(ts), cs.max(ts));
        let b = self.batch;
        for base in 0..self.dim() / 4 {
            let i = bits::deposit(bits::deposit(base, lo), hi) | cmask;
            let (r0, r1) = lane_pair(&mut self.re, i * b, (i | tmask) * b, b);
            r0.swap_with_slice(r1);
            let (i0, i1) = lane_pair(&mut self.im, i * b, (i | tmask) * b, b);
            i0.swap_with_slice(i1);
        }
    }

    /// Batched [`StateVector::apply_cz`].
    pub fn apply_cz(&mut self, q_a: usize, q_b: usize) {
        assert_ne!(q_a, q_b, "control equals target");
        let sa = self.bit_shift(q_a);
        let sb = self.bit_shift(q_b);
        let both = (1usize << sa) | (1usize << sb);
        let (lo, hi) = (sa.min(sb), sa.max(sb));
        let b = self.batch;
        for base in 0..self.dim() / 4 {
            let i = (bits::deposit(bits::deposit(base, lo), hi) | both) * b;
            for x in &mut self.re[i..i + b] {
                *x = -*x;
            }
            for x in &mut self.im[i..i + b] {
                *x = -*x;
            }
        }
    }

    /// Batched [`StateVector::apply_swap`].
    pub fn apply_swap(&mut self, q_a: usize, q_b: usize) {
        assert_ne!(q_a, q_b, "swap requires distinct qubits");
        let sa = self.bit_shift(q_a);
        let sb = self.bit_shift(q_b);
        let (ma, mb) = (1usize << sa, 1usize << sb);
        let (lo, hi) = (sa.min(sb), sa.max(sb));
        let b = self.batch;
        for base in 0..self.dim() / 4 {
            let i00 = bits::deposit(bits::deposit(base, lo), hi);
            let (pa, pb) = (i00 | ma, i00 | mb);
            let (plo, phi) = (pa.min(pb), pa.max(pb));
            let (r0, r1) = lane_pair(&mut self.re, plo * b, phi * b, b);
            r0.swap_with_slice(r1);
            let (i0, i1) = lane_pair(&mut self.im, plo * b, phi * b, b);
            i0.swap_with_slice(i1);
        }
    }

    /// Batched [`StateVector::apply_mcz`].
    pub fn apply_mcz(&mut self, qubits: &[usize]) {
        let shifts = {
            let mut s: Vec<usize> = qubits.iter().map(|&q| self.bit_shift(q)).collect();
            s.sort_unstable();
            s
        };
        let mask: usize = shifts.iter().map(|&s| 1usize << s).sum();
        let b = self.batch;
        for base in 0..self.dim() >> shifts.len() {
            let i = (bits::deposit_multi(base, &shifts) | mask) * b;
            for x in &mut self.re[i..i + b] {
                *x = -*x;
            }
            for x in &mut self.im[i..i + b] {
                *x = -*x;
            }
        }
    }
}

/// A batch of `B` mixed states, stored batch-innermost: element `(r, c)` of
/// lane `l` lives at `data[(r * d + c) * batch + lane]`. Row passes operate
/// on whole `d·B`-element rows, so the density path's cache-blocked sweeps
/// become long contiguous lane loops.
///
/// The per-element arithmetic mirrors the [`DensityMatrix`] qubit-local
/// kernels and closed-form channels exactly; worker chunking there never
/// changes element values, so every lane is bitwise identical to the
/// per-state path at any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityBatch {
    n_qubits: usize,
    batch: usize,
    data: Vec<C64>,
}

impl DensityBatch {
    /// Largest lane count that keeps an `n`-qubit density batch inside the
    /// memory budget (2^26 complex elements ≈ 1 GiB), at least 1 and at
    /// most `requested`.
    pub fn max_lanes(n_qubits: usize, requested: usize) -> usize {
        assert!(n_qubits <= 13, "density batch would exceed memory budget");
        let elems = 1usize << (2 * n_qubits);
        ((1usize << 26) / elems).clamp(1, requested.max(1))
    }

    fn assert_budget(n_qubits: usize, batch: usize) {
        assert!(batch >= 1, "density batch cannot be empty");
        assert_eq!(
            batch,
            Self::max_lanes(n_qubits, batch),
            "density batch of {batch} lanes at {n_qubits} qubits exceeds memory budget; \
             cap the request with DensityBatch::max_lanes"
        );
    }

    /// `B` copies of `|0…0⟩⟨0…0|`.
    pub fn zero_states(n_qubits: usize, batch: usize) -> Self {
        Self::assert_budget(n_qubits, batch);
        let d = 1usize << n_qubits;
        let mut data = vec![C64::ZERO; d * d * batch];
        data[..batch].fill(C64::ONE);
        DensityBatch {
            n_qubits,
            batch,
            data,
        }
    }

    /// Packs per-lane density matrices into batch-innermost storage,
    /// bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty or qubit counts differ.
    pub fn from_densities(states: &[DensityMatrix]) -> Self {
        assert!(!states.is_empty(), "density batch cannot be empty");
        let n_qubits = states[0].n_qubits();
        assert!(
            states.iter().all(|s| s.n_qubits() == n_qubits),
            "all lanes must share one register size"
        );
        let batch = states.len();
        Self::assert_budget(n_qubits, batch);
        let d = 1usize << n_qubits;
        let mut data = vec![C64::ZERO; d * d * batch];
        for (l, s) in states.iter().enumerate() {
            for (i, &a) in s.matrix().as_slice().iter().enumerate() {
                data[i * batch + l] = a;
            }
        }
        DensityBatch {
            n_qubits,
            batch,
            data,
        }
    }

    /// Number of qubits per lane.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of lanes.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    #[inline]
    fn dim(&self) -> usize {
        1usize << self.n_qubits
    }

    #[inline]
    fn shift(&self, qubit: usize) -> usize {
        assert!(qubit < self.n_qubits, "qubit {qubit} out of range");
        self.n_qubits - 1 - qubit
    }

    /// Extracts lane `lane` as a [`DensityMatrix`], bit-exactly.
    pub fn lane(&self, lane: usize) -> DensityMatrix {
        assert!(lane < self.batch, "lane {lane} out of range");
        let d = self.dim();
        let rho: Vec<C64> = (0..d * d)
            .map(|i| self.data[i * self.batch + lane])
            .collect();
        DensityMatrix::from_matrix(CMatrix::from_vec(d, d, rho))
    }

    /// Applies `gate` to every lane, dispatching exactly as
    /// [`DensityMatrix::apply_gate`] does for a single state.
    pub fn apply_gate(&mut self, gate: &Gate) {
        morph_trace::counter("qsim/batch_density_gates", 1);
        match gate {
            Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::RZ(q, _)
            | Gate::Phase(q, _) => {
                let u = gate.local_matrix();
                self.diag_1q(*q, u[(0, 0)], u[(1, 1)]);
            }
            Gate::H(q) | Gate::X(q) | Gate::Y(q) | Gate::RX(q, _) | Gate::RY(q, _) => {
                self.apply_1q(&gate.local_matrix(), *q);
            }
            Gate::CZ(c, t) => self.diag_controlled(&[*c], *t, C64::ONE, -C64::ONE),
            Gate::CPhase(c, t, a) => {
                self.diag_controlled(&[*c], *t, C64::ONE, C64::cis(*a));
            }
            Gate::CRZ(c, t, a) => {
                self.diag_controlled(&[*c], *t, C64::cis(-a / 2.0), C64::cis(a / 2.0));
            }
            Gate::MCZ(qs) => {
                let (last, rest) = qs.split_last().expect("MCZ over at least one qubit");
                self.diag_controlled(rest, *last, C64::ONE, -C64::ONE);
            }
            Gate::CX(c, t) => self.apply_controlled(&matrices::x(), &[*c], *t),
            Gate::CCX(c1, c2, t) => {
                self.apply_controlled(&matrices::x(), &[*c1, *c2], *t);
            }
            Gate::MCRX(cs, t, a) => {
                self.apply_controlled(&matrices::rx(*a), cs, *t);
            }
            Gate::MCRY(cs, t, a) => {
                self.apply_controlled(&matrices::ry(*a), cs, *t);
            }
            Gate::Swap(a, b) => self.apply_swap(*a, *b),
            Gate::Unitary(qs, u) => match qs.len() {
                1 => self.apply_1q(u, qs[0]),
                2 => self.apply_2q(u, qs[0], qs[1]),
                _ => self.apply_kq(u, qs),
            },
        }
    }

    /// Applies the channel noise that follows `gate`, mirroring
    /// [`NoiseModel::apply_to_density`] on every lane.
    pub fn apply_noise(&mut self, noise: &NoiseModel, gate: &Gate) {
        if noise.is_noiseless() {
            return;
        }
        let qs = gate.qubits();
        if qs.len() <= 1 {
            if noise.p1 > 0.0 {
                self.depolarize(qs[0], noise.p1);
            }
        } else if noise.p2 > 0.0 {
            for q in qs {
                self.depolarize(q, noise.p2);
            }
        }
    }

    /// Batched 1-qubit conjugation `ρ ← U ρ U†` on every lane.
    pub fn apply_1q(&mut self, u: &CMatrix, qubit: usize) {
        assert_eq!(u.rows(), 2, "apply_1q expects a 2×2 unitary");
        let shift = self.shift(qubit);
        let d = self.dim();
        let b = self.batch;
        let m = 1usize << shift;
        let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
        // Row pass: whole d·B-element rows paired on the target bit.
        for base in 0..d / 2 {
            let r0 = bits::deposit(base, shift);
            let (row0, row1) = lane_pair(&mut self.data, r0 * d * b, (r0 | m) * d * b, d * b);
            for (x, y) in row0.iter_mut().zip(row1.iter_mut()) {
                let a0 = *x;
                let a1 = *y;
                *x = u00 * a0 + u01 * a1;
                *y = u10 * a0 + u11 * a1;
            }
        }
        // Column pass: per row, mix the B-element column segments.
        let (c00, c01, c10, c11) = (u00.conj(), u01.conj(), u10.conj(), u11.conj());
        for row in self.data.chunks_mut(d * b) {
            for base in 0..d / 2 {
                let col0 = bits::deposit(base, shift);
                let (x0, x1) = lane_pair(row, col0 * b, (col0 | m) * b, b);
                for (x, y) in x0.iter_mut().zip(x1.iter_mut()) {
                    let b0 = *x;
                    let b1 = *y;
                    *x = b0 * c00 + b1 * c01;
                    *y = b0 * c10 + b1 * c11;
                }
            }
        }
    }

    /// Batched 2-qubit conjugation; `q_a` indexes the unitary's more
    /// significant qubit.
    pub fn apply_2q(&mut self, u: &CMatrix, q_a: usize, q_b: usize) {
        assert_eq!(u.rows(), 4, "apply_2q expects a 4×4 unitary");
        assert_ne!(q_a, q_b, "two-qubit gate requires distinct qubits");
        let sa = self.shift(q_a);
        let sb = self.shift(q_b);
        let d = self.dim();
        let b = self.batch;
        let ma = 1usize << sa;
        let mb = 1usize << sb;
        let (lo, hi) = (sa.min(sb), sa.max(sb));
        let (mlo, mhi) = (1usize << lo, 1usize << hi);
        let mut uu = [[C64::ZERO; 4]; 4];
        for r in 0..4 {
            for c in 0..4 {
                uu[r][c] = u[(r, c)];
            }
        }
        // Row pass over whole-row quads.
        for base in 0..d / 4 {
            let r00 = bits::deposit(bits::deposit(base, lo), hi);
            let starts = [
                r00 * d * b,
                (r00 | mlo) * d * b,
                (r00 | mhi) * d * b,
                (r00 | mlo | mhi) * d * b,
            ];
            let [q0, qlo, qhi, q3] = lane_quad(&mut self.data, starts, d * b);
            let (q1, q2) = if mb < ma { (qlo, qhi) } else { (qhi, qlo) };
            for idx in 0..d * b {
                let a = [q0[idx], q1[idx], q2[idx], q3[idx]];
                let mut out = [C64::ZERO; 4];
                for (j, o) in out.iter_mut().enumerate() {
                    for (k, &ak) in a.iter().enumerate() {
                        *o += uu[j][k] * ak;
                    }
                }
                q0[idx] = out[0];
                q1[idx] = out[1];
                q2[idx] = out[2];
                q3[idx] = out[3];
            }
        }
        // Column pass: per row, mix the column-segment quad with conj(u).
        for row in self.data.chunks_mut(d * b) {
            for base in 0..d / 4 {
                let c00 = bits::deposit(bits::deposit(base, lo), hi);
                let starts = [
                    c00 * b,
                    (c00 | mlo) * b,
                    (c00 | mhi) * b,
                    (c00 | mlo | mhi) * b,
                ];
                let [q0, qlo, qhi, q3] = lane_quad(row, starts, b);
                let (q1, q2) = if mb < ma { (qlo, qhi) } else { (qhi, qlo) };
                for l in 0..b {
                    let bb = [q0[l], q1[l], q2[l], q3[l]];
                    let mut out = [C64::ZERO; 4];
                    for (j, o) in out.iter_mut().enumerate() {
                        for (k, &bk) in bb.iter().enumerate() {
                            *o += bk * uu[j][k].conj();
                        }
                    }
                    q0[l] = out[0];
                    q1[l] = out[1];
                    q2[l] = out[2];
                    q3[l] = out[3];
                }
            }
        }
    }

    /// Batched multi-controlled 1-qubit conjugation.
    pub fn apply_controlled(&mut self, u: &CMatrix, controls: &[usize], target: usize) {
        assert_eq!(u.rows(), 2, "controlled payload must be 2×2");
        if controls.is_empty() {
            return self.apply_1q(u, target);
        }
        let mut cmask = 0usize;
        for &c in controls {
            assert_ne!(c, target, "control equals target");
            cmask |= 1usize << self.shift(c);
        }
        let tshift = self.shift(target);
        let tm = 1usize << tshift;
        let d = self.dim();
        let b = self.batch;
        let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
        let mut fixed: Vec<usize> = (0..usize::BITS as usize)
            .filter(|&s| cmask & (1 << s) != 0)
            .collect();
        fixed.push(tshift);
        fixed.sort_unstable();
        let n_base = d >> fixed.len();
        // Row pass: rows with controls set, paired on the target bit.
        for base in 0..n_base {
            let r0 = bits::deposit_multi(base, &fixed) | cmask;
            let (row0, row1) = lane_pair(&mut self.data, r0 * d * b, (r0 | tm) * d * b, d * b);
            for (x, y) in row0.iter_mut().zip(row1.iter_mut()) {
                let a0 = *x;
                let a1 = *y;
                *x = u00 * a0 + u01 * a1;
                *y = u10 * a0 + u11 * a1;
            }
        }
        // Column pass.
        let (c00, c01, c10, c11) = (u00.conj(), u01.conj(), u10.conj(), u11.conj());
        for row in self.data.chunks_mut(d * b) {
            for base in 0..n_base {
                let col0 = bits::deposit_multi(base, &fixed) | cmask;
                let (x0, x1) = lane_pair(row, col0 * b, (col0 | tm) * b, b);
                for (x, y) in x0.iter_mut().zip(x1.iter_mut()) {
                    let b0 = *x;
                    let b1 = *y;
                    *x = b0 * c00 + b1 * c01;
                    *y = b0 * c10 + b1 * c11;
                }
            }
        }
    }

    /// Batched SWAP conjugation: row exchanges then column exchanges, no
    /// arithmetic at all.
    pub fn apply_swap(&mut self, q_a: usize, q_b: usize) {
        assert_ne!(q_a, q_b, "swap requires distinct qubits");
        let sa = self.shift(q_a);
        let sb = self.shift(q_b);
        let d = self.dim();
        let b = self.batch;
        let ma = 1usize << sa;
        let mb = 1usize << sb;
        let (lo, hi) = (sa.min(sb), sa.max(sb));
        for base in 0..d / 4 {
            let r00 = bits::deposit(bits::deposit(base, lo), hi);
            let (ra, rb) = (r00 | ma, r00 | mb);
            let (rlo, rhi) = (ra.min(rb), ra.max(rb));
            let (x0, x1) = lane_pair(&mut self.data, rlo * d * b, rhi * d * b, d * b);
            for (x, y) in x0.iter_mut().zip(x1.iter_mut()) {
                std::mem::swap(x, y);
            }
        }
        for row in self.data.chunks_mut(d * b) {
            for base in 0..d / 4 {
                let c00 = bits::deposit(bits::deposit(base, lo), hi);
                let (ca, cb) = (c00 | ma, c00 | mb);
                let (clo, chi) = (ca.min(cb), ca.max(cb));
                let (x0, x1) = lane_pair(row, clo * b, chi * b, b);
                for (x, y) in x0.iter_mut().zip(x1.iter_mut()) {
                    std::mem::swap(x, y);
                }
            }
        }
    }

    /// Batched diagonal-unitary conjugation:
    /// `ρ[r][c] ← diag[r] · ρ[r][c] · conj(diag[c])` on every lane.
    pub fn apply_diag(&mut self, diag: &[C64]) {
        let d = self.dim();
        let b = self.batch;
        assert_eq!(diag.len(), d, "diagonal length mismatch");
        for (r, row) in self.data.chunks_mut(d * b).enumerate() {
            let dr = diag[r];
            for (c, seg) in row.chunks_mut(b).enumerate() {
                let dc = diag[c];
                for x in seg.iter_mut() {
                    *x = dr * *x * dc.conj();
                }
            }
        }
    }

    fn diag_1q(&mut self, qubit: usize, d0: C64, d1: C64) {
        let m = 1usize << self.shift(qubit);
        let d = self.dim();
        let diag: Vec<C64> = (0..d).map(|i| if i & m != 0 { d1 } else { d0 }).collect();
        self.apply_diag(&diag);
    }

    fn diag_controlled(&mut self, controls: &[usize], target: usize, p0: C64, p1: C64) {
        let mut cmask = 0usize;
        for &c in controls {
            assert_ne!(c, target, "control equals target");
            cmask |= 1usize << self.shift(c);
        }
        let tm = 1usize << self.shift(target);
        let d = self.dim();
        let diag: Vec<C64> = (0..d)
            .map(|i| {
                if i & cmask != cmask {
                    C64::ONE
                } else if i & tm != 0 {
                    p1
                } else {
                    p0
                }
            })
            .collect();
        self.apply_diag(&diag);
    }

    /// Batched k-qubit conjugation on `targets` (most significant first),
    /// mirroring [`DensityMatrix::apply_kq_local`] per lane.
    pub fn apply_kq(&mut self, u: &CMatrix, targets: &[usize]) {
        let k = targets.len();
        let dk = 1usize << k;
        assert_eq!(u.rows(), dk, "unitary does not match target count");
        let d = self.dim();
        let b = self.batch;
        let mut sorted: Vec<usize> = targets.iter().map(|&q| self.shift(q)).collect();
        sorted.sort_unstable();
        assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "duplicate target qubit"
        );
        let spread: Vec<usize> = (0..dk)
            .map(|j| {
                let mut mask = 0usize;
                for (bit, &q) in targets.iter().rev().enumerate() {
                    if j & (1 << bit) != 0 {
                        mask |= 1usize << self.shift(q);
                    }
                }
                mask
            })
            .collect();
        let n_rest = d >> k;
        let mut block = vec![C64::ZERO; dk * dk];
        let mut tmp = vec![C64::ZERO; dk * dk];
        for lane in 0..b {
            for rr in 0..n_rest {
                let row_base = bits::deposit_multi(rr, &sorted);
                for cr in 0..n_rest {
                    let col_base = bits::deposit_multi(cr, &sorted);
                    for j in 0..dk {
                        let row = (row_base | spread[j]) * d + col_base;
                        for l in 0..dk {
                            block[j * dk + l] = self.data[(row + spread[l]) * b + lane];
                        }
                    }
                    // tmp = U · block
                    for j in 0..dk {
                        for l in 0..dk {
                            let mut acc = C64::ZERO;
                            for p in 0..dk {
                                acc += u[(j, p)] * block[p * dk + l];
                            }
                            tmp[j * dk + l] = acc;
                        }
                    }
                    // out = tmp · U†, scattered back in place.
                    for j in 0..dk {
                        let row = (row_base | spread[j]) * d + col_base;
                        for l in 0..dk {
                            let mut acc = C64::ZERO;
                            for p in 0..dk {
                                acc += tmp[j * dk + p] * u[(l, p)].conj();
                            }
                            self.data[(row + spread[l]) * b + lane] = acc;
                        }
                    }
                }
            }
        }
    }

    /// Batched closed-form single-qubit channel, mirroring
    /// [`DensityMatrix`]'s `kernel_channel_1q` per lane.
    fn channel_1q<F>(&mut self, shift: usize, f: F)
    where
        F: Fn(C64, C64, C64, C64) -> (C64, C64, C64, C64),
    {
        let d = self.dim();
        let b = self.batch;
        let m = 1usize << shift;
        for rbase in 0..d / 2 {
            let r0 = bits::deposit(rbase, shift);
            let (row0, row1) = lane_pair(&mut self.data, r0 * d * b, (r0 | m) * d * b, d * b);
            for cbase in 0..d / 2 {
                let c0 = bits::deposit(cbase, shift);
                let c1 = c0 | m;
                for l in 0..b {
                    let (a, bb, c, dd) = (
                        row0[c0 * b + l],
                        row0[c1 * b + l],
                        row1[c0 * b + l],
                        row1[c1 * b + l],
                    );
                    let (na, nb, nc, nd) = f(a, bb, c, dd);
                    row0[c0 * b + l] = na;
                    row0[c1 * b + l] = nb;
                    row1[c0 * b + l] = nc;
                    row1[c1 * b + l] = nd;
                }
            }
        }
    }

    /// Batched [`DensityMatrix::depolarize`].
    pub fn depolarize(&mut self, qubit: usize, p: f64) {
        let shift = self.shift(qubit);
        let keep = 1.0 - p / 2.0;
        let mix = p / 2.0;
        let coh = 1.0 - p;
        self.channel_1q(shift, |a, b, c, dd| {
            (
                a.scale(keep) + dd.scale(mix),
                b.scale(coh),
                c.scale(coh),
                dd.scale(keep) + a.scale(mix),
            )
        });
    }

    /// Batched [`DensityMatrix::bit_flip`].
    pub fn bit_flip(&mut self, qubit: usize, p: f64) {
        let shift = self.shift(qubit);
        let keep = 1.0 - p;
        self.channel_1q(shift, |a, b, c, dd| {
            (
                a.scale(keep) + dd.scale(p),
                b.scale(keep) + c.scale(p),
                c.scale(keep) + b.scale(p),
                dd.scale(keep) + a.scale(p),
            )
        });
    }

    /// Batched [`DensityMatrix::phase_damp`].
    pub fn phase_damp(&mut self, qubit: usize, lambda: f64) {
        let shift = self.shift(qubit);
        let damp = (1.0 - lambda).sqrt();
        self.channel_1q(shift, |a, b, c, dd| (a, b.scale(damp), c.scale(damp), dd));
    }

    /// Batched [`DensityMatrix::amplitude_damp`].
    pub fn amplitude_damp(&mut self, qubit: usize, gamma: f64) {
        let shift = self.shift(qubit);
        let damp = (1.0 - gamma).sqrt();
        let keep = 1.0 - gamma;
        self.channel_1q(shift, |a, b, c, dd| {
            (
                a + dd.scale(gamma),
                b.scale(damp),
                c.scale(damp),
                dd.scale(keep),
            )
        });
    }
}

/// Single-precision batch for confidence-only sweeps: planar `f32` storage
/// (`re`/`im` at `[amp_index * batch + lane]`) with a tracked Euclidean-norm
/// error bound.
///
/// Results are **not** bit-identical to the `f64` path and must never feed
/// cached characterization artifacts; the intended use is cheap confidence
/// screening where [`Self::error_bound`] certifies how far any lane can
/// have drifted from the exact `f64` amplitudes (2-norm). Permutation-only
/// gates (X, CX, Swap) and pure sign flips (Z, CZ, MCZ) are exact and do
/// not grow the bound.
#[derive(Debug, Clone, PartialEq)]
pub struct StateBatchF32 {
    n_qubits: usize,
    batch: usize,
    re: Vec<f32>,
    im: Vec<f32>,
    error_bound: f64,
}

impl StateBatchF32 {
    /// `B` copies of `|0…0⟩` (exact: no conversion error yet).
    pub fn zero_states(n_qubits: usize, batch: usize) -> Self {
        StateBatch::assert_budget(n_qubits, batch);
        let len = (1usize << n_qubits) * batch;
        let mut re = vec![0f32; len];
        re[..batch].fill(1.0);
        StateBatchF32 {
            n_qubits,
            batch,
            re,
            im: vec![0f32; len],
            error_bound: 0.0,
        }
    }

    /// Rounds per-lane `f64` states into planar `f32` storage; the initial
    /// error bound is the conversion's relative rounding, `f32::EPSILON`.
    pub fn from_states(states: &[StateVector]) -> Self {
        assert!(!states.is_empty(), "state batch cannot be empty");
        let n_qubits = states[0].n_qubits();
        assert!(
            states.iter().all(|s| s.n_qubits() == n_qubits),
            "all lanes must share one register size"
        );
        let batch = states.len();
        StateBatch::assert_budget(n_qubits, batch);
        let dim = 1usize << n_qubits;
        let mut re = vec![0f32; dim * batch];
        let mut im = vec![0f32; dim * batch];
        for (l, s) in states.iter().enumerate() {
            for (i, &a) in s.amplitudes().iter().enumerate() {
                re[i * batch + l] = a.re as f32;
                im[i * batch + l] = a.im as f32;
            }
        }
        StateBatchF32 {
            n_qubits,
            batch,
            re,
            im,
            error_bound: f32::EPSILON as f64,
        }
    }

    /// Number of qubits per lane.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of lanes.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Accumulated 2-norm error bound versus the exact `f64` evolution.
    #[inline]
    pub fn error_bound(&self) -> f64 {
        self.error_bound
    }

    #[inline]
    fn dim(&self) -> usize {
        1usize << self.n_qubits
    }

    #[inline]
    fn bit_shift(&self, qubit: usize) -> usize {
        assert!(qubit < self.n_qubits, "qubit {qubit} out of range");
        self.n_qubits - 1 - qubit
    }

    /// Widens lane `lane` back to a [`StateVector`]. The result is only
    /// approximately normalized; its distance (2-norm) from the exact state
    /// is at most [`Self::error_bound`].
    pub fn lane(&self, lane: usize) -> StateVector {
        assert!(lane < self.batch, "lane {lane} out of range");
        let amps: Vec<C64> = (0..self.dim())
            .map(|i| {
                let at = i * self.batch + lane;
                C64::new(self.re[at] as f64, self.im[at] as f64)
            })
            .collect();
        StateVector::from_normalized_amplitudes(amps)
    }

    /// Applies `gate` to every lane, growing the error bound for every
    /// non-exact gate by `2^k · 8 · ε_f32` (a forward bound on a length-2^k
    /// complex dot product with unit-bounded coefficients).
    pub fn apply_gate(&mut self, gate: &Gate) {
        match gate {
            Gate::X(q) => return self.apply_x(*q),
            Gate::Z(q) => return self.negate_where(1usize << self.bit_shift(*q)),
            Gate::CX(c, t) => return self.apply_cx(*c, *t),
            Gate::CZ(a, b) => {
                let mask = (1usize << self.bit_shift(*a)) | (1usize << self.bit_shift(*b));
                return self.negate_where(mask);
            }
            Gate::MCZ(qs) => {
                let mask = qs
                    .iter()
                    .map(|&q| 1usize << self.bit_shift(q))
                    .fold(0usize, |m, x| m | x);
                return self.negate_where(mask);
            }
            Gate::Swap(a, b) => return self.apply_swap(*a, *b),
            _ => {}
        }
        let qs = gate.qubits();
        let u = gate.local_matrix();
        if qs.len() == 1 {
            self.apply_1q(&u, qs[0]);
        } else {
            self.apply_kq(&u, &qs);
        }
        self.error_bound += (1usize << qs.len()) as f64 * 8.0 * f32::EPSILON as f64;
    }

    fn apply_1q(&mut self, u: &CMatrix, qubit: usize) {
        let shift = self.bit_shift(qubit);
        let mask = 1usize << shift;
        let b = self.batch;
        let (u00r, u00i) = (u[(0, 0)].re as f32, u[(0, 0)].im as f32);
        let (u01r, u01i) = (u[(0, 1)].re as f32, u[(0, 1)].im as f32);
        let (u10r, u10i) = (u[(1, 0)].re as f32, u[(1, 0)].im as f32);
        let (u11r, u11i) = (u[(1, 1)].re as f32, u[(1, 1)].im as f32);
        for base in 0..self.dim() / 2 {
            let i = bits::deposit(base, shift) * b;
            let j = (bits::deposit(base, shift) | mask) * b;
            for l in 0..b {
                let (a0r, a0i) = (self.re[i + l], self.im[i + l]);
                let (a1r, a1i) = (self.re[j + l], self.im[j + l]);
                self.re[i + l] = u00r * a0r - u00i * a0i + u01r * a1r - u01i * a1i;
                self.im[i + l] = u00r * a0i + u00i * a0r + u01r * a1i + u01i * a1r;
                self.re[j + l] = u10r * a0r - u10i * a0i + u11r * a1r - u11i * a1i;
                self.im[j + l] = u10r * a0i + u10i * a0r + u11r * a1i + u11i * a1r;
            }
        }
    }

    fn apply_kq(&mut self, u: &CMatrix, targets: &[usize]) {
        let k = targets.len();
        let dk = 1usize << k;
        assert_eq!(u.rows(), dk, "operator size does not match target count");
        let shifts: Vec<usize> = targets.iter().map(|&q| self.bit_shift(q)).collect();
        let sorted = {
            let mut s = shifts.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), k, "duplicate targets");
            s
        };
        let spread: Vec<usize> = (0..dk)
            .map(|t| {
                let mut mask = 0usize;
                for (bit, &s) in shifts.iter().enumerate() {
                    if (t >> (k - 1 - bit)) & 1 == 1 {
                        mask |= 1 << s;
                    }
                }
                mask
            })
            .collect();
        let mut ur = vec![0f32; dk * dk];
        let mut ui = vec![0f32; dk * dk];
        for r in 0..dk {
            for c in 0..dk {
                ur[r * dk + c] = u[(r, c)].re as f32;
                ui[r * dk + c] = u[(r, c)].im as f32;
            }
        }
        let b = self.batch;
        let mut sr = vec![0f32; dk];
        let mut si = vec![0f32; dk];
        for rest in 0..self.dim() >> k {
            let base = bits::deposit_multi(rest, &sorted);
            for l in 0..b {
                for t in 0..dk {
                    sr[t] = self.re[(base | spread[t]) * b + l];
                    si[t] = self.im[(base | spread[t]) * b + l];
                }
                for r in 0..dk {
                    let mut ar = 0f32;
                    let mut ai = 0f32;
                    for c in 0..dk {
                        let (urc, uic) = (ur[r * dk + c], ui[r * dk + c]);
                        ar += urc * sr[c] - uic * si[c];
                        ai += urc * si[c] + uic * sr[c];
                    }
                    self.re[(base | spread[r]) * b + l] = ar;
                    self.im[(base | spread[r]) * b + l] = ai;
                }
            }
        }
    }

    fn apply_x(&mut self, qubit: usize) {
        let shift = self.bit_shift(qubit);
        let mask = 1usize << shift;
        let b = self.batch;
        for base in 0..self.dim() / 2 {
            let i = bits::deposit(base, shift);
            self.swap_blocks(i * b, (i | mask) * b);
        }
    }

    fn apply_cx(&mut self, control: usize, target: usize) {
        assert_ne!(control, target, "control equals target");
        let cs = self.bit_shift(control);
        let ts = self.bit_shift(target);
        let cmask = 1usize << cs;
        let tmask = 1usize << ts;
        let (lo, hi) = (cs.min(ts), cs.max(ts));
        let b = self.batch;
        for base in 0..self.dim() / 4 {
            let i = bits::deposit(bits::deposit(base, lo), hi) | cmask;
            self.swap_blocks(i * b, (i | tmask) * b);
        }
    }

    fn apply_swap(&mut self, q_a: usize, q_b: usize) {
        assert_ne!(q_a, q_b, "swap requires distinct qubits");
        let sa = self.bit_shift(q_a);
        let sb = self.bit_shift(q_b);
        let (ma, mb) = (1usize << sa, 1usize << sb);
        let (lo, hi) = (sa.min(sb), sa.max(sb));
        let b = self.batch;
        for base in 0..self.dim() / 4 {
            let i00 = bits::deposit(bits::deposit(base, lo), hi);
            let (pa, pb) = (i00 | ma, i00 | mb);
            self.swap_blocks(pa.min(pb) * b, pa.max(pb) * b);
        }
    }

    /// Negates every amplitude whose index has all bits of `mask` set.
    fn negate_where(&mut self, mask: usize) {
        let shifts: Vec<usize> = (0..self.n_qubits)
            .filter(|&s| mask & (1 << s) != 0)
            .collect();
        let b = self.batch;
        for base in 0..self.dim() >> shifts.len() {
            let i = (bits::deposit_multi(base, &shifts) | mask) * b;
            for x in &mut self.re[i..i + b] {
                *x = -*x;
            }
            for x in &mut self.im[i..i + b] {
                *x = -*x;
            }
        }
    }

    fn swap_blocks(&mut self, i0: usize, j0: usize) {
        let b = self.batch;
        debug_assert!(i0 + b <= j0);
        for plane in [&mut self.re, &mut self.im] {
            let (head, tail) = plane.split_at_mut(j0);
            head[i0..i0 + b].swap_with_slice(&mut tail[..b]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn every_gate(n: usize) -> Vec<Gate> {
        assert!(n >= 4);
        vec![
            Gate::H(0),
            Gate::X(1),
            Gate::Y(2),
            Gate::Z(3),
            Gate::S(0),
            Gate::Sdg(1),
            Gate::T(2),
            Gate::Tdg(3),
            Gate::RX(0, 0.37),
            Gate::RY(1, -1.1),
            Gate::RZ(2, 2.2),
            Gate::Phase(3, 0.9),
            Gate::CX(0, 2),
            Gate::CX(3, 1),
            Gate::CZ(1, 3),
            Gate::CRZ(2, 0, 0.6),
            Gate::CPhase(0, 3, -0.4),
            Gate::Swap(1, 2),
            Gate::Swap(3, 0),
            Gate::CCX(2, 0, 1),
            Gate::MCZ(vec![0, 2, 3]),
            Gate::MCRX(vec![1], 3, 0.8),
            Gate::MCRY(vec![0, 2], 1, -0.6),
            Gate::Unitary(vec![2], matrices::ry(0.3)),
            Gate::Unitary(vec![3, 1], matrices::swap()),
            Gate::Unitary(vec![0, 3], matrices::controlled(&matrices::rx(0.5), 1)),
            Gate::Unitary(vec![1, 3, 0], matrices::controlled(&matrices::rx(0.5), 2)),
        ]
    }

    fn random_states(n: usize, count: usize, seed: u64) -> Vec<StateVector> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let amps: Vec<C64> = (0..1usize << n)
                    .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                    .collect();
                StateVector::from_amplitudes(amps)
            })
            .collect()
    }

    fn random_densities(n: usize, count: usize, seed: u64) -> Vec<DensityMatrix> {
        random_states(n, count, seed)
            .iter()
            .map(DensityMatrix::from_state_vector)
            .collect()
    }

    #[test]
    fn state_batch_matches_per_state_bitwise() {
        for batch_size in [1usize, 3, 8] {
            let mut lanes = random_states(4, batch_size, 7 + batch_size as u64);
            let mut batch = StateBatch::from_states(&lanes);
            for g in every_gate(4) {
                batch.apply_gate(&g);
                for psi in lanes.iter_mut() {
                    g.apply(psi);
                }
                for (l, psi) in lanes.iter().enumerate() {
                    assert_eq!(batch.lane(l), *psi, "{g:?} lane {l} (B={batch_size})");
                }
            }
        }
    }

    #[test]
    fn lane_direct_rdm_matches_gathered_lane_bitwise() {
        for batch_size in [1usize, 3, 8] {
            let mut batch =
                StateBatch::from_states(&random_states(4, batch_size, 101 + batch_size as u64));
            for g in every_gate(4) {
                batch.apply_gate(&g);
            }
            for lane in 0..batch_size {
                let gathered = batch.lane(lane);
                for qubits in [&[0usize][..], &[2, 0], &[1, 3], &[3, 1, 0], &[0, 1, 2, 3]] {
                    let direct = batch.lane_reduced_density_matrix(lane, qubits);
                    let via_state = gathered.reduced_density_matrix(qubits);
                    assert_eq!(direct.rows(), via_state.rows());
                    for r in 0..direct.rows() {
                        for c in 0..direct.cols() {
                            assert_eq!(
                                direct[(r, c)],
                                via_state[(r, c)],
                                "lane {lane} qubits {qubits:?} entry ({r},{c})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn density_batch_matches_per_state_bitwise() {
        for batch_size in [1usize, 2, 5] {
            let mut lanes = random_densities(3, batch_size, 31 + batch_size as u64);
            let mut batch = DensityBatch::from_densities(&lanes);
            for g in every_gate(4)
                .into_iter()
                .filter(|g| g.qubits().iter().all(|&q| q < 3))
            {
                batch.apply_gate(&g);
                for rho in lanes.iter_mut() {
                    rho.apply_gate(&g);
                }
                for (l, rho) in lanes.iter().enumerate() {
                    assert_eq!(batch.lane(l), *rho, "{g:?} lane {l} (B={batch_size})");
                }
            }
        }
    }

    #[test]
    fn density_batch_channels_match_per_state_bitwise() {
        let mut lanes = random_densities(3, 4, 91);
        let mut batch = DensityBatch::from_densities(&lanes);
        batch.depolarize(1, 0.13);
        batch.bit_flip(0, 0.21);
        batch.phase_damp(2, 0.34);
        batch.amplitude_damp(1, 0.08);
        for rho in lanes.iter_mut() {
            rho.depolarize(1, 0.13);
            rho.bit_flip(0, 0.21);
            rho.phase_damp(2, 0.34);
            rho.amplitude_damp(1, 0.08);
        }
        for (l, rho) in lanes.iter().enumerate() {
            assert_eq!(batch.lane(l), *rho, "channel lane {l}");
        }
    }

    #[test]
    fn density_batch_noise_matches_noise_model() {
        let noise = NoiseModel::ibm_cairo();
        let mut lanes = random_densities(3, 3, 17);
        let mut batch = DensityBatch::from_densities(&lanes);
        for g in [Gate::H(0), Gate::CX(0, 2), Gate::CCX(0, 1, 2)] {
            batch.apply_gate(&g);
            batch.apply_noise(&noise, &g);
            for rho in lanes.iter_mut() {
                rho.apply_gate(&g);
                noise.apply_to_density(rho, &g);
            }
        }
        for (l, rho) in lanes.iter().enumerate() {
            assert_eq!(batch.lane(l), *rho, "noisy lane {l}");
        }
    }

    #[test]
    fn zero_state_constructors_match_per_state() {
        let batch = StateBatch::zero_states(3, 2);
        assert_eq!(batch.lane(0), StateVector::zero_state(3));
        assert_eq!(batch.lane(1), StateVector::zero_state(3));
        let dbatch = DensityBatch::zero_states(2, 2);
        assert_eq!(dbatch.lane(1), DensityMatrix::zero_state(2));
    }

    #[test]
    fn density_max_lanes_respects_budget() {
        assert_eq!(DensityBatch::max_lanes(13, 64), 1);
        assert_eq!(DensityBatch::max_lanes(10, 64), 64);
        assert_eq!(DensityBatch::max_lanes(12, 64), 4);
        assert_eq!(DensityBatch::max_lanes(3, 0), 1);
    }

    #[test]
    fn f32_batch_stays_within_error_bound() {
        let lanes = random_states(4, 6, 57);
        let mut exact = StateBatch::from_states(&lanes);
        let mut fast = StateBatchF32::from_states(&lanes);
        for g in every_gate(4) {
            exact.apply_gate(&g);
            fast.apply_gate(&g);
        }
        assert!(fast.error_bound() > 0.0);
        assert!(fast.error_bound() < 1e-3, "bound {}", fast.error_bound());
        for l in 0..6 {
            let e = exact.lane(l);
            let f = fast.lane(l);
            let dist: f64 = e
                .amplitudes()
                .iter()
                .zip(f.amplitudes())
                .map(|(a, b)| (*a - *b).norm_sqr())
                .sum::<f64>()
                .sqrt();
            assert!(
                dist <= fast.error_bound(),
                "lane {l}: drift {dist} exceeds bound {}",
                fast.error_bound()
            );
        }
    }

    #[test]
    fn f32_permutation_gates_are_exact() {
        let lanes = random_states(3, 2, 3);
        let mut fast = StateBatchF32::from_states(&lanes);
        let bound = fast.error_bound();
        fast.apply_gate(&Gate::X(0));
        fast.apply_gate(&Gate::CX(0, 2));
        fast.apply_gate(&Gate::Swap(1, 2));
        fast.apply_gate(&Gate::Z(1));
        fast.apply_gate(&Gate::CZ(0, 1));
        fast.apply_gate(&Gate::MCZ(vec![0, 1, 2]));
        assert_eq!(fast.error_bound(), bound);
    }
}
