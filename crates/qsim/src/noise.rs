//! Hardware-style noise models.
//!
//! The paper's noisy experiments use the IBM Cairo device model (99.45 %
//! single-qubit and 98.4 % two-qubit gate fidelity). [`NoiseModel`] carries
//! those parameters plus readout error and gate durations, and supports two
//! simulation styles:
//!
//! - exact channel evolution on a [`DensityMatrix`] (small registers), and
//! - stochastic Pauli-twirl trajectories on a [`StateVector`]
//!   (large registers), where each gate is followed by a random Pauli with
//!   the channel's error probability.

use rand::Rng;

use crate::density::DensityMatrix;
use crate::gate::Gate;
use crate::state::StateVector;

/// Device-level noise and timing parameters.
///
/// # Examples
///
/// ```
/// use morph_qsim::NoiseModel;
///
/// let cairo = NoiseModel::ibm_cairo();
/// assert!(cairo.p1 > 0.0 && cairo.p1 < cairo.p2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Single-qubit gate error probability.
    pub p1: f64,
    /// Two-qubit gate error probability.
    pub p2: f64,
    /// Readout (measurement bit-flip) error probability.
    pub readout: f64,
    /// Single-qubit gate duration in nanoseconds.
    pub t1q_ns: f64,
    /// Two-qubit gate duration in nanoseconds.
    pub t2q_ns: f64,
    /// Readout duration in nanoseconds.
    pub tread_ns: f64,
}

impl NoiseModel {
    /// A noiseless model (all error rates zero); timings match IBMQ.
    pub fn noiseless() -> Self {
        NoiseModel {
            p1: 0.0,
            p2: 0.0,
            readout: 0.0,
            t1q_ns: 60.0,
            t2q_ns: 340.0,
            tread_ns: 732.0,
        }
    }

    /// The IBM Cairo parameters quoted in the paper: 99.45 % single-qubit
    /// fidelity, 98.4 % two-qubit fidelity, with IBMQ gate times (60 ns / 340
    /// ns / 732 ns readout).
    pub fn ibm_cairo() -> Self {
        NoiseModel {
            p1: 1.0 - 0.9945,
            p2: 1.0 - 0.984,
            readout: 0.01,
            t1q_ns: 60.0,
            t2q_ns: 340.0,
            tread_ns: 732.0,
        }
    }

    /// `true` if every error rate is zero.
    pub fn is_noiseless(&self) -> bool {
        self.p1 == 0.0 && self.p2 == 0.0 && self.readout == 0.0
    }

    /// Error probability applicable to `gate`.
    pub fn gate_error(&self, gate: &Gate) -> f64 {
        if gate.qubits().len() <= 1 {
            self.p1
        } else {
            // A k-qubit primitive decomposes into op_cost() two-qubit gates;
            // first-order error accumulation.
            let cost = gate.op_cost() as f64;
            (1.0 - (1.0 - self.p2).powf(cost)).min(1.0)
        }
    }

    /// Wall-clock duration estimate for `gate` in nanoseconds.
    pub fn gate_duration_ns(&self, gate: &Gate) -> f64 {
        if gate.qubits().len() <= 1 {
            self.t1q_ns
        } else {
            self.t2q_ns * gate.op_cost() as f64
        }
    }

    /// Applies the channel noise that follows `gate` to a density matrix.
    pub fn apply_to_density(&self, rho: &mut DensityMatrix, gate: &Gate) {
        if self.is_noiseless() {
            return;
        }
        let qs = gate.qubits();
        if qs.len() <= 1 {
            if self.p1 > 0.0 {
                rho.depolarize(qs[0], self.p1);
            }
        } else if self.p2 > 0.0 {
            for q in qs {
                rho.depolarize(q, self.p2);
            }
        }
    }

    /// Applies stochastic Pauli-twirl noise following `gate` to a pure-state
    /// trajectory: with the gate's error probability, a uniformly random
    /// non-identity Pauli is applied to each touched qubit.
    pub fn apply_to_trajectory(&self, psi: &mut StateVector, gate: &Gate, rng: &mut impl Rng) {
        if self.is_noiseless() {
            return;
        }
        let p = if gate.qubits().len() <= 1 {
            self.p1
        } else {
            self.p2
        };
        if p == 0.0 {
            return;
        }
        for q in gate.qubits() {
            if rng.gen::<f64>() < p {
                match rng.gen_range(0..3) {
                    0 => psi.apply_x(q),
                    1 => {
                        psi.apply_x(q);
                        psi.apply_z(q);
                    }
                    _ => psi.apply_z(q),
                }
            }
        }
    }

    /// Flips a measured bit with the readout error probability.
    pub fn apply_readout(&self, bit: u8, rng: &mut impl Rng) -> u8 {
        if self.readout > 0.0 && rng.gen::<f64>() < self.readout {
            bit ^ 1
        } else {
            bit
        }
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::noiseless()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cairo_parameters_match_paper() {
        let m = NoiseModel::ibm_cairo();
        assert!((m.p1 - 0.0055).abs() < 1e-12);
        assert!((m.p2 - 0.016).abs() < 1e-12);
        assert_eq!(m.t1q_ns, 60.0);
        assert_eq!(m.t2q_ns, 340.0);
        assert_eq!(m.tread_ns, 732.0);
    }

    #[test]
    fn noiseless_is_identity_on_density() {
        let m = NoiseModel::noiseless();
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&Gate::H(0));
        let before = rho.clone();
        m.apply_to_density(&mut rho, &Gate::H(0));
        assert_eq!(rho, before);
        assert!(m.is_noiseless());
    }

    #[test]
    fn noisy_density_loses_purity() {
        let m = NoiseModel::ibm_cairo();
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&Gate::H(0));
        rho.apply_gate(&Gate::CX(0, 1));
        m.apply_to_density(&mut rho, &Gate::CX(0, 1));
        assert!(rho.purity() < 1.0);
        assert!((rho.matrix().trace().re - 1.0).abs() < 1e-10);
    }

    #[test]
    fn trajectory_noise_changes_some_runs() {
        let m = NoiseModel {
            p1: 0.5,
            ..NoiseModel::ibm_cairo()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut changed = 0;
        for _ in 0..100 {
            let mut psi = StateVector::zero_state(1);
            m.apply_to_trajectory(&mut psi, &Gate::H(0), &mut rng);
            if (psi.prob_one(0) - 0.0).abs() > 1e-9 {
                changed += 1;
            }
        }
        // X or Y errors flip the qubit about a third of (p=0.5) events.
        assert!(
            changed > 5,
            "expected some trajectory errors, saw {changed}"
        );
    }

    #[test]
    fn readout_error_rate_statistics() {
        let m = NoiseModel {
            readout: 0.25,
            ..NoiseModel::noiseless()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let flips = (0..10_000)
            .filter(|_| m.apply_readout(0, &mut rng) == 1)
            .count();
        assert!((flips as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn gate_error_grows_with_controls() {
        let m = NoiseModel::ibm_cairo();
        let small = m.gate_error(&Gate::CX(0, 1));
        let big = m.gate_error(&Gate::MCZ(vec![0, 1, 2, 3, 4]));
        assert!(big > small);
        assert!(m.gate_error(&Gate::H(0)) < small);
    }

    #[test]
    fn durations_follow_op_cost() {
        let m = NoiseModel::ibm_cairo();
        assert_eq!(m.gate_duration_ns(&Gate::H(0)), 60.0);
        assert_eq!(m.gate_duration_ns(&Gate::CX(0, 1)), 340.0);
        assert!(m.gate_duration_ns(&Gate::MCZ(vec![0, 1, 2, 3])) > 340.0);
    }
}
