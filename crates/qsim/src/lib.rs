//! Quantum state simulation substrate for the MorphQPV reproduction.
//!
//! This crate plays the role of the Pennylane/Qiskit simulators in the
//! original paper's evaluation:
//!
//! - [`StateVector`]: dense pure-state simulation with per-gate bit-twiddled
//!   kernels, projective measurement, shot sampling, and cheap reduced
//!   density matrices for tracepoint capture.
//! - [`DensityMatrix`]: exact mixed-state simulation with Kraus channels for
//!   small registers.
//! - [`Gate`]: the instruction-level gate library (Cliffords, rotations,
//!   multi-controlled Z/RX) with unitary matrices and inverse/cost metadata.
//! - [`NoiseModel`]: IBM-Cairo-style depolarizing + readout noise, usable as
//!   exact channels or stochastic Pauli-twirl trajectories.
//!
//! Index convention everywhere: **qubit 0 is the most significant bit** of a
//! computational-basis index.
//!
//! # Examples
//!
//! ```
//! use morph_qsim::{Gate, StateVector};
//!
//! // GHZ state on 3 qubits.
//! let mut psi = StateVector::zero_state(3);
//! Gate::H(0).apply(&mut psi);
//! Gate::CX(0, 1).apply(&mut psi);
//! Gate::CX(1, 2).apply(&mut psi);
//!
//! let rho01 = psi.reduced_density_matrix(&[0, 1]);
//! assert!((rho01[(0, 0)].re - 0.5).abs() < 1e-12);
//! ```

mod batch;
mod bits;
mod density;
mod gate;
mod noise;
mod pauli;
mod serde_impls;
mod state;

pub use batch::{DensityBatch, StateBatch, StateBatchF32};
pub use density::DensityMatrix;
pub use gate::{matrices, Gate};
pub use noise::NoiseModel;
pub use pauli::{ParsePauliError, PauliString};
pub use state::StateVector;
