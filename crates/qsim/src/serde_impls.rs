//! Hand-written serialization and canonical-byte encodings for qsim types.
//!
//! The vendored serde shim has no derive support, so the types that appear
//! inside persisted characterization artifacts ([`Gate`], [`NoiseModel`],
//! [`StateVector`]) implement the traits here by hand. The same module owns
//! the *canonical byte* encodings consumed by morph-store fingerprinting:
//! length-free fixed layouts (tag byte, little-endian `u64` indices,
//! little-endian `f64` bit patterns, length-prefixed lists) so equal values
//! always hash identically and distinct values cannot collide by smearing
//! across field boundaries.

use morph_linalg::{CMatrix, C64};
use serde::json::{FromValueError, Value};
use serde::{Deserialize, Serialize};

use crate::gate::Gate;
use crate::noise::NoiseModel;
use crate::state::StateVector;

fn push_usize(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u64).to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn push_list(out: &mut Vec<u8>, qs: &[usize]) {
    push_usize(out, qs.len());
    for &q in qs {
        push_usize(out, q);
    }
}

impl Gate {
    /// Appends the gate's canonical byte encoding: a one-byte opcode
    /// followed by its operands (qubit indices as little-endian `u64`,
    /// angles as little-endian `f64` bit patterns, qubit lists
    /// length-prefixed, unitary payloads via
    /// [`CMatrix::canonical_bytes`]).
    pub fn canonical_bytes(&self, out: &mut Vec<u8>) {
        match self {
            Gate::H(q) => {
                out.push(0);
                push_usize(out, *q);
            }
            Gate::X(q) => {
                out.push(1);
                push_usize(out, *q);
            }
            Gate::Y(q) => {
                out.push(2);
                push_usize(out, *q);
            }
            Gate::Z(q) => {
                out.push(3);
                push_usize(out, *q);
            }
            Gate::S(q) => {
                out.push(4);
                push_usize(out, *q);
            }
            Gate::Sdg(q) => {
                out.push(5);
                push_usize(out, *q);
            }
            Gate::T(q) => {
                out.push(6);
                push_usize(out, *q);
            }
            Gate::Tdg(q) => {
                out.push(7);
                push_usize(out, *q);
            }
            Gate::RX(q, a) => {
                out.push(8);
                push_usize(out, *q);
                push_f64(out, *a);
            }
            Gate::RY(q, a) => {
                out.push(9);
                push_usize(out, *q);
                push_f64(out, *a);
            }
            Gate::RZ(q, a) => {
                out.push(10);
                push_usize(out, *q);
                push_f64(out, *a);
            }
            Gate::Phase(q, a) => {
                out.push(11);
                push_usize(out, *q);
                push_f64(out, *a);
            }
            Gate::CX(c, t) => {
                out.push(12);
                push_usize(out, *c);
                push_usize(out, *t);
            }
            Gate::CZ(a, b) => {
                out.push(13);
                push_usize(out, *a);
                push_usize(out, *b);
            }
            Gate::CRZ(c, t, a) => {
                out.push(14);
                push_usize(out, *c);
                push_usize(out, *t);
                push_f64(out, *a);
            }
            Gate::CPhase(c, t, a) => {
                out.push(15);
                push_usize(out, *c);
                push_usize(out, *t);
                push_f64(out, *a);
            }
            Gate::Swap(a, b) => {
                out.push(16);
                push_usize(out, *a);
                push_usize(out, *b);
            }
            Gate::CCX(c1, c2, t) => {
                out.push(17);
                push_usize(out, *c1);
                push_usize(out, *c2);
                push_usize(out, *t);
            }
            Gate::MCZ(qs) => {
                out.push(18);
                push_list(out, qs);
            }
            Gate::MCRX(cs, t, a) => {
                out.push(19);
                push_list(out, cs);
                push_usize(out, *t);
                push_f64(out, *a);
            }
            Gate::MCRY(cs, t, a) => {
                out.push(20);
                push_list(out, cs);
                push_usize(out, *t);
                push_f64(out, *a);
            }
            Gate::Unitary(qs, u) => {
                out.push(21);
                push_list(out, qs);
                u.canonical_bytes(out);
            }
        }
    }
}

fn qs_value(qs: &[usize]) -> Value {
    Value::Array(qs.iter().map(|&q| Value::UInt(q as u64)).collect())
}

impl Serialize for Gate {
    /// Encodes as a tagged array `["RX", q, angle]`, with angles as
    /// bit-exact `f64` strings and qubit lists as nested arrays.
    fn to_value(&self) -> Value {
        let mut v: Vec<Value> = Vec::new();
        match self {
            Gate::H(q) => v.extend([Value::Str("H".into()), Value::UInt(*q as u64)]),
            Gate::X(q) => v.extend([Value::Str("X".into()), Value::UInt(*q as u64)]),
            Gate::Y(q) => v.extend([Value::Str("Y".into()), Value::UInt(*q as u64)]),
            Gate::Z(q) => v.extend([Value::Str("Z".into()), Value::UInt(*q as u64)]),
            Gate::S(q) => v.extend([Value::Str("S".into()), Value::UInt(*q as u64)]),
            Gate::Sdg(q) => v.extend([Value::Str("Sdg".into()), Value::UInt(*q as u64)]),
            Gate::T(q) => v.extend([Value::Str("T".into()), Value::UInt(*q as u64)]),
            Gate::Tdg(q) => v.extend([Value::Str("Tdg".into()), Value::UInt(*q as u64)]),
            Gate::RX(q, a) => v.extend([
                Value::Str("RX".into()),
                Value::UInt(*q as u64),
                a.to_value(),
            ]),
            Gate::RY(q, a) => v.extend([
                Value::Str("RY".into()),
                Value::UInt(*q as u64),
                a.to_value(),
            ]),
            Gate::RZ(q, a) => v.extend([
                Value::Str("RZ".into()),
                Value::UInt(*q as u64),
                a.to_value(),
            ]),
            Gate::Phase(q, a) => v.extend([
                Value::Str("Phase".into()),
                Value::UInt(*q as u64),
                a.to_value(),
            ]),
            Gate::CX(c, t) => v.extend([
                Value::Str("CX".into()),
                Value::UInt(*c as u64),
                Value::UInt(*t as u64),
            ]),
            Gate::CZ(a, b) => v.extend([
                Value::Str("CZ".into()),
                Value::UInt(*a as u64),
                Value::UInt(*b as u64),
            ]),
            Gate::CRZ(c, t, a) => v.extend([
                Value::Str("CRZ".into()),
                Value::UInt(*c as u64),
                Value::UInt(*t as u64),
                a.to_value(),
            ]),
            Gate::CPhase(c, t, a) => v.extend([
                Value::Str("CPhase".into()),
                Value::UInt(*c as u64),
                Value::UInt(*t as u64),
                a.to_value(),
            ]),
            Gate::Swap(a, b) => v.extend([
                Value::Str("Swap".into()),
                Value::UInt(*a as u64),
                Value::UInt(*b as u64),
            ]),
            Gate::CCX(c1, c2, t) => v.extend([
                Value::Str("CCX".into()),
                Value::UInt(*c1 as u64),
                Value::UInt(*c2 as u64),
                Value::UInt(*t as u64),
            ]),
            Gate::MCZ(qs) => v.extend([Value::Str("MCZ".into()), qs_value(qs)]),
            Gate::MCRX(cs, t, a) => v.extend([
                Value::Str("MCRX".into()),
                qs_value(cs),
                Value::UInt(*t as u64),
                a.to_value(),
            ]),
            Gate::MCRY(cs, t, a) => v.extend([
                Value::Str("MCRY".into()),
                qs_value(cs),
                Value::UInt(*t as u64),
                a.to_value(),
            ]),
            Gate::Unitary(qs, u) => {
                v.extend([Value::Str("Unitary".into()), qs_value(qs), u.to_value()])
            }
        }
        Value::Array(v)
    }
}

fn decode_qubit(v: &Value) -> Result<usize, FromValueError> {
    v.as_u64()
        .map(|q| q as usize)
        .ok_or_else(|| FromValueError::expected("qubit index", v))
}

fn decode_qs(v: &Value) -> Result<Vec<usize>, FromValueError> {
    v.as_array()
        .ok_or_else(|| FromValueError::expected("qubit list", v))?
        .iter()
        .map(decode_qubit)
        .collect()
}

impl<'de> Deserialize<'de> for Gate {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        let parts = value
            .as_array()
            .ok_or_else(|| FromValueError::expected("gate array", value))?;
        let (tag, rest) = match parts.split_first() {
            Some((Value::Str(tag), rest)) => (tag.as_str(), rest),
            _ => return Err(FromValueError::expected("tagged gate array", value)),
        };
        let wrong_arity = || FromValueError::new(format!("wrong operand count for gate {tag:?}"));
        let gate = match (tag, rest) {
            ("H", [q]) => Gate::H(decode_qubit(q)?),
            ("X", [q]) => Gate::X(decode_qubit(q)?),
            ("Y", [q]) => Gate::Y(decode_qubit(q)?),
            ("Z", [q]) => Gate::Z(decode_qubit(q)?),
            ("S", [q]) => Gate::S(decode_qubit(q)?),
            ("Sdg", [q]) => Gate::Sdg(decode_qubit(q)?),
            ("T", [q]) => Gate::T(decode_qubit(q)?),
            ("Tdg", [q]) => Gate::Tdg(decode_qubit(q)?),
            ("RX", [q, a]) => Gate::RX(decode_qubit(q)?, f64::from_value(a)?),
            ("RY", [q, a]) => Gate::RY(decode_qubit(q)?, f64::from_value(a)?),
            ("RZ", [q, a]) => Gate::RZ(decode_qubit(q)?, f64::from_value(a)?),
            ("Phase", [q, a]) => Gate::Phase(decode_qubit(q)?, f64::from_value(a)?),
            ("CX", [c, t]) => Gate::CX(decode_qubit(c)?, decode_qubit(t)?),
            ("CZ", [a, b]) => Gate::CZ(decode_qubit(a)?, decode_qubit(b)?),
            ("CRZ", [c, t, a]) => {
                Gate::CRZ(decode_qubit(c)?, decode_qubit(t)?, f64::from_value(a)?)
            }
            ("CPhase", [c, t, a]) => {
                Gate::CPhase(decode_qubit(c)?, decode_qubit(t)?, f64::from_value(a)?)
            }
            ("Swap", [a, b]) => Gate::Swap(decode_qubit(a)?, decode_qubit(b)?),
            ("CCX", [c1, c2, t]) => {
                Gate::CCX(decode_qubit(c1)?, decode_qubit(c2)?, decode_qubit(t)?)
            }
            ("MCZ", [qs]) => Gate::MCZ(decode_qs(qs)?),
            ("MCRX", [cs, t, a]) => {
                Gate::MCRX(decode_qs(cs)?, decode_qubit(t)?, f64::from_value(a)?)
            }
            ("MCRY", [cs, t, a]) => {
                Gate::MCRY(decode_qs(cs)?, decode_qubit(t)?, f64::from_value(a)?)
            }
            ("Unitary", [qs, u]) => Gate::Unitary(decode_qs(qs)?, CMatrix::from_value(u)?),
            (
                "H" | "X" | "Y" | "Z" | "S" | "Sdg" | "T" | "Tdg" | "RX" | "RY" | "RZ" | "Phase"
                | "CX" | "CZ" | "CRZ" | "CPhase" | "Swap" | "CCX" | "MCZ" | "MCRX" | "MCRY"
                | "Unitary",
                _,
            ) => return Err(wrong_arity()),
            _ => {
                return Err(FromValueError::new(format!("unknown gate tag {tag:?}")));
            }
        };
        Ok(gate)
    }
}

impl NoiseModel {
    /// Appends the canonical byte encoding: the six parameters' `f64` bit
    /// patterns, little-endian, in declaration order.
    pub fn canonical_bytes(&self, out: &mut Vec<u8>) {
        for v in [
            self.p1,
            self.p2,
            self.readout,
            self.t1q_ns,
            self.t2q_ns,
            self.tread_ns,
        ] {
            push_f64(out, v);
        }
    }
}

impl Serialize for NoiseModel {
    fn to_value(&self) -> Value {
        let mut m = std::collections::BTreeMap::new();
        m.insert("p1".to_string(), self.p1.to_value());
        m.insert("p2".to_string(), self.p2.to_value());
        m.insert("readout".to_string(), self.readout.to_value());
        m.insert("t1q_ns".to_string(), self.t1q_ns.to_value());
        m.insert("t2q_ns".to_string(), self.t2q_ns.to_value());
        m.insert("tread_ns".to_string(), self.tread_ns.to_value());
        Value::Object(m)
    }
}

impl<'de> Deserialize<'de> for NoiseModel {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        Ok(NoiseModel {
            p1: f64::from_value(value.require("p1")?)?,
            p2: f64::from_value(value.require("p2")?)?,
            readout: f64::from_value(value.require("readout")?)?,
            t1q_ns: f64::from_value(value.require("t1q_ns")?)?,
            t2q_ns: f64::from_value(value.require("t2q_ns")?)?,
            tread_ns: f64::from_value(value.require("tread_ns")?)?,
        })
    }
}

impl Serialize for StateVector {
    /// Encodes the amplitude list directly; qubit count is implied by the
    /// power-of-two length.
    fn to_value(&self) -> Value {
        Value::Array(self.amplitudes().iter().map(|a| a.to_value()).collect())
    }
}

impl<'de> Deserialize<'de> for StateVector {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        let amps: Vec<C64> = Vec::from_value(value)?;
        if !amps.len().is_power_of_two() {
            return Err(FromValueError::new(format!(
                "amplitude count {} is not a power of two",
                amps.len()
            )));
        }
        Ok(StateVector::from_normalized_amplitudes(amps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_gate(g: &Gate) {
        let json = serde::json::to_string(g);
        let back: Gate = serde::json::from_str(&json).expect("deserialize");
        assert_eq!(&back, g, "round trip failed for {g:?}");
    }

    #[test]
    fn gate_round_trips_every_variant() {
        let unitary = crate::gate::matrices::rx(0.123456789);
        let gates = [
            Gate::H(0),
            Gate::X(1),
            Gate::Y(2),
            Gate::Z(3),
            Gate::S(0),
            Gate::Sdg(1),
            Gate::T(2),
            Gate::Tdg(3),
            Gate::RX(0, 0.1),
            Gate::RY(1, -2.5),
            Gate::RZ(2, std::f64::consts::PI),
            Gate::Phase(3, 1e-300),
            Gate::CX(0, 1),
            Gate::CZ(1, 2),
            Gate::CRZ(0, 2, 0.7),
            Gate::CPhase(1, 3, -0.2),
            Gate::Swap(0, 3),
            Gate::CCX(0, 1, 2),
            Gate::MCZ(vec![0, 1, 2, 3]),
            Gate::MCRX(vec![0, 1], 2, 0.9),
            Gate::MCRY(vec![3], 0, -1.1),
            Gate::Unitary(vec![0, 1], unitary),
        ];
        for g in &gates {
            round_trip_gate(g);
        }
    }

    #[test]
    fn gate_rejects_malformed_values() {
        assert!(serde::json::from_str::<Gate>("[\"H\"]").is_err());
        assert!(serde::json::from_str::<Gate>("[\"Nope\", 1]").is_err());
        assert!(serde::json::from_str::<Gate>("{\"op\": \"H\"}").is_err());
    }

    #[test]
    fn canonical_bytes_distinguish_gates() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        Gate::RX(0, 0.5).canonical_bytes(&mut a);
        Gate::RY(0, 0.5).canonical_bytes(&mut b);
        assert_ne!(a, b);

        a.clear();
        b.clear();
        Gate::MCZ(vec![0, 1]).canonical_bytes(&mut a);
        Gate::MCZ(vec![0, 2]).canonical_bytes(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn noise_model_round_trips_bit_exactly() {
        for model in [
            NoiseModel::noiseless(),
            NoiseModel::ibm_cairo(),
            NoiseModel {
                p1: f64::NAN,
                ..NoiseModel::ibm_cairo()
            },
        ] {
            let json = serde::json::to_string(&model);
            let back: NoiseModel = serde::json::from_str(&json).expect("deserialize");
            assert_eq!(back.p1.to_bits(), model.p1.to_bits());
            assert_eq!(back.p2.to_bits(), model.p2.to_bits());
            assert_eq!(back.readout.to_bits(), model.readout.to_bits());
            assert_eq!(back.t1q_ns.to_bits(), model.t1q_ns.to_bits());
            assert_eq!(back.t2q_ns.to_bits(), model.t2q_ns.to_bits());
            assert_eq!(back.tread_ns.to_bits(), model.tread_ns.to_bits());
        }
    }

    #[test]
    fn noise_canonical_bytes_track_parameters() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        NoiseModel::noiseless().canonical_bytes(&mut a);
        NoiseModel::ibm_cairo().canonical_bytes(&mut b);
        assert_eq!(a.len(), 48);
        assert_ne!(a, b);
    }

    #[test]
    fn state_vector_round_trips_without_renormalizing() {
        let mut psi = StateVector::zero_state(3);
        Gate::H(0).apply(&mut psi);
        Gate::CX(0, 1).apply(&mut psi);
        Gate::RY(2, 0.3).apply(&mut psi);
        let json = serde::json::to_string(&psi);
        let back: StateVector = serde::json::from_str(&json).expect("deserialize");
        assert_eq!(back.n_qubits(), psi.n_qubits());
        for (x, y) in back.amplitudes().iter().zip(psi.amplitudes()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn state_vector_rejects_bad_lengths() {
        assert!(serde::json::from_str::<StateVector>("[[\"0000000000000000\", \"0000000000000000\"], [\"0000000000000000\", \"0000000000000000\"], [\"0000000000000000\", \"0000000000000000\"]]").is_err());
    }
}
