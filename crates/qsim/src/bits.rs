//! Bit-deposit index enumeration shared by the state-vector and
//! density-matrix kernels.
//!
//! Local gate kernels never scan all `2^n` basis indices and branch on
//! masks; they enumerate only *base* indices — indices with the target
//! bit(s) forced to zero — and reconstruct the partner indices by OR-ing in
//! the target masks. `deposit` turns a dense counter `0..2^(n-k)` into such
//! a base index by inserting zero bits at the fixed positions.

/// Inserts a zero bit at position `shift`: bits of `base` below `shift` stay
/// put, bits at or above `shift` move up by one.
#[inline(always)]
pub(crate) fn deposit(base: usize, shift: usize) -> usize {
    let low = base & ((1usize << shift) - 1);
    ((base >> shift) << (shift + 1)) | low
}

/// Inserts zero bits at every position in `shifts`, which must be sorted
/// ascending. Each position is the bit's final (absolute) index.
#[inline(always)]
pub(crate) fn deposit_multi(base: usize, shifts_ascending: &[usize]) -> usize {
    let mut idx = base;
    for &s in shifts_ascending {
        idx = deposit(idx, s);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_enumerates_indices_with_bit_clear() {
        let shift = 2;
        let got: Vec<usize> = (0..8).map(|b| deposit(b, shift)).collect();
        let expect: Vec<usize> = (0..16).filter(|i| i & (1 << shift) == 0).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn deposit_multi_clears_every_fixed_bit() {
        let shifts = [1, 3];
        let got: Vec<usize> = (0..8).map(|b| deposit_multi(b, &shifts)).collect();
        let expect: Vec<usize> = (0..32).filter(|i| i & 0b01010 == 0).collect();
        assert_eq!(got, expect);
    }
}
