//! Pure-state simulation via dense state vectors.
//!
//! Convention used across the workspace: **qubit 0 is the most significant
//! bit** of the computational-basis index, matching circuit-diagram order
//! (`|q0 q1 … q_{n-1}⟩`).

use morph_linalg::{CMatrix, C64};
use rand::Rng;

use crate::bits;

/// A normalized `n`-qubit pure state of `2^n` complex amplitudes.
///
/// # Examples
///
/// ```
/// use morph_qsim::StateVector;
///
/// let mut psi = StateVector::zero_state(2);
/// psi.apply_h(0);
/// psi.apply_cx(0, 1);            // Bell state (|00> + |11>)/√2
/// let probs = psi.probabilities();
/// assert!((probs[0] - 0.5).abs() < 1e-12);
/// assert!((probs[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The all-zeros state `|0…0⟩`.
    pub fn zero_state(n_qubits: usize) -> Self {
        assert!(n_qubits < 28, "state vector would exceed memory budget");
        let mut amps = vec![C64::ZERO; 1 << n_qubits];
        amps[0] = C64::ONE;
        StateVector { n_qubits, amps }
    }

    /// The computational-basis state `|bits⟩`, with qubit 0 as the MSB.
    ///
    /// # Panics
    ///
    /// Panics if `basis_index >= 2^n`.
    pub fn basis_state(n_qubits: usize, basis_index: usize) -> Self {
        assert!(basis_index < (1 << n_qubits), "basis index out of range");
        let mut amps = vec![C64::ZERO; 1 << n_qubits];
        amps[basis_index] = C64::ONE;
        StateVector { n_qubits, amps }
    }

    /// Builds a state from raw amplitudes, normalizing them.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the vector is null.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let len = amps.len();
        assert!(
            len.is_power_of_two(),
            "amplitude count must be a power of two"
        );
        let n_qubits = len.trailing_zeros() as usize;
        let mut sv = StateVector { n_qubits, amps };
        let norm = sv.norm();
        assert!(norm > 1e-12, "cannot normalize a null vector");
        for a in &mut sv.amps {
            *a = *a / norm;
        }
        sv
    }

    /// Rebuilds a state from amplitudes that are already normalized,
    /// *without* renormalizing. Renormalization divides by a norm that is
    /// only approximately 1 and would perturb the stored bit patterns, so
    /// artifact deserialization uses this constructor to stay bit-exact.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_normalized_amplitudes(amps: Vec<C64>) -> Self {
        let len = amps.len();
        assert!(
            len.is_power_of_two(),
            "amplitude count must be a power of two"
        );
        let n_qubits = len.trailing_zeros() as usize;
        StateVector { n_qubits, amps }
    }

    /// Embeds a narrow state onto the given qubits of a wider register
    /// whose remaining qubits stay in `|0⟩`: `sub` qubit `j` becomes
    /// register qubit `qubits[j]`.
    ///
    /// Amplitudes are scattered verbatim — no renormalization — so the
    /// embedded state is bitwise identical on its support to applying the
    /// same preparation gates (remapped onto `qubits`) to the wide
    /// `|0…0⟩` state; off-support amplitudes are exactly zero either way.
    /// The characterization sweep uses this to run input preparation on
    /// the small input register instead of the full lane.
    ///
    /// # Panics
    ///
    /// Panics if `qubits.len() != sub.n_qubits()`, a qubit repeats, or a
    /// qubit is out of range for the wide register.
    pub fn embed(sub: &StateVector, qubits: &[usize], n_qubits: usize) -> Self {
        assert!(n_qubits < 28, "state vector would exceed memory budget");
        let m = sub.n_qubits();
        assert_eq!(qubits.len(), m, "qubit list must match the sub-state width");
        let shifts: Vec<usize> = qubits
            .iter()
            .map(|&q| {
                assert!(q < n_qubits, "embed qubit {q} out of range");
                n_qubits - 1 - q
            })
            .collect();
        {
            let mut sorted = shifts.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), m, "duplicate embed qubits");
        }
        // Degenerate edges: a full-width identity mapping is a pure
        // passthrough (no scatter), and a 0-qubit sub-state carries a single
        // scalar that lands on |0…0⟩.
        if m == n_qubits && qubits.iter().enumerate().all(|(j, &q)| q == j) {
            return sub.clone();
        }
        if m == 0 {
            let mut amps = vec![C64::ZERO; 1 << n_qubits];
            amps[0] = sub.amps[0];
            return StateVector { n_qubits, amps };
        }
        let mut amps = vec![C64::ZERO; 1 << n_qubits];
        for (x, &a) in sub.amplitudes().iter().enumerate() {
            let mut idx = 0usize;
            for (j, &s) in shifts.iter().enumerate() {
                if (x >> (m - 1 - j)) & 1 == 1 {
                    idx |= 1 << s;
                }
            }
            amps[idx] = a;
        }
        StateVector { n_qubits, amps }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension `2^n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Amplitudes in computational-basis order.
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Euclidean norm (should be 1 up to rounding).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Renormalizes in place; useful after noisy trajectory steps.
    pub fn renormalize(&mut self) {
        let n = self.norm();
        if n > 1e-300 {
            for a in &mut self.amps {
                *a = *a / n;
            }
        }
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    pub fn inner(&self, other: &StateVector) -> C64 {
        assert_eq!(
            self.n_qubits, other.n_qubits,
            "inner product dimension mismatch"
        );
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Overlap probability `|⟨self|other⟩|²`.
    pub fn overlap(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Measurement probabilities for every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Bit value position helper: qubit `q` occupies bit `n-1-q`.
    #[inline]
    fn bit_shift(&self, qubit: usize) -> usize {
        assert!(qubit < self.n_qubits, "qubit {qubit} out of range");
        self.n_qubits - 1 - qubit
    }

    /// Applies an arbitrary single-qubit unitary given as a 2×2 matrix.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not 2×2 or `qubit` is out of range.
    pub fn apply_1q(&mut self, u: &CMatrix, qubit: usize) {
        assert_eq!(u.rows(), 2, "apply_1q requires a 2x2 matrix");
        assert_eq!(u.cols(), 2, "apply_1q requires a 2x2 matrix");
        let shift = self.bit_shift(qubit);
        let mask = 1usize << shift;
        let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
        for base in 0..self.amps.len() / 2 {
            let i = bits::deposit(base, shift);
            let j = i | mask;
            let a0 = self.amps[i];
            let a1 = self.amps[j];
            self.amps[i] = u00 * a0 + u01 * a1;
            self.amps[j] = u10 * a0 + u11 * a1;
        }
    }

    /// Applies a two-qubit unitary given as a 4×4 matrix on `(q_a, q_b)`
    /// where `q_a` indexes the more significant target bit.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not 4×4, a target repeats, or a target is out of
    /// range.
    pub fn apply_2q(&mut self, u: &CMatrix, q_a: usize, q_b: usize) {
        assert_eq!(u.rows(), 4, "apply_2q requires a 4x4 matrix");
        assert_ne!(q_a, q_b, "two-qubit gate targets must differ");
        let sa = self.bit_shift(q_a);
        let sb = self.bit_shift(q_b);
        let (ma, mb) = (1usize << sa, 1usize << sb);
        let (lo, hi) = (sa.min(sb), sa.max(sb));
        for base in 0..self.amps.len() / 4 {
            let i00 = bits::deposit(bits::deposit(base, lo), hi);
            let idxs = [i00, i00 | mb, i00 | ma, i00 | ma | mb];
            let a = [
                self.amps[idxs[0]],
                self.amps[idxs[1]],
                self.amps[idxs[2]],
                self.amps[idxs[3]],
            ];
            for (r, &idx) in idxs.iter().enumerate() {
                let mut acc = C64::ZERO;
                for (c, &ac) in a.iter().enumerate() {
                    acc += u[(r, c)] * ac;
                }
                self.amps[idx] = acc;
            }
        }
    }

    /// Applies an arbitrary `k`-qubit unitary on the listed targets, where
    /// `targets[0]` indexes the most significant bit of the operator.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch, duplicate targets, or out-of-range
    /// targets.
    pub fn apply_kq(&mut self, u: &CMatrix, targets: &[usize]) {
        let k = targets.len();
        assert_eq!(
            u.rows(),
            1 << k,
            "operator size does not match target count"
        );
        match k {
            1 => return self.apply_1q(u, targets[0]),
            2 => return self.apply_2q(u, targets[0], targets[1]),
            _ => {}
        }
        let shifts: Vec<usize> = targets.iter().map(|&q| self.bit_shift(q)).collect();
        {
            let mut sorted = shifts.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicate targets");
        }
        let dk = 1usize << k;
        let sorted = {
            let mut s = shifts.clone();
            s.sort_unstable();
            s
        };
        // spread[t]: offset of local operator index t within a base block.
        let spread: Vec<usize> = (0..dk)
            .map(|t| {
                let mut mask = 0usize;
                for (bit, &s) in shifts.iter().enumerate() {
                    if (t >> (k - 1 - bit)) & 1 == 1 {
                        mask |= 1 << s;
                    }
                }
                mask
            })
            .collect();
        let mut scratch = vec![C64::ZERO; dk];
        for rest in 0..self.amps.len() >> k {
            let base = bits::deposit_multi(rest, &sorted);
            for (t, slot) in scratch.iter_mut().enumerate() {
                *slot = self.amps[base | spread[t]];
            }
            for r in 0..dk {
                let mut acc = C64::ZERO;
                for c in 0..dk {
                    acc += u[(r, c)] * scratch[c];
                }
                self.amps[base | spread[r]] = acc;
            }
        }
    }

    /// Applies a single-qubit unitary controlled on `controls` all being 1.
    pub fn apply_controlled_1q(&mut self, u: &CMatrix, controls: &[usize], target: usize) {
        assert_eq!(u.rows(), 2, "controlled gate payload must be 2x2");
        let ts = self.bit_shift(target);
        let tmask = 1usize << ts;
        let cmask: usize = controls
            .iter()
            .map(|&c| {
                assert_ne!(c, target, "control equals target");
                1usize << self.bit_shift(c)
            })
            .sum();
        let fixed = {
            let mut f: Vec<usize> = controls.iter().map(|&c| self.bit_shift(c)).collect();
            f.push(ts);
            f.sort_unstable();
            f
        };
        let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
        for base in 0..self.amps.len() >> fixed.len() {
            let i = bits::deposit_multi(base, &fixed) | cmask;
            let j = i | tmask;
            let a0 = self.amps[i];
            let a1 = self.amps[j];
            self.amps[i] = u00 * a0 + u01 * a1;
            self.amps[j] = u10 * a0 + u11 * a1;
        }
    }

    /// Hadamard on `qubit`.
    pub fn apply_h(&mut self, qubit: usize) {
        let h = 1.0 / 2f64.sqrt();
        let shift = self.bit_shift(qubit);
        let mask = 1usize << shift;
        for base in 0..self.amps.len() / 2 {
            let i = bits::deposit(base, shift);
            let j = i | mask;
            let a0 = self.amps[i];
            let a1 = self.amps[j];
            self.amps[i] = (a0 + a1).scale(h);
            self.amps[j] = (a0 - a1).scale(h);
        }
    }

    /// Pauli-X on `qubit`.
    pub fn apply_x(&mut self, qubit: usize) {
        let shift = self.bit_shift(qubit);
        let mask = 1usize << shift;
        for base in 0..self.amps.len() / 2 {
            let i = bits::deposit(base, shift);
            self.amps.swap(i, i | mask);
        }
    }

    /// Pauli-Z on `qubit`.
    pub fn apply_z(&mut self, qubit: usize) {
        let shift = self.bit_shift(qubit);
        let mask = 1usize << shift;
        for base in 0..self.amps.len() / 2 {
            let i = bits::deposit(base, shift) | mask;
            self.amps[i] = -self.amps[i];
        }
    }

    /// `S = diag(1, i)` on `qubit`, applied as an exact component swap
    /// `(re, im) ↦ (−im, re)` so no rounding enters — the stabilizer
    /// backend's bitwise parity on phase-gate circuits depends on this.
    pub fn apply_s(&mut self, qubit: usize) {
        let shift = self.bit_shift(qubit);
        let mask = 1usize << shift;
        for base in 0..self.amps.len() / 2 {
            let i = bits::deposit(base, shift) | mask;
            let a = self.amps[i];
            self.amps[i] = C64::new(-a.im, a.re);
        }
    }

    /// `S† = diag(1, −i)` on `qubit`, exact (see [`StateVector::apply_s`]).
    pub fn apply_sdg(&mut self, qubit: usize) {
        let shift = self.bit_shift(qubit);
        let mask = 1usize << shift;
        for base in 0..self.amps.len() / 2 {
            let i = bits::deposit(base, shift) | mask;
            let a = self.amps[i];
            self.amps[i] = C64::new(a.im, -a.re);
        }
    }

    /// Phase gate `diag(1, e^{iθ})` on `qubit`.
    pub fn apply_phase(&mut self, qubit: usize, theta: f64) {
        let shift = self.bit_shift(qubit);
        let mask = 1usize << shift;
        let phase = C64::cis(theta);
        for base in 0..self.amps.len() / 2 {
            let i = bits::deposit(base, shift) | mask;
            self.amps[i] *= phase;
        }
    }

    /// CNOT with the given control and target.
    pub fn apply_cx(&mut self, control: usize, target: usize) {
        assert_ne!(control, target, "control equals target");
        let cs = self.bit_shift(control);
        let ts = self.bit_shift(target);
        let cmask = 1usize << cs;
        let tmask = 1usize << ts;
        let (lo, hi) = (cs.min(ts), cs.max(ts));
        for base in 0..self.amps.len() / 4 {
            let i = bits::deposit(bits::deposit(base, lo), hi) | cmask;
            self.amps.swap(i, i | tmask);
        }
    }

    /// Controlled-Z on the pair (symmetric in its arguments).
    pub fn apply_cz(&mut self, q_a: usize, q_b: usize) {
        assert_ne!(q_a, q_b, "control equals target");
        let sa = self.bit_shift(q_a);
        let sb = self.bit_shift(q_b);
        let both = (1usize << sa) | (1usize << sb);
        let (lo, hi) = (sa.min(sb), sa.max(sb));
        for base in 0..self.amps.len() / 4 {
            let i = bits::deposit(bits::deposit(base, lo), hi) | both;
            self.amps[i] = -self.amps[i];
        }
    }

    /// SWAP of two qubits in one pass: amplitudes whose bits differ at the
    /// pair's positions exchange places; nothing else moves.
    pub fn apply_swap(&mut self, q_a: usize, q_b: usize) {
        assert_ne!(q_a, q_b, "swap requires distinct qubits");
        let sa = self.bit_shift(q_a);
        let sb = self.bit_shift(q_b);
        let (ma, mb) = (1usize << sa, 1usize << sb);
        let (lo, hi) = (sa.min(sb), sa.max(sb));
        for base in 0..self.amps.len() / 4 {
            let i00 = bits::deposit(bits::deposit(base, lo), hi);
            self.amps.swap(i00 | ma, i00 | mb);
        }
    }

    /// Multi-controlled Z: flips the phase of the all-ones configuration of
    /// `qubits`.
    pub fn apply_mcz(&mut self, qubits: &[usize]) {
        let shifts = {
            let mut s: Vec<usize> = qubits.iter().map(|&q| self.bit_shift(q)).collect();
            s.sort_unstable();
            s
        };
        let mask: usize = shifts.iter().map(|&s| 1usize << s).sum();
        for base in 0..self.amps.len() >> shifts.len() {
            let i = bits::deposit_multi(base, &shifts) | mask;
            self.amps[i] = -self.amps[i];
        }
    }

    /// Probability that measuring `qubit` in the computational basis yields 1.
    pub fn prob_one(&self, qubit: usize) -> f64 {
        let mask = 1usize << self.bit_shift(qubit);
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Projectively measures `qubit`, collapsing the state. Returns the
    /// outcome bit.
    pub fn measure(&mut self, qubit: usize, rng: &mut impl Rng) -> u8 {
        let p1 = self.prob_one(qubit);
        let outcome = if rng.gen::<f64>() < p1 { 1u8 } else { 0u8 };
        self.collapse(qubit, outcome);
        outcome
    }

    /// Forces `qubit` into `outcome`, renormalizing. Used for post-selection
    /// and branch enumeration.
    ///
    /// # Panics
    ///
    /// Panics if the requested branch has (near-)zero probability.
    pub fn collapse(&mut self, qubit: usize, outcome: u8) {
        let mask = 1usize << self.bit_shift(qubit);
        let keep_one = outcome == 1;
        let p: f64 = self
            .amps
            .iter()
            .enumerate()
            .filter(|(i, _)| (i & mask != 0) == keep_one)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        assert!(p > 1e-12, "collapsing onto a zero-probability branch");
        let scale = 1.0 / p.sqrt();
        for (i, a) in self.amps.iter_mut().enumerate() {
            if (i & mask != 0) == keep_one {
                *a = a.scale(scale);
            } else {
                *a = C64::ZERO;
            }
        }
    }

    /// Samples a full-register measurement outcome without collapsing.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                return i;
            }
        }
        self.amps.len() - 1
    }

    /// Draws `shots` measurement outcomes, returning counts per basis state.
    pub fn sample_counts(&self, shots: usize, rng: &mut impl Rng) -> Vec<usize> {
        let mut counts = vec![0usize; self.dim()];
        for _ in 0..shots {
            counts[self.sample(rng)] += 1;
        }
        counts
    }

    /// Expectation of Pauli-Z on `qubit`: `P(0) − P(1)`.
    pub fn expectation_z(&self, qubit: usize) -> f64 {
        1.0 - 2.0 * self.prob_one(qubit)
    }

    /// Reduced density matrix of the listed qubits, tracing out the rest.
    ///
    /// Cost is `O(2^n · 2^k)` for `k` kept qubits — cheap even for 20-qubit
    /// registers when tracepoints touch only a few qubits.
    ///
    /// # Panics
    ///
    /// Panics on duplicate or out-of-range qubits.
    pub fn reduced_density_matrix(&self, qubits: &[usize]) -> CMatrix {
        let shifts: Vec<usize> = qubits.iter().map(|&q| self.bit_shift(q)).collect();
        rdm_scan(self.amps.len(), &shifts, |i| self.amps[i])
    }

    /// Full density matrix `|ψ⟩⟨ψ|` — only sensible for small registers.
    pub fn density_matrix(&self) -> CMatrix {
        CMatrix::outer(&self.amps, &self.amps)
    }

    /// Tensor product `self ⊗ other` (self's qubits first / more
    /// significant).
    pub fn tensor(&self, other: &StateVector) -> StateVector {
        let mut amps = Vec::with_capacity(self.dim() * other.dim());
        for &a in &self.amps {
            for &b in &other.amps {
                amps.push(a * b);
            }
        }
        StateVector {
            n_qubits: self.n_qubits + other.n_qubits,
            amps,
        }
    }

    /// Global-phase-insensitive approximate equality.
    pub fn approx_eq_up_to_phase(&self, other: &StateVector, tol: f64) -> bool {
        if self.n_qubits != other.n_qubits {
            return false;
        }
        (self.overlap(other) - 1.0).abs() <= tol
    }
}

/// Core of the reduced-density-matrix readout, shared by
/// [`StateVector::reduced_density_matrix`] and the lane-direct
/// [`crate::StateBatch::lane_reduced_density_matrix`] so both produce the
/// same bits from the same amplitudes: `dim` amplitudes are read through
/// `amp`, grouped by the traced-out configuration, and accumulated into
/// `ρ[(r, c)] += a_r · a_c†` per group.
///
/// Two global indices `i`, `j` contribute to the same group iff
/// `i & !keep_mask == j & !keep_mask`. Bucket slots are assigned in
/// first-seen environment order over the ascending amplitude scan, and
/// each bucket holds its amplitudes in ascending index order — so the
/// accumulation order, and therefore the result bits, do not depend on
/// the storage scheme. Small registers use a direct-address slot table
/// with flat bucket storage (this is the hot path: one call per lane per
/// tracepoint in the batched sweep); wide ones fall back to a hash map of
/// per-slot vectors to avoid a dim-sized table.
///
/// # Panics
///
/// Panics on duplicate bit shifts.
pub(crate) fn rdm_scan(dim: usize, shifts: &[usize], amp: impl Fn(usize) -> C64) -> CMatrix {
    let k = shifts.len();
    {
        let mut sorted = shifts.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            k,
            "duplicate qubits in reduced_density_matrix"
        );
    }
    let dk = 1usize << k;
    let keep_mask: usize = shifts.iter().map(|&s| 1usize << s).sum();
    let mut rho = CMatrix::zeros(dk, dk);
    let extract = |i: usize| -> usize {
        let mut idx = 0usize;
        for (bit, &s) in shifts.iter().enumerate() {
            if (i >> s) & 1 == 1 {
                idx |= 1 << (k - 1 - bit);
            }
        }
        idx
    };
    let env_mask = !keep_mask & (dim - 1);
    const DIRECT_TABLE_MAX_DIM: usize = 1 << 20;
    if dim <= DIRECT_TABLE_MAX_DIM {
        let mut slot_of = vec![usize::MAX; dim];
        // Pass 1: assign slots in first-seen order, count bucket sizes.
        let mut counts: Vec<usize> = Vec::new();
        for i in 0..dim {
            if amp(i) == C64::ZERO {
                continue;
            }
            let env = i & env_mask;
            let slot = slot_of[env];
            if slot == usize::MAX {
                slot_of[env] = counts.len();
                counts.push(1);
            } else {
                counts[slot] += 1;
            }
        }
        // Pass 2: scatter into one flat array at per-slot offsets; the
        // ascending scan keeps each bucket in ascending index order.
        let mut starts = Vec::with_capacity(counts.len() + 1);
        let mut total = 0usize;
        for &c in &counts {
            starts.push(total);
            total += c;
        }
        starts.push(total);
        let mut cursor = starts.clone();
        let mut entries: Vec<(usize, C64)> = vec![(0, C64::ZERO); total];
        for i in 0..dim {
            let a = amp(i);
            if a == C64::ZERO {
                continue;
            }
            let slot = slot_of[i & env_mask];
            entries[cursor[slot]] = (extract(i), a);
            cursor[slot] += 1;
        }
        for s in 0..counts.len() {
            let bucket = &entries[starts[s]..starts[s + 1]];
            for &(r, ar) in bucket {
                for &(c, ac) in bucket {
                    rho[(r, c)] += ar * ac.conj();
                }
            }
        }
    } else {
        let mut buckets: Vec<Vec<(usize, C64)>> = Vec::new();
        let mut env_index_of = std::collections::HashMap::new();
        for i in 0..dim {
            let a = amp(i);
            if a == C64::ZERO {
                continue;
            }
            let env = i & env_mask;
            let slot = *env_index_of.entry(env).or_insert_with(|| {
                buckets.push(Vec::new());
                buckets.len() - 1
            });
            buckets[slot].push((extract(i), a));
        }
        for bucket in &buckets {
            for &(r, ar) in bucket {
                for &(c, ac) in bucket {
                    rho[(r, c)] += ar * ac.conj();
                }
            }
        }
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_state_is_normalized() {
        let sv = StateVector::zero_state(3);
        assert_eq!(sv.dim(), 8);
        assert!((sv.norm() - 1.0).abs() < 1e-15);
        assert_eq!(sv.amplitudes()[0], C64::ONE);
    }

    #[test]
    fn embed_matches_remapped_full_register_prep() {
        // Applying prep gates on a small register and embedding must give
        // the same state as applying the remapped gates to the wide zero
        // state — including non-contiguous, reordered target qubits.
        let mut rng = StdRng::seed_from_u64(31);
        for qubits in [vec![0usize, 1], vec![3, 1], vec![4, 0, 2]] {
            let m = qubits.len();
            let n = 5;
            let mut sub = StateVector::zero_state(m);
            let mut full = StateVector::zero_state(n);
            for (j, &q) in qubits.iter().enumerate() {
                let theta = rng.gen_range(0.0..6.0);
                sub.apply_h(j);
                sub.apply_phase(j, theta);
                full.apply_h(q);
                full.apply_phase(q, theta);
            }
            if m >= 2 {
                sub.apply_cx(0, 1);
                full.apply_cx(qubits[0], qubits[1]);
            }
            let embedded = StateVector::embed(&sub, &qubits, n);
            assert_eq!(embedded.n_qubits(), n);
            assert_eq!(embedded.amplitudes(), full.amplitudes());
        }
    }

    #[test]
    #[should_panic(expected = "duplicate embed qubits")]
    fn embed_rejects_duplicate_qubits() {
        let sub = StateVector::zero_state(2);
        let _ = StateVector::embed(&sub, &[1, 1], 3);
    }

    #[test]
    fn embed_full_width_identity_is_passthrough() {
        let mut sub = StateVector::zero_state(3);
        sub.apply_h(0);
        sub.apply_cx(0, 2);
        sub.apply_s(1);
        let embedded = StateVector::embed(&sub, &[0, 1, 2], 3);
        assert_eq!(embedded, sub);
    }

    #[test]
    fn embed_full_width_permutation_reorders_qubits() {
        // Same width but permuted targets must still scatter, not
        // passthrough: sub qubit 0 lands on register qubit 1 and vice versa.
        let mut sub = StateVector::zero_state(2);
        sub.apply_x(0); // |10⟩
        let embedded = StateVector::embed(&sub, &[1, 0], 2);
        assert_eq!(embedded.amplitudes()[0b01], C64::ONE);
        assert_eq!(embedded.amplitudes()[0b10], C64::ZERO);
    }

    #[test]
    fn embed_zero_qubit_register_lands_on_zero_basis() {
        // A 0-qubit sub-state is a single scalar; embedding places it on
        // |0…0⟩ of the wide register.
        let phase = C64::new(0.6, 0.8);
        let sub = StateVector::from_normalized_amplitudes(vec![phase]);
        let embedded = StateVector::embed(&sub, &[], 3);
        assert_eq!(embedded.n_qubits(), 3);
        assert_eq!(embedded.amplitudes()[0], phase);
        assert!(embedded.amplitudes()[1..].iter().all(|&a| a == C64::ZERO));
    }

    #[test]
    fn s_gate_is_exact() {
        // S applied twice must equal Z exactly — no cis(π/2) rounding.
        let mut sv = StateVector::zero_state(1);
        sv.apply_x(0);
        sv.apply_s(0);
        assert_eq!(sv.amplitudes()[1], C64::I);
        sv.apply_s(0);
        assert_eq!(sv.amplitudes()[1], C64::new(-1.0, 0.0));
        // S† on −|1⟩ multiplies by −i: (−1)(−i) = i; a second S† returns 1.
        sv.apply_sdg(0);
        assert_eq!(sv.amplitudes()[1], C64::I);
        sv.apply_sdg(0);
        assert_eq!(sv.amplitudes()[1], C64::ONE);
    }

    #[test]
    fn x_flips_basis_state() {
        let mut sv = StateVector::zero_state(3);
        sv.apply_x(0); // |100>
        assert_eq!(sv.amplitudes()[0b100], C64::ONE);
        sv.apply_x(2); // |101>
        assert_eq!(sv.amplitudes()[0b101], C64::ONE);
    }

    #[test]
    fn hh_is_identity() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_h(1);
        sv.apply_h(1);
        assert!(sv.approx_eq_up_to_phase(&StateVector::zero_state(2), 1e-12));
    }

    #[test]
    fn bell_state_probabilities() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_h(0);
        sv.apply_cx(0, 1);
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!(p[1].abs() < 1e-12);
        assert!(p[2].abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn z_adds_phase_on_one() {
        let mut sv = StateVector::zero_state(1);
        sv.apply_h(0);
        sv.apply_z(0);
        // (|0> - |1>)/√2
        assert!(sv.amplitudes()[0].re > 0.0);
        assert!(sv.amplitudes()[1].re < 0.0);
    }

    #[test]
    fn cz_symmetric_phase() {
        let mut a = StateVector::zero_state(2);
        a.apply_h(0);
        a.apply_h(1);
        let mut b = a.clone();
        a.apply_cz(0, 1);
        b.apply_cz(1, 0);
        assert_eq!(a, b);
        assert!(a.amplitudes()[3].re < 0.0);
    }

    #[test]
    fn mcz_only_flips_all_ones() {
        let mut sv = StateVector::zero_state(3);
        for q in 0..3 {
            sv.apply_h(q);
        }
        sv.apply_mcz(&[0, 1, 2]);
        for i in 0..7 {
            assert!(sv.amplitudes()[i].re > 0.0);
        }
        assert!(sv.amplitudes()[7].re < 0.0);
    }

    #[test]
    fn controlled_1q_respects_controls() {
        let x = CMatrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
        let mut sv = StateVector::zero_state(3);
        // Control qubits are |0>, so nothing happens.
        sv.apply_controlled_1q(&x, &[0, 1], 2);
        assert_eq!(sv.amplitudes()[0], C64::ONE);
        // Set controls, then it acts.
        sv.apply_x(0);
        sv.apply_x(1);
        sv.apply_controlled_1q(&x, &[0, 1], 2);
        assert_eq!(sv.amplitudes()[0b111], C64::ONE);
    }

    #[test]
    fn apply_kq_matches_embed() {
        // Random 3-qubit state; apply a 2-qubit gate two ways.
        let mut rng = StdRng::seed_from_u64(5);
        use rand::Rng;
        let amps: Vec<C64> = (0..8)
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let sv = StateVector::from_amplitudes(amps);
        let h = 1.0 / 2f64.sqrt();
        let had = CMatrix::from_rows(&[
            &[C64::real(h), C64::real(h)],
            &[C64::real(h), C64::real(-h)],
        ]);
        let gate = had.kron(&had);
        let mut via_kq = sv.clone();
        via_kq.apply_kq(&gate, &[2, 0]);
        let embedded = gate.embed(&[2, 0], 3);
        let expected = embedded.matvec(sv.amplitudes());
        for (i, &e) in expected.iter().enumerate() {
            assert!(via_kq.amplitudes()[i].approx_eq(e, 1e-12), "i={i}");
        }
    }

    #[test]
    fn phase_gate_composition() {
        let mut sv = StateVector::zero_state(1);
        sv.apply_h(0);
        sv.apply_phase(0, std::f64::consts::FRAC_PI_2); // S gate
        sv.apply_phase(0, std::f64::consts::FRAC_PI_2); // S·S = Z
        let mut zed = StateVector::zero_state(1);
        zed.apply_h(0);
        zed.apply_z(0);
        assert!(sv.approx_eq_up_to_phase(&zed, 1e-12));
    }

    #[test]
    fn measurement_collapses_consistently() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sv = StateVector::zero_state(2);
        sv.apply_h(0);
        sv.apply_cx(0, 1);
        let outcome = sv.measure(0, &mut rng);
        // After measuring one half of a Bell pair, the other is determined.
        assert!((sv.prob_one(1) - outcome as f64).abs() < 1e-12);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_statistics_match_probabilities() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut sv = StateVector::zero_state(1);
        sv.apply_h(0);
        let shots = 20_000;
        let counts = sv.sample_counts(shots, &mut rng);
        let f = counts[1] as f64 / shots as f64;
        assert!((f - 0.5).abs() < 0.02, "empirical frequency {f}");
    }

    #[test]
    fn reduced_density_matrix_of_bell_pair_is_mixed() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_h(0);
        sv.apply_cx(0, 1);
        let rho = sv.reduced_density_matrix(&[0]);
        let mixed = CMatrix::identity(2).scale_re(0.5);
        assert!(rho.approx_eq(&mixed, 1e-12));
    }

    #[test]
    fn reduced_density_matrix_of_product_state_is_pure() {
        let mut sv = StateVector::zero_state(3);
        sv.apply_h(1);
        let rho = sv.reduced_density_matrix(&[1]);
        assert!((morph_linalg::purity(&rho) - 1.0).abs() < 1e-12);
        assert!((rho[(0, 1)].re - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reduced_density_matrix_multi_qubit_order() {
        // |10>: reduced over [0,1] vs [1,0] permutes indices.
        let sv = StateVector::basis_state(2, 0b10);
        let r01 = sv.reduced_density_matrix(&[0, 1]);
        let r10 = sv.reduced_density_matrix(&[1, 0]);
        assert!((r01[(2, 2)].re - 1.0).abs() < 1e-12);
        assert!((r10[(1, 1)].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tensor_product_order() {
        let zero = StateVector::zero_state(1);
        let mut one = StateVector::zero_state(1);
        one.apply_x(0);
        let combined = zero.tensor(&one); // |01>
        assert_eq!(combined.amplitudes()[0b01], C64::ONE);
    }

    #[test]
    fn expectation_z_values() {
        let mut sv = StateVector::zero_state(1);
        assert!((sv.expectation_z(0) - 1.0).abs() < 1e-12);
        sv.apply_x(0);
        assert!((sv.expectation_z(0) + 1.0).abs() < 1e-12);
        sv.apply_h(0);
        assert!(sv.expectation_z(0).abs() < 1e-12);
    }

    #[test]
    fn collapse_zero_probability_panics() {
        let sv = StateVector::zero_state(1);
        let result = std::panic::catch_unwind(move || {
            let mut sv = sv;
            sv.collapse(0, 1);
        });
        assert!(result.is_err());
    }
}
