//! The [`Simulator`] trait and the dense + stabilizer implementations.

use std::fmt;

use morph_clifford::{NonCliffordGate, StabilizerState};
use morph_linalg::CMatrix;
use morph_qsim::{DensityMatrix, Gate, NoiseModel, StateVector};

/// Which backend family a [`Simulator`] (or a selection decision) is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Dense statevector.
    Dense,
    /// Dense density matrix (the only channel-capable backend).
    DenseDensity,
    /// Stabilizer tableau with exact readout.
    Stabilizer,
    /// Sparse statevector with spill-to-dense.
    Sparse,
}

impl BackendKind {
    /// Stable lowercase name for reports and counters.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Dense => "dense",
            BackendKind::DenseDensity => "dense-density",
            BackendKind::Stabilizer => "stabilizer",
            BackendKind::Sparse => "sparse",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a backend refused an operation. Callers fall back to a dense
/// simulator (the analysis pass exists to make this rare).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The stabilizer backend was handed a gate outside its Clifford set.
    NonClifford(NonCliffordGate),
    /// This backend cannot apply noise channels.
    ChannelsUnsupported(BackendKind),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::NonClifford(g) => write!(f, "{g}"),
            BackendError::ChannelsUnsupported(kind) => {
                write!(f, "the {kind} backend does not support noise channels")
            }
        }
    }
}

impl std::error::Error for BackendError {}

impl From<NonCliffordGate> for BackendError {
    fn from(err: NonCliffordGate) -> Self {
        BackendError::NonClifford(err)
    }
}

/// A simulation backend: holds a prepared state, advances it through a
/// gate stream (plus noise channels where supported), and reads out
/// tracepoint reduced density matrices.
///
/// Backends report refusals through [`BackendError`] instead of
/// panicking so the dispatch layer can fall back to dense.
pub trait Simulator {
    /// Register width.
    fn n_qubits(&self) -> usize;

    /// Which backend family this is.
    fn kind(&self) -> BackendKind;

    /// Advances the state by one gate.
    ///
    /// # Errors
    ///
    /// [`BackendError::NonClifford`] when the backend cannot represent
    /// the gate (stabilizer backend only).
    fn apply_gate(&mut self, gate: &Gate) -> Result<(), BackendError>;

    /// Applies the noise channel `noise` attaches to `gate` (called after
    /// [`Simulator::apply_gate`] on the same gate).
    ///
    /// # Errors
    ///
    /// [`BackendError::ChannelsUnsupported`] unless the backend tracks a
    /// density matrix.
    fn apply_channel(&mut self, noise: &NoiseModel, gate: &Gate) -> Result<(), BackendError> {
        let _ = (noise, gate);
        Err(BackendError::ChannelsUnsupported(self.kind()))
    }

    /// Reduced density matrix of the listed qubits (`qubits[0]` the most
    /// significant reduced bit) — the tracepoint readout.
    fn tracepoint_rdm(&self, qubits: &[usize]) -> CMatrix;

    /// `⟨Z_q⟩`, read from the one-qubit reduced density matrix.
    fn expectation_z(&self, qubit: usize) -> f64 {
        let rho = self.tracepoint_rdm(&[qubit]);
        rho[(0, 0)].re - rho[(1, 1)].re
    }
}

/// Dense statevector backend: the PR-3 kernels behind the trait.
#[derive(Debug, Clone)]
pub struct DenseSim {
    state: StateVector,
}

impl DenseSim {
    /// Starts from `|0…0⟩`.
    pub fn new(n_qubits: usize) -> Self {
        DenseSim {
            state: StateVector::zero_state(n_qubits),
        }
    }

    /// Starts from a prepared input state.
    pub fn from_state(state: StateVector) -> Self {
        DenseSim { state }
    }

    /// Read access to the register.
    pub fn state(&self) -> &StateVector {
        &self.state
    }

    /// Consumes the backend, returning the register.
    pub fn into_state(self) -> StateVector {
        self.state
    }
}

impl Simulator for DenseSim {
    fn n_qubits(&self) -> usize {
        self.state.n_qubits()
    }

    fn kind(&self) -> BackendKind {
        BackendKind::Dense
    }

    fn apply_gate(&mut self, gate: &Gate) -> Result<(), BackendError> {
        gate.apply(&mut self.state);
        Ok(())
    }

    fn tracepoint_rdm(&self, qubits: &[usize]) -> CMatrix {
        self.state.reduced_density_matrix(qubits)
    }
}

/// Dense density-matrix backend — the only one that applies channels.
#[derive(Debug, Clone)]
pub struct DenseDensitySim {
    rho: DensityMatrix,
}

impl DenseDensitySim {
    /// Starts from `|0…0⟩⟨0…0|`.
    pub fn new(n_qubits: usize) -> Self {
        DenseDensitySim {
            rho: DensityMatrix::zero_state(n_qubits),
        }
    }

    /// Starts from a prepared density matrix.
    pub fn from_density(rho: DensityMatrix) -> Self {
        DenseDensitySim { rho }
    }

    /// Read access to the density matrix.
    pub fn density(&self) -> &DensityMatrix {
        &self.rho
    }
}

impl Simulator for DenseDensitySim {
    fn n_qubits(&self) -> usize {
        self.rho.n_qubits()
    }

    fn kind(&self) -> BackendKind {
        BackendKind::DenseDensity
    }

    fn apply_gate(&mut self, gate: &Gate) -> Result<(), BackendError> {
        self.rho.apply_gate(gate);
        Ok(())
    }

    fn apply_channel(&mut self, noise: &NoiseModel, gate: &Gate) -> Result<(), BackendError> {
        noise.apply_to_density(&mut self.rho, gate);
        Ok(())
    }

    fn tracepoint_rdm(&self, qubits: &[usize]) -> CMatrix {
        self.rho.partial_trace(qubits)
    }
}

/// Stabilizer backend: O(n²) per Clifford gate, exact tracepoint readout
/// at any register width (the reduced density matrix never materializes
/// the 2^n register).
#[derive(Debug, Clone)]
pub struct StabilizerSim {
    state: StabilizerState,
}

impl StabilizerSim {
    /// Starts from `|0…0⟩`.
    pub fn new(n_qubits: usize) -> Self {
        StabilizerSim {
            state: StabilizerState::new(n_qubits),
        }
    }

    /// Read access to the stabilizer state.
    pub fn state(&self) -> &StabilizerState {
        &self.state
    }

    /// Materializes the dense statevector (global phase included) — the
    /// Clifford-prefix handoff.
    ///
    /// # Panics
    ///
    /// Panics at 28 qubits or wider (the dense register would not fit).
    pub fn to_statevector(&self) -> StateVector {
        self.state.to_statevector()
    }
}

impl Simulator for StabilizerSim {
    fn n_qubits(&self) -> usize {
        self.state.n_qubits()
    }

    fn kind(&self) -> BackendKind {
        BackendKind::Stabilizer
    }

    fn apply_gate(&mut self, gate: &Gate) -> Result<(), BackendError> {
        self.state.apply_gate(gate).map_err(BackendError::from)
    }

    fn tracepoint_rdm(&self, qubits: &[usize]) -> CMatrix {
        self.state.reduced_density_matrix(qubits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_stabilizer_agree_on_bell_tracepoint() {
        let gates = [Gate::H(0), Gate::CX(0, 1)];
        let mut dense = DenseSim::new(2);
        let mut stab = StabilizerSim::new(2);
        for g in &gates {
            dense.apply_gate(g).unwrap();
            stab.apply_gate(g).unwrap();
        }
        let a = dense.tracepoint_rdm(&[0]);
        let b = stab.tracepoint_rdm(&[0]);
        assert!((&a - &b).frobenius_norm() < 1e-12);
        assert!(dense.expectation_z(0).abs() < 1e-12);
        assert!(stab.expectation_z(0).abs() < 1e-12);
    }

    #[test]
    fn stabilizer_rejects_t_gate() {
        let mut stab = StabilizerSim::new(1);
        let err = stab.apply_gate(&Gate::T(0)).unwrap_err();
        assert!(matches!(err, BackendError::NonClifford(_)));
    }

    #[test]
    fn only_density_backend_accepts_channels() {
        let noise = NoiseModel::ibm_cairo();
        let g = Gate::X(0);
        let mut dense = DenseSim::new(1);
        assert!(matches!(
            dense.apply_channel(&noise, &g),
            Err(BackendError::ChannelsUnsupported(BackendKind::Dense))
        ));
        let mut density = DenseDensitySim::new(1);
        density.apply_gate(&g).unwrap();
        density.apply_channel(&noise, &g).unwrap();
        let rho = density.tracepoint_rdm(&[0]);
        assert!(rho[(1, 1)].re < 1.0, "noise must have acted");
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(BackendKind::Dense.as_str(), "dense");
        assert_eq!(BackendKind::DenseDensity.as_str(), "dense-density");
        assert_eq!(BackendKind::Stabilizer.as_str(), "stabilizer");
        assert_eq!(BackendKind::Sparse.as_str(), "sparse");
    }
}
