//! Backend selection policy behind `BackendMode::Auto`.
//!
//! The policy is deliberately simple and threshold-based: the point of
//! the fast paths is the asymptotic win at wide registers, and at small
//! `n` the dense kernels beat every alternative's constant factors — so
//! small circuits always stay dense (which also keeps historical golden
//! values on the dense path byte for byte).

use morph_qprog::{BackendMode, Circuit};

use crate::analysis::{analyze, CircuitAnalysis};

/// Minimum register width before the stabilizer backend is auto-selected
/// (below this the dense kernels win on constants).
pub const STABILIZER_MIN_QUBITS: usize = 14;

/// Minimum register width before the sparse backend is auto-selected.
pub const SPARSE_MIN_QUBITS: usize = 12;

/// Minimum register width before Clifford-prefix splicing is considered.
pub const PREFIX_MIN_QUBITS: usize = 14;

/// Minimum Clifford-prefix length (in gates) before splicing pays for the
/// tableau → statevector handoff.
pub const PREFIX_MIN_GATES: usize = 16;

/// Widest register a stabilizer prefix may hand off to a dense suffix (or
/// a sparse register may spill into): 2^28 amplitudes is the dense
/// ceiling.
pub const DENSE_HANDOFF_MAX_QUBITS: usize = 28;

/// Required slack between the sparse support-size exponent bound and the
/// register width: the sparse backend is only selected when the estimated
/// final support is at most `2^(n - SPARSE_HEADROOM_QUBITS)`.
pub const SPARSE_HEADROOM_QUBITS: usize = 2;

/// The backend a characterization run will execute on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendChoice {
    /// Dense statevector (or density matrix when noise is present).
    #[default]
    Dense,
    /// Stabilizer tableau end to end.
    Stabilizer,
    /// Sparse statevector end to end.
    Sparse,
    /// Clifford prefix on the tableau, dense suffix from the
    /// materialized statevector.
    CliffordPrefix {
        /// Instruction index where the tableau hands off (the first
        /// suffix instruction).
        split: usize,
    },
}

impl BackendChoice {
    /// Stable lowercase name for reports, counters, and the serve
    /// protocol.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendChoice::Dense => "dense",
            BackendChoice::Stabilizer => "stabilizer",
            BackendChoice::Sparse => "sparse",
            BackendChoice::CliffordPrefix { .. } => "clifford-prefix",
        }
    }

    /// Stable serialization tag: [`BackendChoice::as_str`], with the
    /// prefix split point appended as `clifford-prefix:<split>`.
    pub fn tag(self) -> String {
        match self {
            BackendChoice::CliffordPrefix { split } => format!("clifford-prefix:{split}"),
            other => other.as_str().to_string(),
        }
    }

    /// Parses a [`BackendChoice::tag`] back.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "dense" => Some(BackendChoice::Dense),
            "stabilizer" => Some(BackendChoice::Stabilizer),
            "sparse" => Some(BackendChoice::Sparse),
            t => t
                .strip_prefix("clifford-prefix:")?
                .parse()
                .ok()
                .map(|split| BackendChoice::CliffordPrefix { split }),
        }
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Everything the selection policy looks at.
#[derive(Debug, Clone, Copy)]
pub struct PlanInputs<'a> {
    /// The main circuit to be characterized (unfused).
    pub circuit: &'a Circuit,
    /// Requested mode, before the `MORPH_BACKEND` environment override
    /// ([`plan_characterization`] applies [`BackendMode::resolve`]).
    pub mode: BackendMode,
    /// `true` when the run uses no noise model.
    pub noiseless: bool,
    /// Width of the sampled input-state register (bounds the input
    /// support at `2^n_input_qubits`).
    pub n_input_qubits: usize,
    /// `true` when every sampled input preparation is a Clifford circuit
    /// (required for the stabilizer and prefix paths).
    pub preps_clifford: bool,
}

/// A selection decision plus the reason it was made.
#[derive(Debug, Clone)]
pub struct BackendPlan {
    /// The selected backend.
    pub choice: BackendChoice,
    /// Human-readable rationale (surfaces in trace logs and reports).
    pub reason: &'static str,
    /// The analysis the decision was based on.
    pub analysis: CircuitAnalysis,
}

/// Selects the backend for a characterization run.
///
/// Resolves the `MORPH_BACKEND` environment override first (it replaces
/// `Auto`; explicitly forced modes win over it), then applies
/// the `Auto` policy (or validates a forced mode, falling back to dense
/// when the forced backend cannot represent the run — noise, non-Clifford
/// gates on the stabilizer, non-unitary circuits). Decisions are
/// published on `backend/selected_*` counters; forced-mode fallbacks add
/// `backend/fallback_dense`.
pub fn plan_characterization(inputs: &PlanInputs<'_>) -> BackendPlan {
    let analysis = analyze(inputs.circuit);
    let plan = decide(inputs, analysis);
    morph_trace::counter(
        match plan.choice {
            BackendChoice::Dense => "backend/selected_dense",
            BackendChoice::Stabilizer => "backend/selected_stabilizer",
            BackendChoice::Sparse => "backend/selected_sparse",
            BackendChoice::CliffordPrefix { .. } => "backend/selected_clifford_prefix",
        },
        1,
    );
    plan
}

fn dense(reason: &'static str, analysis: CircuitAnalysis) -> BackendPlan {
    BackendPlan {
        choice: BackendChoice::Dense,
        reason,
        analysis,
    }
}

fn fallback(reason: &'static str, analysis: CircuitAnalysis) -> BackendPlan {
    morph_trace::counter("backend/fallback_dense", 1);
    dense(reason, analysis)
}

fn decide(inputs: &PlanInputs<'_>, analysis: CircuitAnalysis) -> BackendPlan {
    let mode = inputs.mode.resolve();
    // Noise channels and non-unitary instructions only run on the dense
    // density/statevector paths, whatever the requested mode.
    if !inputs.noiseless {
        return if mode == BackendMode::Dense {
            dense("dense requested", analysis)
        } else {
            fallback("noise model requires the dense density backend", analysis)
        };
    }
    if !analysis.unitary {
        return if mode == BackendMode::Dense {
            dense("dense requested", analysis)
        } else {
            fallback("non-unitary circuit requires the dense backend", analysis)
        };
    }
    match mode {
        BackendMode::Dense => dense("dense requested", analysis),
        BackendMode::Stabilizer => {
            if analysis.all_clifford() && inputs.preps_clifford {
                BackendPlan {
                    choice: BackendChoice::Stabilizer,
                    reason: "stabilizer requested",
                    analysis,
                }
            } else {
                fallback("stabilizer requested but circuit is not Clifford", analysis)
            }
        }
        BackendMode::Sparse => BackendPlan {
            choice: BackendChoice::Sparse,
            reason: "sparse requested",
            analysis,
        },
        BackendMode::Auto => auto_decide(inputs, analysis),
    }
}

fn auto_decide(inputs: &PlanInputs<'_>, analysis: CircuitAnalysis) -> BackendPlan {
    let n = analysis.n_qubits;
    if analysis.all_clifford() && inputs.preps_clifford && n >= STABILIZER_MIN_QUBITS {
        return BackendPlan {
            choice: BackendChoice::Stabilizer,
            reason: "all-Clifford circuit with Clifford input preparations",
            analysis,
        };
    }
    if n >= SPARSE_MIN_QUBITS
        && analysis.est_log2_nonzeros(inputs.n_input_qubits) + SPARSE_HEADROOM_QUBITS <= n
    {
        return BackendPlan {
            choice: BackendChoice::Sparse,
            reason: "estimated basis support stays far below the register size",
            analysis,
        };
    }
    // The prefix no longer needs to dominate the circuit: the suffix
    // runs on the adaptive sparse register (which switches itself to
    // dense when the support saturates), so any prefix long enough to
    // pay for the tableau handoff is worth splicing.
    if inputs.preps_clifford
        && (PREFIX_MIN_QUBITS..DENSE_HANDOFF_MAX_QUBITS).contains(&n)
        && analysis.clifford_prefix_gates >= PREFIX_MIN_GATES
        && analysis.clifford_prefix_gates < analysis.gate_count
    {
        return BackendPlan {
            choice: BackendChoice::CliffordPrefix {
                split: analysis.clifford_prefix_split,
            },
            reason: "long Clifford prefix ahead of a non-Clifford suffix",
            analysis,
        };
    }
    dense("no fast path applies", analysis)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(circuit: &Circuit, mode: BackendMode, n_input_qubits: usize) -> BackendPlan {
        plan_characterization(&PlanInputs {
            circuit,
            mode,
            noiseless: true,
            n_input_qubits,
            preps_clifford: true,
        })
    }

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        c.tracepoint(1, &[0, n - 1]);
        c
    }

    #[test]
    fn wide_clifford_circuit_selects_stabilizer() {
        let c = ghz(20);
        let p = plan(&c, BackendMode::Auto, 2);
        assert_eq!(p.choice, BackendChoice::Stabilizer);
    }

    #[test]
    fn small_circuits_stay_dense() {
        // Small n: dense constants win, and golden values stay put.
        let c = ghz(3);
        assert_eq!(plan(&c, BackendMode::Auto, 1).choice, BackendChoice::Dense);
    }

    #[test]
    fn low_branching_wide_circuit_selects_sparse() {
        let mut c = Circuit::new(16);
        c.h(0).t(1);
        for q in 1..16 {
            c.cx(q - 1, q);
        }
        c.tracepoint(1, &[3]);
        let p = plan(&c, BackendMode::Auto, 2);
        // One H + input support 2^2 → support ≤ 2^3, far below 2^16.
        assert_eq!(p.choice, BackendChoice::Sparse);
    }

    #[test]
    fn clifford_prefix_is_spliced() {
        let mut c = Circuit::new(15);
        for round in 0..3 {
            for q in 0..15 {
                c.h(q);
            }
            for q in 0..14 {
                c.cx(q, q + 1);
            }
            let _ = round;
        }
        // Dense-support-saturating prefix, then a non-Clifford suffix.
        for q in 0..15 {
            c.t(q);
            c.h(q);
        }
        let a = analyze(&c);
        assert!(a.clifford_prefix_gates >= PREFIX_MIN_GATES);
        let p = plan(&c, BackendMode::Auto, 4);
        assert_eq!(
            p.choice,
            BackendChoice::CliffordPrefix {
                split: a.clifford_prefix_split
            }
        );
    }

    #[test]
    fn modest_prefix_below_half_the_circuit_still_splices() {
        // 29 Clifford prefix gates ahead of a 90-gate non-Clifford tail:
        // the prefix is well under half the circuit, but the adaptive
        // suffix makes the handoff worthwhile anyway.
        let mut c = Circuit::new(15);
        for q in 0..15 {
            c.h(q);
        }
        for q in 0..14 {
            c.cx(q, q + 1);
        }
        for _ in 0..3 {
            for q in 0..15 {
                c.t(q);
                c.h(q);
            }
        }
        let a = analyze(&c);
        assert!(a.clifford_prefix_gates >= PREFIX_MIN_GATES);
        assert!(a.clifford_prefix_gates < a.gate_count / 2);
        let p = plan(&c, BackendMode::Auto, 4);
        assert_eq!(
            p.choice,
            BackendChoice::CliffordPrefix {
                split: a.clifford_prefix_split
            }
        );
    }

    #[test]
    fn noise_forces_dense_with_fallback() {
        let c = ghz(20);
        let p = plan_characterization(&PlanInputs {
            circuit: &c,
            mode: BackendMode::Stabilizer,
            noiseless: false,
            n_input_qubits: 2,
            preps_clifford: true,
        });
        assert_eq!(p.choice, BackendChoice::Dense);
    }

    #[test]
    fn forced_stabilizer_falls_back_on_non_clifford() {
        let mut c = ghz(20);
        c.t(5);
        let p = plan(&c, BackendMode::Stabilizer, 2);
        assert_eq!(p.choice, BackendChoice::Dense);
    }

    #[test]
    fn forced_modes_are_honored_when_representable() {
        let c = ghz(20);
        assert_eq!(
            plan(&c, BackendMode::Stabilizer, 2).choice,
            BackendChoice::Stabilizer
        );
        assert_eq!(
            plan(&c, BackendMode::Sparse, 2).choice,
            BackendChoice::Sparse
        );
        assert_eq!(plan(&c, BackendMode::Dense, 2).choice, BackendChoice::Dense);
    }

    #[test]
    fn non_clifford_preps_block_stabilizer() {
        let c = ghz(20);
        let p = plan_characterization(&PlanInputs {
            circuit: &c,
            mode: BackendMode::Auto,
            noiseless: true,
            n_input_qubits: 2,
            preps_clifford: false,
        });
        // GHZ branches once, so the sparse path still applies.
        assert_eq!(p.choice, BackendChoice::Sparse);
    }

    #[test]
    fn tags_round_trip() {
        for choice in [
            BackendChoice::Dense,
            BackendChoice::Stabilizer,
            BackendChoice::Sparse,
            BackendChoice::CliffordPrefix { split: 17 },
        ] {
            assert_eq!(BackendChoice::from_tag(&choice.tag()), Some(choice));
        }
        assert_eq!(BackendChoice::from_tag("warp-drive"), None);
        assert_eq!(BackendChoice::from_tag("clifford-prefix:x"), None);
    }

    #[test]
    fn choice_names_are_stable() {
        assert_eq!(BackendChoice::Dense.as_str(), "dense");
        assert_eq!(BackendChoice::Stabilizer.as_str(), "stabilizer");
        assert_eq!(BackendChoice::Sparse.as_str(), "sparse");
        assert_eq!(
            BackendChoice::CliffordPrefix { split: 3 }.as_str(),
            "clifford-prefix"
        );
    }
}
