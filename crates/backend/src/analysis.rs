//! Circuit-analysis pass feeding backend selection.

use morph_clifford::StabilizerState;
use morph_qprog::{Circuit, Instruction};
use morph_qsim::Gate;

/// `true` if the stabilizer backend can execute `gate` natively.
pub fn is_clifford_gate(gate: &Gate) -> bool {
    StabilizerState::supports(gate)
}

/// `true` if the gate can enlarge a state's computational-basis support.
///
/// Diagonal gates and basis permutations (X, CX, CCX, SWAP and the
/// monomial Y) map one nonzero amplitude to one nonzero amplitude;
/// everything else — H, X/Y rotations, arbitrary unitaries — can double
/// the support. RZ and friends are diagonal, so they never branch.
pub fn is_branching_gate(gate: &Gate) -> bool {
    !matches!(
        gate,
        Gate::X(_)
            | Gate::Y(_)
            | Gate::Z(_)
            | Gate::S(_)
            | Gate::Sdg(_)
            | Gate::T(_)
            | Gate::Tdg(_)
            | Gate::RZ(..)
            | Gate::Phase(..)
            | Gate::CX(..)
            | Gate::CZ(..)
            | Gate::CRZ(..)
            | Gate::CPhase(..)
            | Gate::Swap(..)
            | Gate::CCX(..)
            | Gate::MCZ(_)
    )
}

/// Static facts about a circuit that the backend selection policy reads.
///
/// Produced by [`analyze`]; one pass over the instruction list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitAnalysis {
    /// Register width.
    pub n_qubits: usize,
    /// `true` when the circuit has no measurement, reset, or classical
    /// feedback — the precondition for every non-dense backend.
    pub unitary: bool,
    /// Total gate instructions.
    pub gate_count: usize,
    /// Gates the stabilizer backend executes natively.
    pub clifford_gates: usize,
    /// Gates that can enlarge the basis support (see
    /// [`is_branching_gate`]); with `i` nonzero input amplitudes the final
    /// support is at most `min(2^n, i · 2^branching_gates)`.
    pub branching_gates: usize,
    /// Gates in the longest all-Clifford prefix.
    pub clifford_prefix_gates: usize,
    /// Instruction index where the Clifford prefix ends: the first
    /// instruction that is a non-Clifford gate or non-unitary. Equal to
    /// the instruction count when the whole circuit is Clifford.
    pub clifford_prefix_split: usize,
    /// Number of maximal all-Clifford gate runs (separated by
    /// non-Clifford gates or non-unitary instructions) — how many
    /// tableau-friendly segments a staged splice pipeline crosses.
    pub clifford_segments: usize,
}

impl CircuitAnalysis {
    /// `true` when every gate is Clifford and the circuit is unitary —
    /// the whole run fits on the stabilizer tableau.
    pub fn all_clifford(&self) -> bool {
        self.unitary && self.clifford_gates == self.gate_count
    }

    /// Support-size exponent bound after the circuit runs on an input
    /// with `2^input_log2` nonzero amplitudes.
    pub fn est_log2_nonzeros(&self, input_log2: usize) -> usize {
        (input_log2 + self.branching_gates).min(self.n_qubits)
    }
}

/// Analyzes `circuit` in one pass (tracepoints and barriers are
/// transparent: they neither count as gates nor break the Clifford
/// prefix, since the stabilizer backend serves tracepoints exactly).
pub fn analyze(circuit: &Circuit) -> CircuitAnalysis {
    let mut unitary = true;
    let mut gate_count = 0usize;
    let mut clifford_gates = 0usize;
    let mut branching_gates = 0usize;
    let mut prefix_gates = 0usize;
    let mut split = circuit.instructions().len();
    let mut in_prefix = true;
    let mut segments = 0usize;
    let mut in_segment = false;
    for (idx, inst) in circuit.instructions().iter().enumerate() {
        match inst {
            Instruction::Gate(g) => {
                gate_count += 1;
                let clifford = is_clifford_gate(g);
                if clifford {
                    clifford_gates += 1;
                    if !in_segment {
                        segments += 1;
                        in_segment = true;
                    }
                } else {
                    in_segment = false;
                }
                if is_branching_gate(g) {
                    branching_gates += 1;
                }
                if in_prefix {
                    if clifford {
                        prefix_gates += 1;
                    } else {
                        in_prefix = false;
                        split = idx;
                    }
                }
            }
            Instruction::Tracepoint { .. } | Instruction::Barrier => {}
            _ => {
                unitary = false;
                in_segment = false;
                if in_prefix {
                    in_prefix = false;
                    split = idx;
                }
            }
        }
    }
    CircuitAnalysis {
        n_qubits: circuit.n_qubits(),
        unitary,
        gate_count,
        clifford_gates,
        branching_gates,
        clifford_prefix_gates: prefix_gates,
        clifford_prefix_split: split,
        clifford_segments: segments,
    }
}

/// The circuit consisting of `circuit`'s instructions from `split`
/// onwards — the non-Clifford suffix a prefix-spliced run hands to the
/// dense executor.
pub fn suffix_circuit(circuit: &Circuit, split: usize) -> Circuit {
    let mut suffix = Circuit::with_cbits(circuit.n_qubits(), circuit.n_cbits());
    for inst in &circuit.instructions()[split..] {
        suffix.push(inst.clone());
    }
    suffix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clifford_circuit_analysis() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).s(2);
        c.tracepoint(1, &[0]);
        c.cz(1, 2);
        let a = analyze(&c);
        assert!(a.unitary);
        assert!(a.all_clifford());
        assert_eq!(a.gate_count, 4);
        assert_eq!(a.clifford_prefix_gates, 4);
        assert_eq!(a.clifford_prefix_split, c.instructions().len());
        assert_eq!(a.branching_gates, 1, "only H branches");
        assert_eq!(a.clifford_segments, 1, "one unbroken Clifford run");
    }

    #[test]
    fn prefix_split_points_at_first_non_clifford_gate() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.tracepoint(1, &[0]);
        c.t(1).h(0);
        let a = analyze(&c);
        assert!(!a.all_clifford());
        assert_eq!(a.clifford_prefix_gates, 2);
        // Instructions: H, CX, T1, T, H — the T gate sits at index 3.
        assert_eq!(a.clifford_prefix_split, 3);
        assert_eq!(a.clifford_segments, 2, "the T gate splits the runs");
        let suffix = suffix_circuit(&c, a.clifford_prefix_split);
        assert_eq!(suffix.gate_count(), 2);
        assert_eq!(suffix.n_qubits(), 2);
    }

    #[test]
    fn measurement_breaks_unitarity_and_prefix() {
        let mut c = Circuit::with_cbits(2, 1);
        c.h(0);
        c.measure(0, 0);
        c.x(1);
        let a = analyze(&c);
        assert!(!a.unitary);
        assert_eq!(a.clifford_prefix_split, 1);
        assert_eq!(a.clifford_prefix_gates, 1);
        assert_eq!(a.clifford_segments, 2, "measurement splits the runs");
    }

    #[test]
    fn branching_classification() {
        assert!(is_branching_gate(&Gate::H(0)));
        assert!(is_branching_gate(&Gate::RX(0, 0.1)));
        assert!(is_branching_gate(&Gate::MCRY(vec![0], 1, 0.2)));
        assert!(!is_branching_gate(&Gate::RZ(0, 0.1)));
        assert!(!is_branching_gate(&Gate::CCX(0, 1, 2)));
        assert!(!is_branching_gate(&Gate::MCZ(vec![0, 1, 2])));
    }
}
