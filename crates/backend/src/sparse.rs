//! Sparse statevector backend.
//!
//! Amplitudes live in a `BTreeMap<usize, C64>` keyed by basis index
//! (ascending iteration matches the dense kernels' scan order). Every
//! kernel evaluates the **same scalar expressions** as the dense
//! specialized kernels in `morph_qsim::StateVector`, with `C64::ZERO`
//! standing in for absent amplitudes — so every nonzero amplitude is
//! bit-identical to the dense register's, at every point in the circuit.
//! (Exactly-zero amplitudes may differ in the sign of zero, but a ±0 can
//! never perturb a nonzero sum, dropped entries never reach the readout,
//! and the dense reduced-density-matrix scan skips `== 0` amplitudes —
//! so no observable ever sees the difference. The backend parity suite
//! in `tests/simulator_kernels.rs` enforces this bit-for-bit.)
//!
//! When the nonzero count exceeds the budget the state spills to a dense
//! [`StateVector`] (announced on the `backend/sparse_spills` counter) and
//! the remaining gates run on the dense kernels directly.

use std::collections::BTreeMap;

use morph_linalg::{CMatrix, C64};
use morph_qsim::{matrices, Gate, StateVector};

use crate::simulator::{BackendError, BackendKind, Simulator};

/// Upper bound for the spill register: past this width the dense
/// fallback would not fit in memory, so the budget must hold.
const SPILL_MAX_QUBITS: usize = 28;

/// Sparse statevector simulator (see the module docs for the exactness
/// contract).
///
/// # Examples
///
/// ```
/// use morph_backend::{Simulator, SparseSim};
/// use morph_qsim::Gate;
///
/// // A 24-qubit GHZ state is 2 nonzero amplitudes, not 2^24.
/// let mut sim = SparseSim::new(24);
/// sim.apply_gate(&Gate::H(0)).unwrap();
/// for q in 1..24 {
///     sim.apply_gate(&Gate::CX(q - 1, q)).unwrap();
/// }
/// assert_eq!(sim.nonzeros(), 2);
/// assert!(sim.expectation_z(23).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SparseSim {
    n: usize,
    budget: usize,
    amps: BTreeMap<usize, C64>,
    dense: Option<StateVector>,
}

/// Default nonzero budget for an `n`-qubit register: a quarter of the
/// full register (sparse stops paying off well before that), capped at
/// 2^20 entries so wide registers don't hoard memory before spilling.
pub fn default_budget(n_qubits: usize) -> usize {
    1usize << n_qubits.saturating_sub(2).min(20)
}

impl SparseSim {
    /// Starts from `|0…0⟩` with the [`default_budget`].
    pub fn new(n_qubits: usize) -> Self {
        Self::with_budget(n_qubits, default_budget(n_qubits))
    }

    /// Starts from `|0…0⟩` with an explicit nonzero budget.
    pub fn with_budget(n_qubits: usize, budget: usize) -> Self {
        let mut amps = BTreeMap::new();
        amps.insert(0usize, C64::ONE);
        SparseSim {
            n: n_qubits,
            budget: budget.max(1),
            amps,
            dense: None,
        }
    }

    /// Starts from a prepared state, keeping only its nonzero amplitudes.
    pub fn from_statevector(state: &StateVector) -> Self {
        let mut sim = Self::with_budget(state.n_qubits(), default_budget(state.n_qubits()));
        sim.amps.clear();
        for (i, &a) in state.amplitudes().iter().enumerate() {
            if a != C64::ZERO {
                sim.amps.insert(i, a);
            }
        }
        sim
    }

    /// Current nonzero-amplitude count (the spilled dense register counts
    /// its nonzero entries).
    pub fn nonzeros(&self) -> usize {
        match &self.dense {
            Some(sv) => sv.amplitudes().iter().filter(|&&a| a != C64::ZERO).count(),
            None => self.amps.len(),
        }
    }

    /// `true` once the state has spilled to the dense register.
    pub fn spilled(&self) -> bool {
        self.dense.is_some()
    }

    /// Materializes the dense statevector.
    pub fn to_statevector(&self) -> StateVector {
        match &self.dense {
            Some(sv) => sv.clone(),
            None => {
                let mut amps = vec![C64::ZERO; 1usize << self.n];
                for (&i, &a) in &self.amps {
                    amps[i] = a;
                }
                StateVector::from_normalized_amplitudes(amps)
            }
        }
    }

    fn shift(&self, qubit: usize) -> usize {
        assert!(qubit < self.n, "qubit {qubit} out of range");
        self.n - 1 - qubit
    }

    fn get(&self, idx: usize) -> C64 {
        self.amps.get(&idx).copied().unwrap_or(C64::ZERO)
    }

    fn set(&mut self, idx: usize, v: C64) {
        if v == C64::ZERO {
            self.amps.remove(&idx);
        } else {
            self.amps.insert(idx, v);
        }
    }

    /// Group bases (indices with all `group_mask` bits cleared) that have
    /// at least one nonzero member — the only groups a kernel can change.
    fn touched_bases(&self, group_mask: usize) -> Vec<usize> {
        let mut bases: Vec<usize> = self.amps.keys().map(|&k| k & !group_mask).collect();
        // Clearing mask bits does not preserve key order, so equal bases
        // may be non-adjacent: sort before deduplicating. (Group order is
        // irrelevant to the values — groups are disjoint index sets.)
        bases.sort_unstable();
        bases.dedup();
        bases
    }

    /// Mirrors `StateVector::apply_1q`: `u00·a0 + u01·a1` / `u10·a0 +
    /// u11·a1` per index pair.
    fn apply_1q(&mut self, u: &CMatrix, qubit: usize) {
        let mask = 1usize << self.shift(qubit);
        let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
        for base in self.touched_bases(mask) {
            let a0 = self.get(base);
            let a1 = self.get(base | mask);
            self.set(base, u00 * a0 + u01 * a1);
            self.set(base | mask, u10 * a0 + u11 * a1);
        }
    }

    /// Mirrors `StateVector::apply_h`: `(a0 ± a1).scale(h)`.
    fn apply_h(&mut self, qubit: usize) {
        let h = 1.0 / 2f64.sqrt();
        let mask = 1usize << self.shift(qubit);
        for base in self.touched_bases(mask) {
            let a0 = self.get(base);
            let a1 = self.get(base | mask);
            self.set(base, (a0 + a1).scale(h));
            self.set(base | mask, (a0 - a1).scale(h));
        }
    }

    /// Basis permutation `idx ↦ perm(idx)` (X, CX, SWAP): values move,
    /// no arithmetic touches them.
    fn permute(&mut self, perm: impl Fn(usize) -> usize) {
        let old = std::mem::take(&mut self.amps);
        for (i, a) in old {
            self.amps.insert(perm(i), a);
        }
    }

    /// Diagonal update on every stored amplitude whose index satisfies
    /// `pred`; exact-zero results are dropped afterwards.
    fn map_where(&mut self, pred: impl Fn(usize) -> bool, f: impl Fn(C64) -> C64) {
        for (&i, v) in self.amps.iter_mut() {
            if pred(i) {
                *v = f(*v);
            }
        }
        self.amps.retain(|_, v| *v != C64::ZERO);
    }

    /// Mirrors `StateVector::apply_controlled_1q`: pairs within the
    /// all-controls-set subspace.
    fn apply_controlled_1q(&mut self, u: &CMatrix, controls: &[usize], target: usize) {
        let tmask = 1usize << self.shift(target);
        let cmask: usize = controls
            .iter()
            .map(|&c| {
                assert_ne!(c, target, "control equals target");
                1usize << self.shift(c)
            })
            .sum();
        let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
        let mut bases: Vec<usize> = self
            .amps
            .keys()
            .filter(|&&k| k & cmask == cmask)
            .map(|&k| k & !tmask)
            .collect();
        bases.sort_unstable();
        bases.dedup();
        for i in bases {
            let j = i | tmask;
            let a0 = self.get(i);
            let a1 = self.get(j);
            self.set(i, u00 * a0 + u01 * a1);
            self.set(j, u10 * a0 + u11 * a1);
        }
    }

    /// Mirrors `StateVector::apply_2q` (`q_a` the more significant target
    /// bit): 4-element gather, ascending-column accumulation.
    fn apply_2q(&mut self, u: &CMatrix, q_a: usize, q_b: usize) {
        assert_ne!(q_a, q_b, "two-qubit gate targets must differ");
        let (ma, mb) = (1usize << self.shift(q_a), 1usize << self.shift(q_b));
        for i00 in self.touched_bases(ma | mb) {
            let idxs = [i00, i00 | mb, i00 | ma, i00 | ma | mb];
            let a = [
                self.get(idxs[0]),
                self.get(idxs[1]),
                self.get(idxs[2]),
                self.get(idxs[3]),
            ];
            for (r, &idx) in idxs.iter().enumerate() {
                let mut acc = C64::ZERO;
                for (c, &ac) in a.iter().enumerate() {
                    acc += u[(r, c)] * ac;
                }
                self.set(idx, acc);
            }
        }
    }

    /// Mirrors `StateVector::apply_kq`: same `spread` table, same scratch
    /// gather, same ascending accumulation.
    fn apply_kq(&mut self, u: &CMatrix, targets: &[usize]) {
        let k = targets.len();
        assert_eq!(u.rows(), 1 << k, "operator size does not match targets");
        match k {
            1 => return self.apply_1q(u, targets[0]),
            2 => return self.apply_2q(u, targets[0], targets[1]),
            _ => {}
        }
        let shifts: Vec<usize> = targets.iter().map(|&q| self.shift(q)).collect();
        {
            let mut sorted = shifts.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicate targets");
        }
        let dk = 1usize << k;
        let group_mask: usize = shifts.iter().map(|&s| 1usize << s).sum();
        let spread: Vec<usize> = (0..dk)
            .map(|t| {
                let mut mask = 0usize;
                for (bit, &s) in shifts.iter().enumerate() {
                    if (t >> (k - 1 - bit)) & 1 == 1 {
                        mask |= 1 << s;
                    }
                }
                mask
            })
            .collect();
        let mut scratch = vec![C64::ZERO; dk];
        for base in self.touched_bases(group_mask) {
            for (t, slot) in scratch.iter_mut().enumerate() {
                *slot = self.get(base | spread[t]);
            }
            for r in 0..dk {
                let mut acc = C64::ZERO;
                for (c, &sc) in scratch.iter().enumerate() {
                    acc += u[(r, c)] * sc;
                }
                self.set(base | spread[r], acc);
            }
        }
    }

    fn apply_gate_sparse(&mut self, gate: &Gate) {
        match gate {
            Gate::H(q) => self.apply_h(*q),
            Gate::X(q) => {
                let mask = 1usize << self.shift(*q);
                self.permute(|i| i ^ mask);
            }
            Gate::Y(q) => self.apply_1q(&matrices::y(), *q),
            Gate::Z(q) => {
                let mask = 1usize << self.shift(*q);
                self.map_where(|i| i & mask != 0, |a| -a);
            }
            Gate::S(q) => {
                let mask = 1usize << self.shift(*q);
                self.map_where(|i| i & mask != 0, |a| C64::new(-a.im, a.re));
            }
            Gate::Sdg(q) => {
                let mask = 1usize << self.shift(*q);
                self.map_where(|i| i & mask != 0, |a| C64::new(a.im, -a.re));
            }
            Gate::T(q) => self.apply_phase(*q, std::f64::consts::FRAC_PI_4),
            Gate::Tdg(q) => self.apply_phase(*q, -std::f64::consts::FRAC_PI_4),
            Gate::RX(q, a) => self.apply_1q(&matrices::rx(*a), *q),
            Gate::RY(q, a) => self.apply_1q(&matrices::ry(*a), *q),
            Gate::RZ(q, a) => self.apply_1q(&matrices::rz(*a), *q),
            Gate::Phase(q, a) => self.apply_phase(*q, *a),
            Gate::CX(c, t) => {
                assert_ne!(c, t, "control equals target");
                let cmask = 1usize << self.shift(*c);
                let tmask = 1usize << self.shift(*t);
                self.permute(|i| if i & cmask != 0 { i ^ tmask } else { i });
            }
            Gate::CZ(a, b) => {
                assert_ne!(a, b, "control equals target");
                let both = (1usize << self.shift(*a)) | (1usize << self.shift(*b));
                self.map_where(|i| i & both == both, |a| -a);
            }
            Gate::CRZ(c, t, a) => self.apply_controlled_1q(&matrices::rz(*a), &[*c], *t),
            Gate::CPhase(c, t, a) => self.apply_controlled_1q(&matrices::phase(*a), &[*c], *t),
            Gate::Swap(a, b) => {
                assert_ne!(a, b, "swap requires distinct qubits");
                let ma = 1usize << self.shift(*a);
                let mb = 1usize << self.shift(*b);
                self.permute(|i| {
                    let (ba, bb) = (i & ma != 0, i & mb != 0);
                    if ba != bb {
                        i ^ ma ^ mb
                    } else {
                        i
                    }
                });
            }
            Gate::CCX(c1, c2, t) => self.apply_controlled_1q(&matrices::x(), &[*c1, *c2], *t),
            Gate::MCZ(qs) => {
                let mask: usize = qs.iter().map(|&q| 1usize << self.shift(q)).sum();
                self.map_where(|i| i & mask == mask, |a| -a);
            }
            Gate::MCRX(cs, t, a) => self.apply_controlled_1q(&matrices::rx(*a), cs, *t),
            Gate::MCRY(cs, t, a) => self.apply_controlled_1q(&matrices::ry(*a), cs, *t),
            Gate::Unitary(qs, u) => self.apply_kq(u, qs),
        }
    }

    /// Mirrors `StateVector::apply_phase`: `a *= cis(θ)` where the bit is
    /// set.
    fn apply_phase(&mut self, qubit: usize, theta: f64) {
        let mask = 1usize << self.shift(qubit);
        let phase = C64::cis(theta);
        self.map_where(|i| i & mask != 0, |a| a * phase);
    }

    fn spill(&mut self) {
        assert!(
            self.n < SPILL_MAX_QUBITS,
            "sparse register of {} qubits exceeded its nonzero budget ({}) \
             and is too wide to spill to dense",
            self.n,
            self.budget
        );
        morph_trace::counter("backend/sparse_spills", 1);
        self.dense = Some(self.to_statevector());
        self.amps.clear();
    }
}

impl Simulator for SparseSim {
    fn n_qubits(&self) -> usize {
        self.n
    }

    fn kind(&self) -> BackendKind {
        BackendKind::Sparse
    }

    fn apply_gate(&mut self, gate: &Gate) -> Result<(), BackendError> {
        match &mut self.dense {
            Some(sv) => gate.apply(sv),
            None => {
                self.apply_gate_sparse(gate);
                if self.amps.len() > self.budget {
                    self.spill();
                }
            }
        }
        Ok(())
    }

    /// Mirrors `StateVector::reduced_density_matrix` exactly: first-seen
    /// environment-slot order over the ascending nonzero scan, ascending
    /// indices within each bucket, identical accumulation order — so the
    /// result is bit-identical to the dense readout.
    fn tracepoint_rdm(&self, qubits: &[usize]) -> CMatrix {
        if let Some(sv) = &self.dense {
            return sv.reduced_density_matrix(qubits);
        }
        let k = qubits.len();
        let shifts: Vec<usize> = qubits.iter().map(|&q| self.shift(q)).collect();
        {
            let mut sorted = shifts.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                k,
                "duplicate qubits in reduced_density_matrix"
            );
        }
        let dk = 1usize << k;
        let keep_mask: usize = shifts.iter().map(|&s| 1usize << s).sum();
        let env_mask = !keep_mask & ((1usize << self.n) - 1);
        let extract = |i: usize| -> usize {
            let mut idx = 0usize;
            for (bit, &s) in shifts.iter().enumerate() {
                if (i >> s) & 1 == 1 {
                    idx |= 1 << (k - 1 - bit);
                }
            }
            idx
        };
        let mut rho = CMatrix::zeros(dk, dk);
        let mut buckets: Vec<Vec<(usize, C64)>> = Vec::new();
        let mut env_index_of = std::collections::HashMap::new();
        for (&i, &a) in &self.amps {
            if a == C64::ZERO {
                continue;
            }
            let env = i & env_mask;
            let slot = *env_index_of.entry(env).or_insert_with(|| {
                buckets.push(Vec::new());
                buckets.len() - 1
            });
            buckets[slot].push((extract(i), a));
        }
        for bucket in &buckets {
            for &(r, ar) in bucket {
                for &(c, ac) in bucket {
                    rho[(r, c)] += ar * ac.conj();
                }
            }
        }
        rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_gate(n: usize, rng: &mut StdRng) -> Gate {
        let q = rng.gen_range(0..n);
        match rng.gen_range(0..14) {
            0 => Gate::H(q),
            1 => Gate::X(q),
            2 => Gate::Y(q),
            3 => Gate::Z(q),
            4 => Gate::S(q),
            5 => Gate::T(q),
            6 => Gate::RX(q, rng.gen_range(-3.0..3.0)),
            7 => Gate::RY(q, rng.gen_range(-3.0..3.0)),
            8 => Gate::RZ(q, rng.gen_range(-3.0..3.0)),
            9 => Gate::Phase(q, rng.gen_range(-3.0..3.0)),
            g if n >= 2 => {
                let mut p = rng.gen_range(0..n);
                while p == q {
                    p = rng.gen_range(0..n);
                }
                match g {
                    10 => Gate::CX(q, p),
                    11 => Gate::CZ(q, p),
                    12 => Gate::Swap(q, p),
                    _ => Gate::CPhase(q, p, rng.gen_range(-3.0..3.0)),
                }
            }
            _ => Gate::Sdg(q),
        }
    }

    /// The core contract: every nonzero amplitude bit-identical to the
    /// dense kernels, arbitrary (non-Clifford) circuits included.
    #[test]
    fn nonzero_amplitudes_bitwise_match_dense() {
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..25 {
            let n = rng.gen_range(1..=6);
            let mut sim = SparseSim::with_budget(n, 1 << n);
            let mut dense = StateVector::zero_state(n);
            for step in 0..40 {
                let g = random_gate(n, &mut rng);
                sim.apply_gate(&g).unwrap();
                g.apply(&mut dense);
                for (&i, &a) in &sim.amps {
                    assert!(
                        a == dense.amplitudes()[i],
                        "trial {trial} step {step} {g:?}: amp {i} {a:?} vs {:?}",
                        dense.amplitudes()[i]
                    );
                }
                for (i, &d) in dense.amplitudes().iter().enumerate() {
                    if d != C64::ZERO {
                        assert!(
                            sim.amps.contains_key(&i),
                            "trial {trial} step {step}: dense nonzero {i} missing"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rdm_bitwise_matches_dense() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..25 {
            let n = rng.gen_range(2..=6);
            let mut sim = SparseSim::with_budget(n, 1 << n);
            let mut dense = StateVector::zero_state(n);
            for _ in 0..30 {
                let g = random_gate(n, &mut rng);
                sim.apply_gate(&g).unwrap();
                g.apply(&mut dense);
            }
            let k = rng.gen_range(1..=n.min(3));
            let mut qubits: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                qubits.swap(i, j);
            }
            qubits.truncate(k);
            let a = sim.tracepoint_rdm(&qubits);
            let b = dense.reduced_density_matrix(&qubits);
            for r in 0..(1 << k) {
                for c in 0..(1 << k) {
                    assert!(
                        a[(r, c)] == b[(r, c)],
                        "qubits {qubits:?} entry ({r},{c}): {:?} vs {:?}",
                        a[(r, c)],
                        b[(r, c)]
                    );
                }
            }
        }
    }

    #[test]
    fn ghz_stays_two_amplitudes() {
        let mut sim = SparseSim::new(20);
        sim.apply_gate(&Gate::H(0)).unwrap();
        for q in 1..20 {
            sim.apply_gate(&Gate::CX(q - 1, q)).unwrap();
        }
        assert_eq!(sim.nonzeros(), 2);
        assert!(!sim.spilled());
    }

    #[test]
    fn budget_overflow_spills_and_stays_correct() {
        let mut sim = SparseSim::with_budget(4, 4);
        let mut dense = StateVector::zero_state(4);
        for q in 0..4 {
            sim.apply_gate(&Gate::H(q)).unwrap();
            Gate::H(q).apply(&mut dense);
        }
        assert!(sim.spilled(), "16 nonzeros over a budget of 4 must spill");
        // Post-spill gates run dense and remain exact.
        sim.apply_gate(&Gate::T(2)).unwrap();
        Gate::T(2).apply(&mut dense);
        let a = sim.tracepoint_rdm(&[2]);
        let b = dense.reduced_density_matrix(&[2]);
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(a[(r, c)], b[(r, c)]);
            }
        }
    }

    #[test]
    fn kq_unitary_matches_dense() {
        // Fusion emits Gate::Unitary payloads; exercise the k-qubit path.
        let mut rng = StdRng::seed_from_u64(8);
        let n = 5;
        let mut sim = SparseSim::with_budget(n, 1 << n);
        let mut dense = StateVector::zero_state(n);
        for g in [Gate::H(0), Gate::H(2), Gate::CX(0, 3)] {
            sim.apply_gate(&g).unwrap();
            g.apply(&mut dense);
        }
        for targets in [vec![1usize, 3], vec![4, 0, 2]] {
            // A random unitary via a product of elementary gates' full
            // matrix on the target subspace.
            let dim = 1usize << targets.len();
            let mut u = CMatrix::identity(dim);
            for _ in 0..4 {
                let g = random_gate(targets.len(), &mut rng);
                u = g.full_matrix(targets.len()).matmul(&u);
            }
            let g = Gate::Unitary(targets.clone(), u);
            sim.apply_gate(&g).unwrap();
            g.apply(&mut dense);
            for (&i, &a) in &sim.amps {
                assert!(a == dense.amplitudes()[i], "targets {targets:?} amp {i}");
            }
        }
    }

    #[test]
    fn from_statevector_round_trips() {
        let mut dense = StateVector::zero_state(3);
        Gate::H(1).apply(&mut dense);
        Gate::CX(1, 2).apply(&mut dense);
        let sim = SparseSim::from_statevector(&dense);
        assert_eq!(sim.nonzeros(), 2);
        assert_eq!(sim.to_statevector().amplitudes(), dense.amplitudes());
    }
}
