//! Sparse statevector backend over a sorted-vec amplitude layout.
//!
//! Amplitudes live in a `Vec<(usize, C64)>` sorted ascending by basis
//! index (matching the dense kernels' scan order). Kernels never probe a
//! map: they partition the sorted run by the gate's bit pattern — each
//! partition stays sorted both by index and by group base — then walk
//! the partitions with linear k-way merges, computing the **same scalar
//! expressions** as the dense specialized kernels in
//! `morph_qsim::StateVector` with `C64::ZERO` standing in for absent
//! amplitudes. Outputs are emitted in ascending order per partition and
//! merged back in one pass, so every nonzero amplitude is bit-identical
//! to the dense register's at every point in the circuit. (Exactly-zero
//! amplitudes may differ in the sign of zero, but a ±0 can never perturb
//! a nonzero sum, dropped entries never reach the readout, and the dense
//! reduced-density-matrix scan skips `== 0` amplitudes — so no
//! observable ever sees the difference. The backend parity suite in
//! `tests/simulator_kernels.rs` enforces this bit-for-bit.)
//!
//! Two monitors watch the nonzero count after every sparse gate:
//!
//! - **Spill** (`len > budget`): the state no longer fits the configured
//!   nonzero budget and falls back to a dense [`StateVector`]
//!   (`backend/sparse_spills` counter) — the PR-7 semantics.
//! - **Switch** (`len >= switch threshold`): the state still fits but has
//!   grown dense enough that the sorted-run kernels stop paying off, so
//!   the simulator proactively hands off to the dense kernels
//!   (`backend/sparse_switches` / `backend/sparse_switch_gate`
//!   counters). The check runs on the per-lane gate stream only, so the
//!   switch point is deterministic and independent of worker count and
//!   batch size.
//!
//! Both events, plus the nonzero high-water mark, are reported through
//! [`FastPathStats`].

use std::cmp::Ordering;
use std::sync::OnceLock;

use morph_linalg::{CMatrix, C64};
use morph_qsim::{matrices, Gate, StateVector};

use crate::simulator::{BackendError, BackendKind, Simulator};

/// Upper bound for the spill/switch register: past this width the dense
/// fallback would not fit in memory, so the budget must hold (and the
/// switch monitor is disabled).
pub const SPILL_MAX_QUBITS: usize = 28;

/// Sparse fast-path event counters for one simulation (or, merged, one
/// characterization sweep).
///
/// Every field is a deterministic function of the per-lane gate stream,
/// so sums (and the peak's max) over a sweep's lanes are identical at
/// any worker count and batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FastPathStats {
    /// Budget overruns that forced a fall back to the dense register.
    pub spills: u64,
    /// Proactive sparse→dense switches taken by the growth monitor.
    pub switches: u64,
    /// Clifford-segment splices (tableau-prefix → sparse/dense handoffs).
    pub splices: u64,
    /// Highest nonzero-amplitude count observed on any sparse register.
    pub peak_nonzeros: u64,
}

impl FastPathStats {
    /// Folds another lane's stats in: event counts add, peaks take the
    /// max.
    pub fn merge(&mut self, other: &FastPathStats) {
        self.spills += other.spills;
        self.switches += other.switches;
        self.splices += other.splices;
        self.peak_nonzeros = self.peak_nonzeros.max(other.peak_nonzeros);
    }

    /// `true` when nothing sparse-path-related happened (the dense and
    /// stabilizer backends report this).
    pub fn is_empty(&self) -> bool {
        *self == FastPathStats::default()
    }
}

/// Default nonzero budget for an `n`-qubit register: a quarter of the
/// full register (sparse stops paying off well before that), capped at
/// 2^20 entries so wide registers don't hoard memory before spilling.
pub fn default_budget(n_qubits: usize) -> usize {
    1usize << n_qubits.saturating_sub(2).min(20)
}

fn switch_shift_override() -> Option<u32> {
    static SHIFT: OnceLock<Option<u32>> = OnceLock::new();
    *SHIFT.get_or_init(|| morph_trace::env_knob("MORPH_SPARSE_SWITCH_SHIFT"))
}

/// Default proactive-switch threshold for an `n`-qubit register: an
/// eighth of the full register, floored at 1024 entries so narrow
/// registers keep exercising the sparse kernels. `MORPH_SPARSE_SWITCH_SHIFT=s`
/// overrides the policy with `max(2, 2^n >> s)` (no floor), and the
/// monitor is disabled entirely (`usize::MAX`) at
/// [`SPILL_MAX_QUBITS`] or wider, where no dense register could exist.
pub fn default_switch_threshold(n_qubits: usize) -> usize {
    if n_qubits >= SPILL_MAX_QUBITS {
        return usize::MAX;
    }
    let dim = 1usize << n_qubits;
    match switch_shift_override() {
        Some(shift) => (dim >> shift.min(63)).max(2),
        None => (dim >> 3).max(1024),
    }
}

type Entry = (usize, C64);

/// Merges two index-sorted runs with disjoint index sets into `dst`.
fn merge2(dst: &mut Vec<Entry>, a: &[Entry], b: &[Entry]) {
    dst.clear();
    dst.reserve(a.len() + b.len());
    let (mut p, mut q) = (0usize, 0usize);
    while p < a.len() && q < b.len() {
        if a[p].0 < b[q].0 {
            dst.push(a[p]);
            p += 1;
        } else {
            dst.push(b[q]);
            q += 1;
        }
    }
    dst.extend_from_slice(&a[p..]);
    dst.extend_from_slice(&b[q..]);
}

/// Merges three index-sorted runs with disjoint index sets into `dst`.
fn merge3(dst: &mut Vec<Entry>, a: &[Entry], b: &[Entry], c: &[Entry]) {
    dst.clear();
    dst.reserve(a.len() + b.len() + c.len());
    let (mut p, mut q, mut r) = (0usize, 0usize, 0usize);
    loop {
        let ia = a.get(p).map_or(usize::MAX, |e| e.0);
        let ib = b.get(q).map_or(usize::MAX, |e| e.0);
        let ic = c.get(r).map_or(usize::MAX, |e| e.0);
        if ia == usize::MAX && ib == usize::MAX && ic == usize::MAX {
            break;
        }
        if ia < ib && ia < ic {
            dst.push(a[p]);
            p += 1;
        } else if ib < ic {
            dst.push(b[q]);
            q += 1;
        } else {
            dst.push(c[r]);
            r += 1;
        }
    }
}

/// Merges any number of index-sorted runs with disjoint index sets.
fn merge_many(dst: &mut Vec<Entry>, runs: &[Vec<Entry>]) {
    dst.clear();
    dst.reserve(runs.iter().map(Vec::len).sum());
    let mut cur = vec![0usize; runs.len()];
    loop {
        let mut best_run = usize::MAX;
        let mut best_idx = usize::MAX;
        for (t, run) in runs.iter().enumerate() {
            if let Some(&(i, _)) = run.get(cur[t]) {
                if i < best_idx {
                    best_idx = i;
                    best_run = t;
                }
            }
        }
        if best_run == usize::MAX {
            break;
        }
        dst.push(runs[best_run][cur[best_run]]);
        cur[best_run] += 1;
    }
}

/// Walks `lo` (mask bit clear) and `hi` (mask bit set) — both ascending
/// by base `idx & !mask` — calling `f(a0, a1)` once per base occupied in
/// either run, and pushes nonzero outputs (ascending by index) to
/// `out0`/`out1`.
fn merge_pairs(
    lo: &[Entry],
    hi: &[Entry],
    mask: usize,
    mut f: impl FnMut(C64, C64) -> (C64, C64),
    out0: &mut Vec<Entry>,
    out1: &mut Vec<Entry>,
) {
    let (mut p, mut q) = (0usize, 0usize);
    while p < lo.len() || q < hi.len() {
        let (base, a0, a1) = if q == hi.len() {
            let (i, a) = lo[p];
            p += 1;
            (i, a, C64::ZERO)
        } else if p == lo.len() {
            let (i, a) = hi[q];
            q += 1;
            (i & !mask, C64::ZERO, a)
        } else {
            let (il, al) = lo[p];
            let (ih, ah) = hi[q];
            match il.cmp(&(ih & !mask)) {
                Ordering::Less => {
                    p += 1;
                    (il, al, C64::ZERO)
                }
                Ordering::Greater => {
                    q += 1;
                    (ih & !mask, C64::ZERO, ah)
                }
                Ordering::Equal => {
                    p += 1;
                    q += 1;
                    (il, al, ah)
                }
            }
        };
        let (r0, r1) = f(a0, a1);
        if r0 != C64::ZERO {
            out0.push((base, r0));
        }
        if r1 != C64::ZERO {
            out1.push((base | mask, r1));
        }
    }
}

/// Sparse statevector simulator (see the module docs for the layout and
/// exactness contract).
///
/// # Examples
///
/// ```
/// use morph_backend::{Simulator, SparseSim};
/// use morph_qsim::Gate;
///
/// // A 24-qubit GHZ state is 2 nonzero amplitudes, not 2^24.
/// let mut sim = SparseSim::new(24);
/// sim.apply_gate(&Gate::H(0)).unwrap();
/// for q in 1..24 {
///     sim.apply_gate(&Gate::CX(q - 1, q)).unwrap();
/// }
/// assert_eq!(sim.nonzeros(), 2);
/// assert!(sim.expectation_z(23).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SparseSim {
    n: usize,
    budget: usize,
    switch_at: usize,
    gates_applied: u64,
    entries: Vec<Entry>,
    dense: Option<StateVector>,
    stats: FastPathStats,
    pool: Vec<Vec<Entry>>,
}

impl SparseSim {
    /// Starts from `|0…0⟩` with the [`default_budget`] and
    /// [`default_switch_threshold`].
    pub fn new(n_qubits: usize) -> Self {
        Self::with_thresholds(
            n_qubits,
            default_budget(n_qubits),
            default_switch_threshold(n_qubits),
        )
    }

    /// Starts from `|0…0⟩` with an explicit nonzero budget and the
    /// proactive-switch monitor disabled (the PR-7 spill-only
    /// semantics).
    pub fn with_budget(n_qubits: usize, budget: usize) -> Self {
        Self::with_thresholds(n_qubits, budget, usize::MAX)
    }

    /// Starts from `|0…0⟩` with explicit spill budget and switch
    /// threshold (`usize::MAX` disables the switch monitor; thresholds
    /// below 2 are clamped up so `|0…0⟩` itself never trips it).
    pub fn with_thresholds(n_qubits: usize, budget: usize, switch_threshold: usize) -> Self {
        SparseSim {
            n: n_qubits,
            budget: budget.max(1),
            switch_at: switch_threshold.max(2),
            gates_applied: 0,
            entries: vec![(0, C64::ONE)],
            dense: None,
            stats: FastPathStats {
                peak_nonzeros: 1,
                ..FastPathStats::default()
            },
            pool: Vec::new(),
        }
    }

    /// Starts from a prepared state, keeping only its nonzero
    /// amplitudes. The spill/switch monitor runs once on the handoff
    /// state, so a saturated prefix goes dense immediately.
    pub fn from_statevector(state: &StateVector) -> Self {
        let mut sim = Self::new(state.n_qubits());
        sim.entries.clear();
        for (i, &a) in state.amplitudes().iter().enumerate() {
            if a != C64::ZERO {
                sim.entries.push((i, a));
            }
        }
        sim.stats.peak_nonzeros = sim.stats.peak_nonzeros.max(sim.entries.len() as u64);
        if sim.entries.len() > sim.budget {
            sim.spill();
        } else if sim.entries.len() >= sim.switch_at {
            sim.switch_to_dense();
        }
        sim
    }

    /// Current nonzero-amplitude count (the dense register counts its
    /// nonzero entries).
    pub fn nonzeros(&self) -> usize {
        match &self.dense {
            Some(sv) => sv.amplitudes().iter().filter(|&&a| a != C64::ZERO).count(),
            None => self.entries.len(),
        }
    }

    /// `true` once the state runs on the dense register, whether by
    /// budget spill or proactive switch.
    pub fn spilled(&self) -> bool {
        self.dense.is_some()
    }

    /// Spill/switch/peak counters accumulated so far.
    pub fn stats(&self) -> FastPathStats {
        self.stats
    }

    /// Records a Clifford-segment splice handoff into this register
    /// (bumps the stat and the `backend/splices` counter).
    pub fn record_splice(&mut self) {
        self.stats.splices += 1;
        morph_trace::counter("backend/splices", 1);
    }

    /// The amplitude at basis index `idx` (`C64::ZERO` when absent).
    pub fn amplitude(&self, idx: usize) -> C64 {
        match &self.dense {
            Some(sv) => sv.amplitudes()[idx],
            None => self
                .entries
                .binary_search_by_key(&idx, |e| e.0)
                .map_or(C64::ZERO, |p| self.entries[p].1),
        }
    }

    /// Materializes the dense statevector.
    pub fn to_statevector(&self) -> StateVector {
        match &self.dense {
            Some(sv) => sv.clone(),
            None => {
                let mut amps = vec![C64::ZERO; 1usize << self.n];
                for &(i, a) in &self.entries {
                    amps[i] = a;
                }
                StateVector::from_normalized_amplitudes(amps)
            }
        }
    }

    fn shift(&self, qubit: usize) -> usize {
        assert!(qubit < self.n, "qubit {qubit} out of range");
        self.n - 1 - qubit
    }

    fn take(&mut self) -> Vec<Entry> {
        self.pool.pop().unwrap_or_default()
    }

    fn give(&mut self, mut buf: Vec<Entry>) {
        buf.clear();
        self.pool.push(buf);
    }

    /// Pair kernel: partitions the sorted run on `mask`, merges the two
    /// halves by base, applies `f` to each occupied pair, and merges the
    /// outputs back — one linear pass end to end.
    fn apply_pairs(&mut self, mask: usize, f: impl FnMut(C64, C64) -> (C64, C64)) {
        let mut lo = self.take();
        let mut hi = self.take();
        for &(i, a) in &self.entries {
            if i & mask == 0 {
                lo.push((i, a));
            } else {
                hi.push((i, a));
            }
        }
        let mut out0 = self.take();
        let mut out1 = self.take();
        merge_pairs(&lo, &hi, mask, f, &mut out0, &mut out1);
        merge2(&mut self.entries, &out0, &out1);
        self.give(lo);
        self.give(hi);
        self.give(out0);
        self.give(out1);
    }

    /// Mirrors `StateVector::apply_1q`: `u00·a0 + u01·a1` / `u10·a0 +
    /// u11·a1` per index pair.
    fn apply_1q(&mut self, u: &CMatrix, qubit: usize) {
        let mask = 1usize << self.shift(qubit);
        let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
        self.apply_pairs(mask, |a0, a1| (u00 * a0 + u01 * a1, u10 * a0 + u11 * a1));
    }

    /// Mirrors `StateVector::apply_h`: `(a0 ± a1).scale(h)`.
    fn apply_h(&mut self, qubit: usize) {
        let h = 1.0 / 2f64.sqrt();
        let mask = 1usize << self.shift(qubit);
        self.apply_pairs(mask, |a0, a1| ((a0 + a1).scale(h), (a0 - a1).scale(h)));
    }

    /// X: values move between the two bit-halves, no arithmetic.
    fn permute_x(&mut self, mask: usize) {
        let mut lo = self.take();
        let mut hi = self.take();
        for &(i, a) in &self.entries {
            if i & mask == 0 {
                lo.push((i | mask, a));
            } else {
                hi.push((i & !mask, a));
            }
        }
        merge2(&mut self.entries, &hi, &lo);
        self.give(lo);
        self.give(hi);
    }

    /// CX: the control-clear partition passes through; the control-set
    /// halves trade the target bit.
    fn permute_cx(&mut self, cmask: usize, tmask: usize) {
        let mut pass = self.take();
        let mut lo = self.take();
        let mut hi = self.take();
        for &(i, a) in &self.entries {
            if i & cmask == 0 {
                pass.push((i, a));
            } else if i & tmask == 0 {
                lo.push((i | tmask, a));
            } else {
                hi.push((i & !tmask, a));
            }
        }
        merge3(&mut self.entries, &pass, &hi, &lo);
        self.give(pass);
        self.give(lo);
        self.give(hi);
    }

    /// SWAP: equal-bit indices pass through; unequal-bit indices flip
    /// both bits (`i ^ (ma|mb)` is monotone within each partition).
    fn permute_swap(&mut self, ma: usize, mb: usize) {
        let both = ma | mb;
        let mut pass = self.take();
        let mut a_only = self.take();
        let mut b_only = self.take();
        for &(i, v) in &self.entries {
            let (ba, bb) = (i & ma != 0, i & mb != 0);
            if ba == bb {
                pass.push((i, v));
            } else if ba {
                a_only.push((i ^ both, v));
            } else {
                b_only.push((i ^ both, v));
            }
        }
        merge3(&mut self.entries, &pass, &a_only, &b_only);
        self.give(pass);
        self.give(a_only);
        self.give(b_only);
    }

    /// Diagonal update on every stored amplitude whose index satisfies
    /// `pred`; exact-zero results are dropped in place (order is
    /// untouched).
    fn map_where(&mut self, pred: impl Fn(usize) -> bool, f: impl Fn(C64) -> C64) {
        self.entries.retain_mut(|e| {
            if pred(e.0) {
                e.1 = f(e.1);
            }
            e.1 != C64::ZERO
        });
    }

    /// Mirrors `StateVector::apply_controlled_1q`: pairs within the
    /// all-controls-set subspace; everything else passes through.
    fn apply_controlled_1q(&mut self, u: &CMatrix, controls: &[usize], target: usize) {
        let tmask = 1usize << self.shift(target);
        let cmask: usize = controls
            .iter()
            .map(|&c| {
                assert_ne!(c, target, "control equals target");
                1usize << self.shift(c)
            })
            .sum();
        let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
        let mut pass = self.take();
        let mut lo = self.take();
        let mut hi = self.take();
        for &(i, a) in &self.entries {
            if i & cmask != cmask {
                pass.push((i, a));
            } else if i & tmask == 0 {
                lo.push((i, a));
            } else {
                hi.push((i, a));
            }
        }
        let mut out0 = self.take();
        let mut out1 = self.take();
        merge_pairs(
            &lo,
            &hi,
            tmask,
            |a0, a1| (u00 * a0 + u01 * a1, u10 * a0 + u11 * a1),
            &mut out0,
            &mut out1,
        );
        merge3(&mut self.entries, &pass, &out0, &out1);
        self.give(pass);
        self.give(lo);
        self.give(hi);
        self.give(out0);
        self.give(out1);
    }

    /// Specialized two-target unitary kernel — the shape `fuse_circuit`
    /// emits for nearly every fused block, so this is the hot gate of a
    /// fused sparse sweep. Identical arithmetic to the generic
    /// [`Self::apply_kq`] path (same spread table, same ascending-column
    /// fold), with fixed-size cursors and a preloaded operator instead of
    /// per-call scratch allocations.
    fn apply_2q(&mut self, u: &CMatrix, q_a: usize, q_b: usize) {
        assert_ne!(q_a, q_b, "two-qubit gate targets must differ");
        assert_eq!(u.rows(), 4, "operator size does not match targets");
        let (ma, mb) = (1usize << self.shift(q_a), 1usize << self.shift(q_b));
        let group_mask = ma | mb;
        let spread = [0usize, mb, ma, ma | mb];
        let mut uu = [C64::ZERO; 16];
        for (r, row) in uu.chunks_exact_mut(4).enumerate() {
            for (c, slot) in row.iter_mut().enumerate() {
                *slot = u[(r, c)];
            }
        }
        // Ascending nonzero columns per row. Fused blocks of monomial
        // gates are mostly zeros, and skipping a `0·a` term never changes
        // a nonzero accumulator's bits (and an all-zero accumulator is
        // dropped either way — zero signs compare equal), so the fold
        // below stays bit-faithful while touching only real terms.
        let mut nz_cols = [[0usize; 4]; 4];
        let mut nz_len = [0usize; 4];
        for r in 0..4 {
            for c in 0..4 {
                if uu[4 * r + c] != C64::ZERO {
                    nz_cols[r][nz_len[r]] = c;
                    nz_len[r] += 1;
                }
            }
        }
        let mut parts = [self.take(), self.take(), self.take(), self.take()];
        for &(i, a) in &self.entries {
            let t = (usize::from(i & ma != 0) << 1) | usize::from(i & mb != 0);
            parts[t].push((i & !group_mask, a));
        }
        let mut outs = [self.take(), self.take(), self.take(), self.take()];
        let mut cur = [0usize; 4];
        let mut scratch = [C64::ZERO; 4];
        loop {
            let mut base = usize::MAX;
            for (t, part) in parts.iter().enumerate() {
                if let Some(&(b, _)) = part.get(cur[t]) {
                    base = base.min(b);
                }
            }
            if base == usize::MAX {
                break;
            }
            for (t, part) in parts.iter().enumerate() {
                scratch[t] = match part.get(cur[t]) {
                    Some(&(b, a)) if b == base => {
                        cur[t] += 1;
                        a
                    }
                    _ => C64::ZERO,
                };
            }
            for (r, out) in outs.iter_mut().enumerate() {
                let row = &uu[4 * r..4 * r + 4];
                let mut acc = C64::ZERO;
                for &c in &nz_cols[r][..nz_len[r]] {
                    acc += row[c] * scratch[c];
                }
                if acc != C64::ZERO {
                    out.push((base | spread[r], acc));
                }
            }
        }
        merge_many(&mut self.entries, &outs);
        for buf in parts {
            self.give(buf);
        }
        for buf in outs {
            self.give(buf);
        }
    }

    /// Mirrors `StateVector::apply_kq`: same `spread` table, same
    /// ascending-column accumulation, over a `2^k`-way partition of the
    /// sorted run walked by group base.
    fn apply_kq(&mut self, u: &CMatrix, targets: &[usize]) {
        let k = targets.len();
        assert_eq!(u.rows(), 1 << k, "operator size does not match targets");
        if k == 1 {
            return self.apply_1q(u, targets[0]);
        }
        if k == 2 {
            return self.apply_2q(u, targets[0], targets[1]);
        }
        let shifts: Vec<usize> = targets.iter().map(|&q| self.shift(q)).collect();
        {
            let mut sorted = shifts.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicate targets");
        }
        let dk = 1usize << k;
        let group_mask: usize = shifts.iter().map(|&s| 1usize << s).sum();
        let spread: Vec<usize> = (0..dk)
            .map(|t| {
                let mut mask = 0usize;
                for (bit, &s) in shifts.iter().enumerate() {
                    if (t >> (k - 1 - bit)) & 1 == 1 {
                        mask |= 1 << s;
                    }
                }
                mask
            })
            .collect();
        // Partition by the index's pattern over the target bits; each
        // partition is ascending by base (clearing the same fixed
        // pattern preserves order).
        let mut parts: Vec<Vec<Entry>> = (0..dk).map(|_| self.take()).collect();
        for &(i, a) in &self.entries {
            let mut t = 0usize;
            for (bit, &s) in shifts.iter().enumerate() {
                if (i >> s) & 1 == 1 {
                    t |= 1 << (k - 1 - bit);
                }
            }
            parts[t].push((i & !group_mask, a));
        }
        // Walk occupied group bases in ascending order via a dk-way
        // merge; absent members read as C64::ZERO exactly like the old
        // map probes did.
        let mut outs: Vec<Vec<Entry>> = (0..dk).map(|_| self.take()).collect();
        let mut cur = vec![0usize; dk];
        let mut scratch = vec![C64::ZERO; dk];
        loop {
            let mut base = usize::MAX;
            for (t, part) in parts.iter().enumerate() {
                if let Some(&(b, _)) = part.get(cur[t]) {
                    if b < base {
                        base = b;
                    }
                }
            }
            if base == usize::MAX {
                break;
            }
            for (t, part) in parts.iter().enumerate() {
                scratch[t] = match part.get(cur[t]) {
                    Some(&(b, a)) if b == base => {
                        cur[t] += 1;
                        a
                    }
                    _ => C64::ZERO,
                };
            }
            for (r, out) in outs.iter_mut().enumerate() {
                let mut acc = C64::ZERO;
                for (c, &sc) in scratch.iter().enumerate() {
                    acc += u[(r, c)] * sc;
                }
                if acc != C64::ZERO {
                    out.push((base | spread[r], acc));
                }
            }
        }
        merge_many(&mut self.entries, &outs);
        for buf in parts {
            self.give(buf);
        }
        for buf in outs {
            self.give(buf);
        }
    }

    fn apply_gate_sparse(&mut self, gate: &Gate) {
        match gate {
            Gate::H(q) => self.apply_h(*q),
            Gate::X(q) => {
                let mask = 1usize << self.shift(*q);
                self.permute_x(mask);
            }
            Gate::Y(q) => self.apply_1q(&matrices::y(), *q),
            Gate::Z(q) => {
                let mask = 1usize << self.shift(*q);
                self.map_where(|i| i & mask != 0, |a| -a);
            }
            Gate::S(q) => {
                let mask = 1usize << self.shift(*q);
                self.map_where(|i| i & mask != 0, |a| C64::new(-a.im, a.re));
            }
            Gate::Sdg(q) => {
                let mask = 1usize << self.shift(*q);
                self.map_where(|i| i & mask != 0, |a| C64::new(a.im, -a.re));
            }
            Gate::T(q) => self.apply_phase(*q, std::f64::consts::FRAC_PI_4),
            Gate::Tdg(q) => self.apply_phase(*q, -std::f64::consts::FRAC_PI_4),
            Gate::RX(q, a) => self.apply_1q(&matrices::rx(*a), *q),
            Gate::RY(q, a) => self.apply_1q(&matrices::ry(*a), *q),
            Gate::RZ(q, a) => self.apply_1q(&matrices::rz(*a), *q),
            Gate::Phase(q, a) => self.apply_phase(*q, *a),
            Gate::CX(c, t) => {
                assert_ne!(c, t, "control equals target");
                let cmask = 1usize << self.shift(*c);
                let tmask = 1usize << self.shift(*t);
                self.permute_cx(cmask, tmask);
            }
            Gate::CZ(a, b) => {
                assert_ne!(a, b, "control equals target");
                let both = (1usize << self.shift(*a)) | (1usize << self.shift(*b));
                self.map_where(|i| i & both == both, |a| -a);
            }
            Gate::CRZ(c, t, a) => self.apply_controlled_1q(&matrices::rz(*a), &[*c], *t),
            Gate::CPhase(c, t, a) => self.apply_controlled_1q(&matrices::phase(*a), &[*c], *t),
            Gate::Swap(a, b) => {
                assert_ne!(a, b, "swap requires distinct qubits");
                let ma = 1usize << self.shift(*a);
                let mb = 1usize << self.shift(*b);
                self.permute_swap(ma, mb);
            }
            Gate::CCX(c1, c2, t) => self.apply_controlled_1q(&matrices::x(), &[*c1, *c2], *t),
            Gate::MCZ(qs) => {
                let mask: usize = qs.iter().map(|&q| 1usize << self.shift(q)).sum();
                self.map_where(|i| i & mask == mask, |a| -a);
            }
            Gate::MCRX(cs, t, a) => self.apply_controlled_1q(&matrices::rx(*a), cs, *t),
            Gate::MCRY(cs, t, a) => self.apply_controlled_1q(&matrices::ry(*a), cs, *t),
            Gate::Unitary(qs, u) => self.apply_kq(u, qs),
        }
    }

    /// Mirrors `StateVector::apply_phase`: `a *= cis(θ)` where the bit is
    /// set.
    fn apply_phase(&mut self, qubit: usize, theta: f64) {
        let mask = 1usize << self.shift(qubit);
        let phase = C64::cis(theta);
        self.map_where(|i| i & mask != 0, |a| a * phase);
    }

    /// Runs the growth monitor after a sparse gate: spill past the
    /// budget, proactively switch at the threshold.
    fn after_sparse_gate(&mut self) {
        self.gates_applied += 1;
        let len = self.entries.len() as u64;
        if len > self.stats.peak_nonzeros {
            self.stats.peak_nonzeros = len;
        }
        if self.entries.len() > self.budget {
            self.spill();
        } else if self.entries.len() >= self.switch_at {
            self.switch_to_dense();
        }
    }

    fn spill(&mut self) {
        assert!(
            self.n < SPILL_MAX_QUBITS,
            "sparse register of {} qubits exceeded its nonzero budget ({}) \
             and is too wide to spill to dense",
            self.n,
            self.budget
        );
        morph_trace::counter("backend/sparse_spills", 1);
        self.stats.spills += 1;
        self.go_dense();
    }

    fn switch_to_dense(&mut self) {
        assert!(
            self.n < SPILL_MAX_QUBITS,
            "sparse register of {} qubits hit its switch threshold ({}) \
             but is too wide to hand off to dense",
            self.n,
            self.switch_at
        );
        morph_trace::counter("backend/sparse_switches", 1);
        morph_trace::counter("backend/sparse_switch_gate", self.gates_applied);
        self.stats.switches += 1;
        self.go_dense();
    }

    fn go_dense(&mut self) {
        self.dense = Some(self.to_statevector());
        self.entries.clear();
        self.pool.clear();
    }
}

impl Simulator for SparseSim {
    fn n_qubits(&self) -> usize {
        self.n
    }

    fn kind(&self) -> BackendKind {
        BackendKind::Sparse
    }

    fn apply_gate(&mut self, gate: &Gate) -> Result<(), BackendError> {
        match &mut self.dense {
            Some(sv) => gate.apply(sv),
            None => {
                self.apply_gate_sparse(gate);
                self.after_sparse_gate();
            }
        }
        Ok(())
    }

    /// Mirrors `StateVector::reduced_density_matrix` exactly: first-seen
    /// environment-slot order over the ascending nonzero scan, ascending
    /// indices within each bucket, identical accumulation order — so the
    /// result is bit-identical to the dense readout. The scan partitions
    /// the nonzeros by the traced-qubit mask through a sorted environment
    /// table (`O(S log E)` for `S` nonzeros and `E` distinct
    /// environments) instead of hashing every amplitude.
    fn tracepoint_rdm(&self, qubits: &[usize]) -> CMatrix {
        if let Some(sv) = &self.dense {
            return sv.reduced_density_matrix(qubits);
        }
        let k = qubits.len();
        let shifts: Vec<usize> = qubits.iter().map(|&q| self.shift(q)).collect();
        {
            let mut sorted = shifts.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                k,
                "duplicate qubits in reduced_density_matrix"
            );
        }
        let dk = 1usize << k;
        let keep_mask: usize = shifts.iter().map(|&s| 1usize << s).sum();
        let env_mask = !keep_mask & ((1usize << self.n) - 1);
        let extract = |i: usize| -> usize {
            let mut idx = 0usize;
            for (bit, &s) in shifts.iter().enumerate() {
                if (i >> s) & 1 == 1 {
                    idx |= 1 << (k - 1 - bit);
                }
            }
            idx
        };
        // Pass 1: sorted table of distinct environment patterns.
        let mut envs: Vec<usize> = self.entries.iter().map(|&(i, _)| i & env_mask).collect();
        envs.sort_unstable();
        envs.dedup();
        // Pass 2: first-seen slot per environment and bucket sizes, in
        // ascending amplitude-scan order (the order dense uses).
        let mut slot_of_rank = vec![usize::MAX; envs.len()];
        let mut slots = Vec::with_capacity(self.entries.len());
        let mut counts = vec![0usize; envs.len()];
        let mut next_slot = 0usize;
        for &(i, _) in &self.entries {
            let rank = envs
                .binary_search(&(i & env_mask))
                .expect("environment indexed in pass 1");
            if slot_of_rank[rank] == usize::MAX {
                slot_of_rank[rank] = next_slot;
                next_slot += 1;
            }
            let slot = slot_of_rank[rank];
            slots.push(slot);
            counts[slot] += 1;
        }
        // Pass 3: flat scatter into first-seen-ordered buckets, then one
        // Gram accumulation per bucket.
        let mut starts = vec![0usize; next_slot + 1];
        for (s, &c) in counts.iter().take(next_slot).enumerate() {
            starts[s + 1] = starts[s] + c;
        }
        let mut cursor = starts.clone();
        let mut flat: Vec<(usize, C64)> = vec![(0, C64::ZERO); self.entries.len()];
        for (&(i, a), &slot) in self.entries.iter().zip(&slots) {
            flat[cursor[slot]] = (extract(i), a);
            cursor[slot] += 1;
        }
        let mut rho = CMatrix::zeros(dk, dk);
        for s in 0..next_slot {
            let bucket = &flat[starts[s]..starts[s + 1]];
            for &(r, ar) in bucket {
                for &(c, ac) in bucket {
                    rho[(r, c)] += ar * ac.conj();
                }
            }
        }
        rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_gate(n: usize, rng: &mut StdRng) -> Gate {
        let q = rng.gen_range(0..n);
        match rng.gen_range(0..14) {
            0 => Gate::H(q),
            1 => Gate::X(q),
            2 => Gate::Y(q),
            3 => Gate::Z(q),
            4 => Gate::S(q),
            5 => Gate::T(q),
            6 => Gate::RX(q, rng.gen_range(-3.0..3.0)),
            7 => Gate::RY(q, rng.gen_range(-3.0..3.0)),
            8 => Gate::RZ(q, rng.gen_range(-3.0..3.0)),
            9 => Gate::Phase(q, rng.gen_range(-3.0..3.0)),
            g if n >= 2 => {
                let mut p = rng.gen_range(0..n);
                while p == q {
                    p = rng.gen_range(0..n);
                }
                match g {
                    10 => Gate::CX(q, p),
                    11 => Gate::CZ(q, p),
                    12 => Gate::Swap(q, p),
                    _ => Gate::CPhase(q, p, rng.gen_range(-3.0..3.0)),
                }
            }
            _ => Gate::Sdg(q),
        }
    }

    /// The core contract: every nonzero amplitude bit-identical to the
    /// dense kernels, arbitrary (non-Clifford) circuits included.
    #[test]
    fn nonzero_amplitudes_bitwise_match_dense() {
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..25 {
            let n = rng.gen_range(1..=6);
            let mut sim = SparseSim::with_budget(n, 1 << n);
            let mut dense = StateVector::zero_state(n);
            for step in 0..40 {
                let g = random_gate(n, &mut rng);
                sim.apply_gate(&g).unwrap();
                g.apply(&mut dense);
                assert!(
                    sim.entries.windows(2).all(|w| w[0].0 < w[1].0),
                    "trial {trial} step {step} {g:?}: entries out of order"
                );
                for &(i, a) in &sim.entries {
                    assert!(
                        a == dense.amplitudes()[i],
                        "trial {trial} step {step} {g:?}: amp {i} {a:?} vs {:?}",
                        dense.amplitudes()[i]
                    );
                }
                for (i, &d) in dense.amplitudes().iter().enumerate() {
                    if d != C64::ZERO {
                        assert!(
                            sim.amplitude(i) != C64::ZERO,
                            "trial {trial} step {step}: dense nonzero {i} missing"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rdm_bitwise_matches_dense() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..25 {
            let n = rng.gen_range(2..=6);
            let mut sim = SparseSim::with_budget(n, 1 << n);
            let mut dense = StateVector::zero_state(n);
            for _ in 0..30 {
                let g = random_gate(n, &mut rng);
                sim.apply_gate(&g).unwrap();
                g.apply(&mut dense);
            }
            let k = rng.gen_range(1..=n.min(3));
            let mut qubits: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                qubits.swap(i, j);
            }
            qubits.truncate(k);
            let a = sim.tracepoint_rdm(&qubits);
            let b = dense.reduced_density_matrix(&qubits);
            for r in 0..(1 << k) {
                for c in 0..(1 << k) {
                    assert!(
                        a[(r, c)] == b[(r, c)],
                        "qubits {qubits:?} entry ({r},{c}): {:?} vs {:?}",
                        a[(r, c)],
                        b[(r, c)]
                    );
                }
            }
        }
    }

    #[test]
    fn ghz_stays_two_amplitudes() {
        let mut sim = SparseSim::new(20);
        sim.apply_gate(&Gate::H(0)).unwrap();
        for q in 1..20 {
            sim.apply_gate(&Gate::CX(q - 1, q)).unwrap();
        }
        assert_eq!(sim.nonzeros(), 2);
        assert!(!sim.spilled());
        assert_eq!(sim.stats().peak_nonzeros, 2);
        assert_eq!(sim.stats().spills, 0);
        assert_eq!(sim.stats().switches, 0);
    }

    #[test]
    fn budget_overflow_spills_and_stays_correct() {
        let mut sim = SparseSim::with_budget(4, 4);
        let mut dense = StateVector::zero_state(4);
        for q in 0..4 {
            sim.apply_gate(&Gate::H(q)).unwrap();
            Gate::H(q).apply(&mut dense);
        }
        assert!(sim.spilled(), "16 nonzeros over a budget of 4 must spill");
        assert_eq!(sim.stats().spills, 1);
        assert_eq!(sim.stats().switches, 0);
        // Post-spill gates run dense and remain exact.
        sim.apply_gate(&Gate::T(2)).unwrap();
        Gate::T(2).apply(&mut dense);
        let a = sim.tracepoint_rdm(&[2]);
        let b = dense.reduced_density_matrix(&[2]);
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(a[(r, c)], b[(r, c)]);
            }
        }
    }

    #[test]
    fn switch_threshold_exactly_reached_triggers_and_stays_bitwise() {
        // Threshold 8 on a 5-qubit register: the 3rd H reaches exactly 8
        // nonzeros, so the monitor must switch there — not before, not
        // after — and the rest of the circuit must stay bit-identical.
        let mut sim = SparseSim::with_thresholds(5, 1 << 5, 8);
        let mut dense = StateVector::zero_state(5);
        for q in 0..2 {
            sim.apply_gate(&Gate::H(q)).unwrap();
            Gate::H(q).apply(&mut dense);
            assert!(!sim.spilled(), "below threshold after H({q})");
        }
        sim.apply_gate(&Gate::H(2)).unwrap();
        Gate::H(2).apply(&mut dense);
        assert!(sim.spilled(), "8 nonzeros == threshold 8 must switch");
        assert_eq!(sim.stats().switches, 1);
        assert_eq!(sim.stats().spills, 0);
        assert_eq!(sim.stats().peak_nonzeros, 8);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let g = random_gate(5, &mut rng);
            sim.apply_gate(&g).unwrap();
            g.apply(&mut dense);
        }
        assert_eq!(
            sim.to_statevector().amplitudes(),
            dense.amplitudes(),
            "post-switch dense register must be bit-identical"
        );
    }

    #[test]
    fn switch_one_below_threshold_stays_sparse() {
        let mut sim = SparseSim::with_thresholds(5, 1 << 5, 9);
        for q in 0..3 {
            sim.apply_gate(&Gate::H(q)).unwrap();
        }
        assert_eq!(sim.nonzeros(), 8);
        assert!(!sim.spilled(), "8 nonzeros under threshold 9 stays sparse");
        assert_eq!(sim.stats().switches, 0);
    }

    #[test]
    fn garbage_switch_shift_warns_and_keeps_default() {
        // `set_var` is UB in a threaded harness, so the garbage value is
        // probed in a re-exec'd child whose environment is fixed at spawn:
        // the child re-enters this test, observes the thresholds fall back
        // to their defaults, and reports through its exit code while the
        // parent checks the warn-once line on the child's stderr.
        if std::env::var_os("MORPH_SPARSE_ENV_PROBE").is_some() {
            let ok = default_switch_threshold(4) == 1024 && default_switch_threshold(16) == 1 << 13;
            std::process::exit(if ok { 3 } else { 4 });
        }
        let exe = std::env::current_exe().expect("test binary path");
        let out = std::process::Command::new(&exe)
            .args([
                "--exact",
                "sparse::tests::garbage_switch_shift_warns_and_keeps_default",
                "--nocapture",
            ])
            .env("MORPH_SPARSE_ENV_PROBE", "1")
            .env("MORPH_SPARSE_SWITCH_SHIFT", "not-a-shift")
            .stdout(std::process::Stdio::null())
            .output()
            .expect("spawn probe child");
        assert_eq!(out.status.code(), Some(3), "defaults survive garbage");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("MORPH_SPARSE_SWITCH_SHIFT"),
            "invalid knob warns on stderr, got: {stderr}"
        );
    }

    #[test]
    fn default_threshold_respects_floor_and_override() {
        // Env-aware: the CI adaptive leg runs the suite under
        // MORPH_SPARSE_SWITCH_SHIFT, which replaces the floored default.
        match std::env::var("MORPH_SPARSE_SWITCH_SHIFT")
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok())
        {
            None => {
                assert_eq!(default_switch_threshold(4), 1024, "floor holds below 2^13");
                assert_eq!(default_switch_threshold(16), 1 << 13, "2^16 >> 3");
            }
            Some(shift) => {
                let expect = |n: usize| ((1usize << n) >> shift.min(63)).max(2);
                assert_eq!(default_switch_threshold(4), expect(4));
                assert_eq!(default_switch_threshold(16), expect(16));
            }
        }
        assert_eq!(
            default_switch_threshold(SPILL_MAX_QUBITS),
            usize::MAX,
            "monitor disabled where dense cannot exist"
        );
    }

    #[test]
    fn from_statevector_saturated_handoff_runs_the_monitor() {
        // A 13-qubit handoff with 1024 nonzeros sits exactly at the
        // floored default switch threshold (and under the 2048 budget),
        // so the monitor must resolve it at construction rather than run
        // sparse kernels over a saturated support.
        let mut dense = StateVector::zero_state(13);
        for q in 0..10 {
            Gate::H(q).apply(&mut dense);
        }
        let sim = SparseSim::from_statevector(&dense);
        assert_eq!(sim.stats().peak_nonzeros, 1024);
        assert_eq!(sim.stats().spills, 0, "1024 nonzeros fit the 2048 budget");
        let expect_switch = 1024 >= default_switch_threshold(13);
        assert_eq!(sim.spilled(), expect_switch);
        assert_eq!(sim.stats().switches, u64::from(expect_switch));
    }

    #[test]
    fn stats_merge_sums_events_and_maxes_peak() {
        let mut a = FastPathStats {
            spills: 1,
            switches: 2,
            splices: 3,
            peak_nonzeros: 10,
        };
        let b = FastPathStats {
            spills: 4,
            switches: 5,
            splices: 6,
            peak_nonzeros: 7,
        };
        a.merge(&b);
        assert_eq!(
            a,
            FastPathStats {
                spills: 5,
                switches: 7,
                splices: 9,
                peak_nonzeros: 10,
            }
        );
        assert!(FastPathStats::default().is_empty());
        assert!(!a.is_empty());
    }

    #[test]
    fn kq_unitary_matches_dense() {
        // Fusion emits Gate::Unitary payloads; exercise the k-qubit path.
        let mut rng = StdRng::seed_from_u64(8);
        let n = 5;
        let mut sim = SparseSim::with_budget(n, 1 << n);
        let mut dense = StateVector::zero_state(n);
        for g in [Gate::H(0), Gate::H(2), Gate::CX(0, 3)] {
            sim.apply_gate(&g).unwrap();
            g.apply(&mut dense);
        }
        for targets in [vec![1usize, 3], vec![4, 0, 2]] {
            // A random unitary via a product of elementary gates' full
            // matrix on the target subspace.
            let dim = 1usize << targets.len();
            let mut u = CMatrix::identity(dim);
            for _ in 0..4 {
                let g = random_gate(targets.len(), &mut rng);
                u = g.full_matrix(targets.len()).matmul(&u);
            }
            let g = Gate::Unitary(targets.clone(), u);
            sim.apply_gate(&g).unwrap();
            g.apply(&mut dense);
            for &(i, a) in &sim.entries {
                assert!(a == dense.amplitudes()[i], "targets {targets:?} amp {i}");
            }
        }
    }

    #[test]
    fn from_statevector_round_trips() {
        let mut dense = StateVector::zero_state(3);
        Gate::H(1).apply(&mut dense);
        Gate::CX(1, 2).apply(&mut dense);
        let sim = SparseSim::from_statevector(&dense);
        assert_eq!(sim.nonzeros(), 2);
        assert_eq!(sim.to_statevector().amplitudes(), dense.amplitudes());
    }
}
