//! Pluggable simulation backends for the MorphQPV reproduction.
//!
//! Characterization sweeps sample Clifford input states, and many benchmark
//! circuits are Clifford(-prefixed) or low-entanglement. This crate lets
//! those workloads skip the dense O(2^n) register:
//!
//! - [`Simulator`]: the backend trait — prepare, apply gates, apply noise
//!   channels where supported, read tracepoint reduced density matrices.
//! - [`DenseSim`] / [`DenseDensitySim`]: the existing statevector and
//!   density-matrix kernels behind the trait (the density backend is the
//!   only one that supports channels).
//! - [`StabilizerSim`]: Aaronson–Gottesman tableau with exact global-phase
//!   readout ([`morph_clifford::StabilizerState`]) — O(n²) per gate.
//! - [`SparseSim`]: hash-map statevector mirroring the dense kernels'
//!   per-amplitude arithmetic bit for bit, with a nonzero budget and
//!   automatic spill to dense.
//! - [`analyze`] / [`plan_characterization`]: the circuit-analysis pass
//!   (Clifford-ness, Clifford-prefix split, nonzero-growth estimate) and
//!   the selection policy behind `BackendMode::Auto`.
//!
//! Selection decisions are published as `backend/*` morph-trace counters
//! and surface in serve/CLI run reports.
//!
//! # Examples
//!
//! ```
//! use morph_backend::{plan_characterization, BackendChoice, PlanInputs};
//! use morph_qprog::{BackendMode, Circuit};
//!
//! let mut ghz = Circuit::new(20);
//! ghz.h(0);
//! for q in 1..20 {
//!     ghz.cx(q - 1, q);
//! }
//! ghz.tracepoint(1, &[0, 19]);
//! let plan = plan_characterization(&PlanInputs {
//!     circuit: &ghz,
//!     mode: BackendMode::Auto,
//!     noiseless: true,
//!     n_input_qubits: 2,
//!     preps_clifford: true,
//! });
//! assert_eq!(plan.choice, BackendChoice::Stabilizer);
//! ```

mod analysis;
mod select;
mod simulator;
mod sparse;

pub use analysis::{analyze, is_branching_gate, is_clifford_gate, suffix_circuit, CircuitAnalysis};
pub use select::{
    plan_characterization, BackendChoice, BackendPlan, PlanInputs, DENSE_HANDOFF_MAX_QUBITS,
    PREFIX_MIN_GATES, PREFIX_MIN_QUBITS, SPARSE_HEADROOM_QUBITS, SPARSE_MIN_QUBITS,
    STABILIZER_MIN_QUBITS,
};
pub use simulator::{
    BackendError, BackendKind, DenseDensitySim, DenseSim, Simulator, StabilizerSim,
};
pub use sparse::{
    default_budget, default_switch_threshold, FastPathStats, SparseSim, SPILL_MAX_QUBITS,
};
