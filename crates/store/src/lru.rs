//! Cost-aware LRU cache: the in-memory tier of the artifact store.
//!
//! A plain LRU treats a 2-second and a 2-hour characterization as equally
//! replaceable. Here every entry carries its *recompute cost* (the
//! quantum-ops count its characterization consumed), and eviction picks the
//! **cheapest entry within the least-recently-used half** of the cache:
//! staleness still matters (a hot expensive entry is never at risk), but
//! among comparably stale entries the one that is cheapest to regenerate is
//! sacrificed first. This is a simplified GreedyDual-style policy that
//! keeps `get`/`insert` O(1) amortized and only pays O(n) on an eviction.

use std::collections::HashMap;
use std::hash::Hash;

/// An LRU cache whose eviction order is biased by per-entry recompute cost.
#[derive(Debug)]
pub struct CostAwareLru<K, V> {
    entries: HashMap<K, Slot<V>>,
    capacity: usize,
    /// Logical clock: bumped on every access, stored per entry as recency.
    clock: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    cost: u64,
    last_used: u64,
}

impl<K: Eq + Hash + Clone, V> CostAwareLru<K, V> {
    /// A cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CostAwareLru {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            evictions: 0,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries evicted over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up a key, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|slot| {
            slot.last_used = clock;
            &slot.value
        })
    }

    /// The stored recompute cost of a resident entry.
    pub fn cost_of(&self, key: &K) -> Option<u64> {
        self.entries.get(key).map(|slot| slot.cost)
    }

    /// Inserts an entry (replacing any previous value under the key),
    /// evicting per the cost-aware policy if the cache is over capacity.
    /// Returns the evicted `(key, value)` pairs.
    pub fn insert(&mut self, key: K, value: V, cost: u64) -> Vec<(K, V)> {
        self.clock += 1;
        self.entries.insert(
            key,
            Slot {
                value,
                cost,
                last_used: self.clock,
            },
        );
        let mut evicted = Vec::new();
        while self.entries.len() > self.capacity {
            if let Some(victim) = self.pick_victim() {
                if let Some(slot) = self.entries.remove(&victim) {
                    self.evictions += 1;
                    evicted.push((victim, slot.value));
                }
            } else {
                break;
            }
        }
        evicted
    }

    /// Removes an entry outright.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.entries.remove(key).map(|slot| slot.value)
    }

    /// Drops every entry (capacity and statistics are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The cheapest entry among the least-recently-used half (see module
    /// docs). Never returns the single most-recent entry, so an insert
    /// cannot evict itself.
    fn pick_victim(&self) -> Option<K> {
        let n = self.entries.len();
        if n == 0 {
            return None;
        }
        let mut order: Vec<(&K, &Slot<V>)> = self.entries.iter().collect();
        order.sort_by_key(|(_, slot)| slot.last_used);
        // The stale half, but always at least one candidate and never the
        // most recently used entry.
        let window = (n / 2).max(1).min(n - 1).max(1);
        order[..window.min(n)]
            .iter()
            .min_by_key(|(_, slot)| (slot.cost, slot.last_used))
            .map(|(k, _)| (*k).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_enforced() {
        let mut lru = CostAwareLru::new(2);
        assert!(lru.insert("a", 1, 10).is_empty());
        assert!(lru.insert("b", 2, 10).is_empty());
        let evicted = lru.insert("c", 3, 10);
        assert_eq!(evicted.len(), 1);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn equal_costs_degrade_to_plain_lru() {
        let mut lru = CostAwareLru::new(2);
        lru.insert("a", 1, 5);
        lru.insert("b", 2, 5);
        assert_eq!(lru.get(&"a"), Some(&1)); // refresh a; b is now oldest
        let evicted = lru.insert("c", 3, 5);
        assert_eq!(evicted, vec![("b", 2)]);
        assert!(lru.get(&"a").is_some());
    }

    #[test]
    fn expensive_stale_entry_outlives_cheap_stale_entry() {
        let mut lru = CostAwareLru::new(3);
        lru.insert("gold", 1, 1_000_000); // expensive, oldest
        lru.insert("tin", 2, 10); // cheap, second-oldest
        lru.insert("fresh", 3, 10);
        // Both `gold` and `tin` are in the stale half; `tin` is cheaper.
        let evicted = lru.insert("new", 4, 10);
        assert_eq!(evicted, vec![("tin", 2)]);
        assert!(lru.get(&"gold").is_some());
    }

    #[test]
    fn hot_entry_is_never_the_victim() {
        let mut lru = CostAwareLru::new(1);
        lru.insert("only", 1, 0);
        let evicted = lru.insert("next", 2, 0);
        // With capacity 1 the previous entry goes, not the fresh insert.
        assert_eq!(evicted, vec![("only", 1)]);
        assert_eq!(lru.get(&"next"), Some(&2));
    }

    #[test]
    fn reinsert_updates_value_and_cost() {
        let mut lru = CostAwareLru::new(4);
        lru.insert("k", 1, 5);
        lru.insert("k", 2, 9);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&"k"), Some(&2));
        assert_eq!(lru.cost_of(&"k"), Some(9));
        assert_eq!(lru.remove(&"k"), Some(2));
        assert!(lru.is_empty());
    }
}
