//! Content-addressed artifact keys.
//!
//! A [`Fingerprint`] is the SHA-256 digest of a *canonical byte encoding*
//! of everything that determines an artifact's content. The
//! [`FingerprintBuilder`] makes that encoding unambiguous: every field is
//! framed as `len(tag) ‖ tag ‖ len(payload) ‖ payload`, so no concatenation
//! of fields can collide with a different field split, and a leading domain
//! string separates unrelated artifact kinds.

use std::fmt;

use crate::sha256::Sha256;

/// A 256-bit content address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub [u8; 32]);

impl Fingerprint {
    /// The lowercase-hex rendering used for file names and logs.
    pub fn to_hex(self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// The first 16 hex digits — enough to identify an artifact in logs,
    /// protocol responses, and coalescing diagnostics without the noise of
    /// the full 64-digit address.
    pub fn short_hex(self) -> String {
        let mut hex = self.to_hex();
        hex.truncate(16);
        hex
    }

    /// Parses the 64-hex-digit rendering produced by [`Fingerprint::to_hex`].
    pub fn from_hex(text: &str) -> Option<Fingerprint> {
        if text.len() != 64 {
            return None;
        }
        let mut bytes = [0u8; 32];
        for (i, byte) in bytes.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&text[2 * i..2 * i + 2], 16).ok()?;
        }
        Some(Fingerprint(bytes))
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Full hex is noise in assertion output; eight bytes identify.
        write!(f, "Fingerprint({}…)", &self.to_hex()[..16])
    }
}

impl serde::Serialize for Fingerprint {
    fn to_value(&self) -> serde::json::Value {
        serde::json::Value::Str(self.to_hex())
    }
}

impl<'de> serde::Deserialize<'de> for Fingerprint {
    fn from_value(value: &serde::json::Value) -> Result<Self, serde::json::FromValueError> {
        let text = value
            .as_str()
            .ok_or_else(|| serde::json::FromValueError::expected("fingerprint hex", value))?;
        Fingerprint::from_hex(text).ok_or_else(|| {
            serde::json::FromValueError::new(format!("not a 64-hex-digit fingerprint: {text:?}"))
        })
    }
}

/// Builds a [`Fingerprint`] from tagged fields.
///
/// # Examples
///
/// ```
/// use morph_store::FingerprintBuilder;
///
/// let a = FingerprintBuilder::new("demo/v1")
///     .field_u64("seed", 7)
///     .field_bytes("payload", b"abc")
///     .finish();
/// let b = FingerprintBuilder::new("demo/v1")
///     .field_u64("seed", 8)
///     .field_bytes("payload", b"abc")
///     .finish();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct FingerprintBuilder {
    hasher: Sha256,
}

impl FingerprintBuilder {
    /// Starts a fingerprint in the given domain (artifact kind + schema
    /// revision, e.g. `"morphqpv/characterization/v1"`). Bump the revision
    /// whenever the field encoding changes — old entries then simply miss.
    pub fn new(domain: &str) -> Self {
        let mut hasher = Sha256::new();
        feed_framed(&mut hasher, domain.as_bytes());
        FingerprintBuilder { hasher }
    }

    /// Adds a raw byte field.
    pub fn field_bytes(mut self, tag: &str, bytes: &[u8]) -> Self {
        feed_framed(&mut self.hasher, tag.as_bytes());
        feed_framed(&mut self.hasher, bytes);
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(self, tag: &str, value: u64) -> Self {
        self.field_bytes(tag, &value.to_le_bytes())
    }

    /// Adds a float field by bit pattern (NaN-safe, sign-of-zero-exact).
    pub fn field_f64(self, tag: &str, value: f64) -> Self {
        self.field_bytes(tag, &value.to_bits().to_le_bytes())
    }

    /// Adds a string field.
    pub fn field_str(self, tag: &str, value: &str) -> Self {
        self.field_bytes(tag, value.as_bytes())
    }

    /// Adds a list of unsigned integers (length included in the frame).
    pub fn field_u64_list(self, tag: &str, values: &[u64]) -> Self {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.field_bytes(tag, &bytes)
    }

    /// Completes the digest.
    pub fn finish(self) -> Fingerprint {
        Fingerprint(self.hasher.finalize())
    }
}

fn feed_framed(hasher: &mut Sha256, bytes: &[u8]) {
    hasher.update(&(bytes.len() as u64).to_le_bytes());
    hasher.update(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let fp = FingerprintBuilder::new("t").finish();
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(Fingerprint::from_hex("zz"), None);
        assert_eq!(Fingerprint::from_hex(&"0".repeat(63)), None);
        assert_eq!(fp.short_hex(), fp.to_hex()[..16].to_string());
    }

    #[test]
    fn serde_round_trip_as_hex_string() {
        use serde::{Deserialize, Serialize};
        let fp = FingerprintBuilder::new("t").field_u64("s", 9).finish();
        let value = fp.to_value();
        assert_eq!(value.as_str(), Some(fp.to_hex().as_str()));
        assert_eq!(Fingerprint::from_value(&value), Ok(fp));
        let bogus = serde::json::Value::Str("nope".into());
        assert!(Fingerprint::from_value(&bogus).is_err());
        assert!(Fingerprint::from_value(&serde::json::Value::Null).is_err());
    }

    #[test]
    fn framing_prevents_field_smearing() {
        // Same concatenated bytes, different field boundaries.
        let a = FingerprintBuilder::new("d")
            .field_bytes("x", b"ab")
            .field_bytes("y", b"c")
            .finish();
        let b = FingerprintBuilder::new("d")
            .field_bytes("x", b"a")
            .field_bytes("y", b"bc")
            .finish();
        assert_ne!(a, b);
    }

    #[test]
    fn domain_separates() {
        let a = FingerprintBuilder::new("domain-a")
            .field_u64("s", 1)
            .finish();
        let b = FingerprintBuilder::new("domain-b")
            .field_u64("s", 1)
            .finish();
        assert_ne!(a, b);
    }

    #[test]
    fn every_field_kind_is_significant() {
        let base = || FingerprintBuilder::new("d").field_u64("n", 3);
        let fp = base().field_f64("x", 1.0).finish();
        assert_ne!(fp, base().field_f64("x", -1.0).finish());
        assert_ne!(fp, base().field_f64("x", 1.0 + f64::EPSILON).finish());
        let list = base().field_u64_list("l", &[1, 2]).finish();
        assert_ne!(list, base().field_u64_list("l", &[2, 1]).finish());
        let s = base().field_str("s", "a").finish();
        assert_ne!(s, base().field_str("s", "b").finish());
    }

    #[test]
    fn fingerprint_is_stable_across_calls() {
        let make = || {
            FingerprintBuilder::new("morphqpv/test/v1")
                .field_u64("seed", 42)
                .field_f64("noise", 0.016)
                .field_u64_list("qubits", &[0, 2, 5])
                .finish()
        };
        assert_eq!(make(), make());
    }
}
