//! Fingerprint-keyed advisory file locks for cross-process store safety.
//!
//! Several `morph-serve` instances may share one on-disk artifact
//! directory (`MORPH_CACHE_DIR`). In-process single-flight coalescing
//! cannot see other processes, so without coordination every process
//! recomputes the same characterization. [`FingerprintLock`] closes that
//! gap with the weakest primitive that works everywhere the store does:
//! an exclusive *lock file* next to the artifact (`<fingerprint-hex>.lock`
//! beside `<fingerprint-hex>.json`), created with `O_CREAT|O_EXCL`
//! (`create_new`), which is atomic on every platform and filesystem the
//! store targets. No `flock(2)`-style OS locks: the workspace MSRV
//! predates `File::lock`, and advisory byte-range locks have famously
//! inconsistent semantics over NFS.
//!
//! The protocol callers follow (see `morph-serve`'s leader path):
//!
//! 1. try to acquire the lock for the fingerprint;
//! 2. once holding it, *re-check the store* — another process may have
//!    published the artifact while this one waited;
//! 3. compute, `put`, then release (drop the guard).
//!
//! Because the lock is advisory, a crashed holder leaves its file behind.
//! Waiters therefore break locks whose mtime is older than a staleness
//! bound; the break itself is raced through `rename` so exactly one
//! process reclaims a given stale file.

use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

use crate::fingerprint::Fingerprint;

/// Age after which a lock file is presumed abandoned by a crashed holder.
///
/// Generous relative to any real characterization: a healthy holder keeps
/// the lock only for one compute + one atomic write.
pub const DEFAULT_STALE_AFTER: Duration = Duration::from_secs(300);

/// Exclusive advisory lock on one fingerprint within a store directory.
///
/// Held from a successful [`FingerprintLock::try_acquire`] until drop;
/// dropping removes the lock file (best-effort — a failed removal degrades
/// to the stale-break path, never to a wedged artifact).
#[derive(Debug)]
pub struct FingerprintLock {
    path: PathBuf,
}

impl FingerprintLock {
    fn lock_path(dir: &Path, fp: &Fingerprint) -> PathBuf {
        dir.join(format!("{}.lock", fp.to_hex()))
    }

    /// Attempts to take the lock without blocking, using
    /// [`DEFAULT_STALE_AFTER`] as the abandonment bound.
    ///
    /// Returns `Ok(None)` when another holder has it (after breaking the
    /// file if it is stale — the *next* attempt then succeeds).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "lock already held" (e.g. an
    /// unwritable store directory).
    pub fn try_acquire(dir: &Path, fp: &Fingerprint) -> io::Result<Option<Self>> {
        Self::try_acquire_with(dir, fp, DEFAULT_STALE_AFTER)
    }

    /// [`FingerprintLock::try_acquire`] with an explicit staleness bound.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "lock already held".
    pub fn try_acquire_with(
        dir: &Path,
        fp: &Fingerprint,
        stale_after: Duration,
    ) -> io::Result<Option<Self>> {
        fs::create_dir_all(dir)?;
        let path = Self::lock_path(dir, fp);
        match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut file) => {
                // The pid is diagnostic only — staleness is judged by
                // mtime, which works across machines sharing a directory.
                let _ = writeln!(file, "{}", std::process::id());
                Ok(Some(FingerprintLock { path }))
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                Self::break_if_stale(&path, stale_after);
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Blocks (polling every `poll`) until the lock is acquired or
    /// `give_up` returns `true`.
    ///
    /// Returns `Ok(None)` on give-up — the caller decides whether that
    /// means "proceed unlocked" (safe: the store's writes are atomic and
    /// last-writer-wins over identical content) or "abort the job".
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying acquisition attempts.
    pub fn acquire(
        dir: &Path,
        fp: &Fingerprint,
        poll: Duration,
        mut give_up: impl FnMut() -> bool,
    ) -> io::Result<Option<Self>> {
        loop {
            if let Some(lock) = Self::try_acquire(dir, fp)? {
                return Ok(Some(lock));
            }
            if give_up() {
                return Ok(None);
            }
            std::thread::sleep(poll);
        }
    }

    /// The lock file's path (diagnostics and tests).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Removes `path` if its mtime is older than `stale_after`.
    ///
    /// Raced through `rename` to a per-pid tombstone name: of N waiters
    /// observing the same stale file, exactly one rename succeeds, so the
    /// file is reclaimed once and a fresh holder's new lock is never
    /// deleted by a slow waiter acting on old metadata.
    fn break_if_stale(path: &Path, stale_after: Duration) {
        let Ok(meta) = fs::metadata(path) else {
            return; // Already released.
        };
        let age = meta
            .modified()
            .ok()
            .and_then(|m| SystemTime::now().duration_since(m).ok());
        if age.is_some_and(|a| a > stale_after) {
            let tomb = path.with_extension(format!("lock-broken.{}", std::process::id()));
            if fs::rename(path, &tomb).is_ok() {
                let _ = fs::remove_file(&tomb);
            }
        }
    }
}

impl Drop for FingerprintLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FingerprintBuilder;

    fn temp_dir(label: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos();
        let dir = std::env::temp_dir().join(format!(
            "morph-lock-test-{label}-{}-{nanos}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn fp(n: u64) -> Fingerprint {
        FingerprintBuilder::new("lock-test/v1")
            .field_u64("n", n)
            .finish()
    }

    #[test]
    fn exclusive_until_released() {
        let dir = temp_dir("exclusive");
        let key = fp(1);
        let lock = FingerprintLock::try_acquire(&dir, &key)
            .unwrap()
            .expect("first acquire succeeds");
        assert!(lock.path().exists());
        assert!(
            FingerprintLock::try_acquire(&dir, &key).unwrap().is_none(),
            "second acquire is refused while held"
        );
        // An unrelated fingerprint is independent.
        assert!(FingerprintLock::try_acquire(&dir, &fp(2))
            .unwrap()
            .is_some());
        let path = lock.path().to_path_buf();
        drop(lock);
        assert!(!path.exists(), "drop removes the lock file");
        assert!(FingerprintLock::try_acquire(&dir, &key).unwrap().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_lock_is_broken_then_reacquired() {
        let dir = temp_dir("stale");
        let key = fp(3);
        let abandoned = FingerprintLock::try_acquire(&dir, &key).unwrap().unwrap();
        let path = abandoned.path().to_path_buf();
        std::mem::forget(abandoned); // Simulate a crashed holder.
                                     // Zero staleness bound: the first refused attempt breaks the file,
                                     // the next attempt takes the lock.
        assert!(
            FingerprintLock::try_acquire_with(&dir, &key, Duration::ZERO)
                .unwrap()
                .is_none(),
            "breaking attempt still reports contention"
        );
        assert!(!path.exists(), "stale file was reclaimed");
        assert!(FingerprintLock::try_acquire(&dir, &key).unwrap().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_lock_survives_contention() {
        let dir = temp_dir("fresh");
        let key = fp(4);
        let held = FingerprintLock::try_acquire(&dir, &key).unwrap().unwrap();
        for _ in 0..3 {
            assert!(FingerprintLock::try_acquire(&dir, &key).unwrap().is_none());
        }
        assert!(held.path().exists(), "contenders never break a fresh lock");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn acquire_polls_until_release_or_give_up() {
        let dir = temp_dir("poll");
        let key = fp(5);
        let held = FingerprintLock::try_acquire(&dir, &key).unwrap().unwrap();

        // Give-up path: bounded number of polls, then None.
        let mut polls = 0;
        let got = FingerprintLock::acquire(&dir, &key, Duration::from_millis(1), || {
            polls += 1;
            polls >= 3
        })
        .unwrap();
        assert!(got.is_none());
        assert_eq!(polls, 3);

        // Release path: a waiter in another thread gets the lock.
        let dir2 = dir.clone();
        let waiter = std::thread::spawn(move || {
            FingerprintLock::acquire(&dir2, &fp(5), Duration::from_millis(1), || false).unwrap()
        });
        std::thread::sleep(Duration::from_millis(10));
        drop(held);
        let lock = waiter.join().unwrap();
        assert!(lock.is_some(), "waiter acquired after release");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lock_files_do_not_disturb_store_entries() {
        let dir = temp_dir("coexist");
        let key = fp(6);
        let mut store = crate::MorphStore::open(&dir).unwrap();
        store.put(key, serde::json::Value::UInt(11), 5).unwrap();
        let _lock = FingerprintLock::try_acquire(&dir, &key).unwrap().unwrap();
        store.drop_memory();
        assert_eq!(
            store.get(&key),
            Some(serde::json::Value::UInt(11)),
            "artifact loads fine while its lock file exists"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
