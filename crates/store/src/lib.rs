//! Content-addressed characterization artifact store for the MorphQPV
//! reproduction.
//!
//! The paper's headline cost is the characterization stage (Section 5:
//! per-input sampling plus tomography readout), and its amortization
//! argument is that one characterization is *reused* across many assertions
//! on the same program. This crate is the substrate for that reuse:
//!
//! - [`Fingerprint`] / [`FingerprintBuilder`] — SHA-256 content addresses
//!   over canonical byte encodings (`sha256` module implements the digest
//!   offline, checked against the FIPS vectors).
//! - [`CostAwareLru`] — the in-memory tier: LRU biased by each artifact's
//!   recompute cost, so expensive characterizations outlive cheap ones.
//! - [`MorphStore`] — the two-tier store: memory LRU over an on-disk JSON
//!   directory with a schema-version field, atomic write-then-rename
//!   persistence, and corruption-tolerant loads (a damaged entry is a miss
//!   and gets rewritten, never a panic).
//!
//! The store is deliberately *untyped* — payloads are [`serde::json::Value`]
//! trees — so it sits below every domain crate in the dependency graph.
//! `morphqpv::characterize_cached` supplies the typed encoding of
//! characterization artifacts and the cache-aware entry points; see
//! DESIGN.md "Characterization cache" for the fingerprint definition and
//! invalidation rules.

mod fingerprint;
pub mod lock;
mod lru;
pub mod sha256;
mod store;

pub use fingerprint::{Fingerprint, FingerprintBuilder};
pub use lock::FingerprintLock;
pub use lru::CostAwareLru;
pub use store::{MorphStore, StoreStats, DEFAULT_CAPACITY, SCHEMA_VERSION};
